//! # Sonata: query-driven streaming network telemetry
//!
//! A Rust reproduction of *Sonata: Query-Driven Streaming Network
//! Telemetry* (Gupta et al., SIGCOMM 2018): express network telemetry
//! tasks as declarative dataflow queries over packet streams, and let
//! the system partition each query between a programmable (PISA)
//! switch and a stream processor while dynamically refining it to
//! zoom in on the traffic that matters — reducing stream-processor
//! load by orders of magnitude.
//!
//! ```
//! use sonata::prelude::*;
//!
//! // 1. A query (the paper's Query 1: detect new-TCP-connection floods).
//! let query = catalog::newly_opened_tcp_conns(&Thresholds::default());
//!
//! // 2. Traffic: synthetic background plus a SYN flood needle.
//! let mut trace = Trace::background(&BackgroundConfig::small(), 7);
//! trace.inject(&Attack::SynFlood {
//!     victim: 0x63070019, port: 80, packets: 500, sources: 200,
//!     ack_fraction: 0.05, fin_fraction: 0.02,
//!     start_ms: 0, duration_ms: 2_500,
//! }, 7);
//!
//! // 3. Plan: partition + refine against training windows.
//! let windows: Vec<&[sonata::packet::Packet]> =
//!     trace.windows(3_000).map(|(_, p)| p).collect();
//! let plan = plan_queries(&[query], &windows, &PlannerConfig::default()).unwrap();
//!
//! // 4. Run end to end on the switch + stream-processor substrate.
//! let mut runtime = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
//! let report = runtime.process_trace(&trace).unwrap();
//! assert!(report.total_tuples() < report.total_packets());
//! ```
//!
//! The implementation lives in focused sub-crates, re-exported here:
//!
//! | module | contents |
//! |---|---|
//! | [`packet`] | wire-format packets, header views, the field model |
//! | [`traffic`] | synthetic CAIDA-like traces and attack injectors |
//! | [`query`] | the dataflow query language + reference interpreter |
//! | [`pisa`] | the PISA switch behavioral model (P4-like IR, registers, resources, control API) |
//! | [`stream`] | the micro-batch stream processor |
//! | [`ilp`] | the from-scratch MILP solver behind the query planner |
//! | [`planner`] | cost estimation, partitioning + refinement planning, baseline plans |
//! | [`net`] | the switch↔stream-processor wire protocol: binary codec, Loopback/Tcp transports, collector server |
//! | [`core`] | the runtime: drivers, emitter, per-window orchestration |
//! | [`obs`] | cross-layer observability: metrics registry, event tracing, per-stage profiling |
//! | [`faults`] | deterministic fault injection with graceful degradation |

pub use sonata_core as core;
pub use sonata_faults as faults;
pub use sonata_ilp as ilp;
pub use sonata_net as net;
pub use sonata_obs as obs;
pub use sonata_packet as packet;
pub use sonata_pisa as pisa;
pub use sonata_planner as planner;
pub use sonata_query as query;
pub use sonata_stream as stream;
pub use sonata_traffic as traffic;

/// One-stop imports for applications.
pub mod prelude {
    pub use sonata_core::{
        DegradedWindow, DriftConfig, ErrorBoundReport, Fabric, IngestMode, ReplanConfig, Runtime,
        RuntimeConfig, SwitchArrival, SwitchOutage, TelemetryReport, TopologyConfig, WindowLatency,
        WindowReport,
    };
    pub use sonata_faults::{
        BoundaryFaults, FaultKind, FaultPlan, FaultRecord, ReportFaults, WorkerFaults,
    };
    pub use sonata_net::TransportKind;
    pub use sonata_obs::{MetricsSnapshot, ObsHandle};
    pub use sonata_packet::{Field, Packet, PacketBuilder, TcpFlags, Value};
    pub use sonata_pisa::{SketchConfig, StateLayout, SwitchConstraints, UpdateCostModel};
    pub use sonata_planner::costs::{CostConfig, SketchPolicy};
    pub use sonata_planner::{plan_queries, GlobalPlan, PlanMode, PlannerConfig, Replanner};
    pub use sonata_query::catalog::{self, Thresholds};
    pub use sonata_query::prelude::*;
    pub use sonata_traffic::{Attack, BackgroundConfig, DriftScenario, DriftWorkload, Trace};
}
