//! Offline vendored subset of the [`rand`](https://docs.rs/rand)
//! crate: the `Rng`/`SeedableRng` traits and a seedable `StdRng`, as
//! used by this workspace's deterministic trace generators. The
//! generator is xoshiro256++ seeded via SplitMix64 — high quality for
//! simulation purposes, not cryptographic. Vendored so the workspace
//! builds without network access to a crate registry.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Sample a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Sample uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing random-value API, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of an inferred primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed, expanding it internally.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(1u8..=4);
            assert!((1..=4).contains(&v));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let n = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&n));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }
}
