//! Offline vendored subset of the [`crossbeam`](https://docs.rs/crossbeam)
//! crate: multi-producer multi-consumer channels with the
//! `crossbeam-channel` API surface this workspace uses (`bounded`,
//! `unbounded`, cloneable `Sender`/`Receiver`, disconnect semantics),
//! implemented over `Mutex` + `Condvar` so the workspace builds without
//! network access to a crate registry.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        /// Signalled when an item is pushed or all senders disconnect.
        not_empty: Condvar,
        /// Signalled when an item is popped or all receivers disconnect.
        not_full: Condvar,
        cap: Option<usize>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value back.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders have disconnected.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout.
        Timeout,
        /// The channel is empty and all senders have disconnected.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half of a channel. Cloneable; the channel
    /// disconnects for receivers when every clone is dropped.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel. Cloneable; the channel
    /// disconnects for senders when every clone is dropped.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// A channel holding at most `cap` in-flight messages; senders
    /// block while it is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    /// A channel with unlimited buffering; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Block until the value is enqueued, or return it if every
        /// receiver has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = self
                    .inner
                    .cap
                    .is_some_and(|c| state.queue.len() >= c.max(1));
                if !full {
                    state.queue.push_back(value);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                state = self.inner.not_full.wait(state).unwrap();
            }
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }

        /// Whether the buffer is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives, or fail once the channel is
        /// empty with every sender disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.not_empty.wait(state).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.state.lock().unwrap();
            if let Some(v) = state.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking receive with a deadline relative to now.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (s, _) = self
                    .inner
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = s;
            }
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }

        /// Whether the buffer is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator over received messages; ends when the
        /// channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                self.inner.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn bounded_send_recv_fifo() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn blocking_handoff_across_threads() {
        let (tx, rx) = bounded(1);
        let h = std::thread::spawn(move || {
            // Second send blocks until the main thread drains one.
            tx.send(1).unwrap();
            tx.send(2).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 2);
        h.join().unwrap();
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn mpmc_clones() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        let mut got = vec![rx.recv().unwrap(), rx2.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert!(rx.iter().next().is_none());
    }
}
