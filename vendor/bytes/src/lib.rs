//! Offline vendored subset of the [`bytes`](https://docs.rs/bytes)
//! crate: just the pieces this workspace uses (`Bytes` as a cheaply
//! cloneable immutable byte buffer and the `BufMut` write trait),
//! reimplemented over `Arc<[u8]>` so the workspace builds without
//! network access to a crate registry.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Wrap a static slice (copied here; the real crate borrows).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Copy the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes {
            data: v.as_slice().into(),
        }
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes {
            data: v.into_bytes().into(),
        }
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes {
            data: v.as_bytes().into(),
        }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// Write access to a growable byte buffer, in the style of
/// `bytes::BufMut`. Multi-byte integers are written big-endian, as on
/// the wire.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b, Bytes::from(vec![1, 2, 3]));
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn bufmut_writes_big_endian() {
        let mut buf = Vec::new();
        buf.put_u8(0xab);
        buf.put_u16(0x0102);
        buf.put_u32(0x03040506);
        buf.put_slice(&[9]);
        assert_eq!(buf, vec![0xab, 1, 2, 3, 4, 5, 6, 9]);
    }
}
