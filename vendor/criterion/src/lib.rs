//! Offline vendored subset of the [`criterion`](https://docs.rs/criterion)
//! benchmarking harness: groups, throughput annotation, parameterized
//! benchmark IDs, `iter`/`iter_batched`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Mode selection matches the real crate: `cargo bench` passes
//! `--bench` to the binary and the routines are timed (time-boxed, no
//! statistics); `cargo test` does not, so every routine runs exactly
//! once as a smoke test. No reports are written to disk.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for compatibility; prefer `std::hint::black_box`.
pub use std::hint::black_box;

/// How much work one iteration represents, for ops/sec reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; a hint only, ignored here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh setup for every routine call.
    PerIteration,
}

/// A benchmark name plus a parameter value, e.g. `queries/4`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only ID.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Run each routine once (`cargo test` of a bench target).
    Test,
    /// Time each routine (`cargo bench` passes `--bench`).
    Bench,
}

/// The benchmark manager handed to `criterion_group!` target fns.
pub struct Criterion {
    mode: Mode,
    /// Substring filter from the command line, if any.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::Test,
            filter: None,
        }
    }
}

impl Criterion {
    /// Apply command-line arguments: `--bench` switches to timed mode;
    /// the first non-flag argument is a name filter; all other flags
    /// (`--quiet`, `--test`, ...) are accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => self.mode = Mode::Bench,
                s if s.starts_with('-') => {}
                s => {
                    if self.filter.is_none() {
                        self.filter = Some(s.to_string());
                    }
                }
            }
        }
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Standalone benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let name = id.to_string();
        run_one(self.mode, &self.filter, &name, None, f);
        self
    }
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness time-boxes instead
    /// of sampling.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate how much work each iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark routine.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(
            self.criterion.mode,
            &self.criterion.filter,
            &name,
            self.throughput,
            f,
        );
        self
    }

    /// Run one benchmark routine with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(
            self.criterion.mode,
            &self.criterion.filter,
            &name,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// End the group. (No-op; reports print as benchmarks run.)
    pub fn finish(self) {}
}

/// Passed to each routine; drives its iteration loop.
pub struct Bencher {
    mode: Mode,
    /// (total elapsed, iterations) of the measured phase.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        match self.mode {
            Mode::Test => {
                black_box(routine());
            }
            Mode::Bench => {
                // Warm up briefly, then time-box the measurement.
                let warm_deadline = Instant::now() + Duration::from_millis(50);
                while Instant::now() < warm_deadline {
                    black_box(routine());
                }
                let start = Instant::now();
                let deadline = start + Duration::from_millis(300);
                let mut iters = 0u64;
                loop {
                    black_box(routine());
                    iters += 1;
                    if Instant::now() >= deadline {
                        break;
                    }
                }
                self.measured = Some((start.elapsed(), iters));
            }
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        match self.mode {
            Mode::Test => {
                black_box(routine(setup()));
            }
            Mode::Bench => {
                let warm_deadline = Instant::now() + Duration::from_millis(50);
                while Instant::now() < warm_deadline {
                    black_box(routine(setup()));
                }
                let mut total = Duration::ZERO;
                let mut iters = 0u64;
                while total < Duration::from_millis(300) {
                    let input = setup();
                    let start = Instant::now();
                    black_box(routine(input));
                    total += start.elapsed();
                    iters += 1;
                }
                self.measured = Some((total, iters));
            }
        }
    }
}

fn run_one(
    mode: Mode,
    filter: &Option<String>,
    name: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        mode,
        measured: None,
    };
    f(&mut bencher);
    match mode {
        Mode::Test => println!("test {name} ... ok"),
        Mode::Bench => {
            let (elapsed, iters) = bencher.measured.unwrap_or((Duration::ZERO, 0));
            if iters == 0 {
                println!("{name}: no measurement (routine never called iter)");
                return;
            }
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!(" ({:.3} Melem/s)", n as f64 / per_iter / 1e6)
                }
                Some(Throughput::Bytes(n)) => {
                    format!(" ({:.3} MiB/s)", n as f64 / per_iter / (1024.0 * 1024.0))
                }
                None => String::new(),
            };
            println!(
                "{name}: {:.3} ms/iter over {iters} iters{rate}",
                per_iter * 1e3
            );
        }
    }
}

/// Define a target fn that runs the listed benchmark fns.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_routine_once() {
        let mut calls = 0;
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function("once", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &n| {
            b.iter_batched(|| n, |v| calls += v, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(calls, 4);
    }
}
