//! Value-generation strategies: the [`Strategy`] trait plus the
//! combinators this workspace's property tests use (ranges, tuples,
//! `Just`, `prop_map`, `Union`/`prop_oneof!`, `any::<T>()`, boxing).

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

use rand::Rng;

/// The RNG threaded through strategy evaluation.
pub type TestRng = rand::rngs::StdRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply produces a fresh value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Filter generated values; cases failing `f` are discarded (the
    /// runner retries, counting the discard against its reject cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }

    /// Type-erase for heterogeneous collections (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// Result of [`Strategy::prop_filter`]. Retries generation up to a
/// fixed cap, then panics (matching real proptest's give-up behavior).
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejects: {}", self.whence);
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T: Debug> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Build from the already-boxed arms. Panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].new_value(rng)
    }
}

/// Object-safe type-erased strategy, from [`Strategy::boxed`].
pub struct BoxedStrategy<T> {
    inner: Box<dyn ObjectSafeStrategy<T>>,
}

trait ObjectSafeStrategy<T> {
    fn new_value_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ObjectSafeStrategy<S::Value> for S {
    fn new_value_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.new_value_dyn(rng)
    }
}

/// Strategy for any value of a samplable primitive: `any::<bool>()`.
pub struct Any<T>(PhantomData<T>);

/// Uniform strategy over all values of `T`.
pub fn any<T: rand::Standard + Debug>() -> Any<T> {
    Any(PhantomData)
}

impl<T: rand::Standard + Debug> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);
impl_tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7
);
impl_tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7,
    S8 / 8
);
impl_tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7,
    S8 / 8,
    S9 / 9
);
