//! The case-loop driver behind the `proptest!` macro: configuration,
//! per-case outcomes, and [`run`].

use rand::SeedableRng;

use crate::strategy::TestRng;

/// Per-test configuration, normally set via
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of rejected (discarded) cases tolerated before
    /// the test fails as too-narrow.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig {
            cases,
            max_global_rejects: 1024,
        }
    }
}

impl ProptestConfig {
    /// Default config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!` failed); it does not
    /// count toward the pass total.
    Reject(String),
    /// The property was violated.
    Fail(String),
}

impl TestCaseError {
    /// Build a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Build a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
        }
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Derive the base RNG seed for a test, mixing the test's location so
/// different tests explore different sequences. `PROPTEST_SEED`
/// overrides for reproduction.
fn base_seed(file: &str, line: u32) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(n) = s.parse() {
            return n;
        }
    }
    // FNV-1a over the location; any stable mix works.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in file.bytes().chain(line.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Drive `case` until `config.cases` successes, a failure, or the
/// reject cap. `case` returns the outcome plus a `Debug` rendering of
/// the generated inputs, captured *before* the body runs so failures
/// can report them.
pub fn run(
    config: &ProptestConfig,
    file: &str,
    line: u32,
    mut case: impl FnMut(&mut TestRng) -> (TestCaseResult, String),
) {
    let seed = base_seed(file, line);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut iter = 0u64;
    while passed < config.cases {
        // Each case gets its own derived RNG so a rejected case does
        // not perturb later cases' values.
        let mut rng = TestRng::seed_from_u64(seed.wrapping_add(iter));
        iter += 1;
        let (outcome, rendered) = case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest: too many global rejects ({rejected}) at {file}:{line}; \
                         property passed {passed}/{} cases",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(reason)) => {
                panic!(
                    "proptest: property failed at {file}:{line} after {passed} passing \
                     case(s)\n{reason}\ninputs (seed {seed}, iter {}):\n{rendered}",
                    iter - 1
                );
            }
        }
    }
}
