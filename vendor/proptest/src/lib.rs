//! Offline vendored subset of the [`proptest`](https://docs.rs/proptest)
//! crate: the `proptest!` macro, composable generation strategies
//! (ranges, tuples, `prop_map`, `prop_oneof!`, collections, a tiny
//! regex string generator), and a deterministic test runner.
//!
//! Differences from the real crate, chosen to keep this vendored copy
//! small while preserving test semantics:
//!
//! * **no shrinking** — a failing case panics with the full `Debug`
//!   rendering of its inputs instead of a minimized counterexample;
//! * **deterministic seeding** — cases derive from a fixed seed mixed
//!   with the test's file/line, overridable via `PROPTEST_SEED`;
//! * `PROPTEST_CASES` scales the per-test case count globally.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::{Strategy, TestRng};

    /// How many elements a collection strategy may produce.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of the element strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a size chosen from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// String strategies (`proptest::string`).
pub mod string {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Error from parsing a generation regex.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "bad generation regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    #[derive(Debug, Clone)]
    enum Piece {
        /// One char drawn from this set.
        Class(Vec<char>),
    }

    #[derive(Debug, Clone)]
    struct Quantified {
        piece: Piece,
        min: usize,
        max: usize,
    }

    /// Strategy generating strings matching a (tiny subset of a)
    /// regex: literal chars, `.`, `[a-z0-9_]` classes, and the
    /// quantifiers `{n}`, `{m,n}`, `?`, `+`, `*` (`+`/`*` capped at 8
    /// repetitions).
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        pieces: Vec<Quantified>,
    }

    /// Parse `pattern` into a string-generation strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let piece = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        match chars.next() {
                            None => return Err(Error("unterminated class".into())),
                            Some(']') => break,
                            Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                                let lo = prev.take().unwrap();
                                let hi = chars.next().unwrap();
                                if lo > hi {
                                    return Err(Error(format!("bad range {lo}-{hi}")));
                                }
                                for ch in lo..=hi {
                                    set.push(ch);
                                }
                            }
                            Some(ch) => {
                                if let Some(p) = prev.replace(ch) {
                                    set.push(p);
                                }
                            }
                        }
                    }
                    if let Some(p) = prev {
                        set.push(p);
                    }
                    if set.is_empty() {
                        return Err(Error("empty class".into()));
                    }
                    Piece::Class(set)
                }
                '.' => Piece::Class((' '..='~').collect()),
                '\\' => {
                    let esc = chars.next().ok_or_else(|| Error("dangling \\".into()))?;
                    match esc {
                        'd' => Piece::Class(('0'..='9').collect()),
                        'w' => {
                            let mut set: Vec<char> = ('a'..='z').collect();
                            set.extend('A'..='Z');
                            set.extend('0'..='9');
                            set.push('_');
                            Piece::Class(set)
                        }
                        other => Piece::Class(vec![other]),
                    }
                }
                other => Piece::Class(vec![other]),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for ch in chars.by_ref() {
                        if ch == '}' {
                            break;
                        }
                        spec.push(ch);
                    }
                    let parse = |s: &str| {
                        s.parse::<usize>()
                            .map_err(|_| Error(format!("bad quantifier {{{spec}}}")))
                    };
                    match spec.split_once(',') {
                        None => {
                            let n = parse(&spec)?;
                            (n, n)
                        }
                        Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                _ => (1, 1),
            };
            if min > max {
                return Err(Error("quantifier min > max".into()));
            }
            pieces.push(Quantified { piece, min, max });
        }
        Ok(RegexGeneratorStrategy { pieces })
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for q in &self.pieces {
                let reps = rng.gen_range(q.min..=q.max);
                let Piece::Class(set) = &q.piece;
                for _ in 0..reps {
                    out.push(set[rng.gen_range(0..set.len())]);
                }
            }
            out
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg", ..)`: fail the
/// current case (with its inputs reported) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)`: like [`prop_assert!`] for equality.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `prop_assert_ne!(a, b)`: like [`prop_assert!`] for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// `prop_assume!(cond)`: discard the current case without failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// `prop_oneof![s1, s2, ...]`: pick one of several strategies with the
/// same value type, uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The `proptest!` block macro: one or more `#[test] fn name(bindings
/// in strategies) { body }` items, with an optional leading
/// `#![proptest_config(..)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __strategies = ($($strat,)+);
            $crate::test_runner::run(&__config, file!(), line!(), |__rng| {
                let __values =
                    $crate::strategy::Strategy::new_value(&__strategies, __rng);
                let __rendered = format!("{:#?}", __values);
                let __outcome: $crate::test_runner::TestCaseResult = (|| {
                    let ($($pat,)+) = __values;
                    $body
                    ::std::result::Result::Ok(())
                })();
                (__outcome, __rendered)
            });
        }
        $crate::__proptest_each! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps_compose(
            x in 1u32..100,
            y in (0u8..10).prop_map(|v| v * 2),
            v in crate::collection::vec(0i8..=4, 0..6),
            s in crate::string::string_regex("[a-z]{1,4}").unwrap(),
            flag in any::<bool>(),
            pick in prop_oneof![Just(1u64), Just(2u64), 5u64..7],
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(y % 2 == 0 && y <= 18);
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&e| (0..=4).contains(&e)));
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(flag as u8 <= 1);
            prop_assert!(matches!(pick, 1 | 2 | 5 | 6));
        }

        #[test]
        fn assume_discards_without_failing(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let config = ProptestConfig::with_cases(64);
        let err = std::panic::catch_unwind(|| {
            crate::test_runner::run(&config, file!(), line!(), |rng| {
                let n = crate::strategy::Strategy::new_value(&(0u32..10), rng);
                let rendered = format!("{:?}", n);
                let outcome = if n < 5 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail(format!("forced failure for n={n}")))
                };
                (outcome, rendered)
            });
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("forced failure"), "{msg}");
        assert!(msg.contains("inputs"), "{msg}");
    }
}
