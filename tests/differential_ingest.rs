//! Differential suite for the batched arena ingest path.
//!
//! PR "zero-copy batched ingest" rebuilt the window loop around a
//! contiguous [`PacketArena`] and `Switch::process_batch`: PHV slots
//! resolve once per batch, a columnar gate culls packets no task can
//! report, and reports accumulate in a reusable `ReportBatch` that
//! ships borrowed arena slices straight to the wire. All of it is
//! pure performance work — the contract is that `IngestMode::Arena`
//! (the default) produces *bit-identical* `WindowReport`s to
//! `IngestMode::Owned` (the per-packet oracle), across the query
//! catalog, across plan modes, across seeds, across shard counts,
//! over TCP, under fault injection, and with sketched state.
//!
//! Seeds come from `SONATA_FASTPATH_SEEDS` (comma-separated, default
//! `7,23,101`).
//!
//! [`PacketArena`]: sonata::packet::PacketArena

use sonata::prelude::*;
use sonata::query::Query;
use sonata::stream::testsupport::{low_thresholds, seeded_packets};
use sonata::traffic::trace::EvaluationTrace;

const WINDOW_NS: u64 = 3_000_000_000;

fn seeds() -> Vec<u64> {
    std::env::var("SONATA_FASTPATH_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![7, 23, 101])
}

/// A deterministic multi-window trace: one `testsupport` mixed window
/// per 3-second slot, re-seeded per slot so windows differ.
fn trace(windows: u64, seed: u64) -> Trace {
    let mut pkts = Vec::new();
    for w in 0..windows {
        let mut chunk = seeded_packets(seed.wrapping_add(w), 300);
        for p in &mut chunk {
            p.ts_nanos += w * WINDOW_NS;
        }
        pkts.extend(chunk);
    }
    Trace::new(pkts)
}

fn plan_for(mode: PlanMode, queries: &[Query], tr: &Trace) -> GlobalPlan {
    let windows: Vec<&[sonata::packet::Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
    let cfg = PlannerConfig {
        mode,
        cost: sonata::planner::costs::CostConfig {
            levels: Some(vec![8, 32]),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    plan_queries(queries, &windows, &cfg).unwrap()
}

fn config(
    ingest: IngestMode,
    transport: TransportKind,
    workers: usize,
    faults: FaultPlan,
) -> RuntimeConfig {
    RuntimeConfig {
        ingest,
        transport,
        workers,
        faults,
        ..RuntimeConfig::default()
    }
}

fn run(plan: &GlobalPlan, tr: &Trace, cfg: RuntimeConfig) -> TelemetryReport {
    let mut rt = Runtime::new(plan, cfg).unwrap();
    rt.process_trace(tr).unwrap()
}

/// Both ingest modes over the full eleven-query catalog (the paper's
/// Table 3), per plan mode, on the evaluation trace — the widest
/// query-shape coverage: every operator combination crosses the
/// columnar gate, the batch report arena, and the borrowed wire
/// encode here.
#[test]
fn arena_ingest_is_bit_identical_across_catalog_and_plan_modes() {
    let tr = EvaluationTrace::generate(11, 2, 3_000, 0.05).trace;
    let queries = catalog::all(&Thresholds::default());
    for mode in [PlanMode::AllSp, PlanMode::FilterDp, PlanMode::MaxDp] {
        let plan = plan_for(mode, &queries, &tr);
        let arena = run(
            &plan,
            &tr,
            config(
                IngestMode::Arena,
                TransportKind::Loopback,
                1,
                FaultPlan::none(),
            ),
        );
        let owned = run(
            &plan,
            &tr,
            config(
                IngestMode::Owned,
                TransportKind::Loopback,
                1,
                FaultPlan::none(),
            ),
        );
        assert_eq!(
            arena.windows, owned.windows,
            "{mode:?}: arena ingest diverged from the owned-packet oracle"
        );
    }
}

/// Refined (multi-level) Sonata plans exercise dynamic-filter updates
/// mid-run: the columnar gate hoists `DynFilter` steps and reads live
/// table entries, so control-plane updates between windows must reach
/// the batch path identically to the per-packet path.
#[test]
fn arena_ingest_matches_owned_on_refined_plans_across_seeds() {
    let t = low_thresholds();
    let queries = vec![
        catalog::newly_opened_tcp_conns(&t),
        catalog::superspreader(&t),
    ];
    for seed in seeds() {
        let tr = trace(3, seed);
        let plan = plan_for(PlanMode::Sonata, &queries, &tr);
        let arena = run(
            &plan,
            &tr,
            config(
                IngestMode::Arena,
                TransportKind::Loopback,
                1,
                FaultPlan::none(),
            ),
        );
        let owned = run(
            &plan,
            &tr,
            config(
                IngestMode::Owned,
                TransportKind::Loopback,
                1,
                FaultPlan::none(),
            ),
        );
        assert_eq!(
            arena.windows, owned.windows,
            "seed {seed}: refined arena ingest diverged from owned"
        );
    }
}

/// Shard counts change how windows fan out to stream workers but must
/// not interact with how packets entered the switch.
#[test]
fn arena_ingest_matches_owned_at_every_shard_count() {
    let seed = seeds()[0];
    let tr = trace(2, seed);
    let t = low_thresholds();
    let queries = vec![
        catalog::newly_opened_tcp_conns(&t),
        catalog::superspreader(&t),
    ];
    let plan = plan_for(PlanMode::Sonata, &queries, &tr);
    for workers in [1usize, 2, 4, 8] {
        let arena = run(
            &plan,
            &tr,
            config(
                IngestMode::Arena,
                TransportKind::Loopback,
                workers,
                FaultPlan::none(),
            ),
        );
        let owned = run(
            &plan,
            &tr,
            config(
                IngestMode::Owned,
                TransportKind::Loopback,
                workers,
                FaultPlan::none(),
            ),
        );
        assert_eq!(
            arena.windows, owned.windows,
            "{workers} workers: arena ingest diverged from owned"
        );
    }
}

/// The wire must not care how reports were materialized: the borrowed
/// `encode_report_ref` TCP path (arena) must equal the owned
/// `Frame::Report` TCP path byte-for-byte all the way to the
/// collector's `WindowReport`s.
#[test]
fn arena_ingest_matches_owned_over_tcp() {
    let seed = seeds()[0];
    let tr = trace(3, seed);
    let t = low_thresholds();
    let queries = vec![
        catalog::newly_opened_tcp_conns(&t),
        catalog::superspreader(&t),
    ];
    let plan = plan_for(PlanMode::Sonata, &queries, &tr);
    let arena = run(
        &plan,
        &tr,
        config(IngestMode::Arena, TransportKind::Tcp, 1, FaultPlan::none()),
    );
    let owned = run(
        &plan,
        &tr,
        config(IngestMode::Owned, TransportKind::Tcp, 1, FaultPlan::none()),
    );
    assert_eq!(
        arena.windows, owned.windows,
        "arena ingest over TCP diverged from owned over TCP"
    );
}

/// Fault injection sites count packets and reports, so the fault
/// stream depends on report *order* — the batch path must present
/// reports to the injector in exactly the per-packet order. A faulted
/// arena run must equal a faulted owned run, verdict for verdict.
#[test]
fn faulted_runs_are_identical_in_both_ingest_modes() {
    let t = low_thresholds();
    let queries = vec![
        catalog::newly_opened_tcp_conns(&t),
        catalog::superspreader(&t),
    ];
    for seed in seeds() {
        let tr = trace(3, seed);
        // All-SP plans mirror every packet, so the egress actually
        // carries per-packet reports to fault.
        let plan = plan_for(PlanMode::AllSp, &queries, &tr);
        let faults = FaultPlan {
            seed,
            report: ReportFaults {
                drop_per_mille: 150,
                duplicate_per_mille: 150,
                delay_per_mille: 150,
                reorder_per_mille: 100,
                delay_packets: 6,
            },
            ..FaultPlan::default()
        };
        let arena = run(
            &plan,
            &tr,
            config(IngestMode::Arena, TransportKind::Loopback, 1, faults),
        );
        let owned = run(
            &plan,
            &tr,
            config(IngestMode::Owned, TransportKind::Loopback, 1, faults),
        );
        assert!(
            arena.total_faults().get(FaultKind::ReportDrop) > 0,
            "seed {seed}: the plan must actually inject"
        );
        assert_eq!(
            arena.windows, owned.windows,
            "seed {seed}: faulted arena ingest diverged from faulted owned"
        );
    }
}

/// Sketched register state (count-min / Bloom layouts) hashes the
/// same keys whichever way the packet arrived; a sketched arena run
/// must equal a sketched owned run exactly.
#[test]
fn sketched_runs_are_identical_in_both_ingest_modes() {
    let seed = seeds()[0];
    let tr = trace(2, seed);
    let t = low_thresholds();
    let queries = vec![
        catalog::newly_opened_tcp_conns(&t),
        catalog::superspreader(&t),
    ];
    let plan = plan_for(PlanMode::Sonata, &queries, &tr);
    let sketch = SketchConfig {
        layout: StateLayout::CountMin,
        ..SketchConfig::default()
    };
    let arena = run(
        &plan,
        &tr,
        RuntimeConfig {
            ingest: IngestMode::Arena,
            sketch,
            ..RuntimeConfig::default()
        },
    );
    let owned = run(
        &plan,
        &tr,
        RuntimeConfig {
            ingest: IngestMode::Owned,
            sketch,
            ..RuntimeConfig::default()
        },
    );
    assert_eq!(
        arena.windows, owned.windows,
        "sketched arena ingest diverged from sketched owned"
    );
}

/// Payload-bearing queries (DNS tunneling, Zorro, DNS reflection) mix
/// text keys and packet-mirroring tasks — the shapes that exercise
/// arena-index packet mirroring and the undecodable-report fallback.
#[test]
fn arena_ingest_matches_owned_for_payload_queries() {
    let t = Thresholds::default();
    let queries = vec![
        catalog::dns_tunneling(&t),
        catalog::zorro(&t),
        catalog::dns_reflection(&t),
    ];
    let tr = EvaluationTrace::generate(11, 2, 3_000, 0.05).trace;
    let plan = plan_for(PlanMode::MaxDp, &queries, &tr);
    let arena = run(
        &plan,
        &tr,
        config(
            IngestMode::Arena,
            TransportKind::Loopback,
            1,
            FaultPlan::none(),
        ),
    );
    let owned = run(
        &plan,
        &tr,
        config(
            IngestMode::Owned,
            TransportKind::Loopback,
            1,
            FaultPlan::none(),
        ),
    );
    assert_eq!(
        arena.windows, owned.windows,
        "payload-query arena ingest diverged from owned"
    );
}
