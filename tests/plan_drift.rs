//! Integration suite for the plan-drift monitor: the planner's
//! committed per-query tuple budget ([`GlobalPlan::budget`]) is
//! reconciled against every window's observed loads, and the re-plan
//! trigger fires **exactly once per sustained breach** — not on one
//! noisy window, and not on every window of a persistent shift.
//!
//! The drifted fixture plans on quiet background traffic and then
//! runs a trace with a large injected SYN flood: observed per-query
//! loads blow past the prediction in every window, which is precisely
//! the "plan is stale" condition the monitor exists to catch.

use sonata::obs::{EventKind, ObsHandle};
use sonata::prelude::*;

fn quiet_trace() -> Trace {
    // Three 3-second windows of steady background traffic.
    Trace::background(
        &BackgroundConfig {
            duration_ms: 9_000,
            packets: 15_000,
            ..BackgroundConfig::small()
        },
        11,
    )
}

fn attack_trace() -> Trace {
    let mut tr = quiet_trace();
    tr.inject(
        &Attack::SynFlood {
            victim: 0x63070019,
            port: 80,
            packets: 2_000,
            sources: 1_000,
            ack_fraction: 0.05,
            fin_fraction: 0.02,
            start_ms: 0,
            duration_ms: 8_500,
        },
        11,
    );
    tr
}

/// Plan on `planned`, run on `live`, with the given drift rule.
fn run_with_drift(
    planned: &Trace,
    live: &Trace,
    drift: DriftConfig,
) -> (TelemetryReport, ObsHandle) {
    let queries = vec![
        catalog::newly_opened_tcp_conns(&Thresholds::default()),
        catalog::superspreader(&Thresholds::default()),
    ];
    let windows: Vec<&[sonata::packet::Packet]> = planned.windows(3_000).map(|(_, p)| p).collect();
    let plan = plan_queries(&queries, &windows, &PlannerConfig::default()).unwrap();
    let obs = ObsHandle::enabled();
    let mut rt = Runtime::new(
        &plan,
        RuntimeConfig {
            obs: obs.clone(),
            drift,
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    let report = rt.process_trace(live).unwrap();
    (report, obs)
}

fn replan_events(obs: &ObsHandle) -> Vec<(u64, f64)> {
    obs.events()
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::ReplanTrigger { window, divergence } => Some((*window, *divergence)),
            _ => None,
        })
        .collect()
}

/// A run over the very traffic the plan was built from stays inside
/// the budget: zero re-plan triggers, no window flagged.
#[test]
fn undrifted_baseline_never_triggers() {
    let tr = quiet_trace();
    let (report, obs) = run_with_drift(&tr, &tr, DriftConfig::default());
    assert!(report.windows.len() >= 2, "fixture needs several windows");
    assert!(
        report.windows.iter().all(|w| !w.replan_triggered),
        "on-budget run must not flag a re-plan"
    );
    assert!(replan_events(&obs).is_empty());
    // The gauge is still live — divergence is monitored, just small.
    assert!(report.metrics.gauge("sonata_plan_divergence").is_some());
}

/// A persistent shift — every window over budget — fires exactly one
/// trigger (after `sustain` consecutive breaches), and the event's
/// divergence explains why.
#[test]
fn sustained_drift_fires_exactly_one_trigger() {
    let (report, obs) = run_with_drift(&quiet_trace(), &attack_trace(), DriftConfig::default());
    assert!(report.windows.len() >= 3, "fixture needs several windows");
    let events = replan_events(&obs);
    assert_eq!(
        events.len(),
        1,
        "one sustained breach, one trigger (got {events:?})"
    );
    let flagged: Vec<u64> = report
        .windows
        .iter()
        .filter(|w| w.replan_triggered)
        .map(|w| w.window)
        .collect();
    assert_eq!(flagged, vec![events[0].0], "flag and event agree");
    // Fires on the window that completes the sustained run, not the
    // first noisy one.
    assert_eq!(
        events[0].0,
        report.windows[DriftConfig::default().sustain as usize - 1].window,
        "trigger completes the sustain streak"
    );
    assert!(
        events[0].1 > DriftConfig::default().threshold,
        "the fired divergence is on record and above threshold"
    );
    // The exported gauge carries the live divergence in per-mille.
    assert!(
        report.metrics.gauge("sonata_plan_divergence").unwrap()
            > (DriftConfig::default().threshold * 1000.0) as u64
    );
}

/// `sustain = 1` reproduces the legacy fire-on-first-breach rule, and
/// still fires only once while the breach persists.
#[test]
fn sustain_one_fires_on_the_first_breaching_window() {
    let (report, obs) = run_with_drift(
        &quiet_trace(),
        &attack_trace(),
        DriftConfig {
            sustain: 1,
            ..DriftConfig::default()
        },
    );
    let events = replan_events(&obs);
    assert_eq!(events.len(), 1, "disarmed after the first fire");
    assert_eq!(events[0].0, report.windows[0].window);
}

/// An absurd threshold silences the monitor entirely — the rule, not
/// the traffic, decides.
#[test]
fn raised_threshold_silences_the_trigger() {
    let (report, obs) = run_with_drift(
        &quiet_trace(),
        &attack_trace(),
        DriftConfig {
            threshold: 1e9,
            ..DriftConfig::default()
        },
    );
    assert!(report.windows.iter().all(|w| !w.replan_triggered));
    assert!(replan_events(&obs).is_empty());
}
