//! Cross-crate invariants of dynamic refinement (Section 4):
//!
//! 1. refinement never loses persistent traffic — an attack lasting
//!    `≥ |R|` windows is detected despite the zoom-in delay;
//! 2. relaxed thresholds never drop a true positive;
//! 3. the refinement chain reduces stream-processor load relative to
//!    the unrefined plan when the switch cannot hold the full query.

use sonata::packet::Packet;
use sonata::prelude::*;
use sonata::query::interpret::run_query;

/// A trace with a persistent SYN flood to one victim plus background
/// noise spread across many /8s, repeated identically per window.
fn flood_trace(windows: u64, victim: u32, flood_per_window: u32, noise_hosts: u32) -> Trace {
    let mut pkts = Vec::new();
    for w in 0..windows {
        let base_ns = w * 3_000 * 1_000_000;
        for i in 0..flood_per_window {
            pkts.push(
                PacketBuilder::tcp_raw(0x0100_0000 + i, 1000, victim, 80)
                    .flags(TcpFlags::SYN)
                    .ts_nanos(base_ns + i as u64 * 1_000)
                    .build(),
            );
        }
        for h in 0..noise_hosts {
            pkts.push(
                PacketBuilder::tcp_raw(7, 1000, ((h % 200 + 1) << 24) | h, 80)
                    .flags(TcpFlags::SYN)
                    .ts_nanos(base_ns + 2_000_000 + h as u64 * 1_000)
                    .build(),
            );
        }
    }
    Trace::new(pkts)
}

fn sonata_plan(q: &sonata::query::Query, tr: &Trace, levels: Vec<u8>) -> GlobalPlan {
    let windows: Vec<&[Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
    let cfg = PlannerConfig {
        mode: PlanMode::FixRef, // force a multi-level chain
        cost: sonata::planner::costs::CostConfig {
            levels: Some(levels),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    plan_queries(std::slice::from_ref(q), &windows, &cfg).unwrap()
}

#[test]
fn persistent_attack_detected_despite_refinement_delay() {
    let victim = 0x63070019;
    let tr = flood_trace(4, victim, 60, 200);
    let q = catalog::newly_opened_tcp_conns(&Thresholds {
        new_tcp: 30,
        ..Thresholds::default()
    });
    let plan = sonata_plan(&q, &tr, vec![8, 16, 32]);
    assert_eq!(plan.queries[0].levels.len(), 3);
    let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
    let report = rt.process_trace(&tr).unwrap();
    let alerts = report.alerts_for(q.id);
    // The chain has 3 levels: /8 output feeds /16 in window 1, /16
    // output feeds /32 in window 2 — detection from window 2 on.
    assert!(
        alerts
            .iter()
            .any(|(w, t)| *w == 2 && t.get(0).as_u64() == Some(victim as u64)),
        "alerts: {alerts:?}"
    );
    // And continuously afterwards (steady state).
    assert!(alerts.iter().any(|(w, _)| *w == 3));
    // Never before the chain warms up.
    assert!(alerts.iter().all(|(w, _)| *w >= 2));
}

#[test]
fn refined_reference_results_match_runtime_at_finest_level() {
    // In steady state, finest-level alerts equal the reference
    // interpreter restricted to prefixes that satisfied the coarser
    // levels in previous windows — for a stationary trace that is
    // exactly the reference result.
    let victim = 0x63070019;
    let tr = flood_trace(4, victim, 60, 200);
    let q = catalog::newly_opened_tcp_conns(&Thresholds {
        new_tcp: 30,
        ..Thresholds::default()
    });
    let plan = sonata_plan(&q, &tr, vec![8, 32]);
    let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
    let report = rt.process_trace(&tr).unwrap();
    let window_pkts: Vec<&[Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
    // Steady state from window 1 on.
    for (w, pkts) in window_pkts.iter().enumerate().take(4).skip(1) {
        let expected = run_query(&q, pkts).unwrap();
        let got: Vec<sonata::query::Tuple> = report.windows[w]
            .alerts
            .iter()
            .flat_map(|(_, t)| t.clone())
            .collect();
        assert_eq!(got, expected, "window {w}");
    }
}

#[test]
fn refinement_chain_reduces_load_under_tight_memory() {
    // Shrink register memory so the unrefined query cannot hold all
    // keys on the switch; refinement (coarse pre-filtering) should
    // then deliver fewer tuples than the single-level plan.
    let victim = 0x63070019;
    let tr = flood_trace(4, victim, 80, 4_000);
    let q = catalog::newly_opened_tcp_conns(&Thresholds {
        new_tcp: 40,
        ..Thresholds::default()
    });
    let windows: Vec<&[Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
    let tight = SwitchConstraints {
        register_bits_per_stage: 120_000, // ~1.8k slots of 64 bits
        max_bits_per_register: 120_000,
        ..SwitchConstraints::default()
    };
    let run = |mode: PlanMode| {
        let cfg = PlannerConfig {
            mode,
            constraints: tight,
            cost: sonata::planner::costs::CostConfig {
                levels: Some(vec![8, 32]),
                ..Default::default()
            },
            ..PlannerConfig::default()
        };
        let plan = plan_queries(std::slice::from_ref(&q), &windows, &cfg).unwrap();
        let mut rt = Runtime::new(
            &plan,
            RuntimeConfig {
                constraints: tight,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        (plan, rt.process_trace(&tr).unwrap())
    };
    let (_, maxdp) = run(PlanMode::MaxDp);
    let (sonata_plan, sonata) = run(PlanMode::Sonata);
    // Sonata should have chosen refinement here (the /32 register
    // can't hold 4k keys in 120 kb).
    let chain: Vec<u8> = sonata_plan.queries[0]
        .levels
        .iter()
        .map(|l| l.level)
        .collect();
    assert!(chain.len() > 1, "expected refinement, got {chain:?}");
    assert!(
        sonata.total_tuples() < maxdp.total_tuples(),
        "sonata {} vs maxdp {}",
        sonata.total_tuples(),
        maxdp.total_tuples()
    );
    // Both still find the victim (steady state).
    assert!(sonata
        .alerts_for(q.id)
        .iter()
        .any(|(_, t)| t.get(0).as_u64() == Some(victim as u64)));
}

#[test]
fn transient_subwindow_traffic_is_not_lost_by_relaxation() {
    // All true positives of the original query must be alerted by the
    // refined plan once its chain is warm — including borderline ones.
    let tr = flood_trace(3, 0x63070019, 31, 100); // 31 > 30: barely over
    let q = catalog::newly_opened_tcp_conns(&Thresholds {
        new_tcp: 30,
        ..Thresholds::default()
    });
    let plan = sonata_plan(&q, &tr, vec![8, 32]);
    let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
    let report = rt.process_trace(&tr).unwrap();
    let window_pkts: Vec<&[Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
    let expected = run_query(&q, window_pkts[2]).unwrap();
    assert!(!expected.is_empty());
    let got: Vec<sonata::query::Tuple> = report.windows[2]
        .alerts
        .iter()
        .flat_map(|(_, t)| t.clone())
        .collect();
    assert_eq!(got, expected);
}
