//! Property test for the paper's accuracy-preserving partitioning
//! claim (Section 3.1.3): for *random traffic* and *every feasible
//! partition point*, executing a query prefix on the switch and the
//! rest at the stream processor yields exactly the reference
//! interpreter's results.

use proptest::prelude::*;
use sonata::packet::{Packet, PacketBuilder, TcpFlags};
use sonata::pisa::compile::{max_switch_units, table_specs, RegisterSizing};
use sonata::pisa::{Switch, SwitchConstraints, TaskId};
use sonata::query::catalog::{self, Thresholds};
use sonata::query::interpret::run_query;
use sonata::query::{Query, Tuple};
use sonata::stream::{execute_window, WindowBatch};
use std::collections::BTreeMap;

/// Execute `query` (join-free) with its first `k` units on a freshly
/// loaded switch and the residue on the stream engine; returns the
/// final tuples.
fn run_partitioned(query: &Query, k: usize, slots: usize, packets: &[Packet]) -> Vec<Tuple> {
    let task = TaskId {
        query: query.id,
        level: 32,
        branch: 0,
    };
    let specs = table_specs(&query.pipeline);
    let stateful = specs.iter().take(k).filter(|s| s.stateful).count();
    let mut stages = Vec::new();
    let mut cur = 0;
    for s in specs.iter().take(k) {
        stages.push(cur);
        cur += s.stage_cost;
    }
    let sizings = vec![
        RegisterSizing {
            slots,
            arrays: 2,
            ..Default::default()
        };
        stateful
    ];
    let compiled =
        sonata::pisa::compile_pipeline(&query.pipeline, task, &stages, &sizings, 0, 0).unwrap();
    let deployment = sonata::core::driver::deploy(&sonata::planner::GlobalPlan {
        mode: sonata::planner::PlanMode::Sonata,
        queries: vec![sonata::planner::QueryPlan {
            query: query.clone(),
            levels: vec![sonata::planner::LevelPlan {
                level: 32,
                prev: None,
                refined: query.clone(),
                branches: vec![sonata::planner::BranchPlan {
                    branch: 0,
                    units: k,
                    stages,
                    sizings,
                }],
                predicted_n: 0.0,
            }],
        }],
        predicted_tuples: 0.0,
        epoch: 0,
    })
    .unwrap();
    let _ = compiled;
    let mut switch = Switch::load(deployment.program, &SwitchConstraints::default()).unwrap();
    let mut emitter = sonata::core::Emitter::new(&deployment.deployments);
    for p in packets {
        for r in switch.process(p) {
            emitter.ingest(&r);
        }
    }
    emitter.ingest_dump(&switch.end_window());
    let batches = emitter.close_window().unwrap();
    let mut out = Vec::new();
    let job = deployment.instances[0].job;
    let refined = &deployment.instances[0].refined;
    for (j, batch) in batches {
        assert_eq!(j, job);
        out.extend(execute_window(refined, &batch).unwrap().output);
    }
    // No batch at all (nothing survived the switch) = empty result.
    if out.is_empty() {
        // Run an empty batch so join-free queries still produce their
        // (empty) window result deterministically.
        let empty = WindowBatch {
            left: BTreeMap::new(),
            right: BTreeMap::new(),
        };
        out.extend(execute_window(refined, &empty).unwrap().output);
    }
    out.sort();
    out
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        0u32..8, // source pool
        0u32..6, // dest pool
        prop_oneof![
            Just(TcpFlags::SYN),
            Just(TcpFlags::ACK),
            Just(TcpFlags::PSH_ACK)
        ],
        1u16..5, // port pool
    )
        .prop_map(|(s, d, flags, port)| {
            PacketBuilder::tcp_raw(0x0a000000 + s, 1000 + port, 0x14000000 + d, 80)
                .flags(flags)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn query1_every_partition_matches_reference(
        pkts in proptest::collection::vec(arb_packet(), 0..120),
        th in 0u64..6,
    ) {
        let q = catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: th,
            ..Thresholds::default()
        });
        let reference = run_query(&q, &pkts).unwrap();
        let maxk = max_switch_units(&table_specs(&q.pipeline));
        for k in 0..=maxk {
            let got = run_partitioned(&q, k, 512, &pkts);
            prop_assert_eq!(&got, &reference, "partition k={}", k);
        }
    }

    #[test]
    fn superspreader_every_partition_matches_reference(
        pkts in proptest::collection::vec(arb_packet(), 0..120),
        th in 0u64..4,
    ) {
        let q = catalog::superspreader(&Thresholds {
            superspreader: th,
            ..Thresholds::default()
        });
        let reference = run_query(&q, &pkts).unwrap();
        let maxk = max_switch_units(&table_specs(&q.pipeline));
        prop_assert!(maxk >= 4);
        for k in 0..=maxk {
            let got = run_partitioned(&q, k, 512, &pkts);
            prop_assert_eq!(&got, &reference, "partition k={}", k);
        }
    }

    #[test]
    fn tiny_registers_still_exact_via_shunt_merge(
        pkts in proptest::collection::vec(arb_packet(), 0..150),
        th in 0u64..4,
    ) {
        // Registers with a single slot per array force nearly every
        // key to shunt; the emitter's merge must keep results exact.
        let q = catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: th,
            ..Thresholds::default()
        });
        let reference = run_query(&q, &pkts).unwrap();
        let maxk = max_switch_units(&table_specs(&q.pipeline));
        let got = run_partitioned(&q, maxk, 1, &pkts);
        prop_assert_eq!(got, reference);
    }

    #[test]
    fn ddos_query_with_two_stateful_units_exact_under_collisions(
        pkts in proptest::collection::vec(arb_packet(), 0..150),
        slots in 1usize..8,
    ) {
        // distinct + reduce both on tiny registers: the dump merge
        // must re-aggregate shunted distinct pairs correctly.
        let q = catalog::ddos(&Thresholds {
            ddos: 1,
            ..Thresholds::default()
        });
        let reference = run_query(&q, &pkts).unwrap();
        let maxk = max_switch_units(&table_specs(&q.pipeline));
        let got = run_partitioned(&q, maxk, slots, &pkts);
        prop_assert_eq!(got, reference);
    }
}
