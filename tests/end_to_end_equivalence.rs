//! Cross-crate invariant: partitioned execution (switch + stream
//! processor) must produce exactly the results of the in-memory
//! reference interpreter, for every baseline plan and every
//! unrefined catalog query — the paper's "partitioning without
//! compromising accuracy" claim (Section 3.1.3).

use sonata::prelude::*;
use sonata::query::interpret::run_query;
use sonata::query::Tuple;
use sonata::traffic::trace::EvaluationTrace;

fn evaluation_trace() -> Trace {
    EvaluationTrace::generate(11, 2, 3_000, 0.05).trace
}

fn plan_for(mode: PlanMode, queries: &[sonata::query::Query], tr: &Trace) -> GlobalPlan {
    let windows: Vec<&[sonata::packet::Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
    let cfg = PlannerConfig {
        mode,
        cost: sonata::planner::costs::CostConfig {
            levels: Some(vec![32]), // unrefined: single-window semantics
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    plan_queries(queries, &windows, &cfg).unwrap()
}

fn check_equivalence(mode: PlanMode, queries: Vec<sonata::query::Query>) {
    let tr = evaluation_trace();
    let plan = plan_for(mode, &queries, &tr);
    let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
    let report = rt.process_trace(&tr).unwrap();
    for q in &queries {
        for (wi, (w, packets)) in tr.windows(3_000).enumerate() {
            let expected = run_query(q, packets).unwrap();
            let got: Vec<Tuple> = report.windows[wi]
                .alerts
                .iter()
                .filter(|(id, _)| *id == q.id)
                .flat_map(|(_, t)| t.clone())
                .collect();
            assert_eq!(
                got, expected,
                "{mode} / {} / window {w}: partitioned != reference",
                q.name
            );
        }
    }
}

#[test]
fn allsp_matches_reference_for_top8() {
    check_equivalence(PlanMode::AllSp, catalog::top8(&Thresholds::default()));
}

#[test]
fn filterdp_matches_reference_for_top8() {
    check_equivalence(PlanMode::FilterDp, catalog::top8(&Thresholds::default()));
}

#[test]
fn maxdp_matches_reference_for_top8() {
    check_equivalence(PlanMode::MaxDp, catalog::top8(&Thresholds::default()));
}

#[test]
fn maxdp_matches_reference_for_payload_queries() {
    // Queries 9–11 need DNS fields or payloads: partitioned execution
    // must still agree (the switch forwards what it cannot parse).
    let t = Thresholds::default();
    check_equivalence(
        PlanMode::MaxDp,
        vec![
            catalog::dns_tunneling(&t),
            catalog::zorro(&t),
            catalog::dns_reflection(&t),
        ],
    );
}

#[test]
fn plan_cost_ordering_matches_the_paper() {
    // All-SP ≥ Filter-DP ≥ Max-DP in delivered tuples; Sonata ≤ Fix-REF.
    let tr = evaluation_trace();
    let queries = catalog::top8(&Thresholds::default());
    let windows: Vec<&[sonata::packet::Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
    let mut measured = std::collections::HashMap::new();
    for &mode in PlanMode::ALL {
        let cfg = PlannerConfig {
            mode,
            cost: sonata::planner::costs::CostConfig {
                levels: Some(vec![8, 16, 24, 32]),
                ..Default::default()
            },
            ..PlannerConfig::default()
        };
        let plan = plan_queries(&queries, &windows, &cfg).unwrap();
        let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
        let report = rt.process_trace(&tr).unwrap();
        measured.insert(mode, report.total_tuples());
    }
    assert!(measured[&PlanMode::AllSp] >= measured[&PlanMode::FilterDp]);
    assert!(measured[&PlanMode::FilterDp] >= measured[&PlanMode::MaxDp]);
    assert!(
        measured[&PlanMode::Sonata] <= measured[&PlanMode::AllSp] / 2,
        "Sonata {} vs All-SP {}",
        measured[&PlanMode::Sonata],
        measured[&PlanMode::AllSp]
    );
}

#[test]
fn wire_mode_equals_decoded_mode() {
    // Driving the switch with raw wire bytes (full parser work) must
    // be bit-for-bit equivalent to the decoded fast path.
    let tr = evaluation_trace();
    let queries = catalog::top8(&Thresholds::default());
    let plan = plan_for(PlanMode::MaxDp, &queries, &tr);
    let run = |wire_mode: bool| {
        let mut rt = Runtime::new(
            &plan,
            RuntimeConfig {
                wire_mode,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        rt.process_trace(&tr).unwrap()
    };
    let fast = run(false);
    let wire = run(true);
    assert_eq!(fast.total_tuples(), wire.total_tuples());
    for (a, b) in fast.windows.iter().zip(&wire.windows) {
        assert_eq!(a.alerts, b.alerts, "window {}", a.window);
        assert_eq!(a.shunts, b.shunts);
    }
}
