//! Counting-allocator proof of the batched ingest contract: once a
//! window's working set is warm (report arena capacity grown, state
//! keys registered, scratch columns sized), `Switch::process_batch`
//! performs **zero** heap allocations per packet — the whole point of
//! the arena + borrowed-view redesign.
//!
//! The file holds exactly one `#[test]` so no sibling test allocates
//! on another thread while the counter is armed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use sonata::packet::PacketArena;
use sonata::pisa::compile::{compile_pipeline, max_switch_units, table_specs, RegisterSizing};
use sonata::pisa::{PisaProgram, ReportBatch, Switch, SwitchConstraints, TaskId};
use sonata::prelude::*;
use sonata::stream::testsupport::seeded_packets;

/// Pass-through `System` wrapper that counts allocation events while
/// armed. Deallocations are free to happen (dropping warm state is
/// not the property under test); `alloc`/`realloc`/`alloc_zeroed`
/// are the per-packet cost we assert away.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn build_switch(n_queries: usize) -> Switch {
    let queries = catalog::top8(&Thresholds::default());
    let mut program = PisaProgram::default();
    let mut meta_base = 0;
    let mut reg_base = 0;
    for q in queries.iter().take(n_queries) {
        let mut branches: Vec<&sonata::query::Pipeline> = vec![&q.pipeline];
        if let Some(j) = &q.join {
            branches.push(&j.right);
        }
        for (b, pipeline) in branches.iter().enumerate() {
            let specs = table_specs(pipeline);
            let k = max_switch_units(&specs);
            let stateful = specs.iter().take(k).filter(|s| s.stateful).count();
            let mut stages = Vec::new();
            let mut cur = 0;
            for s in specs.iter().take(k) {
                stages.push(cur);
                cur += s.stage_cost;
            }
            let compiled = compile_pipeline(
                pipeline,
                TaskId {
                    query: q.id,
                    level: 32,
                    branch: b as u8,
                },
                &stages,
                // Deliberately tight registers: hash collisions shunt
                // packets to the emitter, so the measured pass emits
                // per-packet reports (not just end-of-window dumps)
                // and the report-arena reuse is actually exercised.
                &vec![
                    RegisterSizing {
                        slots: 64,
                        arrays: 1,
                        ..Default::default()
                    };
                    stateful
                ],
                meta_base,
                reg_base,
            )
            .unwrap();
            meta_base = compiled.fragment.meta_slots.max(meta_base);
            reg_base += compiled.fragment.registers.len() as u32;
            program.merge(compiled.fragment);
        }
    }
    Switch::load(
        program,
        &SwitchConstraints {
            stateful_per_stage: 32,
            ..SwitchConstraints::default()
        },
    )
    .unwrap()
}

#[test]
fn process_batch_is_allocation_free_once_warm() {
    let pkts = seeded_packets(7, 1_000);
    let arena = PacketArena::from_packets(&pkts);
    let mut sw = build_switch(4);
    let mut out = ReportBatch::new();

    // Warm pass: grows the report arena, registers every state key
    // the window will touch, and sizes the gate's scratch columns.
    sw.process_batch(&arena.batch(), &mut out);
    let warm_reports = out.total_reports();
    assert!(warm_reports > 0, "workload must actually report");

    // Measured pass: same window, same state — every per-packet
    // structure must be reused, not reallocated. The window is NOT
    // closed in between: `end_window` drains registers, and re-keying
    // them is a first-touch cost, not a per-packet one.
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    sw.process_batch(&arena.batch(), &mut out);
    ARMED.store(false, Ordering::SeqCst);

    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        allocs,
        0,
        "process_batch allocated {allocs} times over {} warm packets",
        arena.len()
    );
}
