//! Differential suite for the compiled fast paths.
//!
//! PR "compiled hot paths" added two compile-once/execute-many layers:
//! the switch lowers its loaded IR into a flat [`ExecPlan`] and the
//! stream processor binds each registered query into a fused
//! [`BoundPipeline`]. Both are pure performance work — the contract is
//! that a default run (fast paths on) produces *bit-identical*
//! `WindowReport`s to a run with `force_reference_path: true` (the
//! original tree-walking interpreters), across the query catalog,
//! across plan modes, across seeds, across shard counts, over TCP,
//! and under fault injection.
//!
//! Seeds come from `SONATA_FASTPATH_SEEDS` (comma-separated, default
//! `7,23,101`).

use sonata::prelude::*;
use sonata::query::Query;
use sonata::stream::testsupport::{low_thresholds, seeded_packets};
use sonata::traffic::trace::EvaluationTrace;

const WINDOW_NS: u64 = 3_000_000_000;

fn seeds() -> Vec<u64> {
    std::env::var("SONATA_FASTPATH_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![7, 23, 101])
}

/// A deterministic multi-window trace: one `testsupport` mixed window
/// per 3-second slot, re-seeded per slot so windows differ.
fn trace(windows: u64, seed: u64) -> Trace {
    let mut pkts = Vec::new();
    for w in 0..windows {
        let mut chunk = seeded_packets(seed.wrapping_add(w), 300);
        for p in &mut chunk {
            p.ts_nanos += w * WINDOW_NS;
        }
        pkts.extend(chunk);
    }
    Trace::new(pkts)
}

fn plan_for(mode: PlanMode, queries: &[Query], tr: &Trace) -> GlobalPlan {
    let windows: Vec<&[sonata::packet::Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
    let cfg = PlannerConfig {
        mode,
        cost: sonata::planner::costs::CostConfig {
            levels: Some(vec![8, 32]),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    plan_queries(queries, &windows, &cfg).unwrap()
}

fn config(
    force_reference_path: bool,
    transport: TransportKind,
    workers: usize,
    faults: FaultPlan,
) -> RuntimeConfig {
    RuntimeConfig {
        force_reference_path,
        transport,
        workers,
        faults,
        ..RuntimeConfig::default()
    }
}

fn run(plan: &GlobalPlan, tr: &Trace, cfg: RuntimeConfig) -> TelemetryReport {
    let mut rt = Runtime::new(plan, cfg).unwrap();
    rt.process_trace(tr).unwrap()
}

/// Fast vs. reference over the full eleven-query catalog (the paper's
/// Table 3), per plan mode, on the evaluation trace. This is the
/// widest query-shape coverage: every operator combination the
/// catalog can express crosses both the switch ExecPlan and the
/// stream BoundPipeline here.
#[test]
fn fast_path_is_bit_identical_across_catalog_and_plan_modes() {
    let tr = EvaluationTrace::generate(11, 2, 3_000, 0.05).trace;
    let queries = catalog::all(&Thresholds::default());
    for mode in [PlanMode::AllSp, PlanMode::FilterDp, PlanMode::MaxDp] {
        let plan = plan_for(mode, &queries, &tr);
        let fast = run(
            &plan,
            &tr,
            config(false, TransportKind::Loopback, 1, FaultPlan::none()),
        );
        let reference = run(
            &plan,
            &tr,
            config(true, TransportKind::Loopback, 1, FaultPlan::none()),
        );
        assert_eq!(
            fast.windows, reference.windows,
            "{mode:?}: fast path diverged from reference interpreters"
        );
    }
}

/// Refined (multi-level) Sonata plans exercise dynamic-filter updates
/// mid-run: the compiled switch plan reads live filter entries and
/// the bound stream pipelines see rewritten InSet predicates, so both
/// must track control-plane changes identically to the reference.
#[test]
fn fast_path_matches_reference_on_refined_plans_across_seeds() {
    let t = low_thresholds();
    let queries = vec![
        catalog::newly_opened_tcp_conns(&t),
        catalog::superspreader(&t),
    ];
    for seed in seeds() {
        let tr = trace(3, seed);
        let plan = plan_for(PlanMode::Sonata, &queries, &tr);
        let fast = run(
            &plan,
            &tr,
            config(false, TransportKind::Loopback, 1, FaultPlan::none()),
        );
        let reference = run(
            &plan,
            &tr,
            config(true, TransportKind::Loopback, 1, FaultPlan::none()),
        );
        assert_eq!(
            fast.windows, reference.windows,
            "seed {seed}: refined fast path diverged from reference"
        );
    }
}

/// Every shard count funnels windows through per-shard engine
/// replicas; the force flag must reach each replica (including
/// respawned ones), and sharded fast output must equal the sharded
/// reference output at every width.
#[test]
fn fast_path_matches_reference_at_every_shard_count() {
    let seed = seeds()[0];
    let tr = trace(2, seed);
    let t = low_thresholds();
    let queries = vec![
        catalog::newly_opened_tcp_conns(&t),
        catalog::superspreader(&t),
    ];
    let plan = plan_for(PlanMode::Sonata, &queries, &tr);
    for workers in [1usize, 2, 4, 8] {
        let fast = run(
            &plan,
            &tr,
            config(false, TransportKind::Loopback, workers, FaultPlan::none()),
        );
        let reference = run(
            &plan,
            &tr,
            config(true, TransportKind::Loopback, workers, FaultPlan::none()),
        );
        assert_eq!(
            fast.windows, reference.windows,
            "{workers} workers: fast path diverged from reference"
        );
    }
}

/// The wire must not care which execution engine feeds it: a TCP run
/// on the fast path equals a TCP run on the reference path.
#[test]
fn fast_path_matches_reference_over_tcp() {
    let seed = seeds()[0];
    let tr = trace(3, seed);
    let t = low_thresholds();
    let queries = vec![
        catalog::newly_opened_tcp_conns(&t),
        catalog::superspreader(&t),
    ];
    let plan = plan_for(PlanMode::Sonata, &queries, &tr);
    let fast = run(
        &plan,
        &tr,
        config(false, TransportKind::Tcp, 1, FaultPlan::none()),
    );
    let reference = run(
        &plan,
        &tr,
        config(true, TransportKind::Tcp, 1, FaultPlan::none()),
    );
    assert_eq!(
        fast.windows, reference.windows,
        "fast path over TCP diverged from reference over TCP"
    );
}

/// Fault injection is seeded per `(seed, window, site)` and must be
/// orthogonal to the execution engine: a faulted fast run equals a
/// faulted reference run, verdict for verdict, degraded marker for
/// degraded marker.
#[test]
fn faulted_runs_are_identical_on_both_paths() {
    let t = low_thresholds();
    let queries = vec![
        catalog::newly_opened_tcp_conns(&t),
        catalog::superspreader(&t),
    ];
    for seed in seeds() {
        let tr = trace(3, seed);
        // All-SP plans mirror every packet, so the egress actually
        // carries per-packet reports to fault.
        let plan = plan_for(PlanMode::AllSp, &queries, &tr);
        let faults = FaultPlan {
            seed,
            report: ReportFaults {
                drop_per_mille: 150,
                duplicate_per_mille: 150,
                delay_per_mille: 150,
                reorder_per_mille: 100,
                delay_packets: 6,
            },
            ..FaultPlan::default()
        };
        let fast = run(
            &plan,
            &tr,
            config(false, TransportKind::Loopback, 1, faults),
        );
        let reference = run(&plan, &tr, config(true, TransportKind::Loopback, 1, faults));
        assert!(
            fast.total_faults().get(FaultKind::ReportDrop) > 0,
            "seed {seed}: the plan must actually inject"
        );
        assert_eq!(
            fast.windows, reference.windows,
            "seed {seed}: faulted fast path diverged from faulted reference"
        );
    }
}

/// Payload-bearing queries (DNS tunneling, Zorro, DNS reflection) use
/// text values and multi-column group keys — the shapes that push the
/// stream fast path off its scalar `u64` reduce representation and
/// the switch toward forwarding unparsable work. Both must still
/// agree with the reference bit-for-bit.
#[test]
fn fast_path_matches_reference_for_payload_queries() {
    let t = Thresholds::default();
    let queries = vec![
        catalog::dns_tunneling(&t),
        catalog::zorro(&t),
        catalog::dns_reflection(&t),
    ];
    let tr = EvaluationTrace::generate(11, 2, 3_000, 0.05).trace;
    let plan = plan_for(PlanMode::MaxDp, &queries, &tr);
    let fast = run(
        &plan,
        &tr,
        config(false, TransportKind::Loopback, 1, FaultPlan::none()),
    );
    let reference = run(
        &plan,
        &tr,
        config(true, TransportKind::Loopback, 1, FaultPlan::none()),
    );
    assert_eq!(
        fast.windows, reference.windows,
        "payload-query fast path diverged from reference"
    );
}
