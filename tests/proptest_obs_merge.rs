//! Property tests for the metrics-snapshot join algebra.
//!
//! [`MetricsSnapshot::join`] is a pointwise least-upper-bound (max per
//! counter/gauge key, pointwise max of cumulative histogram buckets),
//! and [`FabricSnapshot::merge`] lifts it per source part. Both must
//! be **commutative**, **associative**, and **idempotent** — the CRDT
//! laws that let fabric peers gossip, duplicate, and reorder their
//! exports while every node converges on the same fabric view.
//!
//! Snapshots are generated the way real ones are made: a random
//! program of counter adds, gauge sets, and histogram observations
//! applied to a live registry, then snapshotted — so keys, label
//! sets, and bucket layouts are exactly what production emits.

use proptest::prelude::*;
use sonata::obs::{FabricSnapshot, MetricsSnapshot, ObsHandle};

/// One metric operation: which instrument, which name/label slot,
/// what value.
#[derive(Debug, Clone)]
enum Op {
    Count(usize, u64),
    Gauge(usize, u64),
    Observe(usize, u64),
}

const NAMES: [&str; 3] = ["sonata_test_a", "sonata_test_b", "sonata_test_c"];
const LABELS: [&[(&str, &str)]; 3] = [&[], &[("switch", "0")], &[("shard", "1")]];

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..9usize, 0..1_000u64).prop_map(|(k, v)| Op::Count(k, v)),
        (0..9usize, 0..1_000u64).prop_map(|(k, v)| Op::Gauge(k, v)),
        (0..9usize, 0..5_000_000_000u64).prop_map(|(k, v)| Op::Observe(k, v)),
    ]
}

/// Apply a program to a fresh handle and snapshot the result.
fn snapshot_of(ops: &[Op]) -> MetricsSnapshot {
    let obs = ObsHandle::with_capacity(16);
    for op in ops {
        let k = match op {
            Op::Count(k, _) | Op::Gauge(k, _) | Op::Observe(k, _) => *k,
        };
        let (name, labels) = (NAMES[k % 3], LABELS[(k / 3) % 3]);
        match op {
            Op::Count(_, v) => obs.counter(name, labels).add(*v),
            Op::Gauge(_, v) => obs.gauge(name, labels).set(*v),
            Op::Observe(_, v) => obs.histogram(name, labels).observe(*v),
        }
    }
    obs.snapshot()
}

fn joined(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.join(b);
    out
}

fn merged(a: &FabricSnapshot, b: &FabricSnapshot) -> FabricSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// Build a fabric view by routing three programs to named parts.
fn fabric_of(parts: &[(usize, Vec<Op>)]) -> FabricSnapshot {
    const SOURCES: [&str; 3] = ["switch-0", "switch-1", "collector"];
    let mut fab = FabricSnapshot::default();
    for (which, ops) in parts {
        fab.insert(SOURCES[which % 3], snapshot_of(ops));
    }
    fab
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snapshot_join_is_commutative(
        a in proptest::collection::vec(op_strategy(), 0..24),
        b in proptest::collection::vec(op_strategy(), 0..24),
    ) {
        let (a, b) = (snapshot_of(&a), snapshot_of(&b));
        prop_assert_eq!(joined(&a, &b), joined(&b, &a));
    }

    #[test]
    fn snapshot_join_is_associative(
        a in proptest::collection::vec(op_strategy(), 0..24),
        b in proptest::collection::vec(op_strategy(), 0..24),
        c in proptest::collection::vec(op_strategy(), 0..24),
    ) {
        let (a, b, c) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        prop_assert_eq!(joined(&joined(&a, &b), &c), joined(&a, &joined(&b, &c)));
    }

    #[test]
    fn snapshot_join_is_idempotent(
        a in proptest::collection::vec(op_strategy(), 0..24),
        b in proptest::collection::vec(op_strategy(), 0..24),
    ) {
        let (a, b) = (snapshot_of(&a), snapshot_of(&b));
        let ab = joined(&a, &b);
        // Joining either input (or itself) back in changes nothing.
        prop_assert_eq!(&joined(&ab, &a), &ab);
        prop_assert_eq!(&joined(&ab, &ab), &ab);
    }

    #[test]
    fn join_absorbs_an_older_snapshot_of_the_same_source(
        ops in proptest::collection::vec(op_strategy(), 1..24),
        cut in 0..24usize,
    ) {
        // Two snapshots of one monotone source relate pointwise as
        // long as the later one extends the earlier history with
        // counter/histogram ops (gauges are last-write, so a gauge
        // set in the prefix is still its max here).
        let cut = cut.min(ops.len());
        let monotone: Vec<Op> = ops
            .iter()
            .filter(|o| !matches!(o, Op::Gauge(..)))
            .cloned()
            .collect();
        let older = snapshot_of(&monotone[..cut.min(monotone.len())]);
        let newer = snapshot_of(&monotone);
        prop_assert_eq!(joined(&newer, &older), newer);
    }

    #[test]
    fn fabric_merge_is_commutative_associative_idempotent(
        a in proptest::collection::vec((0..3usize, proptest::collection::vec(op_strategy(), 0..12)), 0..4),
        b in proptest::collection::vec((0..3usize, proptest::collection::vec(op_strategy(), 0..12)), 0..4),
        c in proptest::collection::vec((0..3usize, proptest::collection::vec(op_strategy(), 0..12)), 0..4),
    ) {
        let (a, b, c) = (fabric_of(&a), fabric_of(&b), fabric_of(&c));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
        let ab = merged(&a, &b);
        prop_assert_eq!(&merged(&ab, &ab), &ab);
        prop_assert_eq!(&merged(&ab, &a), &ab);
    }
}
