//! Property-based laws for the approximate register layouts in
//! `sonata-sketch`.
//!
//! Three families of properties:
//!
//! * **Merge laws** — fabric-merge soundness rests on merged sketches
//!   behaving exactly like sketches of the union stream: count-min
//!   merge is commutative and associative, Bloom or-merge is
//!   commutative, associative, *and* idempotent, HLL register-max
//!   merge is commutative, associative, and idempotent.
//! * **Count-min guarantee** — over arbitrary key/weight
//!   distributions, every estimate is ≥ the true count
//!   (never-undercount is structural, not probabilistic), and the
//!   overshoot stays within `ε·‖stream‖₁` for at least a `1 − δ`
//!   fraction of keys.
//! * **Bloom admission** — an inserted key is *never* reported absent
//!   (zero false negatives), which is what makes first-touch
//!   admission safe for distinct semantics.

use proptest::prelude::*;
use sonata::pisa::StateLayout;
use sonata_sketch::{
    cm_depth_for, cm_width_for, BloomFilter, CmOp, CountMinSketch, ErrorBound, HyperLogLog,
    BLOOM_HASHES,
};
use std::collections::HashMap;

/// Arbitrary weighted streams: small key space to force collisions.
fn arb_stream() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..64, 1u64..1_000), 0..200)
}

fn cm_of(seed: u64, stream: &[(u64, u64)]) -> CountMinSketch {
    let mut cm = CountMinSketch::new(64, 4, seed, CmOp::Add);
    for &(k, v) in stream {
        cm.update(&[k], v);
    }
    cm
}

fn bloom_of(seed: u64, keys: &[u64]) -> BloomFilter {
    let mut b = BloomFilter::new(2048, BLOOM_HASHES, seed);
    for &k in keys {
        b.insert(&[k]);
    }
    b
}

fn hll_of(seed: u64, keys: &[u64]) -> HyperLogLog {
    let mut h = HyperLogLog::new(10, seed);
    for &k in keys {
        h.insert(&[k]);
    }
    h
}

proptest! {
    /// cm(a) ∪ cm(b) == cm(b) ∪ cm(a) == cm(a ++ b): the merged sketch
    /// is exactly the sketch of the concatenated stream, so merge
    /// order across switches cannot change any estimate.
    #[test]
    fn cm_merge_commutes_and_equals_union_stream(
        a in arb_stream(),
        b in arb_stream(),
        seed in any::<u64>(),
    ) {
        let (ca, cb) = (cm_of(seed, &a), cm_of(seed, &b));
        let mut ab = ca.clone();
        prop_assert!(ab.merge(&cb));
        let mut ba = cb.clone();
        prop_assert!(ba.merge(&ca));
        prop_assert_eq!(&ab, &ba);
        let mut union_stream = a;
        union_stream.extend(b.iter().copied());
        prop_assert_eq!(&ab, &cm_of(seed, &union_stream));
    }

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c) for count-min pointwise-add merge.
    #[test]
    fn cm_merge_is_associative(
        a in arb_stream(),
        b in arb_stream(),
        c in arb_stream(),
        seed in any::<u64>(),
    ) {
        let (ca, cb, cc) = (cm_of(seed, &a), cm_of(seed, &b), cm_of(seed, &c));
        let mut left = ca.clone();
        prop_assert!(left.merge(&cb));
        prop_assert!(left.merge(&cc));
        let mut bc = cb.clone();
        prop_assert!(bc.merge(&cc));
        let mut right = ca;
        prop_assert!(right.merge(&bc));
        prop_assert_eq!(left, right);
    }

    /// Max-mode count-min (the layout for `Agg::Max` reduces) obeys
    /// the same union-stream law under pointwise-max merge.
    #[test]
    fn cm_max_merge_equals_union_stream(
        a in arb_stream(),
        b in arb_stream(),
        seed in any::<u64>(),
    ) {
        let build = |s: &[(u64, u64)]| {
            let mut cm = CountMinSketch::new(64, 4, seed, CmOp::Max);
            for &(k, v) in s {
                cm.update(&[k], v);
            }
            cm
        };
        let mut merged = build(&a);
        prop_assert!(merged.merge(&build(&b)));
        let mut union_stream = a;
        union_stream.extend(b.iter().copied());
        prop_assert_eq!(merged, build(&union_stream));
    }

    /// Count-min never undercounts, and the overshoot honors the
    /// declared bound: at most a δ fraction of keys exceed ε·‖s‖₁.
    #[test]
    fn cm_error_within_declared_bound(
        stream in arb_stream(),
        seed in any::<u64>(),
    ) {
        let mut cm = CountMinSketch::new(cm_width_for(0.05), cm_depth_for(0.05), seed, CmOp::Add);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut mass = 0u64;
        for &(k, v) in &stream {
            cm.update(&[k], v);
            *truth.entry(k).or_default() += v;
            mass += v;
        }
        prop_assert_eq!(cm.mass(), mass);
        let ErrorBound { epsilon, delta } = cm.bound();
        let slack = (epsilon * mass as f64).ceil() as u64;
        let mut over_budget = 0usize;
        for (&k, &t) in &truth {
            let est = cm.estimate(&[k]);
            prop_assert!(est >= t, "count-min undercounted: {} < {}", est, t);
            if est - t > slack {
                over_budget += 1;
            }
        }
        // The guarantee is per-key with failure probability δ; allow
        // the δ fraction (rounded up) of keys to exceed the slack.
        let allowed = (delta * truth.len() as f64).ceil() as usize;
        prop_assert!(
            over_budget <= allowed,
            "{over_budget} of {} keys exceeded ε·mass slack {slack} (δ allows {allowed})",
            truth.len(),
        );
    }

    /// Bloom filters have zero false negatives, ever.
    #[test]
    fn bloom_has_zero_false_negatives(
        keys in proptest::collection::vec(any::<u64>(), 0..300),
        seed in any::<u64>(),
    ) {
        let b = bloom_of(seed, &keys);
        for &k in &keys {
            prop_assert!(b.contains(&[k]), "inserted key {k:#x} reported absent");
        }
    }

    /// Bloom or-merge is commutative, associative, and idempotent,
    /// and the merged filter contains every key of both sides.
    #[test]
    fn bloom_merge_laws(
        a in proptest::collection::vec(any::<u64>(), 0..100),
        b in proptest::collection::vec(any::<u64>(), 0..100),
        seed in any::<u64>(),
    ) {
        let (ba, bb) = (bloom_of(seed, &a), bloom_of(seed, &b));
        let mut ab = ba.clone();
        prop_assert!(ab.merge(&bb));
        let mut ba2 = bb.clone();
        prop_assert!(ba2.merge(&ba));
        prop_assert_eq!(&ab, &ba2);
        // Idempotent: merging a filter into itself changes nothing
        // (inserted-count bookkeeping aside, the bit array is fixed).
        let mut twice = ab.clone();
        prop_assert!(twice.merge(&ab));
        prop_assert_eq!(twice.words(), ab.words());
        for &k in a.iter().chain(&b) {
            prop_assert!(ab.contains(&[k]));
        }
    }

    /// HLL register-max merge is commutative and idempotent, and the
    /// merged estimator equals the estimator of the union stream.
    #[test]
    fn hll_merge_laws(
        a in proptest::collection::vec(any::<u64>(), 0..200),
        b in proptest::collection::vec(any::<u64>(), 0..200),
        seed in any::<u64>(),
    ) {
        let (ha, hb) = (hll_of(seed, &a), hll_of(seed, &b));
        let mut ab = ha.clone();
        prop_assert!(ab.merge(&hb));
        let mut ba = hb.clone();
        prop_assert!(ba.merge(&ha));
        prop_assert_eq!(&ab, &ba);
        let mut idem = ab.clone();
        prop_assert!(idem.merge(&ab));
        prop_assert_eq!(&idem, &ab);
        let mut union_keys = a;
        union_keys.extend(b.iter().copied());
        prop_assert_eq!(&ab, &hll_of(seed, &union_keys));
    }

    /// Shape/seed mismatches refuse to merge instead of silently
    /// corrupting state.
    #[test]
    fn mismatched_sketches_refuse_merge(seed in any::<u64>()) {
        let mut cm = CountMinSketch::new(64, 4, seed, CmOp::Add);
        prop_assert!(!cm.merge(&CountMinSketch::new(32, 4, seed, CmOp::Add)));
        prop_assert!(!cm.merge(&CountMinSketch::new(64, 4, seed.wrapping_add(1), CmOp::Add)));
        prop_assert!(!cm.merge(&CountMinSketch::new(64, 4, seed, CmOp::Max)));
        let mut bl = BloomFilter::new(2048, 4, seed);
        prop_assert!(!bl.merge(&BloomFilter::new(1024, 4, seed)));
        let mut h = HyperLogLog::new(10, seed);
        prop_assert!(!h.merge(&HyperLogLog::new(11, seed)));
    }
}

/// `StateLayout` round-trips through its wire tag and its CLI name.
#[test]
fn state_layout_tags_and_names_round_trip() {
    for layout in [
        StateLayout::Exact,
        StateLayout::CountMin,
        StateLayout::Bloom,
        StateLayout::Hll,
    ] {
        assert_eq!(StateLayout::from_tag(layout.tag()), Some(layout));
        assert_eq!(StateLayout::parse(layout.name()), Some(layout));
    }
    assert_eq!(StateLayout::from_tag(9), None);
    assert_eq!(StateLayout::parse("gibberish"), None);
}
