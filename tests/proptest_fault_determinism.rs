//! Property tests for the fault layer's determinism contract:
//!
//! 1. **worker-count independence** — every fault decision is a pure
//!    function of `(seed, window, site)`, never of scheduling, so the
//!    same plan + the same [`FaultPlan`] must produce *identical*
//!    window reports (alerts, tuple counts, degraded markers and all)
//!    on 1, 2, 4, and 8 workers;
//! 2. **rerun stability** — running the same faulted configuration
//!    twice gives the same report both times;
//! 3. **duplicate-suppression idempotence** — with every egress
//!    report duplicated, the emitter's (task, seq) suppression must
//!    restore the clean run's outputs exactly, and account for every
//!    injected duplicate.

use proptest::prelude::*;
use sonata::prelude::*;
use sonata::stream::testsupport::{low_thresholds, seeded_packets};

const WINDOW_NS: u64 = 3_000_000_000;

fn fixture(trace_seed: u64, windows: u64) -> (Trace, GlobalPlan) {
    let mut pkts = Vec::new();
    for w in 0..windows {
        let mut chunk = seeded_packets(trace_seed.wrapping_add(w), 250);
        for p in &mut chunk {
            p.ts_nanos += w * WINDOW_NS;
        }
        pkts.extend(chunk);
    }
    let tr = Trace::new(pkts);
    let queries = vec![
        catalog::newly_opened_tcp_conns(&low_thresholds()),
        catalog::superspreader(&low_thresholds()),
    ];
    let slices: Vec<&[sonata::packet::Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
    let cfg = PlannerConfig {
        mode: PlanMode::AllSp,
        ..Default::default()
    };
    let plan = plan_queries(&queries, &slices, &cfg).unwrap();
    (tr, plan)
}

fn run(plan: &GlobalPlan, tr: &Trace, faults: FaultPlan, workers: usize) -> TelemetryReport {
    let mut rt = Runtime::new(
        plan,
        RuntimeConfig {
            faults,
            workers,
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    rt.process_trace(tr).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn same_seed_and_plan_is_identical_across_worker_counts(
        fault_seed in 0u64..10_000,
        drop in 0u32..200,
        dup in 0u32..200,
        delay in 0u32..150,
        crash in 0u32..600,
        consecutive in 1u32..3,
    ) {
        let (tr, plan) = fixture(11, 2);
        let faults = FaultPlan {
            seed: fault_seed,
            report: ReportFaults {
                drop_per_mille: drop,
                duplicate_per_mille: dup,
                delay_per_mille: delay,
                ..ReportFaults::default()
            },
            worker: WorkerFaults {
                crash_per_mille: crash,
                consecutive_crashes: consecutive,
                ..WorkerFaults::default()
            },
            ..FaultPlan::default()
        };
        let one = run(&plan, &tr, faults, 1);
        for workers in [2usize, 4, 8] {
            let many = run(&plan, &tr, faults, workers);
            // The whole per-window record — alerts, tuple accounting,
            // update latency, and the degraded marker with its exact
            // per-kind fault counts — must match the 1-worker run.
            prop_assert_eq!(
                &one.windows, &many.windows,
                "fault seed {} diverges at {} workers", fault_seed, workers
            );
        }
        // Rerun stability: the same configuration replays bit-identically.
        let again = run(&plan, &tr, faults, 4);
        prop_assert_eq!(&one.windows, &again.windows);
    }

    #[test]
    fn duplicate_suppression_is_idempotent(fault_seed in 0u64..10_000) {
        let (tr, plan) = fixture(13, 2);
        let clean = run(&plan, &tr, FaultPlan::none(), 1);
        // Duplicate *every* egress report: the emitter's (task, seq)
        // suppression must make the run output-identical to clean.
        let faults = FaultPlan {
            seed: fault_seed,
            report: ReportFaults {
                duplicate_per_mille: 1000,
                ..ReportFaults::default()
            },
            ..FaultPlan::default()
        };
        let doubled = run(&plan, &tr, faults, 1);
        prop_assert_eq!(clean.windows.len(), doubled.windows.len());
        for (c, d) in clean.windows.iter().zip(&doubled.windows) {
            prop_assert_eq!(&c.alerts, &d.alerts, "window {}", c.window);
            prop_assert_eq!(c.tuples_to_sp, d.tuples_to_sp, "window {}", c.window);
            prop_assert_eq!(
                &c.tuples_per_query, &d.tuples_per_query,
                "window {}", c.window
            );
            let marker = d.degraded.as_ref().expect("duplicates must mark the window");
            prop_assert_eq!(
                marker.duplicates_suppressed,
                marker.injected.get(FaultKind::ReportDuplicate),
                "window {}: suppression must account for every duplicate",
                c.window
            );
            prop_assert!(marker.duplicates_suppressed > 0, "window {}", c.window);
        }
    }
}
