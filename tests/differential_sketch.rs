//! Differential suite for the approximate register layouts
//! (`sonata-sketch`).
//!
//! Two contracts:
//!
//! * **The knob is off-path.** `RuntimeConfig::sketch` with
//!   `StateLayout::Exact` — even with every other sketch parameter set
//!   to something exotic — produces *bit-identical* `WindowReport`s to
//!   a default run, across the catalog, seeds, shard counts, and
//!   transports. Exact runs carry no error bounds at all.
//! * **Approximation stays inside its advertised bound.** Under
//!   `StateLayout::CountMin`, every reported aggregate is an
//!   overestimate of the exact run's value by at most the declared
//!   `⌈ε·mass⌉` slack (ε and mass read off the window's
//!   [`ErrorBoundReport`]), alert key sets are supersets of the exact
//!   run's, and spurious alerts can only sit within one slack of the
//!   threshold.
//!
//! Seeds come from `SONATA_SKETCH_SEEDS` (comma-separated, default
//! `7,23,101`).

use sonata::prelude::*;
use sonata::query::Query;
use sonata::stream::testsupport::{low_thresholds, seeded_packets};
use std::collections::BTreeMap;

const WINDOW_NS: u64 = 3_000_000_000;

fn seeds() -> Vec<u64> {
    std::env::var("SONATA_SKETCH_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![7, 23, 101])
}

/// A deterministic multi-window trace: one `testsupport` mixed window
/// per 3-second slot, re-seeded per slot so windows differ.
fn trace(windows: u64, seed: u64) -> Trace {
    let mut pkts = Vec::new();
    for w in 0..windows {
        let mut chunk = seeded_packets(seed.wrapping_add(w), 300);
        for p in &mut chunk {
            p.ts_nanos += w * WINDOW_NS;
        }
        pkts.extend(chunk);
    }
    Trace::new(pkts)
}

fn plan_for(mode: PlanMode, queries: &[Query], tr: &Trace) -> GlobalPlan {
    let windows: Vec<&[sonata::packet::Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
    let cfg = PlannerConfig {
        mode,
        cost: sonata::planner::costs::CostConfig {
            levels: Some(vec![8, 32]),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    plan_queries(queries, &windows, &cfg).unwrap()
}

/// An aggressively non-default sketch config whose layout family is
/// still `Exact`: every other field must be dead weight.
fn exotic_exact() -> SketchConfig {
    SketchConfig {
        layout: StateLayout::Exact,
        seed: 0xDEAD_BEEF_0BAD_F00D,
        cm_width: 977,
        cm_depth: 7,
        bloom_bits: 12_345,
        bloom_hashes: 9,
        hll_precision: 14,
    }
}

fn run(plan: &GlobalPlan, tr: &Trace, cfg: RuntimeConfig) -> TelemetryReport {
    let mut rt = Runtime::new(plan, cfg).unwrap();
    rt.process_trace(tr).unwrap()
}

fn run_fabric(plan: &GlobalPlan, tr: &Trace, cfg: RuntimeConfig) -> TelemetryReport {
    let mut fab = Fabric::new(plan, cfg).unwrap();
    fab.process_trace(tr).unwrap()
}

/// Alert tuples of one query keyed by group key (every catalog alert
/// shape is `(key, aggregate)`): key = all columns but the last,
/// value = the trailing aggregate.
fn alert_map(report: &WindowReport, q: QueryId) -> BTreeMap<Vec<sonata::packet::Value>, u64> {
    let mut out = BTreeMap::new();
    for (query, tuples) in &report.alerts {
        if *query != q {
            continue;
        }
        for t in tuples {
            let vals = t.values();
            let (key, agg) = vals.split_at(vals.len() - 1);
            let v = match &agg[0] {
                sonata::packet::Value::U64(v) => *v,
                other => panic!("trailing aggregate is numeric, got {other:?}"),
            };
            out.insert(key.to_vec(), v);
        }
    }
    out
}

/// The off-path contract: an explicit `Exact` sketch config — exotic
/// parameters and all — is a byte-level no-op across the catalog,
/// seeds, worker counts, and both transports, and no window carries
/// error bounds.
#[test]
fn exact_layout_knob_is_bit_identical() {
    let t = low_thresholds();
    let queries = vec![
        catalog::newly_opened_tcp_conns(&t),
        catalog::superspreader(&t),
    ];
    for seed in seeds() {
        let tr = trace(3, seed);
        let plan = plan_for(PlanMode::Sonata, &queries, &tr);
        for workers in [1usize, 2, 4, 8] {
            let baseline = run(
                &plan,
                &tr,
                RuntimeConfig {
                    workers,
                    ..RuntimeConfig::default()
                },
            );
            let knobbed = run(
                &plan,
                &tr,
                RuntimeConfig {
                    workers,
                    sketch: exotic_exact(),
                    ..RuntimeConfig::default()
                },
            );
            assert_eq!(
                baseline.windows, knobbed.windows,
                "seed {seed}, {workers} workers: exact sketch knob must be a no-op"
            );
            assert!(
                knobbed.windows.iter().all(|w| w.error_bounds.is_empty()),
                "seed {seed}: exact runs must not report error bounds"
            );
        }
        let tcp_baseline = run(
            &plan,
            &tr,
            RuntimeConfig {
                transport: TransportKind::Tcp,
                ..RuntimeConfig::default()
            },
        );
        let tcp_knobbed = run(
            &plan,
            &tr,
            RuntimeConfig {
                transport: TransportKind::Tcp,
                sketch: exotic_exact(),
                ..RuntimeConfig::default()
            },
        );
        assert_eq!(
            tcp_baseline.windows, tcp_knobbed.windows,
            "seed {seed}: exact sketch knob must be a no-op over TCP"
        );
    }
}

/// The full catalog loads and runs under every sketch family: layouts
/// are per-register semantics-gated (distinct → Bloom/HLL, cm-capable
/// reduce → count-min), so arbitrary query shapes must never wedge a
/// load or a window.
#[test]
fn every_family_runs_the_catalog() {
    let tr = trace(2, seeds()[0]);
    let queries = catalog::all(&Thresholds::default());
    let plan = plan_for(PlanMode::MaxDp, &queries, &tr);
    for layout in [StateLayout::CountMin, StateLayout::Bloom, StateLayout::Hll] {
        let report = run(
            &plan,
            &tr,
            RuntimeConfig {
                sketch: SketchConfig {
                    layout,
                    ..SketchConfig::default()
                },
                ..RuntimeConfig::default()
            },
        );
        assert_eq!(report.windows.len(), 2, "{layout:?}: windows completed");
        for w in &report.windows {
            for b in &w.error_bounds {
                assert!(
                    b.epsilon > 0.0 && b.epsilon < 1.0,
                    "{layout:?}: ε in (0,1), got {}",
                    b.epsilon
                );
                assert!((0.0..1.0).contains(&b.delta), "{layout:?}: δ in [0,1)");
            }
        }
    }
}

/// The accuracy contract for count-min: per window and per query,
/// sketch aggregates only ever overestimate, by at most the window's
/// declared `⌈ε·mass⌉`; alert key sets are supersets of exact; and
/// any extra (spurious) alert's value stays within one slack of the
/// alert threshold.
#[test]
fn count_min_alerts_overestimate_within_declared_bound() {
    let t = low_thresholds();
    let queries = vec![catalog::newly_opened_tcp_conns(&t)];
    let qid = queries[0].id;
    let threshold = t.new_tcp;
    for seed in seeds() {
        let tr = trace(3, seed);
        let plan = plan_for(PlanMode::MaxDp, &queries, &tr);
        let exact = run(&plan, &tr, RuntimeConfig::default());
        let sketch = run(
            &plan,
            &tr,
            RuntimeConfig {
                sketch: SketchConfig {
                    layout: StateLayout::CountMin,
                    ..SketchConfig::default()
                },
                ..RuntimeConfig::default()
            },
        );
        assert_eq!(exact.windows.len(), sketch.windows.len());
        let mut bounded_windows = 0;
        for (we, ws) in exact.windows.iter().zip(&sketch.windows) {
            let Some(bound) = ws.error_bounds.iter().find(|b| b.query == qid) else {
                // A window whose switch partition held no sketch
                // register (e.g. the level ran all-SP) is exact.
                assert_eq!(we.alerts, ws.alerts, "seed {seed} window {}", we.window);
                continue;
            };
            bounded_windows += 1;
            assert!(!bound.saturated, "seed {seed}: test trace fits capacity");
            let slack = (bound.epsilon * bound.mass as f64).ceil() as u64;
            let ea = alert_map(we, qid);
            let sa = alert_map(ws, qid);
            for (key, &true_v) in &ea {
                let est = *sa.get(key).unwrap_or_else(|| {
                    panic!(
                        "seed {seed} window {}: exact alert {key:?} missing under count-min",
                        we.window
                    )
                });
                assert!(
                    est >= true_v,
                    "seed {seed} window {}: count-min undercounted {key:?}: {est} < {true_v}",
                    we.window
                );
                assert!(
                    est - true_v <= slack,
                    "seed {seed} window {}: overshoot {} exceeds ⌈ε·mass⌉ = {slack}",
                    we.window,
                    est - true_v
                );
            }
            for (key, &est) in &sa {
                if !ea.contains_key(key) {
                    // Spurious alert: its true value is under the
                    // threshold, so the estimate can exceed the
                    // threshold by at most the slack.
                    assert!(
                        est <= threshold + slack,
                        "seed {seed} window {}: spurious alert {key:?} at {est} \
                         exceeds threshold {threshold} + slack {slack}",
                        we.window
                    );
                }
            }
        }
        assert!(
            bounded_windows > 0,
            "seed {seed}: at least one window must exercise a count-min register"
        );
    }
}

/// Bloom admission for distinct queries: membership has zero false
/// negatives, so a Bloom false positive can only *suppress* a
/// first-touch — sketch distinct counts never exceed exact ones, and
/// sketch alerts are a subset of exact alerts with per-key values
/// bounded above by the exact value.
#[test]
fn bloom_distinct_never_overcounts() {
    let t = low_thresholds();
    let queries = vec![catalog::superspreader(&t)];
    let qid = queries[0].id;
    for seed in seeds() {
        let tr = trace(3, seed);
        let plan = plan_for(PlanMode::MaxDp, &queries, &tr);
        let exact = run(&plan, &tr, RuntimeConfig::default());
        let sketch = run(
            &plan,
            &tr,
            RuntimeConfig {
                sketch: SketchConfig {
                    layout: StateLayout::Bloom,
                    ..SketchConfig::default()
                },
                ..RuntimeConfig::default()
            },
        );
        for (we, ws) in exact.windows.iter().zip(&sketch.windows) {
            let ea = alert_map(we, qid);
            let sa = alert_map(ws, qid);
            for (key, &est) in &sa {
                let &true_v = ea.get(key).unwrap_or_else(|| {
                    panic!(
                        "seed {seed} window {}: Bloom distinct invented alert {key:?}",
                        we.window
                    )
                });
                assert!(
                    est <= true_v,
                    "seed {seed} window {}: Bloom distinct overcounted {key:?}",
                    we.window
                );
            }
        }
    }
}

/// Sketch layouts survive the fabric: an exact-knob fabric run stays
/// bit-identical to the default fabric run, and a count-min fabric
/// run folds per-switch bounds into the merged report (masses add
/// across switches, ε is preserved).
#[test]
fn fabric_folds_bounds_across_switches() {
    let t = low_thresholds();
    let queries = vec![catalog::newly_opened_tcp_conns(&t)];
    let qid = queries[0].id;
    let seed = seeds()[0];
    let tr = trace(3, seed);
    let plan = plan_for(PlanMode::MaxDp, &queries, &tr);
    for (n, m) in [(2usize, 1usize), (2, 2)] {
        let base = run_fabric(
            &plan,
            &tr,
            RuntimeConfig {
                topology: Some(TopologyConfig::new(n, m)),
                ..RuntimeConfig::default()
            },
        );
        let knobbed = run_fabric(
            &plan,
            &tr,
            RuntimeConfig {
                topology: Some(TopologyConfig::new(n, m)),
                sketch: exotic_exact(),
                ..RuntimeConfig::default()
            },
        );
        assert_eq!(
            base.windows, knobbed.windows,
            "{n}x{m}: exact sketch knob must be a no-op on the fabric"
        );
        let single = run(
            &plan,
            &tr,
            RuntimeConfig {
                sketch: SketchConfig {
                    layout: StateLayout::CountMin,
                    ..SketchConfig::default()
                },
                ..RuntimeConfig::default()
            },
        );
        let fabric = run_fabric(
            &plan,
            &tr,
            RuntimeConfig {
                topology: Some(TopologyConfig::new(n, m)),
                sketch: SketchConfig {
                    layout: StateLayout::CountMin,
                    ..SketchConfig::default()
                },
                ..RuntimeConfig::default()
            },
        );
        for (sw, fw) in single.windows.iter().zip(&fabric.windows) {
            let sb = sw.error_bounds.iter().find(|b| b.query == qid);
            let fb = fw.error_bounds.iter().find(|b| b.query == qid);
            match (sb, fb) {
                (Some(sb), Some(fb)) => {
                    // Same plan ⇒ same declared shape ⇒ same ε/δ; the
                    // union stream is split across switches, so the
                    // folded mass equals the single-switch mass.
                    assert_eq!(sb.epsilon, fb.epsilon, "{n}x{m} window {}", sw.window);
                    assert_eq!(sb.delta, fb.delta, "{n}x{m} window {}", sw.window);
                    assert_eq!(sb.mass, fb.mass, "{n}x{m} window {}", sw.window);
                }
                (None, None) => {}
                other => panic!(
                    "{n}x{m} window {}: bound presence diverged between \
                     single-switch and fabric: {other:?}",
                    sw.window
                ),
            }
        }
    }
}
