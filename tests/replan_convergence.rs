//! Convergence suite for the closed replanning loop: plan on quiet
//! traffic, run on a drifted workload, and assert the whole
//! trigger → re-solve → epoch-bumped swap → recovery arc.
//!
//! Per [`DriftScenario`] (diurnal shift, flash crowd, attack onset):
//!
//! * the drift monitor fires **exactly one** trigger per sustained
//!   breach, and the runtime performs **exactly one** swap for it,
//!   `swap_delay` windows after the trigger;
//! * every window executes under exactly one epoch — 0 before the
//!   swap boundary, 1 from it — and the run's divergence returns
//!   below [`DriftConfig::threshold`] within `swap_delay + 1` windows
//!   of the trigger (the first post-swap window is already reconciled
//!   against the re-costed budget);
//! * windows are **bit-identical to single-plan reference runs**:
//!   pre-swap windows match a replan-disabled run of the original
//!   plan, post-swap windows match a fresh runtime built from the
//!   re-solved plan and driven from the epoch boundary;
//! * the same arc reproduces across 1×1 and 2×2 topologies and across
//!   Loopback and Tcp transports.

use sonata::obs::{EventKind, ObsHandle};
use sonata::prelude::*;
use sonata::query::{Query, QueryId};
use std::collections::BTreeMap;

const WINDOW_MS: u64 = 3_000;
const WINDOWS: u32 = 8;
const ONSET: u32 = 2;
const SWAP_DELAY: u64 = 2;
const HISTORY: usize = 4;

fn queries() -> Vec<Query> {
    let t = Thresholds::default();
    vec![
        catalog::newly_opened_tcp_conns(&t),
        catalog::superspreader(&t),
        catalog::ddos(&t),
    ]
}

/// The three drift fixtures. The diurnal ramp plateaus before the
/// swap lands so the re-solved plan has a stationary distribution to
/// converge on.
fn scenarios() -> Vec<DriftScenario> {
    vec![
        DriftScenario::Diurnal {
            peak_multiplier: 5.0,
            ramp_windows: 2,
        },
        DriftScenario::flash_crowd(),
        DriftScenario::attack_onset(),
    ]
}

fn workload(scenario: DriftScenario) -> DriftWorkload {
    DriftWorkload {
        onset_window: ONSET,
        packets_per_window: 4_000,
        ..DriftWorkload::new(scenario, WINDOWS, WINDOW_MS)
    }
}

/// Plan + matching replanner from the workload's quiet trace.
fn plan_and_replanner(wl: &DriftWorkload, seed: u64) -> (GlobalPlan, Replanner) {
    let queries = queries();
    let training = wl.training(seed);
    let windows: Vec<&[sonata::packet::Packet]> =
        training.windows(WINDOW_MS).map(|(_, p)| p).collect();
    let cfg = PlannerConfig::default();
    let plan = plan_queries(&queries, &windows, &cfg).unwrap();
    let rp = Replanner::from_training(&queries, &windows, cfg, HISTORY).unwrap();
    (plan, rp)
}

fn replan_cfg(rp: Replanner) -> ReplanConfig {
    ReplanConfig {
        replanner: Some(rp),
        swap_delay: SWAP_DELAY,
        ..ReplanConfig::default()
    }
}

fn triggers(obs: &ObsHandle) -> Vec<u64> {
    obs.events()
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::ReplanTrigger { window, .. } => Some(*window),
            _ => None,
        })
        .collect()
}

fn swaps(obs: &ObsHandle) -> Vec<(u64, u64)> {
    obs.events()
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::PlanSwap { window, epoch, .. } => Some((*window, *epoch)),
            _ => None,
        })
        .collect()
}

/// Deterministic-field equality between two windows: everything but
/// the wall-clock latency waterfall (which differs across runs by
/// construction).
fn assert_windows_identical(a: &WindowReport, b: &WindowReport, ctx: &str) {
    assert_eq!(a.window, b.window, "{ctx}");
    assert_eq!(a.epoch, b.epoch, "{ctx}: window {}", a.window);
    assert_eq!(a.packets, b.packets, "{ctx}: window {}", a.window);
    assert_eq!(a.tuples_to_sp, b.tuples_to_sp, "{ctx}: window {}", a.window);
    assert_eq!(a.shunts, b.shunts, "{ctx}: window {}", a.window);
    assert_eq!(
        a.shunts_per_query, b.shunts_per_query,
        "{ctx}: window {}",
        a.window
    );
    assert_eq!(
        a.tuples_per_query, b.tuples_per_query,
        "{ctx}: window {}",
        a.window
    );
    assert_eq!(a.alerts, b.alerts, "{ctx}: window {}", a.window);
    assert_eq!(
        a.filter_entries_written, b.filter_entries_written,
        "{ctx}: window {}",
        a.window
    );
    assert_eq!(
        a.update_latency, b.update_latency,
        "{ctx}: window {}",
        a.window
    );
    assert_eq!(
        a.replan_triggered, b.replan_triggered,
        "{ctx}: window {}",
        a.window
    );
    assert_eq!(a.degraded, b.degraded, "{ctx}: window {}", a.window);
}

/// The per-query *channel* load of a window — batch tuples plus
/// collision shunts — which is exactly what the runtime feeds its
/// replanner's observation ring.
fn channel_loads(w: &WindowReport) -> Vec<(QueryId, u64)> {
    let mut loads: BTreeMap<QueryId, u64> = w.tuples_per_query.iter().copied().collect();
    for (q, n) in &w.shunts_per_query {
        *loads.entry(*q).or_default() += n;
    }
    loads.into_iter().collect()
}

/// Replay the loop's deterministic re-solve outside the runtime: feed
/// the run's own observed channel loads up to and including the
/// trigger window into a fresh replanner (the loop spawns its planner
/// thread with exactly that ring) and re-solve against the committed
/// plan.
fn resolve_reference_plan(
    wl: &DriftWorkload,
    seed: u64,
    plan: &GlobalPlan,
    report: &TelemetryReport,
    trigger_window: u64,
) -> GlobalPlan {
    let (_, mut rp) = plan_and_replanner(wl, seed);
    for w in &report.windows {
        if w.window > trigger_window {
            break;
        }
        rp.observe_window(&channel_loads(w));
    }
    let out = rp.replan(plan).unwrap();
    out.plan
}

/// The full arc on a 1×1 runtime, per scenario.
#[test]
fn triggered_replan_swaps_once_and_recovers_divergence() {
    for scenario in scenarios() {
        let name = scenario.name();
        let seed = 23;
        let wl = workload(scenario);
        let (plan, rp) = plan_and_replanner(&wl, seed);
        assert_eq!(plan.epoch, 0);
        let drifted = wl.generate(seed);

        let obs = ObsHandle::enabled();
        let mut rt = Runtime::new(
            &plan,
            RuntimeConfig {
                obs: obs.clone(),
                replan: replan_cfg(rp),
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let report = rt.process_trace(&drifted).unwrap();
        assert_eq!(report.windows.len(), WINDOWS as usize, "{name}");

        // Exactly one trigger for the sustained breach, exactly one
        // swap for the trigger, swap_delay windows later.
        let trig = triggers(&obs);
        assert_eq!(trig.len(), 1, "{name}: one sustained breach, one trigger");
        let sw = swaps(&obs);
        assert_eq!(sw.len(), 1, "{name}: one trigger, one swap");
        let (swap_window, epoch) = sw[0];
        assert_eq!(swap_window, trig[0] + SWAP_DELAY, "{name}");
        assert_eq!(epoch, 1, "{name}: first re-solve bumps epoch to 1");
        assert_eq!(rt.epoch(), 1, "{name}: endpoints carry the new epoch");

        // Every window under exactly one epoch, 0 → 1 at the boundary.
        for w in &report.windows {
            let expect = if w.window < swap_window { 0 } else { 1 };
            assert_eq!(w.epoch, expect, "{name}: window {}", w.window);
        }

        // Recovery: no re-trigger after the swap, and the live
        // divergence gauge (per-mille) is back below the threshold by
        // the end of the run — within swap_delay + 1 windows of the
        // trigger, since the first post-swap window already reconciles
        // against the re-costed budget.
        assert!(
            report
                .windows
                .iter()
                .filter(|w| w.window >= swap_window)
                .all(|w| !w.replan_triggered),
            "{name}: swapped plan must absorb the drift"
        );
        let gauge = report.metrics.gauge("sonata_plan_divergence").unwrap();
        let threshold_mille = (DriftConfig::default().threshold * 1000.0) as u64;
        assert!(
            gauge < threshold_mille,
            "{name}: final divergence {gauge}‰ not below {threshold_mille}‰"
        );

        // Pre-swap windows are bit-identical to a replan-disabled run
        // of the original plan over the same drifted trace.
        let pre_reference = Runtime::new(
            &plan,
            RuntimeConfig {
                obs: ObsHandle::enabled(),
                ..RuntimeConfig::default()
            },
        )
        .unwrap()
        .process_trace(&drifted)
        .unwrap();
        for (a, b) in report
            .windows
            .iter()
            .zip(&pre_reference.windows)
            .take_while(|(a, _)| a.window < swap_window)
        {
            assert_windows_identical(a, b, &format!("{name}: pre-swap"));
        }

        // Post-swap windows are bit-identical to a fresh runtime built
        // from the re-solved plan and driven from the epoch boundary.
        let new_plan = resolve_reference_plan(&wl, seed, &plan, &report, trig[0]);
        assert_eq!(new_plan.epoch, 1, "{name}");
        let mut post_rt = Runtime::new(
            &new_plan,
            RuntimeConfig {
                obs: ObsHandle::enabled(),
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        for (w, packets) in drifted.windows(WINDOW_MS) {
            if w < swap_window {
                continue;
            }
            let reference = post_rt.process_window(w, packets).unwrap();
            let swapped = report
                .windows
                .iter()
                .find(|r| r.window == w)
                .expect("window present");
            assert_windows_identical(swapped, &reference, &format!("{name}: post-swap"));
        }
    }
}

/// The warm-started MILP path swaps too, and reports its solver wall
/// time on the swap event.
#[test]
fn ilp_replan_path_swaps_with_solver_stats() {
    let seed = 29;
    let wl = workload(DriftScenario::attack_onset());
    let queries = queries();
    let training = wl.training(seed);
    let windows: Vec<&[sonata::packet::Packet]> =
        training.windows(WINDOW_MS).map(|(_, p)| p).collect();
    // Two refinement levels keep the MILP instance test-sized.
    let cfg = PlannerConfig {
        cost: sonata::planner::costs::CostConfig {
            levels: Some(vec![8, 32]),
            ..Default::default()
        },
        ..Default::default()
    };
    let plan = plan_queries(&queries, &windows, &cfg).unwrap();
    let rp = Replanner::from_training(&queries, &windows, cfg, HISTORY).unwrap();

    let obs = ObsHandle::enabled();
    let mut rt = Runtime::new(
        &plan,
        RuntimeConfig {
            obs: obs.clone(),
            replan: ReplanConfig {
                replanner: Some(rp),
                swap_delay: SWAP_DELAY,
                use_ilp: true,
                delta: Some(64),
            },
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    let report = rt.process_trace(&wl.generate(seed)).unwrap();

    let sw: Vec<_> = obs
        .events()
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::PlanSwap {
                window,
                epoch,
                solve_wall_ns,
                ..
            } => Some((*window, *epoch, *solve_wall_ns)),
            _ => None,
        })
        .collect();
    assert_eq!(sw.len(), 1, "one MILP swap");
    let (swap_window, epoch, solve_wall_ns) = sw[0];
    assert_eq!(epoch, 1);
    assert!(
        solve_wall_ns > 0,
        "the planner thread's wall time is on record"
    );
    assert!(
        report
            .windows
            .iter()
            .all(|w| (w.epoch == 1) == (w.window >= swap_window)),
        "epoch flips exactly at the swap boundary"
    );
    assert_eq!(
        report.metrics.counter("sonata_runtime_plan_swaps_total"),
        Some(1)
    );
}

/// The arc is transport-independent: the same drifted run over Tcp
/// swaps at the same boundary and produces the same windows as over
/// Loopback.
#[test]
fn replan_arc_is_identical_across_loopback_and_tcp() {
    let seed = 31;
    let wl = workload(DriftScenario::attack_onset());
    let (plan, rp) = plan_and_replanner(&wl, seed);
    let drifted = wl.generate(seed);

    let mut runs = Vec::new();
    for transport in [TransportKind::Loopback, TransportKind::Tcp] {
        let obs = ObsHandle::enabled();
        let mut rt = Runtime::new(
            &plan,
            RuntimeConfig {
                obs: obs.clone(),
                transport,
                replan: replan_cfg(rp.clone()),
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let report = rt.process_trace(&drifted).unwrap();
        runs.push((report, swaps(&obs)));
    }
    let (loopback, loopback_swaps) = &runs[0];
    let (tcp, tcp_swaps) = &runs[1];
    assert_eq!(loopback_swaps, tcp_swaps, "same swap, same boundary");
    assert_eq!(loopback_swaps.len(), 1);
    assert_eq!(loopback.windows.len(), tcp.windows.len());
    for (a, b) in loopback.windows.iter().zip(&tcp.windows) {
        assert_windows_identical(a, b, "loopback vs tcp");
    }
}

/// The arc reproduces fabric-wide: a 2×2 fabric over the same drifted
/// trace swaps at the same boundary as the 1×1 runtime, no merged
/// window ever mixes epochs, and the fabric's windows are
/// bit-identical to single-plan reference runs *of the same fabric*
/// (collision shunts — and with them the observed channel loads that
/// seed the re-solve — are switch-local physics, so the cross-topology
/// contract is the swap boundary and recovery, not raw window bytes;
/// see `differential_fabric.rs`).
#[test]
fn fabric_replan_swaps_at_same_boundary_as_single_runtime() {
    let seed = 37;
    let wl = workload(DriftScenario::attack_onset());
    let (plan, rp) = plan_and_replanner(&wl, seed);
    let drifted = wl.generate(seed);

    let single_obs = ObsHandle::enabled();
    Runtime::new(
        &plan,
        RuntimeConfig {
            obs: single_obs.clone(),
            replan: replan_cfg(rp.clone()),
            ..RuntimeConfig::default()
        },
    )
    .unwrap()
    .process_trace(&drifted)
    .unwrap();

    let fabric_cfg = |obs: ObsHandle, replan: ReplanConfig| RuntimeConfig {
        obs,
        topology: Some(TopologyConfig::new(2, 2)),
        replan,
        ..RuntimeConfig::default()
    };
    let fabric_obs = ObsHandle::enabled();
    let mut fab = Fabric::new(&plan, fabric_cfg(fabric_obs.clone(), replan_cfg(rp))).unwrap();
    let fabric = fab.process_trace(&drifted).unwrap();

    // Cross-topology: the drift is in the merged per-query loads, so
    // the 1×1 and 2×2 runs fire and swap at the same boundary.
    assert_eq!(swaps(&single_obs), swaps(&fabric_obs), "same swap boundary");
    assert_eq!(swaps(&fabric_obs).len(), 1);
    let (swap_window, epoch) = swaps(&fabric_obs)[0];
    assert_eq!(epoch, 1);
    assert_eq!(fab.epoch(), 1);
    for w in &fabric.windows {
        let expect = if w.window < swap_window { 0 } else { 1 };
        assert_eq!(w.epoch, expect, "no merged window mixes epochs");
    }
    assert!(
        fabric
            .windows
            .iter()
            .filter(|w| w.window >= swap_window)
            .all(|w| !w.replan_triggered),
        "the fabric's swapped plan absorbs the drift"
    );

    // Pre-swap windows are bit-identical to a replan-disabled run of
    // the same 2×2 fabric.
    let pre_reference = Fabric::new(
        &plan,
        fabric_cfg(ObsHandle::enabled(), ReplanConfig::default()),
    )
    .unwrap()
    .process_trace(&drifted)
    .unwrap();
    for (a, b) in fabric
        .windows
        .iter()
        .zip(&pre_reference.windows)
        .take_while(|(a, _)| a.window < swap_window)
    {
        assert_windows_identical(a, b, "2×2 pre-swap");
    }

    // Post-swap windows are bit-identical to a fresh 2×2 fabric built
    // from the re-solved plan (reconstructed from the fabric's own
    // observed channel loads) and driven from the epoch boundary.
    let trigger_window = swap_window - SWAP_DELAY;
    let new_plan = resolve_reference_plan(&wl, seed, &plan, &fabric, trigger_window);
    assert_eq!(new_plan.epoch, 1);
    let mut post_fab = Fabric::new(
        &new_plan,
        fabric_cfg(ObsHandle::enabled(), ReplanConfig::default()),
    )
    .unwrap();
    for (w, packets) in drifted.windows(WINDOW_MS) {
        if w < swap_window {
            continue;
        }
        let parts = post_fab.partition_window(packets);
        let reference = post_fab.process_window(w, &parts).unwrap();
        let swapped = fabric
            .windows
            .iter()
            .find(|r| r.window == w)
            .expect("window present");
        assert_windows_identical(swapped, &reference, "2×2 post-swap");
    }
}

/// A greedy re-solve with an unchanged observation ring (no drift)
/// never fires and never swaps: the loop is inert on the traffic the
/// plan was built for, and the run is bit-identical to a
/// replan-disabled one.
#[test]
fn quiet_run_never_swaps_and_matches_replan_disabled_run() {
    let seed = 41;
    let wl = workload(DriftScenario::attack_onset());
    let (plan, rp) = plan_and_replanner(&wl, seed);
    let quiet = wl.training(seed);

    let obs = ObsHandle::enabled();
    let with_loop = Runtime::new(
        &plan,
        RuntimeConfig {
            obs: obs.clone(),
            replan: replan_cfg(rp),
            ..RuntimeConfig::default()
        },
    )
    .unwrap()
    .process_trace(&quiet)
    .unwrap();
    assert!(triggers(&obs).is_empty(), "no drift, no trigger");
    assert!(swaps(&obs).is_empty(), "no trigger, no swap");
    assert!(with_loop.windows.iter().all(|w| w.epoch == 0));

    let without_loop = Runtime::new(
        &plan,
        RuntimeConfig {
            obs: ObsHandle::enabled(),
            ..RuntimeConfig::default()
        },
    )
    .unwrap()
    .process_trace(&quiet)
    .unwrap();
    for (a, b) in with_loop.windows.iter().zip(&without_loop.windows) {
        assert_windows_identical(a, b, "armed-but-idle loop");
    }
}
