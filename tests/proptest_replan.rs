//! Property tests for the warm-started, churn-bounded re-solve
//! (DESIGN.md §16): across random query sets, thresholds, traffic and
//! observed-load perturbations,
//!
//! * a warm re-solve with *slack* churn (no `delta`, or one larger
//!   than the instance) reaches exactly the cold solver's objective —
//!   the warm start is an accelerator, never a constraint;
//! * a *tight* `delta` still yields plans that deploy and load onto a
//!   switch within [`SwitchConstraints::default`] — churn bounding
//!   trades objective, never feasibility;
//! * `delta = 0` pins the committed assignment bit-for-bit.

use proptest::prelude::*;
use sonata::pisa::{Switch, SwitchConstraints};
use sonata::planner::costs::CostConfig;
use sonata::planner::{plan_ilp, GlobalPlan, PlannerConfig, Replanner, SolveOptions};
use sonata::query::catalog::{self, Thresholds};
use sonata::query::Query;
use sonata::stream::testsupport::seeded_packets;

/// Two refinement levels keep each MILP instance test-sized.
fn cfg() -> PlannerConfig {
    PlannerConfig {
        cost: CostConfig {
            levels: Some(vec![8, 32]),
            ..Default::default()
        },
        max_delay: 3,
        ..Default::default()
    }
}

fn query_set(pick: u8, th: u64) -> Vec<Query> {
    let t = Thresholds {
        new_tcp: th,
        superspreader: th,
        ddos: th,
        ..Thresholds::default()
    };
    match pick % 3 {
        0 => vec![catalog::newly_opened_tcp_conns(&t)],
        1 => vec![
            catalog::newly_opened_tcp_conns(&t),
            catalog::superspreader(&t),
        ],
        _ => vec![catalog::superspreader(&t), catalog::ddos(&t)],
    }
}

/// A replanner whose ring holds `factor`-scaled observations of the
/// committed plan's own per-query budget, plus the committed (cold)
/// plan it perturbs.
fn perturbed(
    queries: &[Query],
    window: &[sonata::packet::Packet],
    factor: f64,
) -> (GlobalPlan, Replanner) {
    let cfg = cfg();
    let committed = {
        let costs: Vec<_> = queries
            .iter()
            .map(|q| sonata::planner::costs::estimate_costs(q, &[window], &cfg.cost).unwrap())
            .collect();
        plan_ilp(queries, &costs, &cfg, &SolveOptions::default()).unwrap()
    };
    let mut rp = Replanner::from_training(queries, &[window], cfg, 3).unwrap();
    let observed: Vec<_> = committed
        .budget()
        .per_query
        .iter()
        .map(|&(q, predicted)| (q, (predicted * factor) as u64 + 1))
        .collect();
    rp.observe_window(&observed);
    (committed, rp)
}

/// The plan's partition/refinement assignment — the `F`/`P` decision
/// binaries a `delta` constraint counts flips over.
fn assignment(plan: &GlobalPlan) -> Vec<(Option<u8>, u8, Vec<usize>)> {
    plan.queries
        .iter()
        .flat_map(|qp| {
            qp.levels.iter().map(|lp| {
                (
                    lp.prev,
                    lp.level,
                    lp.branches.iter().map(|b| b.units).collect(),
                )
            })
        })
        .collect()
}

fn loads_onto_default_switch(plan: &GlobalPlan) {
    let deployment = sonata::core::driver::deploy(plan).unwrap();
    Switch::load(deployment.program, &SwitchConstraints::default()).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Slack churn: warm re-solve objective == cold objective on the
    /// same re-costed catalog, for `delta: None` and for a delta
    /// larger than the instance's decision-binary count.
    #[test]
    fn warm_slack_resolve_matches_cold_objective(
        seed in 0u64..1_000,
        n in 80usize..240,
        pick in 0u8..3,
        th in 4u64..24,
        factor_q in 1u32..48,
    ) {
        let factor = factor_q as f64 / 4.0; // 0.25× .. 12×
        let queries = query_set(pick, th);
        let window = seeded_packets(seed, n);
        let (committed, rp) = perturbed(&queries, &window, factor);

        // Cold solve of the identical re-costed instance.
        let scaled = rp.recost(&rp.load_ratios(&committed));
        let cold = plan_ilp(&queries, &scaled, &cfg(), &SolveOptions::default()).unwrap();

        for delta in [None, Some(10_000)] {
            let out = rp.replan_ilp(&committed, &SolveOptions::default(), delta).unwrap();
            let sol = out.solution.expect("MILP path reports its solution");
            prop_assert!(
                (out.plan.predicted_tuples - cold.predicted_tuples).abs() < 1e-6,
                "delta {delta:?}: warm {} vs cold {}",
                out.plan.predicted_tuples,
                cold.predicted_tuples
            );
            prop_assert!(
                (sol.objective - cold.predicted_tuples).abs() < 1e-6,
                "delta {delta:?}: objective {} vs cold {}",
                sol.objective,
                cold.predicted_tuples
            );
            prop_assert_eq!(out.plan.epoch, committed.epoch + 1);
        }
    }

    /// Tight churn: whatever the bound, the re-solved plan compiles,
    /// deploys, and loads within the default switch constraints; and
    /// `delta = 0` reproduces the committed assignment exactly.
    #[test]
    fn tight_delta_respects_switch_budgets_and_zero_pins(
        seed in 0u64..1_000,
        n in 80usize..240,
        pick in 0u8..3,
        th in 4u64..24,
        factor_q in 1u32..48,
        tight in 0usize..3,
    ) {
        let factor = factor_q as f64 / 4.0;
        let queries = query_set(pick, th);
        let window = seeded_packets(seed, n);
        let (committed, rp) = perturbed(&queries, &window, factor);
        loads_onto_default_switch(&committed);

        let pinned = rp
            .replan_ilp(&committed, &SolveOptions::default(), Some(0))
            .unwrap();
        prop_assert_eq!(
            assignment(&pinned.plan),
            assignment(&committed),
            "delta = 0 must pin the committed F/P assignment"
        );
        loads_onto_default_switch(&pinned.plan);

        let bounded = rp
            .replan_ilp(&committed, &SolveOptions::default(), Some(tight))
            .unwrap();
        loads_onto_default_switch(&bounded.plan);

        // Churn bounds only ever cost objective, monotonically: the
        // pinned plan cannot beat the delta-bounded one, which cannot
        // beat the unconstrained re-solve.
        let free = rp
            .replan_ilp(&committed, &SolveOptions::default(), None)
            .unwrap();
        loads_onto_default_switch(&free.plan);
        prop_assert!(free.plan.predicted_tuples <= bounded.plan.predicted_tuples + 1e-6);
        prop_assert!(bounded.plan.predicted_tuples <= pinned.plan.predicted_tuples + 1e-6);
    }
}
