//! Integration suite for fabric-wide distributed tracing and the
//! window latency waterfall.
//!
//! The tracing contract: every window of a run is **one trace**,
//! fabric-wide. Each live switch roots exactly one `window` span for
//! the (window, switch) pair; the trace id is a pure function of the
//! window index alone, so the collector-side spans — stitched from
//! the context that rode the wire in the frame headers — land in the
//! same trace as the switch-side spans without any out-of-band
//! agreement. The waterfall contract: every `WindowLatency` field is
//! the *same number* the `sonata_stage_ns{stage=...}` profiler
//! histogram observed, so the two views reconcile exactly (the merge
//! stage is shared with the stream engine's per-job merges and
//! reconciles as a `<=` bound instead).
//!
//! Golden snapshots (regenerate with `UPDATE_SNAPSHOTS=1`) pin the
//! span schema — which (process, span-name) lanes exist — and the
//! fabric-snapshot schema — which per-part metric series exist — on a
//! deterministic faulted 2×2 fabric fixture.

use sonata::obs::{EventKind, ObsHandle, TracedEvent};
use sonata::prelude::*;
use sonata::stream::testsupport::{low_thresholds, seeded_packets};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

const WINDOW_NS: u64 = 3_000_000_000;

fn fabric_trace(windows: u64, seed: u64) -> Trace {
    let mut pkts = Vec::new();
    for w in 0..windows {
        let mut chunk = seeded_packets(seed.wrapping_add(w), 300);
        for p in &mut chunk {
            p.ts_nanos += w * WINDOW_NS;
        }
        pkts.extend(chunk);
    }
    Trace::new(pkts)
}

fn fabric_queries() -> Vec<sonata::query::Query> {
    let t = low_thresholds();
    vec![
        catalog::newly_opened_tcp_conns(&t),
        catalog::superspreader(&t),
    ]
}

fn plan_for(tr: &Trace) -> GlobalPlan {
    let windows: Vec<&[sonata::packet::Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
    let cfg = PlannerConfig {
        cost: sonata::planner::costs::CostConfig {
            levels: Some(vec![8, 32]),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    plan_queries(&fabric_queries(), &windows, &cfg).unwrap()
}

/// Run an N×M fabric over the fixture trace with tracing enabled.
fn run_traced(n: usize, m: usize, faults: FaultPlan) -> (TelemetryReport, ObsHandle) {
    let tr = fabric_trace(3, 7);
    let plan = plan_for(&tr);
    let obs = ObsHandle::enabled();
    let mut fab = Fabric::new(
        &plan,
        RuntimeConfig {
            obs: obs.clone(),
            topology: Some(TopologyConfig::new(n, m)),
            faults,
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    let report = fab.process_trace(&tr).unwrap();
    (report, obs)
}

/// The distributed-trace spans of a run, grouped by trace id:
/// `(span, parent, name, process, window)` per span.
type SpansByTrace = BTreeMap<u64, Vec<(u64, u64, String, String, u64)>>;

fn spans_by_trace(events: &[TracedEvent]) -> SpansByTrace {
    let mut by_trace: SpansByTrace = BTreeMap::new();
    for e in events {
        if let EventKind::Span {
            trace,
            span,
            parent,
            name,
            process,
            window,
            ..
        } = &e.kind
        {
            by_trace.entry(*trace).or_default().push((
                *span,
                *parent,
                name.to_string(),
                process.clone(),
                *window,
            ));
        }
    }
    by_trace
}

/// Wire-propagated trace identity, across the topology matrix: every
/// window is exactly one trace; each live switch contributes exactly
/// one root `window` span; every non-root span's parent id resolves
/// to a span *in the same trace* (the collector-side spans were
/// parented from the context decoded off the frame headers, so a
/// stitching failure would surface as an orphan parent here).
#[test]
fn every_window_is_one_trace_with_per_switch_roots() {
    for (n, m) in [(1, 1), (2, 1), (2, 2), (4, 2)] {
        let (report, obs) = run_traced(n, m, FaultPlan::none());
        let by_trace = spans_by_trace(&obs.events());
        assert_eq!(
            by_trace.len(),
            report.windows.len(),
            "{n}x{m}: one trace per window"
        );
        for (trace, spans) in &by_trace {
            let windows: BTreeSet<u64> = spans.iter().map(|(_, _, _, _, w)| *w).collect();
            assert_eq!(
                windows.len(),
                1,
                "{n}x{m} trace {trace:#x} spans one window"
            );
            let roots: Vec<_> = spans
                .iter()
                .filter(|(_, parent, ..)| *parent == 0)
                .collect();
            assert_eq!(
                roots.len(),
                n,
                "{n}x{m} trace {trace:#x}: one root per live switch"
            );
            let root_procs: BTreeSet<&str> =
                roots.iter().map(|(_, _, _, p, _)| p.as_str()).collect();
            for s in 0..n {
                assert!(
                    root_procs.contains(format!("switch-{s}").as_str()),
                    "{n}x{m} trace {trace:#x}: switch-{s} must root a span"
                );
            }
            for (_, _, name, _, _) in &roots {
                assert_eq!(name, "window", "roots are window spans");
            }
            let ids: BTreeSet<u64> = spans.iter().map(|(span, ..)| *span).collect();
            assert_eq!(ids.len(), spans.len(), "{n}x{m}: span ids are unique");
            for (span, parent, name, process, _) in spans {
                if *parent != 0 {
                    assert!(
                        ids.contains(parent),
                        "{n}x{m} trace {trace:#x}: span {span:#x} ({process}/{name}) \
                         has orphan parent {parent:#x}"
                    );
                }
            }
            // The collector's spans joined the switch-rooted trace
            // purely via the wire-carried context.
            assert!(
                spans.iter().any(|(_, _, _, p, _)| p == "collector"),
                "{n}x{m} trace {trace:#x}: collector spans must stitch in"
            );
        }
    }
}

/// Trace ids are distinct across windows but *agree* across switches:
/// the id is derived from the window index alone, which is what lets
/// N switches that never talk to each other root into the same trace.
#[test]
fn trace_ids_are_deterministic_across_topologies() {
    let (_r1, obs1) = run_traced(2, 1, FaultPlan::none());
    let (_r2, obs2) = run_traced(4, 2, FaultPlan::none());
    let t1: BTreeSet<u64> = spans_by_trace(&obs1.events()).keys().copied().collect();
    let t2: BTreeSet<u64> = spans_by_trace(&obs2.events()).keys().copied().collect();
    assert_eq!(
        t1, t2,
        "same windows, same trace ids, independent of topology"
    );
}

/// The waterfall ↔ profiler reconciliation: per-stage sums across the
/// run's `WindowLatency` waterfalls equal the matching
/// `sonata_stage_ns` histogram sums *exactly* for every stage the
/// driver owns, and bound the shared merge histogram from below.
#[test]
fn window_latency_reconciles_exactly_with_stage_histograms() {
    for (n, m) in [(1, 1), (2, 2)] {
        let (report, _obs) = run_traced(n, m, FaultPlan::none());
        let lat = report.window_latency();
        assert!(lat.total_ns() > 0, "{n}x{m}: enabled obs must measure");
        let hist_sum = |stage: &str| -> u64 {
            report
                .metrics
                .histogram(&format!("sonata_stage_ns{{stage=\"{stage}\"}}"))
                .map(|h| h.sum)
                .unwrap_or(0)
        };
        for (stage, ns) in [
            ("packet_loop", lat.packet_loop_ns),
            ("window_dump", lat.dump_encode_ns),
            ("transport", lat.transport_ns),
            ("collector_drain", lat.collector_drain_ns),
            ("shard_execute", lat.shard_execute_ns),
        ] {
            assert_eq!(
                hist_sum(stage),
                ns,
                "{n}x{m}: waterfall {stage} must equal the histogram sum"
            );
        }
        // The merge histogram also sees the stream engine's per-job
        // merges, so the fabric's cross-switch merge bounds it.
        assert!(
            lat.merge_ns <= hist_sum("merge"),
            "{n}x{m}: waterfall merge exceeds the merge histogram"
        );
        // Straggler attribution: every window records one arrival per
        // live switch, and the straggler is one of them.
        for w in &report.windows {
            assert_eq!(w.latency.arrivals.len(), n, "{n}x{m} window {}", w.window);
            let switches: BTreeSet<u16> = w.latency.arrivals.iter().map(|a| a.switch).collect();
            assert_eq!(switches.len(), n, "{n}x{m}: arrivals are per-switch");
            assert!(w.latency.straggler().is_some());
        }
    }
}

/// Disabled observability zeroes the whole waterfall — the reports
/// stay bit-identical to pre-instrumentation runs.
#[test]
fn disabled_obs_keeps_the_waterfall_silent() {
    let tr = fabric_trace(2, 7);
    let plan = plan_for(&tr);
    let mut fab = Fabric::new(
        &plan,
        RuntimeConfig {
            topology: Some(TopologyConfig::new(2, 2)),
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    let report = fab.process_trace(&tr).unwrap();
    for w in &report.windows {
        assert_eq!(w.latency, WindowLatency::default(), "window {}", w.window);
    }
}

/// The faulted golden fixture: a 2×2 fabric under report/worker
/// faults, so degradation paths show up in the schemas too.
fn faulted_fixture() -> (TelemetryReport, ObsHandle) {
    run_traced(
        2,
        2,
        FaultPlan {
            seed: 7,
            report: ReportFaults {
                drop_per_mille: 100,
                duplicate_per_mille: 100,
                delay_per_mille: 100,
                reorder_per_mille: 50,
                delay_packets: 4,
            },
            worker: WorkerFaults {
                crash_per_mille: 300,
                consecutive_crashes: 1,
                ..WorkerFaults::default()
            },
            ..FaultPlan::default()
        },
    )
}

fn assert_matches_snapshot(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(name);
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing snapshot {name} ({e}); regenerate with UPDATE_SNAPSHOTS=1")
    });
    assert_eq!(
        expected.trim(),
        actual.trim(),
        "{name} drifted from the committed snapshot; if the change is \
         intentional, regenerate with UPDATE_SNAPSHOTS=1 and commit"
    );
}

/// Span schema: the sorted set of `process name` lanes the faulted
/// fixture traces — which components emit which spans.
#[test]
fn span_schema_matches_golden_snapshot() {
    let (_report, obs) = faulted_fixture();
    let mut lanes = BTreeSet::new();
    for e in obs.events() {
        if let EventKind::Span { name, process, .. } = &e.kind {
            lanes.insert(format!("{process} {name}"));
        }
    }
    let mut out = lanes.into_iter().collect::<Vec<_>>().join("\n");
    out.push('\n');
    assert_matches_snapshot("trace_spans.snap", &out);
}

/// Fabric-snapshot schema: the per-part series names after routing
/// the shared registry by `switch=`/`shard=`/`peer=` labels. Also
/// checks the JSON export against the in-tree schema validator.
#[test]
fn fabric_snapshot_schema_matches_golden_snapshot() {
    let (_report, obs) = faulted_fixture();
    let fab = sonata::obs::FabricSnapshot::from_labeled(&obs.snapshot());
    sonata::obs::validate_fabric_snapshot_json(&fab.to_json()).expect("fabric JSON schema");
    let mut lines = BTreeSet::new();
    for (source, part) in &fab.parts {
        for (key, _) in &part.counters {
            lines.insert(format!("{source} counter {key}"));
        }
        for (key, _) in &part.gauges {
            lines.insert(format!("{source} gauge {key}"));
        }
        for h in &part.histograms {
            lines.insert(format!("{source} histogram {}", h.name));
        }
    }
    let mut out = lines.into_iter().collect::<Vec<_>>().join("\n");
    out.push('\n');
    assert_matches_snapshot("fabric_snapshot_schema.snap", &out);
}
