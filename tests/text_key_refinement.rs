//! Dynamic refinement over a **textual** hierarchical key (DNS names),
//! end to end — the Section 4.1 `dns.rr.name` example. The refinement
//! filter cannot run in the data plane (names are variable-width), so
//! this also exercises the stream-processor-side dynamic filter path.

use sonata::packet::{Packet, Value};
use sonata::prelude::*;
use sonata::traffic::trace::actors;

fn flux_trace(windows: u64, domain: &str) -> Trace {
    let duration_ms = windows * 3_000;
    let mut trace = Trace::background(
        &BackgroundConfig {
            duration_ms,
            packets: 3_000 * windows as usize,
            dns_fraction: 0.2,
            ..BackgroundConfig::default()
        },
        5,
    );
    trace.inject(
        &Attack::FastFlux {
            domain: domain.to_string(),
            resolver: actors::TUNNEL_RESOLVER,
            clients: (0..20u32).map(|i| 0xc6336500 + i).collect(),
            resolved_ips: 300,
            responses: 120 * windows as usize,
            start_ms: 0,
            duration_ms: duration_ms - 500,
        },
        5,
    );
    trace
}

#[test]
fn fast_flux_detected_via_name_refinement() {
    let domain = "cdn.evil-flux.example";
    let tr = flux_trace(3, domain);
    let q = catalog::malicious_domains(&Thresholds {
        malicious_domains: 10,
        ..Thresholds::default()
    });
    let windows: Vec<&[Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
    let cfg = PlannerConfig {
        mode: PlanMode::FixRef,
        cost: sonata::planner::costs::CostConfig {
            levels: Some(vec![2, 8]),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    let plan = plan_queries(std::slice::from_ref(&q), &windows, &cfg).unwrap();
    let chain: Vec<u8> = plan.queries[0].levels.iter().map(|l| l.level).collect();
    assert_eq!(chain, vec![2, 8], "two name-depth levels");
    let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
    let report = rt.process_trace(&tr).unwrap();
    let alerts = report.alerts_for(q.id);
    // Detection from window 1 (one window of zoom-in delay).
    assert!(alerts.iter().all(|(w, _)| *w >= 1));
    assert!(
        alerts
            .iter()
            .any(|(_, t)| t.get(0) == &Value::Text(domain.into())),
        "needle missing: {alerts:?}"
    );
    // Benign domains (stable resolutions) are not flagged.
    for (_, t) in &alerts {
        let name = t.get(0).as_text().unwrap_or("");
        assert!(
            name.ends_with("evil-flux.example"),
            "false positive: {name}"
        );
    }
}

#[test]
fn name_refinement_filters_at_level_two() {
    // The coarse level aggregates by second-level domain; its output
    // feeds the fine level's (stream-processor-side) filter, so the
    // fine level only counts names under flagged 2LDs.
    let domain = "a.b.evil-flux.example";
    let tr = flux_trace(2, domain);
    let q = catalog::malicious_domains(&Thresholds {
        malicious_domains: 10,
        ..Thresholds::default()
    });
    let windows: Vec<&[Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
    let cfg = PlannerConfig {
        mode: PlanMode::FixRef,
        cost: sonata::planner::costs::CostConfig {
            levels: Some(vec![2, 8]),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    let plan = plan_queries(std::slice::from_ref(&q), &windows, &cfg).unwrap();
    let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
    let report = rt.process_trace(&tr).unwrap();
    let alerts = report.alerts_for(q.id);
    // The FQDN (depth 4) is recovered exactly at the fine level.
    assert!(
        alerts
            .iter()
            .any(|(_, t)| t.get(0) == &Value::Text(domain.into())),
        "{alerts:?}"
    );
}

#[test]
fn text_masking_matches_reference_semantics() {
    // The refined coarse query equals the reference interpreter over
    // name-masked keys.
    use sonata::planner::refine_query;
    use sonata::query::interpret::run_query;
    let domain = "cdn.evil-flux.example";
    let tr = flux_trace(1, domain);
    let q = catalog::malicious_domains(&Thresholds {
        malicious_domains: 10,
        ..Thresholds::default()
    });
    let coarse = refine_query(&q, 2, None);
    let pkts: Vec<Packet> = tr.packets().to_vec();
    let out = run_query(&coarse, &pkts).unwrap();
    let keys: Vec<&str> = out.iter().filter_map(|t| t.get(0).as_text()).collect();
    assert!(keys.contains(&"evil-flux.example"), "{keys:?}");
    for k in keys {
        assert!(
            k.split('.').count() <= 2,
            "level-2 key has more than two labels: {k}"
        );
    }
}
