//! Schema validation for the observability exports: run a real
//! multi-query workload with the `ObsHandle` enabled and check every
//! export format with the crate's own validators/parsers — the same
//! check CI runs against the quickstart example's artifacts, kept
//! in-tree so no external tooling (jq, promtool) is needed.

use sonata::obs::json::{parse, JsonValue};
use sonata::obs::{validate_snapshot_json, ObsHandle};
use sonata::prelude::*;

fn run_with_obs() -> (TelemetryReport, ObsHandle) {
    let thresholds = Thresholds::default();
    let queries = vec![
        catalog::newly_opened_tcp_conns(&thresholds),
        catalog::superspreader(&thresholds),
    ];
    let mut trace = Trace::background(&BackgroundConfig::small(), 11);
    trace.inject(
        &Attack::SynFlood {
            victim: 0x63070019,
            port: 80,
            packets: 800,
            sources: 400,
            ack_fraction: 0.05,
            fin_fraction: 0.02,
            start_ms: 0,
            duration_ms: 2_500,
        },
        11,
    );
    let windows: Vec<&[sonata::packet::Packet]> = trace.windows(3_000).map(|(_, p)| p).collect();
    let plan = plan_queries(&queries, &windows, &PlannerConfig::default()).unwrap();
    let obs = ObsHandle::enabled();
    let mut rt = Runtime::new(
        &plan,
        RuntimeConfig {
            obs: obs.clone(),
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    let report = rt.process_trace(&trace).unwrap();
    (report, obs)
}

#[test]
fn snapshot_json_passes_schema_validation() {
    let (report, _obs) = run_with_obs();
    let json = report.metrics.to_json();
    validate_snapshot_json(&json).expect("snapshot JSON schema");
    // And the snapshot is non-trivial: the run actually recorded.
    assert!(
        report
            .metrics
            .counter("sonata_switch_packets_total")
            .unwrap()
            > 0
    );
    assert!(
        report
            .metrics
            .counter("sonata_runtime_windows_total")
            .unwrap()
            > 0
    );
}

#[test]
fn prometheus_export_is_well_formed() {
    let (report, _obs) = run_with_obs();
    let prom = report.metrics.to_prometheus();
    let mut saw_bucket = false;
    for line in prom.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Every sample line is `name[{labels}] value`.
        let (series, value) = line.rsplit_once(' ').expect("sample line");
        assert!(!series.is_empty(), "{line}");
        assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
        if series.contains("_bucket{") {
            saw_bucket = true;
            assert!(series.contains("le="), "{line}");
        }
    }
    assert!(saw_bucket, "histograms must export buckets");
}

#[test]
fn event_exports_parse_and_cover_the_run() {
    let (report, obs) = run_with_obs();
    // JSONL: one valid JSON object per line, each with ts_ns + type.
    let jsonl = obs.events_jsonl();
    let mut window_closes = 0;
    for line in jsonl.lines() {
        let v = parse(line).expect("valid event JSON");
        assert!(v.get("ts_ns").and_then(JsonValue::as_u64).is_some());
        let kind = v.get("type").and_then(JsonValue::as_str).unwrap();
        if kind == "window_close" {
            window_closes += 1;
        }
    }
    assert_eq!(window_closes, report.windows.len());
    // chrome://tracing export: a traceEvents array whose entries all
    // carry the required ph/ts fields.
    let trace = parse(&obs.chrome_trace()).expect("valid chrome trace");
    let events = trace
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        let ph = e.get("ph").and_then(JsonValue::as_str).unwrap();
        assert!(ph == "X" || ph == "i", "unexpected phase {ph}");
        assert!(e.get("ts").and_then(JsonValue::as_f64).is_some());
        if ph == "X" {
            assert!(e.get("dur").and_then(JsonValue::as_f64).is_some());
        }
    }
}
