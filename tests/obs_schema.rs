//! Schema validation for the observability exports: run a real
//! multi-query workload with the `ObsHandle` enabled and check every
//! export format with the crate's own validators/parsers — the same
//! check CI runs against the quickstart example's artifacts, kept
//! in-tree so no external tooling (jq, promtool) is needed.

use sonata::obs::json::{parse, JsonValue};
use sonata::obs::{validate_snapshot_json, ObsHandle};
use sonata::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn run_with_obs() -> (TelemetryReport, ObsHandle) {
    let thresholds = Thresholds::default();
    let queries = vec![
        catalog::newly_opened_tcp_conns(&thresholds),
        catalog::superspreader(&thresholds),
    ];
    let mut trace = Trace::background(&BackgroundConfig::small(), 11);
    trace.inject(
        &Attack::SynFlood {
            victim: 0x63070019,
            port: 80,
            packets: 800,
            sources: 400,
            ack_fraction: 0.05,
            fin_fraction: 0.02,
            start_ms: 0,
            duration_ms: 2_500,
        },
        11,
    );
    let windows: Vec<&[sonata::packet::Packet]> = trace.windows(3_000).map(|(_, p)| p).collect();
    let plan = plan_queries(&queries, &windows, &PlannerConfig::default()).unwrap();
    let obs = ObsHandle::enabled();
    let mut rt = Runtime::new(
        &plan,
        RuntimeConfig {
            obs: obs.clone(),
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    let report = rt.process_trace(&trace).unwrap();
    (report, obs)
}

/// The golden-snapshot fixture: the same workload as [`run_with_obs`]
/// but sharded over two workers and under a deterministic fault plan
/// that exercises every degradation path, so the fault-layer metric
/// series and event types appear in the exports.
fn run_faulted_with_obs() -> (TelemetryReport, ObsHandle) {
    let thresholds = Thresholds::default();
    let queries = vec![
        catalog::newly_opened_tcp_conns(&thresholds),
        catalog::superspreader(&thresholds),
    ];
    let mut trace = Trace::background(&BackgroundConfig::small(), 11);
    trace.inject(
        &Attack::SynFlood {
            victim: 0x63070019,
            port: 80,
            packets: 800,
            sources: 400,
            ack_fraction: 0.05,
            fin_fraction: 0.02,
            start_ms: 0,
            duration_ms: 2_500,
        },
        11,
    );
    let windows: Vec<&[sonata::packet::Packet]> = trace.windows(3_000).map(|(_, p)| p).collect();
    let plan = plan_queries(&queries, &windows, &PlannerConfig::default()).unwrap();
    let obs = ObsHandle::enabled();
    let mut rt = Runtime::new(
        &plan,
        RuntimeConfig {
            obs: obs.clone(),
            workers: 2,
            faults: FaultPlan {
                seed: 7,
                report: ReportFaults {
                    drop_per_mille: 100,
                    duplicate_per_mille: 100,
                    delay_per_mille: 100,
                    reorder_per_mille: 50,
                    delay_packets: 4,
                },
                worker: WorkerFaults {
                    crash_per_mille: 500,
                    consecutive_crashes: 2,
                    stall_per_mille: 300,
                    stall_ms: 1,
                },
                boundary: BoundaryFaults {
                    fail_per_mille: 500,
                    consecutive: 1,
                },
                ..FaultPlan::default()
            },
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    let report = rt.process_trace(&trace).unwrap();
    (report, obs)
}

/// Sorted, deduplicated series identifiers (`name{labels}`) of a
/// Prometheus text export — the *schema* of the export, stable across
/// runs even though the sampled values (timings) are not.
fn prometheus_series(prom: &str) -> Vec<String> {
    let mut series = BTreeSet::new();
    for line in prom.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, _value) = line.rsplit_once(' ').expect("sample line");
        series.insert(name.to_string());
    }
    series.into_iter().collect()
}

/// Sorted, deduplicated `type` tags of a JSONL event export.
fn event_types(jsonl: &str) -> Vec<String> {
    let mut types = BTreeSet::new();
    for line in jsonl.lines() {
        let v = parse(line).expect("valid event JSON");
        let kind = v.get("type").and_then(JsonValue::as_str).expect("type tag");
        types.insert(kind.to_string());
    }
    types.into_iter().collect()
}

/// Compare `actual` against the committed snapshot `name`, or rewrite
/// the snapshot when `UPDATE_SNAPSHOTS` is set in the environment.
fn assert_matches_snapshot(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(name);
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing snapshot {name} ({e}); regenerate with UPDATE_SNAPSHOTS=1")
    });
    assert_eq!(
        expected.trim(),
        actual.trim(),
        "{name} drifted from the committed snapshot; if the change is \
         intentional, regenerate with UPDATE_SNAPSHOTS=1 and commit"
    );
}

#[test]
fn prometheus_series_schema_matches_golden_snapshot() {
    let (report, _obs) = run_faulted_with_obs();
    let mut out = prometheus_series(&report.metrics.to_prometheus()).join("\n");
    out.push('\n');
    assert_matches_snapshot("prometheus_series.snap", &out);
}

#[test]
fn event_type_schema_matches_golden_snapshot() {
    let (_report, obs) = run_faulted_with_obs();
    let mut out = event_types(&obs.events_jsonl()).join("\n");
    out.push('\n');
    assert_matches_snapshot("event_types.snap", &out);
}

#[test]
fn faulted_exports_still_pass_all_format_validators() {
    let (report, obs) = run_faulted_with_obs();
    validate_snapshot_json(&report.metrics.to_json()).expect("snapshot JSON schema");
    // The faulted run actually degraded — otherwise the golden
    // snapshots above would not cover the fault-layer surface.
    assert!(report.degraded_windows() > 0);
    assert!(report.total_faults().total() > 0);
    assert_eq!(
        report.metrics.counter("sonata_degraded_windows"),
        Some(report.degraded_windows() as u64)
    );
    // Per-kind injected counters reconcile with the window markers.
    for kind in FaultKind::ALL {
        let key = format!("sonata_faults_injected{{kind=\"{}\"}}", kind.name());
        assert_eq!(
            report.metrics.counter(&key),
            Some(report.total_faults().get(kind)),
            "{key}"
        );
    }
    for line in obs.events_jsonl().lines() {
        parse(line).expect("valid event JSON");
    }
}

#[test]
fn snapshot_json_passes_schema_validation() {
    let (report, _obs) = run_with_obs();
    let json = report.metrics.to_json();
    validate_snapshot_json(&json).expect("snapshot JSON schema");
    // And the snapshot is non-trivial: the run actually recorded.
    assert!(
        report
            .metrics
            .counter("sonata_switch_packets_total")
            .unwrap()
            > 0
    );
    assert!(
        report
            .metrics
            .counter("sonata_runtime_windows_total")
            .unwrap()
            > 0
    );
}

#[test]
fn prometheus_export_is_well_formed() {
    let (report, _obs) = run_with_obs();
    let prom = report.metrics.to_prometheus();
    let mut saw_bucket = false;
    for line in prom.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Every sample line is `name[{labels}] value`.
        let (series, value) = line.rsplit_once(' ').expect("sample line");
        assert!(!series.is_empty(), "{line}");
        assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
        if series.contains("_bucket{") {
            saw_bucket = true;
            assert!(series.contains("le="), "{line}");
        }
    }
    assert!(saw_bucket, "histograms must export buckets");
}

#[test]
fn event_exports_parse_and_cover_the_run() {
    let (report, obs) = run_with_obs();
    // JSONL: one valid JSON object per line, each with ts_ns + type.
    let jsonl = obs.events_jsonl();
    let mut window_closes = 0;
    for line in jsonl.lines() {
        let v = parse(line).expect("valid event JSON");
        assert!(v.get("ts_ns").and_then(JsonValue::as_u64).is_some());
        let kind = v.get("type").and_then(JsonValue::as_str).unwrap();
        if kind == "window_close" {
            window_closes += 1;
        }
    }
    assert_eq!(window_closes, report.windows.len());
    // chrome://tracing export: a traceEvents array whose entries all
    // carry the required ph/ts fields.
    let trace = parse(&obs.chrome_trace()).expect("valid chrome trace");
    let events = trace
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        let ph = e.get("ph").and_then(JsonValue::as_str).unwrap();
        assert!(ph == "X" || ph == "i" || ph == "M", "unexpected phase {ph}");
        if ph == "M" {
            // Process-name metadata: announces a pid lane, no timestamp.
            assert!(e.get("pid").and_then(JsonValue::as_u64).is_some());
            continue;
        }
        assert!(e.get("ts").and_then(JsonValue::as_f64).is_some());
        if ph == "X" {
            assert!(e.get("dur").and_then(JsonValue::as_f64).is_some());
        }
    }
}
