//! Differential suite for the multi-switch telemetry fabric.
//!
//! The fabric is supposed to be invisible: splitting a tap across N
//! switches feeding M collector shards must produce *bit-identical*
//! merged `WindowReport`s to the single-switch [`Runtime`] on the
//! unsplit trace — across the query catalog, across seeds, across
//! (N, M) topologies, and across transports. The one place the fabric
//! is *allowed* to differ is under targeted faults: killing one
//! switch's reports may only affect that switch's flow-sticky key
//! range, surfaced as a `DegradedWindow`, never as silent corruption.
//!
//! Seeds come from `SONATA_FABRIC_SEEDS` (comma-separated, default
//! `7,23`) so CI's bench-smoke job can pin its own set.
//!
//! [`Runtime`]: sonata::prelude::Runtime

use sonata::prelude::*;
use sonata::query::Query;
use sonata::stream::testsupport::{low_thresholds, seeded_packets};
use sonata::traffic::trace::EvaluationTrace;

const WINDOW_NS: u64 = 3_000_000_000;

/// (switches, shards) matrix from the issue: {1,2,4} × {1,2}.
const TOPOLOGIES: [(usize, usize); 6] = [(1, 1), (1, 2), (2, 1), (2, 2), (4, 1), (4, 2)];

fn fabric_seeds() -> Vec<u64> {
    std::env::var("SONATA_FABRIC_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![7, 23])
}

/// A deterministic multi-window trace: one `testsupport` mixed window
/// per 3-second slot, re-seeded per slot so windows differ.
fn fabric_trace(windows: u64, seed: u64) -> Trace {
    Trace::new(fabric_packets(windows, seed))
}

fn fabric_packets(windows: u64, seed: u64) -> Vec<sonata::packet::Packet> {
    let mut pkts = Vec::new();
    for w in 0..windows {
        let mut chunk = seeded_packets(seed.wrapping_add(w), 300);
        for p in &mut chunk {
            p.ts_nanos += w * WINDOW_NS;
        }
        pkts.extend(chunk);
    }
    pkts
}

fn fabric_queries() -> Vec<Query> {
    let t = low_thresholds();
    vec![
        catalog::newly_opened_tcp_conns(&t),
        catalog::superspreader(&t),
    ]
}

fn plan_for(mode: PlanMode, queries: &[Query], tr: &Trace) -> GlobalPlan {
    let windows: Vec<&[sonata::packet::Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
    let cfg = PlannerConfig {
        mode,
        cost: sonata::planner::costs::CostConfig {
            levels: Some(vec![8, 32]),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    plan_queries(queries, &windows, &cfg).unwrap()
}

fn config(
    topology: Option<(usize, usize)>,
    transport: TransportKind,
    faults: FaultPlan,
) -> RuntimeConfig {
    RuntimeConfig {
        transport,
        faults,
        topology: topology.map(|(n, m)| TopologyConfig::new(n, m)),
        ..RuntimeConfig::default()
    }
}

fn run_single(plan: &GlobalPlan, tr: &Trace, cfg: RuntimeConfig) -> TelemetryReport {
    let mut rt = Runtime::new(plan, cfg).unwrap();
    rt.process_trace(tr).unwrap()
}

fn run_fabric(plan: &GlobalPlan, tr: &Trace, cfg: RuntimeConfig) -> TelemetryReport {
    let mut fab = Fabric::new(plan, cfg).unwrap();
    fab.process_trace(tr).unwrap()
}

/// The fabric equivalence contract. Every *result* field is
/// bit-identical to the single-switch baseline: alerts, per-query
/// tuple attribution, packet counts, tuples to the stream processor,
/// filter entries, update latency, degraded markers. Collision shunts
/// (and the replan flag derived from them) are switch-local physics —
/// each switch hashes only its own key subset, and multi-array
/// overflow placement is population-dependent — so they are exact for
/// N = 1 and excluded from the contract otherwise; what matters is
/// that differing shunt patterns never change the merged *results*.
fn assert_equivalent(baseline: &TelemetryReport, fabric: &TelemetryReport, n: usize, ctx: &str) {
    assert_eq!(baseline.windows.len(), fabric.windows.len(), "{ctx}");
    for (b, f) in baseline.windows.iter().zip(&fabric.windows) {
        let w = b.window;
        assert_eq!(b.window, f.window, "{ctx}");
        assert_eq!(b.packets, f.packets, "{ctx} window {w}");
        assert_eq!(b.tuples_to_sp, f.tuples_to_sp, "{ctx} window {w}");
        assert_eq!(b.tuples_per_query, f.tuples_per_query, "{ctx} window {w}");
        assert_eq!(b.alerts, f.alerts, "{ctx} window {w}");
        assert_eq!(
            b.filter_entries_written, f.filter_entries_written,
            "{ctx} window {w}"
        );
        assert_eq!(b.update_latency, f.update_latency, "{ctx} window {w}");
        assert_eq!(b.degraded, f.degraded, "{ctx} window {w}");
        if n == 1 {
            assert_eq!(
                b, f,
                "{ctx} window {w}: 1-switch fabric must be bit-identical"
            );
        }
    }
}

/// The headline equivalence: every catalog query, the full (N, M)
/// matrix, merged fabric reports bit-identical to the single-switch
/// baseline on the unsplit evaluation trace.
#[test]
fn fabric_is_bit_identical_across_catalog_and_topologies() {
    let tr = EvaluationTrace::generate(11, 2, 3_000, 0.05).trace;
    let queries = catalog::all(&Thresholds::default());
    for mode in [PlanMode::MaxDp, PlanMode::Sonata] {
        let plan = plan_for(mode, &queries, &tr);
        let baseline = run_single(
            &plan,
            &tr,
            config(None, TransportKind::Loopback, FaultPlan::none()),
        );
        for (n, m) in TOPOLOGIES {
            let fabric = run_fabric(
                &plan,
                &tr,
                config(Some((n, m)), TransportKind::Loopback, FaultPlan::none()),
            );
            assert_equivalent(&baseline, &fabric, n, &format!("{mode:?} {n}x{m}"));
        }
    }
}

/// The same equivalence on refined (feed-forward) plans across pinned
/// seeds: dynamic-filter updates are broadcast to every switch, so the
/// refinement trajectory must match the single-switch run exactly.
#[test]
fn refined_fabric_matches_baseline_across_seeds() {
    for seed in fabric_seeds() {
        let tr = fabric_trace(3, seed);
        let queries = fabric_queries();
        let plan = plan_for(PlanMode::Sonata, &queries, &tr);
        let baseline = run_single(
            &plan,
            &tr,
            config(None, TransportKind::Loopback, FaultPlan::none()),
        );
        for (n, m) in TOPOLOGIES {
            let fabric = run_fabric(
                &plan,
                &tr,
                config(Some((n, m)), TransportKind::Loopback, FaultPlan::none()),
            );
            assert_equivalent(&baseline, &fabric, n, &format!("seed {seed}, {n}x{m}"));
        }
    }
}

/// Transport independence: a fabric whose switches talk to their
/// collector shards over real TCP sockets (one listener per switch,
/// per-peer `Hello` handshakes) matches both the Loopback fabric and
/// the single-switch baseline.
#[test]
fn tcp_fabric_is_bit_identical_to_loopback_and_baseline() {
    let seed = fabric_seeds()[0];
    let tr = fabric_trace(3, seed);
    let queries = fabric_queries();
    let plan = plan_for(PlanMode::Sonata, &queries, &tr);
    let baseline = run_single(
        &plan,
        &tr,
        config(None, TransportKind::Loopback, FaultPlan::none()),
    );
    for (n, m) in [(2, 2), (4, 2)] {
        let loopback = run_fabric(
            &plan,
            &tr,
            config(Some((n, m)), TransportKind::Loopback, FaultPlan::none()),
        );
        let tcp = run_fabric(
            &plan,
            &tr,
            config(Some((n, m)), TransportKind::Tcp, FaultPlan::none()),
        );
        assert_equivalent(&baseline, &loopback, n, &format!("{n}x{m} loopback"));
        // Two fabrics of the same shape differ only in transport: the
        // reports must be bit-identical, shunts included.
        assert_eq!(
            loopback.windows, tcp.windows,
            "{n}x{m}: TCP fabric diverged"
        );
    }
}

/// A 1×1 fabric is the degenerate case of the runtime: even under
/// full fault injection (egress, worker, boundary seams) the two must
/// produce bit-identical reports — including the degraded markers —
/// because the per-switch and fabric-level injectors replay the same
/// seeded verdict sequences per domain.
#[test]
fn one_by_one_fabric_matches_runtime_under_faults() {
    for seed in fabric_seeds() {
        let tr = fabric_trace(3, seed);
        let queries = fabric_queries();
        let plan = plan_for(PlanMode::AllSp, &queries, &tr);
        let faults = FaultPlan {
            seed,
            report: ReportFaults {
                drop_per_mille: 150,
                duplicate_per_mille: 150,
                delay_per_mille: 150,
                reorder_per_mille: 100,
                delay_packets: 6,
            },
            worker: WorkerFaults {
                crash_per_mille: 200,
                consecutive_crashes: 1,
                ..WorkerFaults::default()
            },
            boundary: BoundaryFaults {
                fail_per_mille: 200,
                consecutive: 1,
            },
            ..FaultPlan::default()
        };
        let single = run_single(&plan, &tr, config(None, TransportKind::Loopback, faults));
        let fabric = run_fabric(
            &plan,
            &tr,
            config(Some((1, 1)), TransportKind::Loopback, faults),
        );
        assert!(
            single.total_faults().get(FaultKind::ReportDrop) > 0,
            "seed {seed}: the plan must actually inject"
        );
        assert_eq!(
            single.windows, fabric.windows,
            "seed {seed}: faulted 1x1 fabric diverged from runtime"
        );
    }
}

/// Fault isolation: dropping *all* of one switch's reports affects
/// only that switch's flow-sticky key range. The faulted fabric's
/// alerts and per-query tuple counts equal a clean single-switch run
/// over the trace minus the victim's partition, and every window is
/// marked degraded with the drops on record.
#[test]
fn targeted_switch_fault_affects_only_that_switchs_keys() {
    let seed = fabric_seeds()[0];
    let pkts = fabric_packets(3, seed);
    let tr = Trace::new(pkts.clone());
    let queries = fabric_queries();
    // All-SP plans mirror every packet, so the victim's egress
    // actually carries per-packet reports to drop.
    let plan = plan_for(PlanMode::AllSp, &queries, &tr);
    let topo = TopologyConfig::new(2, 1);
    let victim: usize = 1;

    let faults = FaultPlan {
        seed,
        report: ReportFaults {
            drop_per_mille: 1000,
            ..ReportFaults::default()
        },
        target_switch: Some(victim as u16),
        ..FaultPlan::default()
    };
    let fabric = run_fabric(&plan, &tr, {
        let mut cfg = config(None, TransportKind::Loopback, faults);
        cfg.topology = Some(topo.clone());
        cfg
    });

    // Clean baseline over the surviving partition only.
    let partitioner = topo.partitioner();
    let survivors: Vec<sonata::packet::Packet> = pkts
        .into_iter()
        .filter(|p| partitioner.assign(p) != victim)
        .collect();
    let reduced = run_single(
        &plan,
        &Trace::new(survivors),
        config(None, TransportKind::Loopback, FaultPlan::none()),
    );

    assert_eq!(fabric.windows.len(), reduced.windows.len());
    for (f, r) in fabric.windows.iter().zip(&reduced.windows) {
        assert_eq!(f.window, r.window);
        assert_eq!(
            f.alerts, r.alerts,
            "window {}: surviving switch's keys were disturbed",
            f.window
        );
        assert_eq!(
            f.tuples_per_query, r.tuples_per_query,
            "window {}",
            f.window
        );
        assert_eq!(f.tuples_to_sp, r.tuples_to_sp, "window {}", f.window);
        let d = f
            .degraded
            .as_ref()
            .expect("victim's dropped reports must mark the window degraded");
        assert!(
            d.injected.get(FaultKind::ReportDrop) > 0,
            "window {}: drops must be on record",
            f.window
        );
        assert_eq!(d.straggler_switches, 0, "drops are not stragglers");
    }
}
