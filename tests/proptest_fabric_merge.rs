//! Property tests for the fabric's cross-switch merge algebra.
//!
//! `merge_window_batches` is the batch-level union a collector shard
//! applies to N switches' partial window batches. Three algebraic
//! properties make it safe to reason about (and make the straggler /
//! rejoin protocol sound):
//!
//! 1. **Commutative** — the merged batch set is independent of the
//!    order partials arrive in (switches race on the wire).
//! 2. **Associative** — merging per-shard subsets and then unioning
//!    the shard results equals one flat merge (shards are independent).
//! 3. **Idempotent per switch** — a switch contributing the same
//!    partial twice (a replay after rejoin) changes nothing.
//!
//! On top of the structural algebra, end-to-end partition invariance:
//! *any* split of a window's tuples across switches — not just the
//! flow-sticky one — merges back to the serial single-switch result,
//! for both plain-reduce and distinct+reduce query shapes. This
//! extends the PR-1 shard-merge generators (key-respecting splits
//! within one engine) to arbitrary switch-level trace partitions.

use proptest::prelude::*;
use sonata::packet::Value;
use sonata::query::catalog::{self, Thresholds};
use sonata::query::{Query, QueryId, Tuple};
use sonata::stream::{
    canonicalize_batches, execute_window, merge_window_batches, SwitchPartial, WindowBatch,
};
use std::collections::BTreeMap;

fn low() -> Thresholds {
    Thresholds {
        new_tcp: 2,
        ssh_brute: 1,
        superspreader: 1,
        port_scan: 1,
        ddos: 1,
        syn_flood: 1,
        incomplete_flows: 1,
        slowloris_bytes: 1,
        slowloris_cpkb: 0,
        dns_tunneling: 1,
        zorro_pkts: 1,
        zorro_payloads: 0,
        dns_reflection: 1,
        malicious_domains: 1,
        window_ms: 3_000,
    }
}

fn q1() -> Query {
    catalog::newly_opened_tcp_conns(&low())
}

/// One generated tuple placement: `(switch, job, op)` routing plus
/// `(branch, key, count)` content.
type Item = ((u16, u32, usize), (u8, u64, u64));

fn items() -> impl Strategy<Value = Vec<Item>> {
    proptest::collection::vec(
        ((0u16..5, 1u32..4, 0usize..4), (0u8..2, 0u64..16, 1u64..5)),
        1..60,
    )
}

/// Group generated items into per-switch partials (the shape a
/// collector sees after per-switch emitters run).
fn build_partials(items: &[Item]) -> Vec<SwitchPartial> {
    let mut by_switch: BTreeMap<u16, BTreeMap<QueryId, WindowBatch>> = BTreeMap::new();
    for &((switch, job, op), (right, key, count)) in items {
        let batch = by_switch
            .entry(switch)
            .or_default()
            .entry(QueryId(job))
            .or_default();
        let tuple = Tuple::new(vec![Value::U64(key), Value::U64(count)]);
        if right == 1 {
            batch.push_right(op, vec![tuple]);
        } else {
            batch.push_left(op, vec![tuple]);
        }
    }
    by_switch
        .into_iter()
        .map(|(s, batches)| (s, batches.into_iter().collect()))
        .collect()
}

fn canon(mut batches: Vec<(QueryId, WindowBatch)>) -> Vec<(QueryId, WindowBatch)> {
    canonicalize_batches(&mut batches);
    batches
}

/// Deterministic Fisher–Yates driven by a generated seed (the vendored
/// proptest has no shuffle strategy).
fn permute<T>(v: &mut [T], seed: u64) {
    let mut s = seed;
    let mut next = move || {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

/// Entry-wise union of two merged batch sets (what a fabric does with
/// independently merged shard groups).
fn union(
    a: Vec<(QueryId, WindowBatch)>,
    b: Vec<(QueryId, WindowBatch)>,
) -> Vec<(QueryId, WindowBatch)> {
    let mut merged: BTreeMap<QueryId, WindowBatch> = a.into_iter().collect();
    for (job, batch) in b {
        let into = merged.entry(job).or_default();
        for (op, tuples) in batch.left {
            into.left.entry(op).or_default().extend(tuples);
        }
        for (op, tuples) in batch.right {
            into.right.entry(op).or_default().extend(tuples);
        }
    }
    merged.into_iter().collect()
}

proptest! {
    #[test]
    fn merge_is_commutative_under_arbitrary_arrival_order(
        items in items(),
        seed in 0u64..1_000_000,
    ) {
        let partials = build_partials(&items);
        let mut shuffled = partials.clone();
        permute(&mut shuffled, seed);
        // Stronger than canonical equality: the merge sorts by switch
        // id internally, so even tuple order must match exactly.
        prop_assert_eq!(
            merge_window_batches(partials),
            merge_window_batches(shuffled)
        );
    }

    #[test]
    fn merge_is_idempotent_per_switch(
        items in items(),
        seed in 0u64..1_000_000,
    ) {
        let partials = build_partials(&items);
        let mut with_replays = partials.clone();
        // Replay an arbitrary subset of switches (a rejoined switch
        // resending its partial), in arbitrary positions.
        let replays: Vec<SwitchPartial> = partials
            .iter()
            .enumerate()
            .filter(|(i, _)| (seed >> (i % 32)) & 1 == 1)
            .map(|(_, p)| p.clone())
            .collect();
        with_replays.extend(replays);
        permute(&mut with_replays, seed);
        prop_assert_eq!(
            merge_window_batches(partials),
            merge_window_batches(with_replays)
        );
    }

    #[test]
    fn merge_is_associative_across_shard_groupings(
        items in items(),
    ) {
        let partials = build_partials(&items);
        let flat = canon(merge_window_batches(partials.clone()));
        // Contiguous grouping (switch-range sharding).
        let pivot = partials.len() / 2;
        let (lo, hi) = partials.split_at(pivot);
        let contiguous = canon(union(
            merge_window_batches(lo.to_vec()),
            merge_window_batches(hi.to_vec()),
        ));
        prop_assert_eq!(&flat, &contiguous);
        // Interleaved grouping (round-robin sharding).
        let pick = |parity: usize| -> Vec<SwitchPartial> {
            partials
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == parity)
                .map(|(_, p)| p.clone())
                .collect()
        };
        let interleaved = canon(union(
            merge_window_batches(pick(0)),
            merge_window_batches(pick(1)),
        ));
        prop_assert_eq!(&flat, &interleaved);
    }

    #[test]
    fn any_trace_partition_merges_to_the_serial_batch(
        keys in proptest::collection::vec((0u64..12, 1u64..4), 1..80),
        assignment in proptest::collection::vec(0u16..5, 80),
    ) {
        // Query 1 shunt-style entries: (key, count) at the reduce
        // (op 2). Split tuples across switches ARBITRARILY — not even
        // key-respecting — and check the union is the serial batch and
        // computes the serial result.
        let q = q1();
        let mut full = WindowBatch::new();
        let mut by_switch: BTreeMap<u16, WindowBatch> = BTreeMap::new();
        for (i, &(k, c)) in keys.iter().enumerate() {
            let tuple = Tuple::new(vec![Value::U64(k), Value::U64(c)]);
            full.push_left(2, vec![tuple.clone()]);
            by_switch
                .entry(assignment[i % assignment.len()])
                .or_default()
                .push_left(2, vec![tuple]);
        }
        let partials: Vec<SwitchPartial> = by_switch
            .into_iter()
            .map(|(s, b)| (s, vec![(q.id, b)]))
            .collect();
        let merged = canon(merge_window_batches(partials));
        prop_assert_eq!(&merged, &canon(vec![(q.id, full.clone())]));
        let serial = execute_window(&q, &full).unwrap();
        let fabric = execute_window(&q, &merged[0].1).unwrap();
        prop_assert_eq!(fabric.output, serial.output);
    }

    #[test]
    fn distinct_state_merges_to_the_serial_result(
        tuples in proptest::collection::vec((0u64..8, 0u64..8), 1..60),
        assignment in proptest::collection::vec(0u16..5, 60),
    ) {
        // Query 3 (superspreader) distinct+reduce: per-switch admitted
        // key sets enter at the distinct (op 2) with schema (sIP, dIP).
        // The same pair may be "first" on several switches — the
        // engine's distinct dedups the union, so the merged result
        // still equals serial execution over the union.
        let q = catalog::superspreader(&low());
        let mut full = WindowBatch::new();
        let mut by_switch: BTreeMap<u16, WindowBatch> = BTreeMap::new();
        for (i, &(s, d)) in tuples.iter().enumerate() {
            let tuple = Tuple::new(vec![Value::U64(s), Value::U64(d)]);
            full.push_left(2, vec![tuple.clone()]);
            by_switch
                .entry(assignment[i % assignment.len()])
                .or_default()
                .push_left(2, vec![tuple]);
        }
        let partials: Vec<SwitchPartial> = by_switch
            .into_iter()
            .map(|(sw, b)| (sw, vec![(q.id, b)]))
            .collect();
        let merged = canon(merge_window_batches(partials));
        let serial = execute_window(&q, &full).unwrap();
        let fabric = execute_window(&q, &merged[0].1).unwrap();
        prop_assert_eq!(fabric.output, serial.output);
    }
}
