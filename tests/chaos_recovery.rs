//! Chaos/recovery suite for the deterministic fault-injection layer.
//!
//! Each scenario runs a real multi-query, multi-window workload twice
//! — once clean, once under a seeded [`FaultPlan`] — and asserts the
//! three contract points of the fault layer:
//!
//! 1. **no panic escapes**: every faulted run returns `Ok`, however
//!    hostile the plan;
//! 2. **blast-radius containment**: queries outside the plan's
//!    `target_query` produce byte-identical alerts and tuple counts;
//! 3. **graceful degradation**: each injected fault is visible in the
//!    window's [`DegradedWindow`] marker, and the paired recovery path
//!    (duplicate suppression, worker respawn + retry, single-mode
//!    fallback, boundary retry-with-backoff) brings the observable
//!    outputs back to the clean run wherever the paper's semantics
//!    allow it.
//!
//! Seeds come from `SONATA_CHAOS_SEEDS` (comma-separated, default
//! `7,11,13`) so CI's chaos-smoke job can pin its own set.

use sonata::prelude::*;
use sonata::query::Query;
use sonata::stream::testsupport::{assert_differential, low_thresholds, seeded_packets};
use std::time::Duration;

const WINDOW_NS: u64 = 3_000_000_000;

fn chaos_seeds() -> Vec<u64> {
    std::env::var("SONATA_CHAOS_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![7, 11, 13])
}

/// A deterministic multi-window trace: one `testsupport` mixed window
/// per 3-second slot, re-seeded per slot so windows differ.
fn chaos_trace(windows: u64, seed: u64) -> Trace {
    let mut pkts = Vec::new();
    for w in 0..windows {
        let mut chunk = seeded_packets(seed.wrapping_add(w), 300);
        for p in &mut chunk {
            p.ts_nanos += w * WINDOW_NS;
        }
        pkts.extend(chunk);
    }
    Trace::new(pkts)
}

fn chaos_queries() -> Vec<Query> {
    let t = low_thresholds();
    vec![
        catalog::newly_opened_tcp_conns(&t),
        catalog::superspreader(&t),
    ]
}

fn chaos_plan_mode(queries: &[Query], tr: &Trace, mode: PlanMode) -> GlobalPlan {
    let windows: Vec<&[sonata::packet::Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
    let cfg = PlannerConfig {
        mode,
        cost: sonata::planner::costs::CostConfig {
            levels: Some(vec![8, 32]),
            ..Default::default()
        },
        ..Default::default()
    };
    plan_queries(queries, &windows, &cfg).unwrap()
}

fn chaos_plan(queries: &[Query], tr: &Trace) -> GlobalPlan {
    chaos_plan_mode(queries, tr, PlanMode::Sonata)
}

fn run(plan: &GlobalPlan, tr: &Trace, faults: FaultPlan, workers: usize) -> TelemetryReport {
    let mut rt = Runtime::new(
        plan,
        RuntimeConfig {
            faults,
            workers,
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    rt.process_trace(tr).unwrap()
}

/// Assert the user-visible outputs (alerts, tuple accounting, filter
/// writes) of two runs agree window by window — the degraded markers
/// and latencies are allowed to differ.
fn assert_outputs_match(clean: &TelemetryReport, faulted: &TelemetryReport, ctx: &str) {
    assert_eq!(clean.windows.len(), faulted.windows.len(), "{ctx}");
    for (c, f) in clean.windows.iter().zip(&faulted.windows) {
        assert_eq!(c.alerts, f.alerts, "{ctx}: window {}", c.window);
        assert_eq!(c.tuples_to_sp, f.tuples_to_sp, "{ctx}: window {}", c.window);
        assert_eq!(
            c.tuples_per_query, f.tuples_per_query,
            "{ctx}: window {}",
            c.window
        );
        assert_eq!(
            c.filter_entries_written, f.filter_entries_written,
            "{ctx}: window {}",
            c.window
        );
    }
}

#[test]
fn disabled_faults_are_bit_identical_to_the_seed_runtime() {
    for seed in chaos_seeds() {
        let tr = chaos_trace(3, seed);
        let queries = chaos_queries();
        let plan = chaos_plan(&queries, &tr);
        let clean = run(&plan, &tr, FaultPlan::none(), 1);
        // FaultPlan::none() compiles to a disabled injector, so the
        // whole WindowReport — including the absent degraded marker —
        // must equal the default-config run bit for bit.
        let default = {
            let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
            rt.process_trace(&tr).unwrap()
        };
        assert_eq!(clean.windows, default.windows, "seed {seed}");
        assert!(clean.windows.iter().all(|w| w.degraded.is_none()));
    }
    // Differential guard at the engine layer: the sharded engine the
    // runtime sits on still matches the single-threaded engine and the
    // reference interpreter on the same seeded traffic.
    let pkts = seeded_packets(chaos_seeds()[0], 400);
    for q in chaos_queries() {
        assert_differential(&q, &pkts, &[1, 2, 4]);
    }
}

#[test]
fn report_faults_degrade_without_touching_untargeted_queries() {
    for seed in chaos_seeds() {
        let tr = chaos_trace(3, seed);
        let queries = chaos_queries();
        let (target, spared) = (queries[0].id, queries[1].id);
        // All-SP plans mirror every packet to the stream processor, so
        // the egress actually carries per-packet reports to fault
        // (Sonata plans keep most state in switch registers, whose
        // window dumps are out of the report-fault blast radius by
        // design).
        let plan = chaos_plan_mode(&queries, &tr, PlanMode::AllSp);
        let clean = run(&plan, &tr, FaultPlan::none(), 1);
        let faults = FaultPlan {
            seed,
            target_query: Some(target.0),
            report: ReportFaults {
                drop_per_mille: 150,
                duplicate_per_mille: 150,
                delay_per_mille: 150,
                reorder_per_mille: 100,
                delay_packets: 6,
            },
            ..FaultPlan::default()
        };
        let faulted = run(&plan, &tr, faults, 1);
        // Faults were actually injected, and the duplicates the switch
        // re-emitted were all suppressed by the emitter.
        let totals = faulted.total_faults();
        assert!(totals.get(FaultKind::ReportDrop) > 0, "seed {seed}");
        assert!(totals.get(FaultKind::ReportDuplicate) > 0, "seed {seed}");
        assert!(totals.get(FaultKind::ReportDelay) > 0, "seed {seed}");
        assert!(faulted.degraded_windows() > 0, "seed {seed}");
        let suppressed: u64 = faulted
            .windows
            .iter()
            .filter_map(|w| w.degraded.as_ref())
            .map(|d| d.duplicates_suppressed)
            .sum();
        assert_eq!(
            suppressed,
            totals.get(FaultKind::ReportDuplicate),
            "seed {seed}: every injected duplicate must be suppressed"
        );
        // The untargeted query is untouched: identical alerts and
        // identical tuple intake, window by window.
        assert_eq!(
            clean.alerts_for(spared),
            faulted.alerts_for(spared),
            "seed {seed}"
        );
        assert_eq!(
            clean.tuples_for(spared),
            faulted.tuples_for(spared),
            "seed {seed}"
        );
    }
}

#[test]
fn worker_crash_respawns_and_recovers_to_baseline() {
    for seed in chaos_seeds() {
        let tr = chaos_trace(2, seed);
        let queries = chaos_queries();
        let plan = chaos_plan(&queries, &tr);
        let clean = run(&plan, &tr, FaultPlan::none(), 4);
        let faults = FaultPlan {
            seed,
            worker: WorkerFaults {
                crash_per_mille: 1000,
                consecutive_crashes: 1,
                ..WorkerFaults::default()
            },
            ..FaultPlan::default()
        };
        for workers in [1usize, 4] {
            let faulted = run(&plan, &tr, faults, workers);
            // Every job crashed once and the respawn-and-retry path
            // absorbed it without reaching the single-mode fallback.
            assert_outputs_match(&clean, &faulted, &format!("seed {seed}, {workers} workers"));
            let (retries, fallbacks) = faulted
                .windows
                .iter()
                .filter_map(|w| w.degraded.as_ref())
                .fold((0u64, 0u64), |(r, f), d| {
                    (r + d.worker_retries, f + d.single_mode_fallbacks)
                });
            assert!(retries > 0, "seed {seed}: retry path never fired");
            assert_eq!(fallbacks, 0, "seed {seed}: fallback should be unreachable");
            assert!(faulted.total_faults().get(FaultKind::WorkerCrash) > 0);
        }
    }
}

#[test]
fn repeated_worker_crashes_fall_back_to_single_mode() {
    let seed = chaos_seeds()[0];
    let tr = chaos_trace(2, seed);
    let queries = chaos_queries();
    let plan = chaos_plan(&queries, &tr);
    let clean = run(&plan, &tr, FaultPlan::none(), 4);
    let faults = FaultPlan {
        seed,
        worker: WorkerFaults {
            crash_per_mille: 1000,
            consecutive_crashes: 2, // crash the retry too
            ..WorkerFaults::default()
        },
        ..FaultPlan::default()
    };
    let faulted = run(&plan, &tr, faults, 4);
    // The single-mode fallback engine produced the same outputs the
    // sharded engine would have (the differential guarantee).
    assert_outputs_match(&clean, &faulted, "single-mode fallback");
    let fallbacks: u64 = faulted
        .windows
        .iter()
        .filter_map(|w| w.degraded.as_ref())
        .map(|d| d.single_mode_fallbacks)
        .sum();
    assert!(fallbacks > 0, "fallback path never fired");
}

#[test]
fn boundary_retry_recovers_within_bound() {
    for seed in chaos_seeds() {
        let tr = chaos_trace(3, seed);
        let queries = chaos_queries();
        let plan = chaos_plan(&queries, &tr);
        let clean = run(&plan, &tr, FaultPlan::none(), 1);
        let faults = FaultPlan {
            seed,
            boundary: BoundaryFaults {
                fail_per_mille: 1000,
                consecutive: 1, // recovered by the first retry
            },
            ..FaultPlan::default()
        };
        let faulted = run(&plan, &tr, faults, 1);
        // The retry landed the same filter entries the clean run
        // wrote, and the simulated backoff shows up in the latency.
        assert_outputs_match(&clean, &faulted, &format!("seed {seed}"));
        for (c, f) in clean.windows.iter().zip(&faulted.windows) {
            let d = f.degraded.as_ref().expect("every window degraded");
            assert_eq!(d.boundary_retries, 1, "window {}", f.window);
            assert!(!d.boundary_update_skipped, "window {}", f.window);
            assert_eq!(
                f.update_latency,
                c.update_latency + Duration::from_millis(1),
                "window {}: one retry adds exactly the first backoff step",
                f.window
            );
        }
    }
}

#[test]
fn boundary_exhaustion_skips_the_update_but_completes_the_run() {
    let seed = chaos_seeds()[0];
    let tr = chaos_trace(3, seed);
    let queries = chaos_queries();
    let plan = chaos_plan(&queries, &tr);
    let faults = FaultPlan {
        seed,
        boundary: BoundaryFaults {
            fail_per_mille: 1000,
            consecutive: 10, // beyond the runtime's retry bound
        },
        ..FaultPlan::default()
    };
    let faulted = run(&plan, &tr, faults, 1);
    assert_eq!(faulted.windows.len(), 3);
    for w in &faulted.windows {
        let d = w.degraded.as_ref().expect("every window degraded");
        assert!(d.boundary_update_skipped, "window {}", w.window);
        assert_eq!(w.filter_entries_written, 0, "window {}", w.window);
    }
    // The run still produced alerts — skipping a filter update never
    // loses final results, it only widens the next window's intake.
    assert!(faulted.windows.iter().any(|w| !w.alerts.is_empty()));
}

#[test]
fn worker_stalls_delay_but_do_not_change_outputs() {
    let seed = chaos_seeds()[0];
    let tr = chaos_trace(2, seed);
    let queries = chaos_queries();
    let plan = chaos_plan(&queries, &tr);
    let clean = run(&plan, &tr, FaultPlan::none(), 2);
    let faults = FaultPlan {
        seed,
        worker: WorkerFaults {
            stall_per_mille: 1000,
            stall_ms: 1,
            ..WorkerFaults::default()
        },
        ..FaultPlan::default()
    };
    let faulted = run(&plan, &tr, faults, 2);
    assert_outputs_match(&clean, &faulted, "stall");
    assert!(faulted.total_faults().get(FaultKind::WorkerStall) > 0);
}

#[test]
fn switch_loss_isolates_to_the_dead_switchs_traffic_and_rejoin_resyncs() {
    // Fabric switch-loss: switch 1 of a 2×1 fabric dies at the start
    // of window 1 and rejoins (Hello replay + control resync) for
    // window 2. The contract mirrors the targeted-query one: the shard
    // closes the window degraded instead of stalling, the surviving
    // switch's traffic is processed exactly as if the dead switch's
    // partition had never existed, and the rejoined switch is
    // indistinguishable from one that never left.
    for seed in chaos_seeds() {
        let tr = chaos_trace(3, seed);
        let queries = chaos_queries();
        let plan = chaos_plan(&queries, &tr);
        let cfg = || RuntimeConfig {
            topology: Some(TopologyConfig::new(2, 1)),
            ..RuntimeConfig::default()
        };
        let clean = Fabric::new(&plan, cfg())
            .unwrap()
            .process_trace(&tr)
            .unwrap();

        let mut fab = Fabric::new(&plan, cfg()).unwrap();
        fab.set_outage(SwitchOutage {
            switch: 1,
            from_window: 1,
            cut_after: 0, // dark for all of window 1
            rejoin_window: 2,
        })
        .unwrap();
        let lost = fab.process_trace(&tr).unwrap();
        assert_eq!(lost.windows.len(), 3, "seed {seed}");

        // The shard closed window 1 degraded with switch 1's straggler
        // bit — and did not stall or poison the neighbouring windows.
        let d = lost.windows[1].degraded.as_ref().expect("degraded");
        assert_eq!(d.straggler_switches, 0b10, "seed {seed}");
        assert!(lost.windows[0].degraded.is_none(), "seed {seed}");
        assert!(lost.windows[2].degraded.is_none(), "seed {seed}");
        // Window 0 predates the outage entirely: bit-identical.
        assert_eq!(clean.windows[0], lost.windows[0], "seed {seed}");

        // Reference: the same fabric over a trace where switch 1's
        // window-1 partition never arrived. The flow-sticky partition
        // is per-packet deterministic, so the surviving switch sees the
        // same packets either way; every user-visible output — window 1
        // under loss AND window 2 after the Hello-replay rejoin — must
        // match this reference window by window.
        let windows: Vec<&[sonata::packet::Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
        let parts = Fabric::new(&plan, cfg())
            .unwrap()
            .partition_window(windows[1]);
        let mut filtered = windows[0].to_vec();
        filtered.extend(parts[0].iter().cloned());
        filtered.extend(windows[2].iter().cloned());
        let reference = Fabric::new(&plan, cfg())
            .unwrap()
            .process_trace(&Trace::new(filtered))
            .unwrap();
        assert_outputs_match(&reference, &lost, &format!("seed {seed}: switch loss"));
        assert_eq!(
            reference.windows[1].packets, lost.windows[1].packets,
            "seed {seed}"
        );
    }
}

#[test]
fn mid_window_switch_loss_closes_degraded_without_stalling() {
    // The harsher cut: the switch dies partway through its partition,
    // after its window is already open on the wire. The fabric must
    // still close the window (degraded, straggler bit set) with the
    // partial state it got, and the rejoin must leave the following
    // window clean.
    for seed in chaos_seeds() {
        let tr = chaos_trace(3, seed);
        let queries = chaos_queries();
        let plan = chaos_plan(&queries, &tr);
        let cfg = || RuntimeConfig {
            topology: Some(TopologyConfig::new(2, 1)),
            ..RuntimeConfig::default()
        };
        let clean = Fabric::new(&plan, cfg())
            .unwrap()
            .process_trace(&tr)
            .unwrap();
        let mut fab = Fabric::new(&plan, cfg()).unwrap();
        fab.set_outage(SwitchOutage {
            switch: 1,
            from_window: 1,
            cut_after: 5,
            rejoin_window: 2,
        })
        .unwrap();
        let lost = fab.process_trace(&tr).unwrap();
        assert_eq!(lost.windows.len(), 3, "seed {seed}");
        let d = lost.windows[1].degraded.as_ref().expect("degraded");
        assert_eq!(d.straggler_switches, 0b10, "seed {seed}");
        // The straggler's unclosed packets are gone, not buffered.
        assert!(
            lost.windows[1].packets < clean.windows[1].packets,
            "seed {seed}"
        );
        // Before and after the outage the fabric is healthy: window 0
        // is bit-identical to the clean run and the rejoin window
        // carries no degraded marker.
        assert_eq!(clean.windows[0], lost.windows[0], "seed {seed}");
        assert!(lost.windows[2].degraded.is_none(), "seed {seed}");
        assert_eq!(
            clean.windows[2].packets, lost.windows[2].packets,
            "seed {seed}"
        );
    }
}

// ---------------------------------------------------------------------------
// Replanning under chaos: the epoch-versioned swap racing switch loss,
// faulted control channels, and laggard frames from the replaced plan.
// ---------------------------------------------------------------------------

const DRIFT_WINDOWS: u32 = 8;
const DRIFT_SWAP_DELAY: u64 = 2;

/// The convergence suite's catalog mix at default thresholds — the
/// attack onset has to move per-query channel loads enough to breach
/// the drift monitor, which the low chaos thresholds blur.
fn drift_queries() -> Vec<Query> {
    let t = Thresholds::default();
    vec![
        catalog::newly_opened_tcp_conns(&t),
        catalog::superspreader(&t),
        catalog::ddos(&t),
    ]
}

fn drift_workload() -> DriftWorkload {
    DriftWorkload {
        onset_window: 2,
        packets_per_window: 4_000,
        ..DriftWorkload::new(DriftScenario::attack_onset(), DRIFT_WINDOWS, 3_000)
    }
}

/// Plan + armed replanner trained on the workload's quiet prefix.
fn drift_plan(wl: &DriftWorkload, seed: u64) -> (GlobalPlan, Replanner) {
    let queries = drift_queries();
    let training = wl.training(seed);
    let windows: Vec<&[sonata::packet::Packet]> = training.windows(3_000).map(|(_, p)| p).collect();
    let cfg = PlannerConfig::default();
    let plan = plan_queries(&queries, &windows, &cfg).unwrap();
    let rp = Replanner::from_training(&queries, &windows, cfg, 4).unwrap();
    (plan, rp)
}

fn drift_replan(rp: Replanner) -> ReplanConfig {
    ReplanConfig {
        replanner: Some(rp),
        swap_delay: DRIFT_SWAP_DELAY,
        ..ReplanConfig::default()
    }
}

fn swap_events(obs: &ObsHandle) -> Vec<(u64, u64)> {
    obs.events()
        .iter()
        .filter_map(|e| match &e.kind {
            sonata::obs::EventKind::PlanSwap { window, epoch, .. } => Some((*window, *epoch)),
            _ => None,
        })
        .collect()
}

#[test]
fn replan_swap_races_switch_loss_and_rejoin_comes_back_under_the_new_epoch() {
    // A 2×1 fabric swaps in an epoch-1 plan while switch 1 is dark:
    // the switch misses the swap entirely and rejoins the window
    // after, replaying its Hello against a plan it never saw land. The
    // contract: the outage neither delays, duplicates, nor drops the
    // swap; no merged window mixes epochs; and the rejoined switch is
    // brought forward to the current epoch by the Hello replay +
    // control catch-up, indistinguishable from one that never left.
    let seed = chaos_seeds()[0];
    let wl = drift_workload();
    let (plan, rp) = drift_plan(&wl, seed);
    let drifted = wl.generate(seed);
    let cfg = |obs: ObsHandle, rp: Replanner| RuntimeConfig {
        obs,
        topology: Some(TopologyConfig::new(2, 1)),
        replan: drift_replan(rp),
        ..RuntimeConfig::default()
    };

    // Dry run pins this seed's swap boundary so the outage can be
    // aimed exactly at it.
    let dry_obs = ObsHandle::enabled();
    Fabric::new(&plan, cfg(dry_obs.clone(), rp.clone()))
        .unwrap()
        .process_trace(&drifted)
        .unwrap();
    let dry = swap_events(&dry_obs);
    assert_eq!(dry.len(), 1, "dry run: one sustained breach, one swap");
    let (swap_window, _) = dry[0];
    assert!(
        swap_window + 1 < DRIFT_WINDOWS as u64,
        "rejoin window must fall inside the run"
    );

    let obs = ObsHandle::enabled();
    let mut fab = Fabric::new(&plan, cfg(obs.clone(), rp)).unwrap();
    fab.set_outage(SwitchOutage {
        switch: 1,
        from_window: swap_window,
        cut_after: 0, // dark for the whole swap window
        rejoin_window: swap_window + 1,
    })
    .unwrap();
    let report = fab.process_trace(&drifted).unwrap();
    assert_eq!(report.windows.len(), DRIFT_WINDOWS as usize);

    // Same single swap at the same boundary as the outage-free run.
    assert_eq!(swap_events(&obs), dry, "the outage must not move the swap");
    assert_eq!(fab.epoch(), 1);

    // No merged window mixes epochs: 0 strictly before the boundary,
    // 1 from it — including the degraded swap window (closed from the
    // surviving switch's epoch-1 contribution alone) and the rejoin
    // window.
    for w in &report.windows {
        let expect = if w.window < swap_window { 0 } else { 1 };
        assert_eq!(w.epoch, expect, "window {}", w.window);
    }

    // The swap window closed degraded with switch 1's straggler bit —
    // the fabric did not stall waiting for the dead switch to learn
    // about the new plan.
    let d = report.windows[swap_window as usize]
        .degraded
        .as_ref()
        .expect("swap window closes degraded under the outage");
    assert_eq!(d.straggler_switches, 0b10);

    // Every other window is clean: in particular the rejoin window,
    // whose Hello replay verified against the epoch-1 digest and whose
    // control state was caught up before the window opened.
    for w in &report.windows {
        if w.window != swap_window {
            assert!(w.degraded.is_none(), "window {}", w.window);
        }
    }
}

#[test]
fn replan_swap_lands_on_a_faulted_control_channel() {
    // Every boundary control turn — including the one that commits the
    // epoch-1 swap — fails once and goes through the retry path. The
    // retry must neither move the swap boundary nor leak an epoch
    // across it, and the recovered outputs must match the fault-free
    // replanning run window by window.
    let seed = chaos_seeds()[0];
    let wl = drift_workload();
    let (plan, rp) = drift_plan(&wl, seed);
    let drifted = wl.generate(seed);

    let clean_obs = ObsHandle::enabled();
    let clean = Runtime::new(
        &plan,
        RuntimeConfig {
            obs: clean_obs.clone(),
            replan: drift_replan(rp.clone()),
            ..RuntimeConfig::default()
        },
    )
    .unwrap()
    .process_trace(&drifted)
    .unwrap();

    let obs = ObsHandle::enabled();
    let faulted = Runtime::new(
        &plan,
        RuntimeConfig {
            obs: obs.clone(),
            faults: FaultPlan {
                seed,
                boundary: BoundaryFaults {
                    fail_per_mille: 1000,
                    consecutive: 1, // recovered by the first retry
                },
                ..FaultPlan::default()
            },
            replan: drift_replan(rp),
            ..RuntimeConfig::default()
        },
    )
    .unwrap()
    .process_trace(&drifted)
    .unwrap();

    assert_eq!(
        swap_events(&obs),
        swap_events(&clean_obs),
        "boundary retries must not move the swap"
    );
    assert_eq!(swap_events(&obs).len(), 1);
    let (swap_window, epoch) = swap_events(&obs)[0];
    assert_eq!(epoch, 1);
    for (c, f) in clean.windows.iter().zip(&faulted.windows) {
        assert_eq!(c.epoch, f.epoch, "window {}", c.window);
        assert_eq!(
            f.epoch,
            if f.window < swap_window { 0 } else { 1 },
            "window {}",
            f.window
        );
    }
    assert_outputs_match(&clean, &faulted, "faulted control channel");
    for w in &faulted.windows {
        let d = w.degraded.as_ref().expect("every window degraded");
        assert_eq!(d.boundary_retries, 1, "window {}", w.window);
        assert!(!d.boundary_update_skipped, "window {}", w.window);
    }
}

#[test]
fn laggard_frames_from_the_replaced_plan_drop_typed_and_hello_replay_rejoins() {
    // The wire-level half of the swap contract, driven through real
    // endpoints over a loopback transport: once the collector (the
    // epoch authority) commits epoch 1, every data frame still stamped
    // with the replaced plan's epoch is dropped with the typed
    // [`NetError::StaleEpoch`] — never silently, never merged into an
    // epoch-1 window. Session Hellos stay exempt (guarded by the plan
    // digest instead), which is exactly what lets a laggard switch
    // rejoin: commit the swapped plan, replay the Hello, pass the
    // screen.
    use sonata::faults::FaultInjector;
    use sonata::net::{
        loopback_pair, CollectorEndpoint, Frame, NetError, NetMetrics, SwitchEndpoint,
    };
    use sonata::pisa::{Report, ReportKind, TaskId};
    use sonata::query::QueryId;

    let wire_report = |seq: u64| Report {
        task: TaskId {
            query: QueryId(1),
            level: 32,
            branch: 0,
        },
        kind: ReportKind::Tuple,
        columns: vec![("ipv4.src".into(), seq)],
        packet: None,
        entry_op: None,
        seq,
    };

    let metrics = NetMetrics::new(&ObsHandle::disabled());
    let (sw_t, sp_t) = loopback_pair(256, &metrics);
    let mut sw = SwitchEndpoint::new(
        Box::new(sw_t),
        FaultInjector::disabled(),
        metrics.clone(),
        "sw0",
        7, // epoch-0 plan digest
        0,
    )
    .unwrap();
    let mut sp = CollectorEndpoint::new(Box::new(sp_t), metrics, 7, 0);
    // The session Hello is verified and filtered out of the stream.
    assert!(sp.try_recv_frame().unwrap().is_none());

    // A full epoch-0 window flows normally.
    sw.open_window(0, 1).unwrap();
    sw.send_packet_reports(vec![wire_report(1)]).unwrap();
    sw.close_window(0, 0, 0, 0).unwrap();
    let mut closed = false;
    while let Some(f) = sp.try_recv_frame().unwrap() {
        if matches!(f, Frame::WindowClose { window: 0, .. }) {
            closed = true;
            break;
        }
    }
    assert!(closed, "the epoch-0 window drains to the collector");
    assert_eq!(sp.last_epoch(), 0);

    // The collector commits the swap; the laggard switch keeps talking
    // under the replaced plan. Every one of its data frames — open,
    // report, close — is consumed and rejected with the typed error.
    sp.set_plan(9, 1);
    sw.open_window(1, 1).unwrap();
    sw.send_packet_reports(vec![wire_report(2)]).unwrap();
    sw.close_window(1, 0, 0, 0).unwrap();
    for _ in 0..3 {
        assert_eq!(
            sp.try_recv_frame().unwrap_err(),
            NetError::StaleEpoch { theirs: 0, ours: 1 }
        );
    }
    assert!(
        sp.try_recv_frame().unwrap().is_none(),
        "the laggard's whole window is discarded, nothing is merged"
    );

    // Hellos are identity, not plan output: the laggard can always
    // open a session — but one carrying the replaced digest is refused
    // by the digest guard, so it cannot sneak back in un-swapped.
    sw.resend_hello().unwrap();
    assert_eq!(
        sp.try_recv_frame().unwrap_err(),
        NetError::PlanMismatch { theirs: 7, ours: 9 }
    );

    // Committing the swapped plan replays a Hello with the new digest;
    // it verifies, and the switch's frames pass the epoch screen.
    sw.set_plan(9, 1).unwrap();
    assert_eq!(sw.epoch(), 1);
    sw.open_window(2, 1).unwrap();
    assert!(matches!(
        sp.try_recv_frame().unwrap(),
        Some(Frame::WindowOpen { window: 2, .. })
    ));
    assert_eq!(sp.last_epoch(), 1);
}

#[test]
fn chaos_sweep_survives_every_fault_kind_at_once() {
    // The kitchen sink: all fault kinds live simultaneously, across
    // every pinned seed and both engine backends. The only invariants
    // strong enough to survive arbitrary report loss are the safety
    // ones: no panic, full window coverage, and markers that account
    // for what fired.
    for seed in chaos_seeds() {
        let tr = chaos_trace(3, seed);
        let queries = chaos_queries();
        let plan = chaos_plan(&queries, &tr);
        let faults = FaultPlan {
            seed,
            report: ReportFaults {
                drop_per_mille: 100,
                duplicate_per_mille: 100,
                delay_per_mille: 100,
                reorder_per_mille: 50,
                delay_packets: 8,
            },
            worker: WorkerFaults {
                crash_per_mille: 300,
                consecutive_crashes: 2,
                stall_per_mille: 200,
                stall_ms: 1,
            },
            boundary: BoundaryFaults {
                fail_per_mille: 300,
                consecutive: 1,
            },
            ..FaultPlan::default()
        };
        for workers in [1usize, 4] {
            let report = run(&plan, &tr, faults, workers);
            assert_eq!(report.windows.len(), 3, "seed {seed}, {workers} workers");
            assert!(
                report.total_faults().total() > 0,
                "seed {seed}: the sweep must actually inject"
            );
            for w in &report.windows {
                if let Some(d) = &w.degraded {
                    assert!(!d.is_clean(), "clean marker attached, window {}", w.window);
                }
            }
        }
    }
}
