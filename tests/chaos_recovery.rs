//! Chaos/recovery suite for the deterministic fault-injection layer.
//!
//! Each scenario runs a real multi-query, multi-window workload twice
//! — once clean, once under a seeded [`FaultPlan`] — and asserts the
//! three contract points of the fault layer:
//!
//! 1. **no panic escapes**: every faulted run returns `Ok`, however
//!    hostile the plan;
//! 2. **blast-radius containment**: queries outside the plan's
//!    `target_query` produce byte-identical alerts and tuple counts;
//! 3. **graceful degradation**: each injected fault is visible in the
//!    window's [`DegradedWindow`] marker, and the paired recovery path
//!    (duplicate suppression, worker respawn + retry, single-mode
//!    fallback, boundary retry-with-backoff) brings the observable
//!    outputs back to the clean run wherever the paper's semantics
//!    allow it.
//!
//! Seeds come from `SONATA_CHAOS_SEEDS` (comma-separated, default
//! `7,11,13`) so CI's chaos-smoke job can pin its own set.

use sonata::prelude::*;
use sonata::query::Query;
use sonata::stream::testsupport::{assert_differential, low_thresholds, seeded_packets};
use std::time::Duration;

const WINDOW_NS: u64 = 3_000_000_000;

fn chaos_seeds() -> Vec<u64> {
    std::env::var("SONATA_CHAOS_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![7, 11, 13])
}

/// A deterministic multi-window trace: one `testsupport` mixed window
/// per 3-second slot, re-seeded per slot so windows differ.
fn chaos_trace(windows: u64, seed: u64) -> Trace {
    let mut pkts = Vec::new();
    for w in 0..windows {
        let mut chunk = seeded_packets(seed.wrapping_add(w), 300);
        for p in &mut chunk {
            p.ts_nanos += w * WINDOW_NS;
        }
        pkts.extend(chunk);
    }
    Trace::new(pkts)
}

fn chaos_queries() -> Vec<Query> {
    let t = low_thresholds();
    vec![
        catalog::newly_opened_tcp_conns(&t),
        catalog::superspreader(&t),
    ]
}

fn chaos_plan_mode(queries: &[Query], tr: &Trace, mode: PlanMode) -> GlobalPlan {
    let windows: Vec<&[sonata::packet::Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
    let cfg = PlannerConfig {
        mode,
        cost: sonata::planner::costs::CostConfig {
            levels: Some(vec![8, 32]),
            ..Default::default()
        },
        ..Default::default()
    };
    plan_queries(queries, &windows, &cfg).unwrap()
}

fn chaos_plan(queries: &[Query], tr: &Trace) -> GlobalPlan {
    chaos_plan_mode(queries, tr, PlanMode::Sonata)
}

fn run(plan: &GlobalPlan, tr: &Trace, faults: FaultPlan, workers: usize) -> TelemetryReport {
    let mut rt = Runtime::new(
        plan,
        RuntimeConfig {
            faults,
            workers,
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    rt.process_trace(tr).unwrap()
}

/// Assert the user-visible outputs (alerts, tuple accounting, filter
/// writes) of two runs agree window by window — the degraded markers
/// and latencies are allowed to differ.
fn assert_outputs_match(clean: &TelemetryReport, faulted: &TelemetryReport, ctx: &str) {
    assert_eq!(clean.windows.len(), faulted.windows.len(), "{ctx}");
    for (c, f) in clean.windows.iter().zip(&faulted.windows) {
        assert_eq!(c.alerts, f.alerts, "{ctx}: window {}", c.window);
        assert_eq!(c.tuples_to_sp, f.tuples_to_sp, "{ctx}: window {}", c.window);
        assert_eq!(
            c.tuples_per_query, f.tuples_per_query,
            "{ctx}: window {}",
            c.window
        );
        assert_eq!(
            c.filter_entries_written, f.filter_entries_written,
            "{ctx}: window {}",
            c.window
        );
    }
}

#[test]
fn disabled_faults_are_bit_identical_to_the_seed_runtime() {
    for seed in chaos_seeds() {
        let tr = chaos_trace(3, seed);
        let queries = chaos_queries();
        let plan = chaos_plan(&queries, &tr);
        let clean = run(&plan, &tr, FaultPlan::none(), 1);
        // FaultPlan::none() compiles to a disabled injector, so the
        // whole WindowReport — including the absent degraded marker —
        // must equal the default-config run bit for bit.
        let default = {
            let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
            rt.process_trace(&tr).unwrap()
        };
        assert_eq!(clean.windows, default.windows, "seed {seed}");
        assert!(clean.windows.iter().all(|w| w.degraded.is_none()));
    }
    // Differential guard at the engine layer: the sharded engine the
    // runtime sits on still matches the single-threaded engine and the
    // reference interpreter on the same seeded traffic.
    let pkts = seeded_packets(chaos_seeds()[0], 400);
    for q in chaos_queries() {
        assert_differential(&q, &pkts, &[1, 2, 4]);
    }
}

#[test]
fn report_faults_degrade_without_touching_untargeted_queries() {
    for seed in chaos_seeds() {
        let tr = chaos_trace(3, seed);
        let queries = chaos_queries();
        let (target, spared) = (queries[0].id, queries[1].id);
        // All-SP plans mirror every packet to the stream processor, so
        // the egress actually carries per-packet reports to fault
        // (Sonata plans keep most state in switch registers, whose
        // window dumps are out of the report-fault blast radius by
        // design).
        let plan = chaos_plan_mode(&queries, &tr, PlanMode::AllSp);
        let clean = run(&plan, &tr, FaultPlan::none(), 1);
        let faults = FaultPlan {
            seed,
            target_query: Some(target.0),
            report: ReportFaults {
                drop_per_mille: 150,
                duplicate_per_mille: 150,
                delay_per_mille: 150,
                reorder_per_mille: 100,
                delay_packets: 6,
            },
            ..FaultPlan::default()
        };
        let faulted = run(&plan, &tr, faults, 1);
        // Faults were actually injected, and the duplicates the switch
        // re-emitted were all suppressed by the emitter.
        let totals = faulted.total_faults();
        assert!(totals.get(FaultKind::ReportDrop) > 0, "seed {seed}");
        assert!(totals.get(FaultKind::ReportDuplicate) > 0, "seed {seed}");
        assert!(totals.get(FaultKind::ReportDelay) > 0, "seed {seed}");
        assert!(faulted.degraded_windows() > 0, "seed {seed}");
        let suppressed: u64 = faulted
            .windows
            .iter()
            .filter_map(|w| w.degraded.as_ref())
            .map(|d| d.duplicates_suppressed)
            .sum();
        assert_eq!(
            suppressed,
            totals.get(FaultKind::ReportDuplicate),
            "seed {seed}: every injected duplicate must be suppressed"
        );
        // The untargeted query is untouched: identical alerts and
        // identical tuple intake, window by window.
        assert_eq!(
            clean.alerts_for(spared),
            faulted.alerts_for(spared),
            "seed {seed}"
        );
        assert_eq!(
            clean.tuples_for(spared),
            faulted.tuples_for(spared),
            "seed {seed}"
        );
    }
}

#[test]
fn worker_crash_respawns_and_recovers_to_baseline() {
    for seed in chaos_seeds() {
        let tr = chaos_trace(2, seed);
        let queries = chaos_queries();
        let plan = chaos_plan(&queries, &tr);
        let clean = run(&plan, &tr, FaultPlan::none(), 4);
        let faults = FaultPlan {
            seed,
            worker: WorkerFaults {
                crash_per_mille: 1000,
                consecutive_crashes: 1,
                ..WorkerFaults::default()
            },
            ..FaultPlan::default()
        };
        for workers in [1usize, 4] {
            let faulted = run(&plan, &tr, faults, workers);
            // Every job crashed once and the respawn-and-retry path
            // absorbed it without reaching the single-mode fallback.
            assert_outputs_match(&clean, &faulted, &format!("seed {seed}, {workers} workers"));
            let (retries, fallbacks) = faulted
                .windows
                .iter()
                .filter_map(|w| w.degraded.as_ref())
                .fold((0u64, 0u64), |(r, f), d| {
                    (r + d.worker_retries, f + d.single_mode_fallbacks)
                });
            assert!(retries > 0, "seed {seed}: retry path never fired");
            assert_eq!(fallbacks, 0, "seed {seed}: fallback should be unreachable");
            assert!(faulted.total_faults().get(FaultKind::WorkerCrash) > 0);
        }
    }
}

#[test]
fn repeated_worker_crashes_fall_back_to_single_mode() {
    let seed = chaos_seeds()[0];
    let tr = chaos_trace(2, seed);
    let queries = chaos_queries();
    let plan = chaos_plan(&queries, &tr);
    let clean = run(&plan, &tr, FaultPlan::none(), 4);
    let faults = FaultPlan {
        seed,
        worker: WorkerFaults {
            crash_per_mille: 1000,
            consecutive_crashes: 2, // crash the retry too
            ..WorkerFaults::default()
        },
        ..FaultPlan::default()
    };
    let faulted = run(&plan, &tr, faults, 4);
    // The single-mode fallback engine produced the same outputs the
    // sharded engine would have (the differential guarantee).
    assert_outputs_match(&clean, &faulted, "single-mode fallback");
    let fallbacks: u64 = faulted
        .windows
        .iter()
        .filter_map(|w| w.degraded.as_ref())
        .map(|d| d.single_mode_fallbacks)
        .sum();
    assert!(fallbacks > 0, "fallback path never fired");
}

#[test]
fn boundary_retry_recovers_within_bound() {
    for seed in chaos_seeds() {
        let tr = chaos_trace(3, seed);
        let queries = chaos_queries();
        let plan = chaos_plan(&queries, &tr);
        let clean = run(&plan, &tr, FaultPlan::none(), 1);
        let faults = FaultPlan {
            seed,
            boundary: BoundaryFaults {
                fail_per_mille: 1000,
                consecutive: 1, // recovered by the first retry
            },
            ..FaultPlan::default()
        };
        let faulted = run(&plan, &tr, faults, 1);
        // The retry landed the same filter entries the clean run
        // wrote, and the simulated backoff shows up in the latency.
        assert_outputs_match(&clean, &faulted, &format!("seed {seed}"));
        for (c, f) in clean.windows.iter().zip(&faulted.windows) {
            let d = f.degraded.as_ref().expect("every window degraded");
            assert_eq!(d.boundary_retries, 1, "window {}", f.window);
            assert!(!d.boundary_update_skipped, "window {}", f.window);
            assert_eq!(
                f.update_latency,
                c.update_latency + Duration::from_millis(1),
                "window {}: one retry adds exactly the first backoff step",
                f.window
            );
        }
    }
}

#[test]
fn boundary_exhaustion_skips_the_update_but_completes_the_run() {
    let seed = chaos_seeds()[0];
    let tr = chaos_trace(3, seed);
    let queries = chaos_queries();
    let plan = chaos_plan(&queries, &tr);
    let faults = FaultPlan {
        seed,
        boundary: BoundaryFaults {
            fail_per_mille: 1000,
            consecutive: 10, // beyond the runtime's retry bound
        },
        ..FaultPlan::default()
    };
    let faulted = run(&plan, &tr, faults, 1);
    assert_eq!(faulted.windows.len(), 3);
    for w in &faulted.windows {
        let d = w.degraded.as_ref().expect("every window degraded");
        assert!(d.boundary_update_skipped, "window {}", w.window);
        assert_eq!(w.filter_entries_written, 0, "window {}", w.window);
    }
    // The run still produced alerts — skipping a filter update never
    // loses final results, it only widens the next window's intake.
    assert!(faulted.windows.iter().any(|w| !w.alerts.is_empty()));
}

#[test]
fn worker_stalls_delay_but_do_not_change_outputs() {
    let seed = chaos_seeds()[0];
    let tr = chaos_trace(2, seed);
    let queries = chaos_queries();
    let plan = chaos_plan(&queries, &tr);
    let clean = run(&plan, &tr, FaultPlan::none(), 2);
    let faults = FaultPlan {
        seed,
        worker: WorkerFaults {
            stall_per_mille: 1000,
            stall_ms: 1,
            ..WorkerFaults::default()
        },
        ..FaultPlan::default()
    };
    let faulted = run(&plan, &tr, faults, 2);
    assert_outputs_match(&clean, &faulted, "stall");
    assert!(faulted.total_faults().get(FaultKind::WorkerStall) > 0);
}

#[test]
fn switch_loss_isolates_to_the_dead_switchs_traffic_and_rejoin_resyncs() {
    // Fabric switch-loss: switch 1 of a 2×1 fabric dies at the start
    // of window 1 and rejoins (Hello replay + control resync) for
    // window 2. The contract mirrors the targeted-query one: the shard
    // closes the window degraded instead of stalling, the surviving
    // switch's traffic is processed exactly as if the dead switch's
    // partition had never existed, and the rejoined switch is
    // indistinguishable from one that never left.
    for seed in chaos_seeds() {
        let tr = chaos_trace(3, seed);
        let queries = chaos_queries();
        let plan = chaos_plan(&queries, &tr);
        let cfg = || RuntimeConfig {
            topology: Some(TopologyConfig::new(2, 1)),
            ..RuntimeConfig::default()
        };
        let clean = Fabric::new(&plan, cfg())
            .unwrap()
            .process_trace(&tr)
            .unwrap();

        let mut fab = Fabric::new(&plan, cfg()).unwrap();
        fab.set_outage(SwitchOutage {
            switch: 1,
            from_window: 1,
            cut_after: 0, // dark for all of window 1
            rejoin_window: 2,
        })
        .unwrap();
        let lost = fab.process_trace(&tr).unwrap();
        assert_eq!(lost.windows.len(), 3, "seed {seed}");

        // The shard closed window 1 degraded with switch 1's straggler
        // bit — and did not stall or poison the neighbouring windows.
        let d = lost.windows[1].degraded.as_ref().expect("degraded");
        assert_eq!(d.straggler_switches, 0b10, "seed {seed}");
        assert!(lost.windows[0].degraded.is_none(), "seed {seed}");
        assert!(lost.windows[2].degraded.is_none(), "seed {seed}");
        // Window 0 predates the outage entirely: bit-identical.
        assert_eq!(clean.windows[0], lost.windows[0], "seed {seed}");

        // Reference: the same fabric over a trace where switch 1's
        // window-1 partition never arrived. The flow-sticky partition
        // is per-packet deterministic, so the surviving switch sees the
        // same packets either way; every user-visible output — window 1
        // under loss AND window 2 after the Hello-replay rejoin — must
        // match this reference window by window.
        let windows: Vec<&[sonata::packet::Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
        let parts = Fabric::new(&plan, cfg())
            .unwrap()
            .partition_window(windows[1]);
        let mut filtered = windows[0].to_vec();
        filtered.extend(parts[0].iter().cloned());
        filtered.extend(windows[2].iter().cloned());
        let reference = Fabric::new(&plan, cfg())
            .unwrap()
            .process_trace(&Trace::new(filtered))
            .unwrap();
        assert_outputs_match(&reference, &lost, &format!("seed {seed}: switch loss"));
        assert_eq!(
            reference.windows[1].packets, lost.windows[1].packets,
            "seed {seed}"
        );
    }
}

#[test]
fn mid_window_switch_loss_closes_degraded_without_stalling() {
    // The harsher cut: the switch dies partway through its partition,
    // after its window is already open on the wire. The fabric must
    // still close the window (degraded, straggler bit set) with the
    // partial state it got, and the rejoin must leave the following
    // window clean.
    for seed in chaos_seeds() {
        let tr = chaos_trace(3, seed);
        let queries = chaos_queries();
        let plan = chaos_plan(&queries, &tr);
        let cfg = || RuntimeConfig {
            topology: Some(TopologyConfig::new(2, 1)),
            ..RuntimeConfig::default()
        };
        let clean = Fabric::new(&plan, cfg())
            .unwrap()
            .process_trace(&tr)
            .unwrap();
        let mut fab = Fabric::new(&plan, cfg()).unwrap();
        fab.set_outage(SwitchOutage {
            switch: 1,
            from_window: 1,
            cut_after: 5,
            rejoin_window: 2,
        })
        .unwrap();
        let lost = fab.process_trace(&tr).unwrap();
        assert_eq!(lost.windows.len(), 3, "seed {seed}");
        let d = lost.windows[1].degraded.as_ref().expect("degraded");
        assert_eq!(d.straggler_switches, 0b10, "seed {seed}");
        // The straggler's unclosed packets are gone, not buffered.
        assert!(
            lost.windows[1].packets < clean.windows[1].packets,
            "seed {seed}"
        );
        // Before and after the outage the fabric is healthy: window 0
        // is bit-identical to the clean run and the rejoin window
        // carries no degraded marker.
        assert_eq!(clean.windows[0], lost.windows[0], "seed {seed}");
        assert!(lost.windows[2].degraded.is_none(), "seed {seed}");
        assert_eq!(
            clean.windows[2].packets, lost.windows[2].packets,
            "seed {seed}"
        );
    }
}

#[test]
fn chaos_sweep_survives_every_fault_kind_at_once() {
    // The kitchen sink: all fault kinds live simultaneously, across
    // every pinned seed and both engine backends. The only invariants
    // strong enough to survive arbitrary report loss are the safety
    // ones: no panic, full window coverage, and markers that account
    // for what fired.
    for seed in chaos_seeds() {
        let tr = chaos_trace(3, seed);
        let queries = chaos_queries();
        let plan = chaos_plan(&queries, &tr);
        let faults = FaultPlan {
            seed,
            report: ReportFaults {
                drop_per_mille: 100,
                duplicate_per_mille: 100,
                delay_per_mille: 100,
                reorder_per_mille: 50,
                delay_packets: 8,
            },
            worker: WorkerFaults {
                crash_per_mille: 300,
                consecutive_crashes: 2,
                stall_per_mille: 200,
                stall_ms: 1,
            },
            boundary: BoundaryFaults {
                fail_per_mille: 300,
                consecutive: 1,
            },
            ..FaultPlan::default()
        };
        for workers in [1usize, 4] {
            let report = run(&plan, &tr, faults, workers);
            assert_eq!(report.windows.len(), 3, "seed {seed}, {workers} workers");
            assert!(
                report.total_faults().total() > 0,
                "seed {seed}: the sweep must actually inject"
            );
            for w in &report.windows {
                if let Some(d) = &w.degraded {
                    assert!(!d.is_clean(), "clean marker attached, window {}", w.window);
                }
            }
        }
    }
}
