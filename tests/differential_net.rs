//! Differential suite for the wire/transport layer (`sonata-net`).
//!
//! The transport is supposed to be invisible: a run over real TCP
//! sockets — including the threaded driver that puts the switch and
//! the stream processor on separate OS threads — must produce
//! *bit-identical* `WindowReport`s to the in-process `Loopback`
//! default, across the query catalog, across seeds, across shard
//! counts, and under transport-seam fault injection.
//!
//! Seeds come from `SONATA_NET_SEEDS` (comma-separated, default
//! `7,23`) so CI's net-smoke job can pin its own set.

use sonata::prelude::*;
use sonata::query::Query;
use sonata::stream::testsupport::{low_thresholds, seeded_packets};

const WINDOW_NS: u64 = 3_000_000_000;

fn net_seeds() -> Vec<u64> {
    std::env::var("SONATA_NET_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![7, 23])
}

/// A deterministic multi-window trace: one `testsupport` mixed window
/// per 3-second slot, re-seeded per slot so windows differ.
fn net_trace(windows: u64, seed: u64) -> Trace {
    let mut pkts = Vec::new();
    for w in 0..windows {
        let mut chunk = seeded_packets(seed.wrapping_add(w), 300);
        for p in &mut chunk {
            p.ts_nanos += w * WINDOW_NS;
        }
        pkts.extend(chunk);
    }
    Trace::new(pkts)
}

fn net_queries() -> Vec<Query> {
    let t = low_thresholds();
    vec![
        catalog::newly_opened_tcp_conns(&t),
        catalog::superspreader(&t),
    ]
}

fn net_plan_mode(queries: &[Query], tr: &Trace, mode: PlanMode) -> GlobalPlan {
    let windows: Vec<&[sonata::packet::Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
    let cfg = PlannerConfig {
        mode,
        cost: sonata::planner::costs::CostConfig {
            levels: Some(vec![8, 32]),
            ..Default::default()
        },
        ..Default::default()
    };
    plan_queries(queries, &windows, &cfg).unwrap()
}

fn net_plan(queries: &[Query], tr: &Trace) -> GlobalPlan {
    net_plan_mode(queries, tr, PlanMode::Sonata)
}

fn config(transport: TransportKind, workers: usize, faults: FaultPlan) -> RuntimeConfig {
    RuntimeConfig {
        transport,
        workers,
        faults,
        ..RuntimeConfig::default()
    }
}

fn run(plan: &GlobalPlan, tr: &Trace, cfg: RuntimeConfig) -> TelemetryReport {
    let mut rt = Runtime::new(plan, cfg).unwrap();
    rt.process_trace(tr).unwrap()
}

fn run_threaded(plan: &GlobalPlan, tr: &Trace, cfg: RuntimeConfig) -> TelemetryReport {
    let mut rt = Runtime::new(plan, cfg).unwrap();
    rt.process_trace_threaded(tr).unwrap()
}

#[test]
fn tcp_is_bit_identical_to_loopback_across_catalog_and_seeds() {
    for seed in net_seeds() {
        let tr = net_trace(3, seed);
        let queries = net_queries();
        for mode in [PlanMode::Sonata, PlanMode::AllSp] {
            let plan = net_plan_mode(&queries, &tr, mode);
            let loopback = run(
                &plan,
                &tr,
                config(TransportKind::Loopback, 1, FaultPlan::none()),
            );
            let tcp = run(&plan, &tr, config(TransportKind::Tcp, 1, FaultPlan::none()));
            assert_eq!(
                loopback.windows, tcp.windows,
                "seed {seed}, mode {mode:?}: TCP diverged from Loopback"
            );
        }
    }
}

#[test]
fn loopback_default_is_bit_identical_to_default_config() {
    // `TransportKind::Loopback` IS the default: a config that never
    // mentions the transport must run the exact same bytes through the
    // exact same path.
    let seed = net_seeds()[0];
    let tr = net_trace(3, seed);
    let queries = net_queries();
    let plan = net_plan(&queries, &tr);
    let explicit = run(
        &plan,
        &tr,
        config(TransportKind::Loopback, 1, FaultPlan::none()),
    );
    let default = {
        let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
        rt.process_trace(&tr).unwrap()
    };
    assert_eq!(explicit.windows, default.windows);
}

#[test]
fn threaded_tcp_driver_matches_the_single_threaded_run() {
    // Switch and stream processor on separate OS threads, talking only
    // through the socket: window-lockstep credits make the interleaving
    // deterministic, so the reports stay bit-identical.
    for seed in net_seeds() {
        let tr = net_trace(3, seed);
        let queries = net_queries();
        let plan = net_plan(&queries, &tr);
        let single = run(
            &plan,
            &tr,
            config(TransportKind::Loopback, 1, FaultPlan::none()),
        );
        for transport in [TransportKind::Loopback, TransportKind::Tcp] {
            let threaded = run_threaded(&plan, &tr, config(transport, 1, FaultPlan::none()));
            assert_eq!(
                single.windows, threaded.windows,
                "seed {seed}, {transport:?}: threaded driver diverged"
            );
        }
    }
}

#[test]
fn tcp_matches_loopback_at_every_shard_count() {
    let seed = net_seeds()[0];
    let tr = net_trace(2, seed);
    let queries = net_queries();
    let plan = net_plan(&queries, &tr);
    let baseline = run(
        &plan,
        &tr,
        config(TransportKind::Loopback, 1, FaultPlan::none()),
    );
    for workers in [1usize, 2, 4, 8] {
        let tcp = run(
            &plan,
            &tr,
            config(TransportKind::Tcp, workers, FaultPlan::none()),
        );
        assert_eq!(
            baseline.windows, tcp.windows,
            "{workers} workers over TCP diverged from the single-shard Loopback run"
        );
    }
}

#[test]
fn transport_seam_faults_are_identical_on_both_backends() {
    // Report faults now live at the transport seam; the same seeded
    // plan must produce the same verdict sequence — and therefore the
    // same degraded outputs — whether the frames cross a socket or an
    // in-process queue.
    for seed in net_seeds() {
        let tr = net_trace(3, seed);
        let queries = net_queries();
        // All-SP plans mirror every packet, so the egress actually
        // carries per-packet reports to fault.
        let plan = net_plan_mode(&queries, &tr, PlanMode::AllSp);
        let faults = FaultPlan {
            seed,
            report: ReportFaults {
                drop_per_mille: 150,
                duplicate_per_mille: 150,
                delay_per_mille: 150,
                reorder_per_mille: 100,
                delay_packets: 6,
            },
            ..FaultPlan::default()
        };
        let loopback = run(&plan, &tr, config(TransportKind::Loopback, 1, faults));
        let tcp = run(&plan, &tr, config(TransportKind::Tcp, 1, faults));
        assert!(
            loopback.total_faults().get(FaultKind::ReportDrop) > 0,
            "seed {seed}: the plan must actually inject"
        );
        assert_eq!(loopback.windows.len(), tcp.windows.len(), "seed {seed}");
        for (l, t) in loopback.windows.iter().zip(&tcp.windows) {
            assert_eq!(
                l, t,
                "seed {seed}, window {}: faulted runs diverged",
                l.window
            );
        }
    }
}
