//! Bloom filter for `distinct` admission.

use crate::bloom_fp_rate;
use crate::bound::ErrorBound;
use crate::hash::HashFamily;

/// A classic Bloom filter over register keys.
///
/// `insert` doubles as the `distinct` first-touch test: it reports
/// whether the key was *newly* admitted. False positives make a new
/// key look already-seen (an undercount, bounded by
/// [`fp_rate`](Self::fp_rate)); false negatives cannot occur, so a
/// key is never admitted twice.
///
/// Merging is bitwise-or: the union filter is exactly the filter of
/// the union key set, so the fabric's cross-switch distinct merge
/// stays sound.
#[derive(Debug, Clone, PartialEq)]
pub struct BloomFilter {
    m_bits: usize,
    k: usize,
    seed: u64,
    hashes: HashFamily,
    words: Vec<u64>,
    inserted: u64,
}

impl BloomFilter {
    /// Build a filter with `m_bits` bits (rounded up to a whole
    /// 64-bit word, min one word) and `k` hash functions.
    pub fn new(m_bits: usize, k: usize, seed: u64) -> Self {
        let words = m_bits.div_ceil(64).max(1);
        let k = k.clamp(1, 16);
        BloomFilter {
            m_bits: words * 64,
            k,
            seed,
            hashes: HashFamily::new(seed, k),
            words: vec![0; words],
            inserted: 0,
        }
    }

    /// Filter size in bits.
    pub fn bits(&self) -> usize {
        self.m_bits
    }

    /// Number of hash functions.
    pub fn hashes(&self) -> usize {
        self.k
    }

    /// The family seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Keys admitted (first-touch inserts) since the last reset.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Raw bit-array words — the or-merge operand. Exposed so tests
    /// can assert set-level laws (idempotence) that the insert
    /// bookkeeping intentionally does not satisfy.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    #[inline]
    fn bit(&self, i: usize, key: &[u64]) -> (usize, u64) {
        let b = (self.hashes.hash(i, key) % self.m_bits as u64) as usize;
        (b / 64, 1u64 << (b % 64))
    }

    /// Membership probe without insertion.
    #[inline]
    pub fn contains(&self, key: &[u64]) -> bool {
        (0..self.k).all(|i| {
            let (w, m) = self.bit(i, key);
            self.words[w] & m != 0
        })
    }

    /// Insert `key`; returns `true` iff the key was newly admitted
    /// (at least one of its bits was clear).
    #[inline]
    pub fn insert(&mut self, key: &[u64]) -> bool {
        let mut fresh = false;
        for i in 0..self.k {
            let (w, m) = self.bit(i, key);
            if self.words[w] & m == 0 {
                fresh = true;
                self.words[w] |= m;
            }
        }
        if fresh {
            self.inserted += 1;
        }
        fresh
    }

    /// Expected false-positive probability at the current load.
    pub fn fp_rate(&self) -> f64 {
        bloom_fp_rate(self.m_bits, self.k, self.inserted)
    }

    /// The `(ε, δ)` contract: ε is the per-probe false-positive
    /// probability at the current load; false negatives never occur,
    /// so δ = 0.
    pub fn bound(&self) -> ErrorBound {
        ErrorBound::new(self.fp_rate(), 0.0)
    }

    /// Fold `other` in bitwise. Returns `false` (leaving `self`
    /// untouched) when sizes, hash counts, or seeds differ.
    pub fn merge(&mut self, other: &BloomFilter) -> bool {
        if self.m_bits != other.m_bits || self.k != other.k || self.seed != other.seed {
            return false;
        }
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        // An upper bound: shared keys are double-counted, which only
        // makes the fp estimate (and the reported ε) more conservative.
        self.inserted += other.inserted;
        true
    }

    /// Clear for the next window, keeping shape and seed.
    pub fn reset(&mut self) {
        self.words.fill(0);
        self.inserted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(4096, 4, 11);
        for i in 0..300u64 {
            bf.insert(&[i, i * 3]);
        }
        for i in 0..300u64 {
            assert!(bf.contains(&[i, i * 3]), "key {i} lost");
            assert!(!bf.insert(&[i, i * 3]), "key {i} re-admitted");
        }
    }

    #[test]
    fn merge_is_union() {
        let mut a = BloomFilter::new(1024, 4, 2);
        let mut b = BloomFilter::new(1024, 4, 2);
        for i in 0..50u64 {
            a.insert(&[i]);
            b.insert(&[i + 50]);
        }
        assert!(a.merge(&b));
        for i in 0..100u64 {
            assert!(a.contains(&[i]));
        }
        let c = BloomFilter::new(2048, 4, 2);
        assert!(!a.merge(&c));
    }

    #[test]
    fn merge_is_idempotent() {
        let mut a = BloomFilter::new(1024, 4, 2);
        for i in 0..50u64 {
            a.insert(&[i]);
        }
        let snapshot_words = a.words.clone();
        let other = a.clone();
        assert!(a.merge(&other));
        assert_eq!(a.words, snapshot_words, "or-merge must be idempotent");
    }

    #[test]
    fn fp_rate_grows_with_load() {
        let mut bf = BloomFilter::new(512, 4, 3);
        let empty = bf.fp_rate();
        for i in 0..200u64 {
            bf.insert(&[i]);
        }
        assert!(bf.fp_rate() > empty);
        assert_eq!(bf.bound().delta, 0.0);
    }
}
