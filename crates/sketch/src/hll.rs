//! HyperLogLog cardinality estimation.

use crate::bound::ErrorBound;
use crate::hash::{mix64, HashFamily};
use crate::hll_error;

/// A HyperLogLog estimator with 2^precision one-byte registers.
///
/// Merging is register-wise max — the merged estimator is exactly
/// the estimator of the union stream, so per-switch cardinalities
/// compose across the fabric without double counting.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperLogLog {
    precision: u8,
    seed: u64,
    hashes: HashFamily,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Build an estimator; precision is clamped to [4, 18].
    pub fn new(precision: u8, seed: u64) -> Self {
        let precision = precision.clamp(4, 18);
        HyperLogLog {
            precision,
            seed,
            hashes: HashFamily::new(seed, 1),
            registers: vec![0; 1usize << precision],
        }
    }

    /// Register-index bits.
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// The family seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of registers (2^precision).
    pub fn registers(&self) -> usize {
        self.registers.len()
    }

    /// Observe a key.
    #[inline]
    pub fn insert(&mut self, key: &[u64]) {
        // One well-mixed 64-bit hash; the top `precision` bits pick
        // the register, the rest feed the rank.
        let h = mix64(self.hashes.hash(0, key));
        let idx = (h >> (64 - self.precision)) as usize;
        let rest = h << self.precision;
        let rank = (rest.leading_zeros() + 1).min(64 - self.precision as u32) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// The cardinality estimate, with the standard small-range
    /// (linear counting) correction.
    pub fn estimate(&self) -> u64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return (m * (m / zeros as f64).ln()).round() as u64;
            }
        }
        raw.round() as u64
    }

    /// The `(ε, δ)` contract: one standard error ≈ 1.04/√m, which a
    /// normal estimate exceeds with probability ≈ 0.32.
    pub fn bound(&self) -> ErrorBound {
        ErrorBound::new(hll_error(self.precision), 0.32)
    }

    /// Fold `other` in register-wise. Returns `false` (leaving
    /// `self` untouched) when precisions or seeds differ.
    pub fn merge(&mut self, other: &HyperLogLog) -> bool {
        if self.precision != other.precision || self.seed != other.seed {
            return false;
        }
        for (r, o) in self.registers.iter_mut().zip(&other.registers) {
            *r = (*r).max(*o);
        }
        true
    }

    /// Clear for the next window, keeping precision and seed.
    pub fn reset(&mut self) {
        self.registers.fill(0);
    }

    /// Register bits this estimator occupies (byte registers).
    pub fn register_bits(&self) -> u64 {
        self.registers.len() as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_tracks_cardinality() {
        let mut hll = HyperLogLog::new(12, 4);
        for i in 0..10_000u64 {
            hll.insert(&[i, i ^ 0xABCD]);
        }
        let est = hll.estimate() as f64;
        let err = (est - 10_000.0).abs() / 10_000.0;
        // 1.04/sqrt(4096) ≈ 1.6%; allow 3 standard errors.
        assert!(err < 0.05, "relative error {err}");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut hll = HyperLogLog::new(12, 4);
        for _ in 0..100 {
            for i in 0..50u64 {
                hll.insert(&[i]);
            }
        }
        let est = hll.estimate();
        assert!(est <= 60, "50 distinct keys estimated as {est}");
    }

    #[test]
    fn merge_is_union_max() {
        let mut a = HyperLogLog::new(10, 9);
        let mut b = HyperLogLog::new(10, 9);
        let mut whole = HyperLogLog::new(10, 9);
        for i in 0..2000u64 {
            if i % 2 == 0 {
                a.insert(&[i]);
            } else {
                b.insert(&[i]);
            }
            whole.insert(&[i]);
        }
        assert!(a.merge(&b));
        assert_eq!(a, whole);
        let c = HyperLogLog::new(11, 9);
        assert!(!a.merge(&c));
    }
}
