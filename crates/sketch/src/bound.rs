//! The typed accuracy contract a sketch layout exports.

/// An `(ε, δ)` error bound.
///
/// Semantics are layout-specific but always "ε with confidence
/// 1 − δ":
///
/// * **Count-min**: each point estimate overestimates the true
///   aggregate by at most `ε · ‖stream‖₁` except with probability
///   `δ` (ε = e/width, δ = e^−depth).
/// * **Bloom**: a membership probe false-positives with probability
///   at most `ε`; false negatives never occur, so `δ = 0`.
/// * **HyperLogLog**: the cardinality estimate's relative error is
///   within `ε` (one standard error, ε ≈ 1.04/√m) except with
///   probability `δ ≈ 0.32`.
///
/// `Exact` state reports the zero bound.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorBound {
    /// Relative error / false-positive probability (see above).
    pub epsilon: f64,
    /// Probability the ε guarantee fails.
    pub delta: f64,
}

impl ErrorBound {
    /// The bound exact state satisfies trivially.
    pub const EXACT: ErrorBound = ErrorBound {
        epsilon: 0.0,
        delta: 0.0,
    };

    /// Construct a bound, clamping into [0, 1] so arithmetic on
    /// folded bounds can't escape the probability simplex.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        ErrorBound {
            epsilon: epsilon.clamp(0.0, 1.0),
            delta: delta.clamp(0.0, 1.0),
        }
    }

    /// Whether this is the trivial zero bound.
    pub fn is_exact(&self) -> bool {
        self.epsilon == 0.0 && self.delta == 0.0
    }

    /// Fold two bounds over *the same merged stream* into one that
    /// dominates both: the merged sketch of a union stream keeps each
    /// side's relative ε (pointwise-add/or/max merges reproduce the
    /// sketch of the union), so the conservative fold is the
    /// component-wise max.
    pub fn fold(self, other: ErrorBound) -> ErrorBound {
        ErrorBound {
            epsilon: self.epsilon.max(other.epsilon),
            delta: self.delta.max(other.delta),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_is_commutative_and_dominating() {
        let a = ErrorBound::new(0.02, 0.01);
        let b = ErrorBound::new(0.01, 0.05);
        let f = a.fold(b);
        assert_eq!(f, b.fold(a));
        assert!(f.epsilon >= a.epsilon && f.epsilon >= b.epsilon);
        assert!(f.delta >= a.delta && f.delta >= b.delta);
        assert!(ErrorBound::EXACT.is_exact());
        assert!(!a.is_exact());
    }

    #[test]
    fn new_clamps_to_unit_interval() {
        let b = ErrorBound::new(7.0, -3.0);
        assert_eq!(b.epsilon, 1.0);
        assert_eq!(b.delta, 0.0);
    }
}
