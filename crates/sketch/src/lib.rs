//! Approximate data-plane state for Sonata.
//!
//! A PISA switch spends scarce register SRAM on exact hash tables,
//! which is what caps how many queries fit on one switch (the paper's
//! fig. 8 resource sweeps). This crate provides the three compact
//! layouts from *Compact Data Structures for Network Telemetry*
//! (Feibish, Liu, Rexford) that trade bits for a bounded, analyzable
//! accuracy cost:
//!
//! * [`CountMinSketch`] — `reduce` state. Conservative overestimates
//!   with error ≤ ε·‖stream‖ at confidence 1−δ, where ε = e/width and
//!   δ = e^−depth.
//! * [`BloomFilter`] — `distinct` admission. Zero false negatives;
//!   false-positive rate (1−e^(−kn/m))^k.
//! * [`HyperLogLog`] — cardinality estimation with standard error
//!   ≈ 1.04/√m for m = 2^precision registers.
//!
//! All three use the same seeded splitmix64-derived hash family, so
//! runs are deterministic for a fixed seed, and all three are
//! *mergeable* (pointwise add / bitwise or / register max) so the
//! multi-switch fabric merge stays sound: merging per-switch sketches
//! yields exactly the sketch of the union stream.
//!
//! The crate is dependency-free; `sonata-pisa` re-exports the types
//! the rest of the workspace needs.

mod bloom;
mod bound;
mod cm;
mod hash;
mod hll;

pub use bloom::BloomFilter;
pub use bound::ErrorBound;
pub use cm::{CmOp, CountMinSketch};
pub use hash::{mix64, HashFamily};
pub use hll::HyperLogLog;

/// Bits charged per expected key for a Bloom admission filter.
///
/// With [`BLOOM_HASHES`] = 4 hash functions, 12 bits/key gives a
/// false-positive rate of (1 − e^(−4/12))^4 ≈ 0.65% at design
/// capacity — comfortably under the 5% accuracy target while staying
/// ~5× smaller than an exact `distinct` slot (key_bits + 1).
pub const BLOOM_BITS_PER_KEY: usize = 12;

/// Hash functions per Bloom filter.
pub const BLOOM_HASHES: usize = 4;

/// Counter width for count-min cells, matching the 32-bit register
/// ALUs the exact layout uses for `reduce` values.
pub const CM_COUNTER_BITS: usize = 32;

/// Default HyperLogLog precision: 2^12 = 4096 registers, standard
/// error ≈ 1.04/64 ≈ 1.6%.
pub const HLL_PRECISION: u8 = 12;

/// Physical layout of one stateful task's register state.
///
/// `Exact` is the reference layout (hash table with stored keys,
/// shunt-on-collision). The sketch layouts never shunt — collisions
/// fold into the error bound instead of consuming the mirror channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StateLayout {
    /// Exact hash table with stored keys (the reference oracle).
    #[default]
    Exact,
    /// Count-min sketch for `reduce` cells, Bloom admission for
    /// first-touch detection.
    CountMin,
    /// Bloom filter admission for `distinct`; `reduce` state stays
    /// exact.
    Bloom,
    /// Bloom admission plus a HyperLogLog cardinality estimator for
    /// `distinct`; `reduce` state uses count-min.
    Hll,
}

impl StateLayout {
    /// Stable one-byte wire tag (see `sonata-net` codec v5).
    pub fn tag(self) -> u8 {
        match self {
            StateLayout::Exact => 0,
            StateLayout::CountMin => 1,
            StateLayout::Bloom => 2,
            StateLayout::Hll => 3,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(StateLayout::Exact),
            1 => Some(StateLayout::CountMin),
            2 => Some(StateLayout::Bloom),
            3 => Some(StateLayout::Hll),
            _ => None,
        }
    }

    /// Name used in CLI flags, metrics labels, and reports.
    pub fn name(self) -> &'static str {
        match self {
            StateLayout::Exact => "exact",
            StateLayout::CountMin => "count-min",
            StateLayout::Bloom => "bloom",
            StateLayout::Hll => "hll",
        }
    }

    /// Parse a CLI-flag spelling (`exact`, `count-min`/`cm`, `bloom`,
    /// `hll`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "exact" => Some(StateLayout::Exact),
            "count-min" | "countmin" | "cm" => Some(StateLayout::CountMin),
            "bloom" => Some(StateLayout::Bloom),
            "hll" | "hyperloglog" => Some(StateLayout::Hll),
            _ => None,
        }
    }
}

impl std::fmt::Display for StateLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Count-min width for a target relative error ε (fraction of the
/// stream's L1 mass): width = ⌈e/ε⌉.
pub fn cm_width_for(epsilon: f64) -> usize {
    let eps = epsilon.clamp(1e-6, 1.0);
    (std::f64::consts::E / eps).ceil() as usize
}

/// Count-min depth for a target failure probability δ: depth =
/// ⌈ln(1/δ)⌉.
pub fn cm_depth_for(delta: f64) -> usize {
    let delta = delta.clamp(1e-12, 0.5);
    ((1.0 / delta).ln().ceil() as usize).max(1)
}

/// The relative error guaranteed by a count-min of this width:
/// ε = e/width.
pub fn cm_epsilon(width: usize) -> f64 {
    std::f64::consts::E / width.max(1) as f64
}

/// The failure probability of a count-min of this depth: δ = e^−depth.
pub fn cm_delta(depth: usize) -> f64 {
    (-(depth.max(1) as f64)).exp()
}

/// Bloom filter bits for `capacity` expected keys at the crate's
/// fixed [`BLOOM_BITS_PER_KEY`] provisioning.
pub fn bloom_bits_for(capacity: usize) -> usize {
    (capacity.max(16)) * BLOOM_BITS_PER_KEY
}

/// Expected Bloom false-positive rate for `n` inserted keys in
/// `m_bits` with `k` hashes: (1 − e^(−kn/m))^k.
pub fn bloom_fp_rate(m_bits: usize, k: usize, n: u64) -> f64 {
    if m_bits == 0 || n == 0 {
        return 0.0;
    }
    let exponent = -((k as f64) * (n as f64) / (m_bits as f64));
    (1.0 - exponent.exp()).powi(k as i32)
}

/// HyperLogLog relative standard error for `precision` bits:
/// ≈ 1.04/√(2^precision).
pub fn hll_error(precision: u8) -> f64 {
    1.04 / ((1u64 << precision.clamp(4, 18)) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_tags_round_trip() {
        for l in [
            StateLayout::Exact,
            StateLayout::CountMin,
            StateLayout::Bloom,
            StateLayout::Hll,
        ] {
            assert_eq!(StateLayout::from_tag(l.tag()), Some(l));
            assert_eq!(StateLayout::parse(l.name()), Some(l));
        }
        assert_eq!(StateLayout::from_tag(200), None);
        assert_eq!(StateLayout::parse("cm"), Some(StateLayout::CountMin));
        assert_eq!(StateLayout::parse("bogus"), None);
    }

    #[test]
    fn sizing_helpers_are_inverses() {
        let w = cm_width_for(0.02);
        assert!(cm_epsilon(w) <= 0.02 + 1e-9, "ε(width_for(ε)) ≤ ε");
        let d = cm_depth_for(0.02);
        assert!(cm_delta(d) <= 0.02 + 1e-9, "δ(depth_for(δ)) ≤ δ");
    }

    #[test]
    fn bloom_fp_is_small_at_design_capacity() {
        let cap = 1000usize;
        let m = bloom_bits_for(cap);
        let fp = bloom_fp_rate(m, BLOOM_HASHES, cap as u64);
        assert!(fp < 0.01, "fp {fp} at design capacity");
        // Past capacity the rate degrades but stays monotone.
        assert!(bloom_fp_rate(m, BLOOM_HASHES, 4 * cap as u64) > fp);
    }
}
