//! The seeded hash family shared by every sketch.
//!
//! Each row/hash-function gets its own odd seed derived from the
//! family seed with splitmix64, then keys (slices of `u64` register
//! key parts) are folded through the splitmix64 finalizer. The family
//! is deterministic for a fixed seed, so exact-vs-sketch differential
//! runs reproduce bit-identically, and two switches constructed with
//! the same seed hash identically — the property the fabric merge
//! relies on.

/// splitmix64's odd multiplicative constant.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
const MIX1: u64 = 0xFF51_AFD7_ED55_8CCD;
const MIX2: u64 = 0xC4CE_B9FE_1A85_EC53;

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 33)).wrapping_mul(MIX1);
    z = (z ^ (z >> 33)).wrapping_mul(MIX2);
    z ^ (z >> 33)
}

/// A family of `k` independent seeded hash functions over register
/// keys (`&[u64]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashFamily {
    seeds: Vec<u64>,
}

impl HashFamily {
    /// Derive `k` per-function seeds from one family seed.
    pub fn new(seed: u64, k: usize) -> Self {
        let seeds = (0..k as u64)
            .map(|i| mix64(seed ^ GAMMA.wrapping_mul(i.wrapping_mul(2).wrapping_add(1))))
            .collect();
        HashFamily { seeds }
    }

    /// Number of functions in the family.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether the family is empty (never true for sized sketches).
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Hash a register key with function `i`.
    #[inline]
    pub fn hash(&self, i: usize, key: &[u64]) -> u64 {
        let mut acc = self.seeds[i];
        for &part in key {
            acc = mix64(acc ^ part.wrapping_mul(GAMMA));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = HashFamily::new(7, 4);
        let b = HashFamily::new(7, 4);
        let c = HashFamily::new(8, 4);
        let key = [42u64, 7];
        for i in 0..4 {
            assert_eq!(a.hash(i, &key), b.hash(i, &key));
            assert_ne!(a.hash(i, &key), c.hash(i, &key));
        }
    }

    #[test]
    fn functions_are_pairwise_distinct() {
        let f = HashFamily::new(1, 8);
        let key = [1u64];
        let mut seen = std::collections::HashSet::new();
        for i in 0..8 {
            assert!(seen.insert(f.hash(i, &key)), "row {i} collided");
        }
    }
}
