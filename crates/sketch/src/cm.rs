//! Count-min sketch with per-aggregation cell semantics.

use crate::bound::ErrorBound;
use crate::hash::HashFamily;
use crate::{cm_delta, cm_epsilon};

/// How cells fold new values — the sketch generalization of the
/// register ALU's aggregation.
///
/// Both ops keep the count-min invariant *cell ≥ true aggregate of
/// every key hashing there*, so the min-over-rows estimate is a
/// conservative overestimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmOp {
    /// `Sum`/`Count`: cells add, estimate = min over rows, merge =
    /// pointwise add. The classic Cormode–Muthukrishnan bound
    /// applies: error ≤ (e/width)·‖stream‖₁ w.p. ≥ 1 − e^−depth.
    Add,
    /// `Max`: cells take the max, estimate = min over rows, merge =
    /// pointwise max. Collisions only raise cells, so estimates
    /// dominate the true max; no distributional bound, δ folds to
    /// the same e^−depth heuristic.
    Max,
}

/// A width × depth count-min sketch over register keys.
///
/// Merging two sketches of the same shape, seed, and op yields
/// exactly the sketch of the concatenated streams — the property the
/// fabric's cross-switch merge relies on.
#[derive(Debug, Clone, PartialEq)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    seed: u64,
    op: CmOp,
    hashes: HashFamily,
    /// `depth` rows of `width` cells, flattened row-major.
    cells: Vec<u64>,
    /// Total L1 mass folded in (sum of operands for `Add`); the
    /// absolute error bound is `epsilon * mass`.
    mass: u64,
    /// Number of update calls.
    updates: u64,
}

impl CountMinSketch {
    /// Build a sketch. `width`/`depth` are clamped to at least 1;
    /// depth above 16 buys nothing and is clamped.
    pub fn new(width: usize, depth: usize, seed: u64, op: CmOp) -> Self {
        let width = width.max(1);
        let depth = depth.clamp(1, 16);
        CountMinSketch {
            width,
            depth,
            seed,
            op,
            hashes: HashFamily::new(seed, depth),
            cells: vec![0; width * depth],
            mass: 0,
            updates: 0,
        }
    }

    /// Sketch width (cells per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Sketch depth (independent rows).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The family seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The cell fold op.
    pub fn op(&self) -> CmOp {
        self.op
    }

    /// Update calls folded in since the last reset.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Total L1 mass folded in since the last reset.
    pub fn mass(&self) -> u64 {
        self.mass
    }

    #[inline]
    fn cell_index(&self, row: usize, key: &[u64]) -> usize {
        row * self.width + (self.hashes.hash(row, key) % self.width as u64) as usize
    }

    /// Fold `value` into `key`'s cells.
    #[inline]
    pub fn update(&mut self, key: &[u64], value: u64) {
        for row in 0..self.depth {
            let idx = self.cell_index(row, key);
            let cell = &mut self.cells[idx];
            *cell = match self.op {
                CmOp::Add => cell.wrapping_add(value),
                CmOp::Max => (*cell).max(value),
            };
        }
        self.mass = self.mass.wrapping_add(value);
        self.updates += 1;
    }

    /// The conservative point estimate for `key`: min over rows.
    #[inline]
    pub fn estimate(&self, key: &[u64]) -> u64 {
        let mut est = u64::MAX;
        for row in 0..self.depth {
            est = est.min(self.cells[self.cell_index(row, key)]);
        }
        est
    }

    /// The `(ε, δ)` contract this shape guarantees (for `Add`).
    pub fn bound(&self) -> ErrorBound {
        ErrorBound::new(cm_epsilon(self.width), cm_delta(self.depth))
    }

    /// The absolute slack the bound permits at the current mass:
    /// ⌈ε · mass⌉.
    pub fn absolute_slack(&self) -> u64 {
        (self.bound().epsilon * self.mass as f64).ceil() as u64
    }

    /// Fold `other` in pointwise. Returns `false` (leaving `self`
    /// untouched) when shapes, seeds, or ops differ — merging
    /// differently-hashed sketches would be silently wrong.
    pub fn merge(&mut self, other: &CountMinSketch) -> bool {
        if self.width != other.width
            || self.depth != other.depth
            || self.seed != other.seed
            || self.op != other.op
        {
            return false;
        }
        for (c, o) in self.cells.iter_mut().zip(&other.cells) {
            *c = match self.op {
                CmOp::Add => c.wrapping_add(*o),
                CmOp::Max => (*c).max(*o),
            };
        }
        self.mass = self.mass.wrapping_add(other.mass);
        self.updates += other.updates;
        true
    }

    /// Clear all cells for the next window, keeping shape and seed.
    pub fn reset(&mut self) {
        self.cells.fill(0);
        self.mass = 0;
        self.updates = 0;
    }

    /// Register bits this sketch occupies (32-bit cells, matching
    /// the exact layout's value ALU width).
    pub fn register_bits(&self) -> u64 {
        self.width as u64 * self.depth as u64 * crate::CM_COUNTER_BITS as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_never_underestimate() {
        let mut cm = CountMinSketch::new(64, 4, 9, CmOp::Add);
        let mut truth = std::collections::HashMap::new();
        for i in 0..500u64 {
            let key = [i % 37];
            let v = (i % 5) + 1;
            cm.update(&key, v);
            *truth.entry(key[0]).or_insert(0u64) += v;
        }
        for (k, t) in truth {
            assert!(cm.estimate(&[k]) >= t, "key {k} underestimated");
        }
    }

    #[test]
    fn merge_equals_union_stream() {
        let mut a = CountMinSketch::new(32, 3, 5, CmOp::Add);
        let mut b = CountMinSketch::new(32, 3, 5, CmOp::Add);
        let mut whole = CountMinSketch::new(32, 3, 5, CmOp::Add);
        for i in 0..200u64 {
            let key = [i % 19, i % 7];
            if i % 2 == 0 {
                a.update(&key, i);
            } else {
                b.update(&key, i);
            }
            whole.update(&key, i);
        }
        assert!(a.merge(&b));
        assert_eq!(a, whole);
    }

    #[test]
    fn merge_rejects_shape_mismatch() {
        let mut a = CountMinSketch::new(32, 3, 5, CmOp::Add);
        let b = CountMinSketch::new(64, 3, 5, CmOp::Add);
        let c = CountMinSketch::new(32, 3, 6, CmOp::Add);
        let d = CountMinSketch::new(32, 3, 5, CmOp::Max);
        assert!(!a.merge(&b));
        assert!(!a.merge(&c));
        assert!(!a.merge(&d));
    }

    #[test]
    fn max_op_dominates_true_max() {
        let mut cm = CountMinSketch::new(16, 2, 3, CmOp::Max);
        cm.update(&[1], 10);
        cm.update(&[1], 4);
        cm.update(&[2], 99);
        assert!(cm.estimate(&[1]) >= 10);
        assert!(cm.estimate(&[2]) >= 99);
    }

    #[test]
    fn reset_restores_empty() {
        let mut cm = CountMinSketch::new(16, 2, 3, CmOp::Add);
        cm.update(&[1], 5);
        cm.reset();
        assert_eq!(cm.estimate(&[1]), 0);
        assert_eq!(cm.mass(), 0);
        assert_eq!(cm, CountMinSketch::new(16, 2, 3, CmOp::Add));
    }
}
