//! # sonata-ilp
//!
//! A small, self-contained mixed-integer linear program solver: dense
//! two-phase primal simplex plus best-first branch-and-bound on
//! integer variables.
//!
//! The paper solves its query-planning ILP with Gurobi; redistribution
//! of a commercial solver is impossible, so this crate supplies the
//! substrate. It is sized for Sonata's planning problems (hundreds to
//! a few thousand variables): the tableau is dense, pivoting uses
//! Bland's rule for cycle-freedom, and branch-and-bound keeps a global
//! incumbent with LP-bound pruning, a node budget, and a wall-clock
//! limit — mirroring how the paper runs Gurobi with a 20-minute cap
//! and takes the best feasible plan found (Section 6.1).
//!
//! ```
//! use sonata_ilp::{Model, Sense};
//!
//! // maximize 3x + 2y  s.t. x + y <= 4, x <= 2, integer
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.int_var("x", 0.0, 10.0, 3.0);
//! let y = m.int_var("y", 0.0, 10.0, 2.0);
//! m.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
//! m.add_le(&[(x, 1.0)], 2.0);
//! let sol = m.solve().unwrap();
//! assert_eq!(sol.objective.round() as i64, 10); // x=2, y=2
//! ```

pub mod model;
pub mod simplex;
pub mod solver;

pub use model::{ConSense, Model, Sense, Solution, SolveError, SolveOptions, Status, VarId};
