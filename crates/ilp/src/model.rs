//! The model-builder API: variables, linear constraints, objective.

use std::fmt;
use std::time::Duration;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConSense {
    /// `≤ rhs`
    Le,
    /// `≥ rhs`
    Ge,
    /// `= rhs`
    Eq,
}

/// A variable handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Position of this variable in [`Solution::values`] and in a
    /// [`SolveOptions::warm_start`] point.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Var {
    pub name: String,
    pub lb: f64,
    pub ub: f64,
    pub obj: f64,
    pub integer: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub coeffs: Vec<(usize, f64)>,
    pub sense: ConSense,
    pub rhs: f64,
}

/// Why solving failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// No feasible point exists.
    Infeasible,
    /// The LP relaxation is unbounded.
    Unbounded,
    /// Node/time budget exhausted before any integer-feasible point
    /// was found.
    NoIncumbent,
    /// A variable has `lb > ub` or non-finite bounds.
    BadBounds {
        /// The offending variable's name.
        var: String,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "model is infeasible"),
            SolveError::Unbounded => write!(f, "LP relaxation is unbounded"),
            SolveError::NoIncumbent => write!(f, "budget exhausted with no feasible integer point"),
            SolveError::BadBounds { var } => write!(f, "variable `{var}` has invalid bounds"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Solution quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Proven optimal.
    Optimal,
    /// Feasible, but the node/time budget expired before proof of
    /// optimality (the paper's 20-minute-cap behavior).
    Feasible,
}

/// A solution.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Objective value (in the model's own sense).
    pub objective: f64,
    /// Variable values, indexed by `VarId.0`.
    pub values: Vec<f64>,
    /// Optimality status.
    pub status: Status,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// Simplex pivots performed across all node LP solves.
    pub pivots: u64,
    /// Wall-clock time of the whole solve.
    pub wall: Duration,
    /// Whether a warm-start point ([`SolveOptions::warm_start`]) was
    /// accepted as the initial incumbent — the warm-vs-cold solver
    /// stat an incremental re-solve reads alongside `pivots`/`wall`.
    pub warm: bool,
}

impl Solution {
    /// Value of a variable.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.0]
    }

    /// Value of a variable rounded to the nearest integer.
    pub fn int_value(&self, v: VarId) -> i64 {
        self.values[v.0].round() as i64
    }
}

/// Budgets for branch-and-bound.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Maximum branch-and-bound nodes.
    pub max_nodes: usize,
    /// Wall-clock limit.
    pub time_limit: Duration,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Optional warm-start point (one value per variable, indexed by
    /// `VarId.0`). If it is feasible for the model it seeds the
    /// incumbent before the root solve, so branch-and-bound starts
    /// with a bound to prune against instead of a cold search —
    /// the committed plan of an incremental re-solve. An infeasible
    /// or mis-sized point is silently ignored (cold solve).
    pub warm_start: Option<Vec<f64>>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            max_nodes: 200_000,
            time_limit: Duration::from_secs(60),
            int_tol: 1e-6,
            warm_start: None,
        }
    }
}

/// A mixed-integer linear program under construction.
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Var>,
    pub(crate) cons: Vec<Constraint>,
}

impl Model {
    /// An empty model.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            cons: Vec::new(),
        }
    }

    /// Add a continuous variable with bounds and objective coefficient.
    pub fn var(&mut self, name: &str, lb: f64, ub: f64, obj: f64) -> VarId {
        self.vars.push(Var {
            name: name.to_string(),
            lb,
            ub,
            obj,
            integer: false,
        });
        VarId(self.vars.len() - 1)
    }

    /// Add an integer variable.
    pub fn int_var(&mut self, name: &str, lb: f64, ub: f64, obj: f64) -> VarId {
        let v = self.var(name, lb, ub, obj);
        self.vars[v.0].integer = true;
        v
    }

    /// Add a binary (0/1) variable.
    pub fn bin_var(&mut self, name: &str, obj: f64) -> VarId {
        self.int_var(name, 0.0, 1.0, obj)
    }

    /// Add a `≤` constraint.
    pub fn add_le(&mut self, coeffs: &[(VarId, f64)], rhs: f64) {
        self.add(coeffs, ConSense::Le, rhs);
    }

    /// Add a `≥` constraint.
    pub fn add_ge(&mut self, coeffs: &[(VarId, f64)], rhs: f64) {
        self.add(coeffs, ConSense::Ge, rhs);
    }

    /// Add an `=` constraint.
    pub fn add_eq(&mut self, coeffs: &[(VarId, f64)], rhs: f64) {
        self.add(coeffs, ConSense::Eq, rhs);
    }

    /// Add a constraint with explicit sense.
    pub fn add(&mut self, coeffs: &[(VarId, f64)], sense: ConSense, rhs: f64) {
        self.cons.push(Constraint {
            coeffs: coeffs.iter().map(|(v, c)| (v.0, *c)).collect(),
            sense,
            rhs,
        });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_cons(&self) -> usize {
        self.cons.len()
    }

    /// Solve with default options.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.solve_with(&SolveOptions::default())
    }

    /// Solve with explicit budgets.
    pub fn solve_with(&self, opts: &SolveOptions) -> Result<Solution, SolveError> {
        crate::solver::branch_and_bound(self, opts)
    }

    /// Evaluate the objective at a point (in the model's sense).
    pub fn objective_at(&self, values: &[f64]) -> f64 {
        self.vars.iter().zip(values).map(|(v, x)| v.obj * x).sum()
    }

    /// Whether a point satisfies all constraints and bounds to `tol`.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        for (v, &x) in self.vars.iter().zip(values) {
            if x < v.lb - tol || x > v.ub + tol {
                return false;
            }
            if v.integer && (x - x.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.cons {
            let lhs: f64 = c.coeffs.iter().map(|(i, a)| a * values[*i]).sum();
            let ok = match c.sense {
                ConSense::Le => lhs <= c.rhs + tol,
                ConSense::Ge => lhs >= c.rhs - tol,
                ConSense::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_ids_in_order() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.var("a", 0.0, 1.0, 1.0);
        let b = m.bin_var("b", 2.0);
        let c = m.int_var("c", 0.0, 5.0, 3.0);
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
        assert_eq!(m.num_vars(), 3);
        m.add_le(&[(a, 1.0), (c, 2.0)], 4.0);
        assert_eq!(m.num_cons(), 1);
    }

    #[test]
    fn feasibility_check() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x", 0.0, 10.0, 1.0);
        m.add_ge(&[(x, 1.0)], 3.0);
        assert!(m.is_feasible(&[3.0], 1e-9));
        assert!(!m.is_feasible(&[2.0], 1e-9)); // violates constraint
        assert!(!m.is_feasible(&[3.5], 1e-9)); // fractional integer
        assert!(!m.is_feasible(&[11.0], 1e-9)); // above ub
    }

    #[test]
    fn objective_eval() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x", 0.0, 1.0, 3.0);
        let y = m.var("y", 0.0, 1.0, -1.0);
        let _ = (x, y);
        assert_eq!(m.objective_at(&[2.0, 4.0]), 2.0);
    }
}
