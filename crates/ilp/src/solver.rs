//! Best-first branch-and-bound over the LP relaxation.

use crate::model::{ConSense, Model, Sense, Solution, SolveError, SolveOptions, Status};
use crate::simplex::{solve_lp_counted, LpProblem, LpResult};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

#[derive(Debug, Clone)]
struct Node {
    /// LP bound (minimization objective) of the parent — priority key.
    bound: f64,
    /// Per-variable bound overrides: `(var, lb, ub)`.
    bounds: Vec<(usize, f64, f64)>,
    depth: usize,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest bound first.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then(other.depth.cmp(&self.depth))
    }
}

/// Solve a model by branch-and-bound.
pub fn branch_and_bound(model: &Model, opts: &SolveOptions) -> Result<Solution, SolveError> {
    for v in &model.vars {
        if v.lb.partial_cmp(&v.ub) != Some(std::cmp::Ordering::Less)
            && v.lb.partial_cmp(&v.ub) != Some(std::cmp::Ordering::Equal)
            || v.lb < 0.0
            || v.lb.is_infinite()
        {
            return Err(SolveError::BadBounds {
                var: v.name.clone(),
            });
        }
    }
    let n = model.vars.len();
    // Minimization objective.
    let c: Vec<f64> = model
        .vars
        .iter()
        .map(|v| match model.sense {
            Sense::Minimize => v.obj,
            Sense::Maximize => -v.obj,
        })
        .collect();
    let base_rows: Vec<crate::simplex::LpRow> = model
        .cons
        .iter()
        .map(|con| (con.coeffs.clone(), con.sense, con.rhs))
        .collect();

    let effective_bounds = |node: &Node| -> Vec<(f64, f64)> {
        let mut b: Vec<(f64, f64)> = model.vars.iter().map(|v| (v.lb, v.ub)).collect();
        for (i, lb, ub) in &node.bounds {
            b[*i].0 = b[*i].0.max(*lb);
            b[*i].1 = b[*i].1.min(*ub);
        }
        b
    };

    let solve_node = |node: &Node| -> (LpResult, u64) {
        let bounds = effective_bounds(node);
        for (lb, ub) in &bounds {
            if lb > ub {
                return (LpResult::Infeasible, 0);
            }
        }
        let mut rows = base_rows.clone();
        for (i, (lb, ub)) in bounds.iter().enumerate() {
            if *lb > 0.0 {
                rows.push((vec![(i, 1.0)], ConSense::Ge, *lb));
            }
            if ub.is_finite() {
                rows.push((vec![(i, 1.0)], ConSense::Le, *ub));
            }
        }
        solve_lp_counted(&LpProblem {
            n,
            c: c.clone(),
            rows,
        })
    };

    let started = Instant::now();
    let root = Node {
        bound: f64::NEG_INFINITY,
        bounds: Vec::new(),
        depth: 0,
    };
    let mut heap: BinaryHeap<Node> = BinaryHeap::new();
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut nodes = 0usize;
    let mut pivots = 0u64;
    let mut exhausted = true;
    let mut warm = false;

    // Warm start: a feasible point (the committed solution of an
    // incremental re-solve) becomes the initial incumbent, so every
    // node whose LP bound can't beat it is pruned from the first
    // iteration on. An infeasible or mis-sized point is ignored —
    // the solve degrades to a cold one, never to an error.
    if let Some(ws) = &opts.warm_start {
        if ws.len() == n && model.is_feasible(ws, opts.int_tol) {
            let snapped: Vec<f64> = model
                .vars
                .iter()
                .zip(ws)
                .map(|(v, &xv)| if v.integer { xv.round() } else { xv })
                .collect();
            let obj_min: f64 = c.iter().zip(&snapped).map(|(ci, xi)| ci * xi).sum();
            incumbent = Some((obj_min, snapped));
            warm = true;
        }
    }

    // Root solve.
    let (root_result, root_pivots) = solve_node(&root);
    pivots += root_pivots;
    match root_result {
        LpResult::Infeasible => return Err(SolveError::Infeasible),
        LpResult::Unbounded => return Err(SolveError::Unbounded),
        LpResult::Stalled => return Err(SolveError::NoIncumbent),
        LpResult::Optimal { x, obj } => {
            process(model, opts, &c, obj, x, &root, &mut heap, &mut incumbent);
        }
    }
    nodes += 1;

    while let Some(node) = heap.pop() {
        if nodes >= opts.max_nodes || started.elapsed() >= opts.time_limit {
            exhausted = false;
            break;
        }
        // Prune against the incumbent.
        if let Some((inc, _)) = &incumbent {
            if node.bound >= *inc - 1e-9 {
                continue;
            }
        }
        nodes += 1;
        let (node_result, node_pivots) = solve_node(&node);
        pivots += node_pivots;
        match node_result {
            LpResult::Infeasible | LpResult::Stalled => continue,
            LpResult::Unbounded => {
                // Can't happen with bounded integer vars; treat as prune.
                continue;
            }
            LpResult::Optimal { x, obj } => {
                if let Some((inc, _)) = &incumbent {
                    if obj >= *inc - 1e-9 {
                        continue;
                    }
                }
                process(model, opts, &c, obj, x, &node, &mut heap, &mut incumbent);
            }
        }
    }

    match incumbent {
        Some((obj_min, values)) => {
            let objective = match model.sense {
                Sense::Minimize => obj_min,
                Sense::Maximize => -obj_min,
            };
            Ok(Solution {
                objective,
                values,
                status: if exhausted {
                    Status::Optimal
                } else {
                    Status::Feasible
                },
                nodes,
                pivots,
                wall: started.elapsed(),
                warm,
            })
        }
        None => {
            if exhausted {
                Err(SolveError::Infeasible)
            } else {
                Err(SolveError::NoIncumbent)
            }
        }
    }
}

/// Handle an LP-optimal node: either record an integer-feasible
/// incumbent or branch on the most fractional integer variable.
#[allow(clippy::too_many_arguments)]
fn process(
    model: &Model,
    opts: &SolveOptions,
    _c: &[f64],
    obj: f64,
    x: Vec<f64>,
    node: &Node,
    heap: &mut BinaryHeap<Node>,
    incumbent: &mut Option<(f64, Vec<f64>)>,
) {
    // Most fractional integer variable.
    let mut branch_var: Option<(usize, f64)> = None;
    let mut best_frac = opts.int_tol;
    for (i, v) in model.vars.iter().enumerate() {
        if !v.integer {
            continue;
        }
        let frac = (x[i] - x[i].round()).abs();
        if frac > best_frac {
            best_frac = frac;
            branch_var = Some((i, x[i]));
        }
    }
    match branch_var {
        None => {
            // Integer feasible: snap and record.
            let snapped: Vec<f64> = model
                .vars
                .iter()
                .zip(&x)
                .map(|(v, &xv)| if v.integer { xv.round() } else { xv })
                .collect();
            let better = incumbent
                .as_ref()
                .map(|(inc, _)| obj < *inc - 1e-9)
                .unwrap_or(true);
            if better {
                *incumbent = Some((obj, snapped));
            }
        }
        Some((i, xi)) => {
            let floor = xi.floor();
            let mut down = node.clone();
            down.bound = obj;
            down.depth += 1;
            down.bounds.push((i, f64::NEG_INFINITY, floor));
            let mut up = node.clone();
            up.bound = obj;
            up.depth += 1;
            up.bounds.push((i, floor + 1.0, f64::INFINITY));
            heap.push(down);
            heap.push(up);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary
        let mut m = Model::new(Sense::Maximize);
        let a = m.bin_var("a", 10.0);
        let b = m.bin_var("b", 13.0);
        let c = m.bin_var("c", 7.0);
        m.add_le(&[(a, 3.0), (b, 4.0), (c, 2.0)], 6.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!(sol.pivots > 0, "solve statistics must count pivots");
        // best: b + c = 20
        assert_eq!(sol.objective.round() as i64, 20);
        assert_eq!(sol.int_value(b), 1);
        assert_eq!(sol.int_value(c), 1);
        assert_eq!(sol.int_value(a), 0);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x s.t. 2x <= 5, x integer -> 2 (LP gives 2.5)
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 100.0, 1.0);
        m.add_le(&[(x, 2.0)], 5.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.int_value(x), 2);
    }

    #[test]
    fn equality_with_integers() {
        // min 3x + 5y s.t. x + y = 7, x - y <= 1, integers
        // Feasible x..: x <= 4; min cost picks y small -> y = 3, x = 4 -> 27
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x", 0.0, 10.0, 3.0);
        let y = m.int_var("y", 0.0, 10.0, 5.0);
        m.add_eq(&[(x, 1.0), (y, 1.0)], 7.0);
        m.add_le(&[(x, 1.0), (y, -1.0)], 1.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective.round() as i64, 27);
        assert_eq!(sol.int_value(x), 4);
        assert_eq!(sol.int_value(y), 3);
    }

    #[test]
    fn infeasible_integer_model() {
        // 0 <= x <= 1 integer, 2x = 1 has no integer solution.
        let mut m = Model::new(Sense::Minimize);
        let x = m.bin_var("x", 1.0);
        m.add_eq(&[(x, 2.0)], 1.0);
        assert!(matches!(m.solve(), Err(SolveError::Infeasible)));
    }

    #[test]
    fn unbounded_model() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x", 0.0, f64::INFINITY, 1.0);
        let _ = x;
        assert!(matches!(m.solve(), Err(SolveError::Unbounded)));
    }

    #[test]
    fn bad_bounds_rejected() {
        let mut m = Model::new(Sense::Minimize);
        m.var("x", -1.0, 1.0, 1.0);
        assert!(matches!(m.solve(), Err(SolveError::BadBounds { .. })));
        let mut m2 = Model::new(Sense::Minimize);
        m2.var("y", 2.0, 1.0, 1.0);
        assert!(matches!(m2.solve(), Err(SolveError::BadBounds { .. })));
    }

    #[test]
    fn mixed_continuous_and_integer() {
        // min y s.t. y >= x - 0.5, y >= 2.5 - x, x integer in [0,5].
        // For integer x, the best is x=1 or x=2 -> y = max(0.5, 1.5)... check:
        // x=1: y >= 0.5 and y >= 1.5 -> 1.5; x=2: y >= 1.5, y >= 0.5 -> 1.5.
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x", 0.0, 5.0, 0.0);
        let y = m.var("y", 0.0, f64::INFINITY, 1.0);
        m.add_ge(&[(y, 1.0), (x, -1.0)], -0.5);
        m.add_ge(&[(y, 1.0), (x, 1.0)], 2.5);
        let sol = m.solve().unwrap();
        assert!((sol.value(y) - 1.5).abs() < 1e-6, "y={}", sol.value(y));
    }

    #[test]
    fn budget_yields_feasible_status() {
        // A model big enough that 1 node can't prove optimality.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..12)
            .map(|i| m.bin_var(&format!("x{i}"), (i % 5 + 1) as f64))
            .collect();
        let coeffs: Vec<(crate::model::VarId, f64)> = vars.iter().map(|v| (*v, 2.0)).collect();
        m.add_le(&coeffs, 11.0);
        let opts = SolveOptions {
            max_nodes: 3,
            ..Default::default()
        };
        match m.solve_with(&opts) {
            Ok(sol) => assert!(matches!(sol.status, Status::Feasible | Status::Optimal)),
            Err(SolveError::NoIncumbent) => {} // acceptable under tiny budget
            Err(e) => panic!("{e}"),
        }
    }

    #[test]
    fn warm_start_is_accepted_and_matches_cold_objective() {
        // Same knapsack as above; warm-start with the known optimum.
        let mut m = Model::new(Sense::Maximize);
        let a = m.bin_var("a", 10.0);
        let b = m.bin_var("b", 13.0);
        let c = m.bin_var("c", 7.0);
        m.add_le(&[(a, 3.0), (b, 4.0), (c, 2.0)], 6.0);
        let cold = m.solve().unwrap();
        assert!(!cold.warm);
        let opts = SolveOptions {
            warm_start: Some(vec![0.0, 1.0, 1.0]),
            ..Default::default()
        };
        let sol = m.solve_with(&opts).unwrap();
        assert!(sol.warm, "feasible warm point must seed the incumbent");
        assert_eq!(sol.objective.round() as i64, cold.objective.round() as i64);
        assert!(m.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn infeasible_warm_start_degrades_to_cold_solve() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.bin_var("a", 10.0);
        let b = m.bin_var("b", 13.0);
        m.add_le(&[(a, 3.0), (b, 4.0)], 6.0);
        // Violates the knapsack: both picked.
        let opts = SolveOptions {
            warm_start: Some(vec![1.0, 1.0]),
            ..Default::default()
        };
        let sol = m.solve_with(&opts).unwrap();
        assert!(!sol.warm, "infeasible warm point is ignored");
        assert_eq!(sol.objective.round() as i64, 13);
    }

    #[test]
    fn suboptimal_warm_start_is_improved_on() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.bin_var("a", 10.0);
        let b = m.bin_var("b", 13.0);
        let c = m.bin_var("c", 7.0);
        m.add_le(&[(a, 3.0), (b, 4.0), (c, 2.0)], 6.0);
        // Feasible but suboptimal: a alone (10 < 20).
        let opts = SolveOptions {
            warm_start: Some(vec![1.0, 0.0, 0.0]),
            ..Default::default()
        };
        let sol = m.solve_with(&opts).unwrap();
        assert!(sol.warm);
        assert_eq!(sol.objective.round() as i64, 20, "b&b beats the seed");
    }

    #[test]
    fn solution_is_always_feasible() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.int_var("a", 0.0, 7.0, 4.0);
        let b = m.int_var("b", 0.0, 7.0, 3.0);
        let c = m.var("c", 0.0, 2.0, 1.0);
        m.add_le(&[(a, 2.0), (b, 3.0), (c, 1.0)], 12.0);
        m.add_ge(&[(a, 1.0), (b, 1.0)], 2.0);
        let sol = m.solve().unwrap();
        assert!(m.is_feasible(&sol.values, 1e-6));
        let _ = (a, b, c);
    }
}
