//! Dense two-phase primal simplex.
//!
//! Standard-form construction: every constraint row is normalized to a
//! non-negative right-hand side, `≤` rows get slacks, `≥` rows get a
//! surplus plus an artificial, `=` rows get an artificial. Phase 1
//! minimizes the artificial sum to find a basic feasible point; phase 2
//! minimizes the true objective. Bland's rule guarantees termination;
//! a generous iteration cap guards against numerical stalls.
//!
//! Variables are assumed non-negative; general lower/upper bounds are
//! added as rows by the caller ([`crate::solver`]).

use crate::model::ConSense;

/// One constraint row: sparse coefficients, sense, right-hand side.
pub type LpRow = (Vec<(usize, f64)>, ConSense, f64);

/// An LP in caller form: minimize `c·x`, `x ≥ 0`, subject to rows.
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Number of structural variables.
    pub n: usize,
    /// Objective coefficients (minimization).
    pub c: Vec<f64>,
    /// Rows: sparse coefficients, sense, rhs.
    pub rows: Vec<LpRow>,
}

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// Proven optimal basic solution.
    Optimal {
        /// Structural variable values.
        x: Vec<f64>,
        /// Objective value.
        obj: f64,
    },
    /// No feasible point.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
    /// Iteration cap hit (numerical stall); treat as unusable.
    Stalled,
}

const EPS: f64 = 1e-9;

struct Tableau {
    /// Row-major `m × width`; the last column is the RHS.
    a: Vec<f64>,
    m: usize,
    width: usize,
    basis: Vec<usize>,
    /// Objective row (reduced costs), length `width`; last entry is
    /// the negated objective value.
    obj: Vec<f64>,
    /// Columns allowed to enter the basis.
    allowed: Vec<bool>,
    /// Pivots performed, for solver statistics.
    pivots: u64,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.width + c]
    }

    #[inline]
    fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.a[r * self.width + c]
    }

    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.width - 1)
    }

    /// One pivot: normalize the pivot row, eliminate the column from
    /// all other rows and the objective row.
    fn pivot(&mut self, pr: usize, pc: usize) {
        let w = self.width;
        let pivot = self.at(pr, pc);
        debug_assert!(pivot.abs() > EPS);
        let inv = 1.0 / pivot;
        for c in 0..w {
            *self.at_mut(pr, c) *= inv;
        }
        for r in 0..self.m {
            if r == pr {
                continue;
            }
            let factor = self.at(r, pc);
            if factor.abs() <= EPS {
                continue;
            }
            for c in 0..w {
                let v = self.at(pr, c);
                *self.at_mut(r, c) -= factor * v;
            }
        }
        let factor = self.obj[pc];
        if factor.abs() > EPS {
            for c in 0..w {
                self.obj[c] -= factor * self.at(pr, c);
            }
        }
        self.basis[pr] = pc;
        self.pivots += 1;
    }

    /// Run simplex iterations until optimal/unbounded/stalled.
    fn run(&mut self, max_iter: usize) -> Option<bool> {
        // Returns Some(true)=optimal, Some(false)=unbounded, None=stalled.
        for _ in 0..max_iter {
            // Bland: smallest-index column with negative reduced cost.
            let mut entering = None;
            for c in 0..self.width - 1 {
                if self.allowed[c] && self.obj[c] < -EPS {
                    entering = Some(c);
                    break;
                }
            }
            let Some(pc) = entering else {
                return Some(true);
            };
            // Ratio test with Bland tie-break on basis index.
            let mut best: Option<(f64, usize, usize)> = None; // (ratio, basis var, row)
            for r in 0..self.m {
                let a = self.at(r, pc);
                if a > EPS {
                    let ratio = self.rhs(r) / a;
                    let key = (ratio, self.basis[r]);
                    match best {
                        None => best = Some((key.0, key.1, r)),
                        Some((br, bv, _)) => {
                            if ratio < br - EPS || (ratio < br + EPS && self.basis[r] < bv) {
                                best = Some((ratio, self.basis[r], r));
                            }
                        }
                    }
                }
            }
            let Some((_, _, pr)) = best else {
                return Some(false); // unbounded
            };
            self.pivot(pr, pc);
        }
        None
    }
}

/// Solve an LP.
pub fn solve_lp(p: &LpProblem) -> LpResult {
    solve_lp_counted(p).0
}

/// Solve an LP, also returning the number of simplex pivots performed
/// (across both phases) for solver statistics.
pub fn solve_lp_counted(p: &LpProblem) -> (LpResult, u64) {
    let n = p.n;
    let m = p.rows.len();
    // Count auxiliary columns.
    let mut n_slack = 0;
    let mut n_art = 0;
    // Normalize rows to b >= 0 first (flip sense when negating).
    let rows: Vec<LpRow> = p
        .rows
        .iter()
        .map(|(coeffs, sense, rhs)| {
            if *rhs < 0.0 {
                let flipped = coeffs.iter().map(|(i, a)| (*i, -a)).collect();
                let s = match sense {
                    ConSense::Le => ConSense::Ge,
                    ConSense::Ge => ConSense::Le,
                    ConSense::Eq => ConSense::Eq,
                };
                (flipped, s, -rhs)
            } else {
                (coeffs.clone(), *sense, *rhs)
            }
        })
        .collect();
    for (_, sense, _) in &rows {
        match sense {
            ConSense::Le => n_slack += 1,
            ConSense::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            ConSense::Eq => n_art += 1,
        }
    }
    let total = n + n_slack + n_art;
    let width = total + 1;
    let mut a = vec![0.0f64; m * width];
    let mut basis = vec![0usize; m];
    let mut slack_next = n;
    let art_base = n + n_slack;
    let mut art_next = art_base;
    for (r, (coeffs, sense, rhs)) in rows.iter().enumerate() {
        for (i, coef) in coeffs {
            a[r * width + i] += coef;
        }
        a[r * width + width - 1] = *rhs;
        match sense {
            ConSense::Le => {
                a[r * width + slack_next] = 1.0;
                basis[r] = slack_next;
                slack_next += 1;
            }
            ConSense::Ge => {
                a[r * width + slack_next] = -1.0;
                slack_next += 1;
                a[r * width + art_next] = 1.0;
                basis[r] = art_next;
                art_next += 1;
            }
            ConSense::Eq => {
                a[r * width + art_next] = 1.0;
                basis[r] = art_next;
                art_next += 1;
            }
        }
    }
    let mut t = Tableau {
        a,
        m,
        width,
        basis,
        obj: vec![0.0; width],
        allowed: vec![true; total],
        pivots: 0,
    };
    let max_iter = 2000 + 60 * (m + total);

    // Phase 1: minimize the sum of artificials.
    if n_art > 0 {
        // Reduced costs: c = 1 on artificials; artificials are basic, so
        // obj row = -(sum of artificial-basic rows) on other columns.
        for r in 0..m {
            if t.basis[r] >= art_base {
                for c in 0..width {
                    t.obj[c] -= t.at(r, c);
                }
            }
        }
        for c in art_base..total {
            t.obj[c] = 0.0; // artificial columns: cost 1, basic → reduced 0
        }
        match t.run(max_iter) {
            Some(true) => {}
            // phase-1 can't be unbounded
            Some(false) => return (LpResult::Infeasible, t.pivots),
            None => return (LpResult::Stalled, t.pivots),
        }
        let phase1_obj = -t.obj[width - 1];
        if phase1_obj > 1e-6 {
            return (LpResult::Infeasible, t.pivots);
        }
        // Pivot remaining basic artificials out where possible.
        for r in 0..m {
            if t.basis[r] >= art_base {
                let mut pivoted = false;
                for c in 0..art_base {
                    if t.at(r, c).abs() > 1e-7 {
                        t.pivot(r, c);
                        pivoted = true;
                        break;
                    }
                }
                if !pivoted {
                    // Redundant row; keep the artificial basic at zero
                    // but never let it grow (it stays disallowed).
                }
            }
        }
        for c in art_base..total {
            t.allowed[c] = false;
        }
    }

    // Phase 2: minimize the true objective.
    // Recompute the reduced-cost row from scratch.
    let cost = |j: usize| -> f64 {
        if j < n {
            p.c[j]
        } else {
            0.0
        }
    };
    for c in 0..width {
        t.obj[c] = if c < width - 1 { cost(c) } else { 0.0 };
    }
    for r in 0..m {
        let cb = cost(t.basis[r]);
        if cb.abs() > EPS {
            for c in 0..width {
                let v = t.at(r, c);
                t.obj[c] -= cb * v;
            }
        }
    }
    // Basic columns' reduced costs must read zero exactly.
    for r in 0..m {
        let b = t.basis[r];
        t.obj[b] = 0.0;
    }
    match t.run(max_iter) {
        Some(true) => {}
        Some(false) => return (LpResult::Unbounded, t.pivots),
        None => return (LpResult::Stalled, t.pivots),
    }
    let mut x = vec![0.0; n];
    for r in 0..m {
        if t.basis[r] < n {
            x[t.basis[r]] = t.rhs(r);
        }
    }
    let obj = p.c.iter().zip(&x).map(|(c, v)| c * v).sum();
    (LpResult::Optimal { x, obj }, t.pivots)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(coeffs: Vec<(usize, f64)>, rhs: f64) -> (Vec<(usize, f64)>, ConSense, f64) {
        (coeffs, ConSense::Le, rhs)
    }

    fn ge(coeffs: Vec<(usize, f64)>, rhs: f64) -> (Vec<(usize, f64)>, ConSense, f64) {
        (coeffs, ConSense::Ge, rhs)
    }

    #[test]
    fn pivot_count_reported() {
        let p = LpProblem {
            n: 2,
            c: vec![-3.0, -2.0],
            rows: vec![le(vec![(0, 1.0), (1, 1.0)], 4.0), le(vec![(0, 1.0)], 2.0)],
        };
        let (res, pivots) = solve_lp_counted(&p);
        assert!(matches!(res, LpResult::Optimal { .. }));
        assert!(pivots > 0, "an optimal solve must pivot at least once");
    }

    #[test]
    fn simple_maximization_as_min() {
        // max 3x + 2y s.t. x + y <= 4, x <= 2  ->  min -3x -2y
        let p = LpProblem {
            n: 2,
            c: vec![-3.0, -2.0],
            rows: vec![le(vec![(0, 1.0), (1, 1.0)], 4.0), le(vec![(0, 1.0)], 2.0)],
        };
        match solve_lp(&p) {
            LpResult::Optimal { x, obj } => {
                assert!((x[0] - 2.0).abs() < 1e-7);
                assert!((x[1] - 2.0).abs() < 1e-7);
                assert!((obj + 10.0).abs() < 1e-7);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ge_and_eq_constraints() {
        // min x + y s.t. x + 2y >= 6, x = 2 -> y = 2, obj 4
        let p = LpProblem {
            n: 2,
            c: vec![1.0, 1.0],
            rows: vec![
                ge(vec![(0, 1.0), (1, 2.0)], 6.0),
                (vec![(0, 1.0)], ConSense::Eq, 2.0),
            ],
        };
        match solve_lp(&p) {
            LpResult::Optimal { x, obj } => {
                assert!((x[0] - 2.0).abs() < 1e-7);
                assert!((x[1] - 2.0).abs() < 1e-7);
                assert!((obj - 4.0).abs() < 1e-7);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 3
        let p = LpProblem {
            n: 1,
            c: vec![1.0],
            rows: vec![le(vec![(0, 1.0)], 1.0), ge(vec![(0, 1.0)], 3.0)],
        };
        assert_eq!(solve_lp(&p), LpResult::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x, x >= 0, no upper bound
        let p = LpProblem {
            n: 1,
            c: vec![-1.0],
            rows: vec![ge(vec![(0, 1.0)], 0.0)],
        };
        assert_eq!(solve_lp(&p), LpResult::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // -x <= -3  ≡  x >= 3; min x -> 3
        let p = LpProblem {
            n: 1,
            c: vec![1.0],
            rows: vec![le(vec![(0, -1.0)], -3.0)],
        };
        match solve_lp(&p) {
            LpResult::Optimal { x, .. } => assert!((x[0] - 3.0).abs() < 1e-7),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // A classic degenerate instance; Bland's rule must terminate.
        let p = LpProblem {
            n: 4,
            c: vec![-0.75, 150.0, -0.02, 6.0],
            rows: vec![
                le(vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)], 0.0),
                le(vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)], 0.0),
                le(vec![(2, 1.0)], 1.0),
            ],
        };
        match solve_lp(&p) {
            LpResult::Optimal { obj, .. } => assert!((obj + 0.05).abs() < 1e-6, "obj={obj}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn redundant_equalities_ok() {
        // x + y = 2 stated twice.
        let p = LpProblem {
            n: 2,
            c: vec![1.0, 2.0],
            rows: vec![
                (vec![(0, 1.0), (1, 1.0)], ConSense::Eq, 2.0),
                (vec![(0, 1.0), (1, 1.0)], ConSense::Eq, 2.0),
            ],
        };
        match solve_lp(&p) {
            LpResult::Optimal { x, obj } => {
                assert!((x[0] - 2.0).abs() < 1e-7);
                assert!((obj - 2.0).abs() < 1e-7);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn transportation_instance() {
        // Classic 2x2 transportation problem.
        // supplies: s0=20, s1=30; demands: d0=25, d1=25
        // costs: [[8, 6], [5, 9]] -> ship x01=20? optimal: x00=0? let's
        // brute-check the known optimum: x00 + x01 = 20; x10 + x11 = 30;
        // x00 + x10 = 25; x01 + x11 = 25. min 8a + 6b + 5c + 9d.
        // From constraints: b = 20 - a, c = 25 - a, d = 5 + a.
        // obj = 8a + 120 - 6a + 125 - 5a + 45 + 9a = 6a + 290, min at a=0: 290.
        let p = LpProblem {
            n: 4,
            c: vec![8.0, 6.0, 5.0, 9.0],
            rows: vec![
                (vec![(0, 1.0), (1, 1.0)], ConSense::Eq, 20.0),
                (vec![(2, 1.0), (3, 1.0)], ConSense::Eq, 30.0),
                (vec![(0, 1.0), (2, 1.0)], ConSense::Eq, 25.0),
                (vec![(1, 1.0), (3, 1.0)], ConSense::Eq, 25.0),
            ],
        };
        match solve_lp(&p) {
            LpResult::Optimal { obj, x } => {
                assert!((obj - 290.0).abs() < 1e-6, "obj={obj} x={x:?}");
            }
            other => panic!("{other:?}"),
        }
    }
}
