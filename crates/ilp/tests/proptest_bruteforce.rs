//! Property test: on random small integer programs, branch-and-bound
//! must agree with brute-force enumeration of the integer grid.

use proptest::prelude::*;
use sonata_ilp::{Model, Sense, SolveError};

/// Brute-force the best objective over all integer points in the box.
fn brute_force(
    sense: Sense,
    objs: &[f64],
    ubs: &[u8],
    cons: &[(Vec<f64>, f64)], // Σ coeff·x ≤ rhs
) -> Option<f64> {
    let n = objs.len();
    let mut best: Option<f64> = None;
    let mut point = vec![0u8; n];
    loop {
        let feasible = cons.iter().all(|(coeffs, rhs)| {
            coeffs
                .iter()
                .zip(&point)
                .map(|(c, &x)| c * x as f64)
                .sum::<f64>()
                <= rhs + 1e-9
        });
        if feasible {
            let obj: f64 = objs.iter().zip(&point).map(|(o, &x)| o * x as f64).sum();
            best = Some(match (best, sense) {
                (None, _) => obj,
                (Some(b), Sense::Maximize) => b.max(obj),
                (Some(b), Sense::Minimize) => b.min(obj),
            });
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            if point[i] < ubs[i] {
                point[i] += 1;
                break;
            }
            point[i] = 0;
            i += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bnb_matches_bruteforce(
        n in 2usize..5,
        maximize in any::<bool>(),
        seed_objs in proptest::collection::vec(-5i8..=8, 5),
        seed_ubs in proptest::collection::vec(1u8..=3, 5),
        seed_cons in proptest::collection::vec(
            (proptest::collection::vec(0i8..=4, 5), 1i8..=12),
            1..4,
        ),
    ) {
        let sense = if maximize { Sense::Maximize } else { Sense::Minimize };
        let objs: Vec<f64> = seed_objs[..n].iter().map(|&v| v as f64).collect();
        let ubs: Vec<u8> = seed_ubs[..n].to_vec();
        let cons: Vec<(Vec<f64>, f64)> = seed_cons
            .iter()
            .map(|(coeffs, rhs)| {
                (
                    coeffs[..n].iter().map(|&c| c as f64).collect(),
                    *rhs as f64,
                )
            })
            .collect();

        let mut m = Model::new(sense);
        let vars: Vec<_> = (0..n)
            .map(|i| m.int_var(&format!("x{i}"), 0.0, ubs[i] as f64, objs[i]))
            .collect();
        for (coeffs, rhs) in &cons {
            let terms: Vec<_> = vars
                .iter()
                .zip(coeffs)
                .filter(|(_, c)| c.abs() > 0.0)
                .map(|(v, c)| (*v, *c))
                .collect();
            if !terms.is_empty() {
                m.add_le(&terms, *rhs);
            }
        }

        let expected = brute_force(sense, &objs, &ubs, &cons)
            .expect("origin is always feasible for ≤ with rhs ≥ 1");
        match m.solve() {
            Ok(sol) => {
                prop_assert!((sol.objective - expected).abs() < 1e-6,
                    "bnb={} brute={expected}", sol.objective);
                prop_assert!(m.is_feasible(&sol.values, 1e-6));
            }
            Err(SolveError::Unbounded) => {
                // Cannot happen: all vars bounded.
                prop_assert!(false, "unbounded with bounded vars");
            }
            Err(e) => prop_assert!(false, "solve failed: {e}"),
        }
    }

    #[test]
    fn lp_relaxation_bounds_integer_optimum(
        objs in proptest::collection::vec(1i8..=9, 3),
        rhs in 2i8..=15,
    ) {
        // For a maximization knapsack, LP relaxation ≥ integer optimum.
        let mut mi = Model::new(Sense::Maximize);
        let vi: Vec<_> = objs
            .iter()
            .enumerate()
            .map(|(i, &o)| mi.bin_var(&format!("x{i}"), o as f64))
            .collect();
        let coeffs: Vec<_> = vi.iter().map(|v| (*v, 2.0)).collect();
        mi.add_le(&coeffs, rhs as f64);
        let int = mi.solve().unwrap().objective;

        let mut ml = Model::new(Sense::Maximize);
        let vl: Vec<_> = objs
            .iter()
            .enumerate()
            .map(|(i, &o)| ml.var(&format!("x{i}"), 0.0, 1.0, o as f64))
            .collect();
        let coeffs: Vec<_> = vl.iter().map(|v| (*v, 2.0)).collect();
        ml.add_le(&coeffs, rhs as f64);
        let lp = ml.solve().unwrap().objective;

        prop_assert!(lp >= int - 1e-6, "lp={lp} int={int}");
    }
}
