//! First-fit stage placement under the `M/A/B/S` resource model.
//!
//! All concurrently-installed tasks (every query × refinement level ×
//! branch) share the same physical pipeline, so placement is a global
//! packing problem: each stateless unit needs a table slot in some
//! stage; each stateful unit needs a (hash) table slot in stage `s`
//! and a stateful slot plus register bits in stage `s + 1`; a task's
//! units must sit in strictly increasing stages (the ILP's C4).

use sonata_pisa::compile::TableSpec;
use sonata_pisa::SwitchConstraints;

/// Requirements of one branch partition to be placed.
#[derive(Debug, Clone)]
pub struct PlacementRequest {
    /// The units going on the switch, in pipeline order.
    pub units: Vec<TableSpec>,
    /// Register bits per stateful unit (same order as stateful units
    /// appear in `units`).
    pub reg_bits: Vec<u64>,
    /// Metadata bits the task consumes.
    pub meta_bits: u64,
}

/// Tracks remaining per-stage capacity while tasks are placed.
#[derive(Debug, Clone)]
pub struct StageAllocator {
    constraints: SwitchConstraints,
    stateless_used: Vec<usize>,
    stateful_used: Vec<usize>,
    bits_used: Vec<u64>,
    meta_used: u64,
}

impl StageAllocator {
    /// A fresh allocator for a switch.
    pub fn new(constraints: SwitchConstraints) -> Self {
        let s = constraints.stages;
        StageAllocator {
            constraints,
            stateless_used: vec![0; s],
            stateful_used: vec![0; s],
            bits_used: vec![0; s],
            meta_used: 0,
        }
    }

    /// The constraints being packed against.
    pub fn constraints(&self) -> &SwitchConstraints {
        &self.constraints
    }

    /// Remaining metadata bits.
    pub fn meta_remaining(&self) -> u64 {
        self.constraints
            .metadata_bits
            .saturating_sub(self.meta_used)
    }

    /// Attempt to place a request; on success, capacity is consumed and
    /// the stage of each unit's first table is returned. On failure,
    /// nothing is consumed.
    pub fn place(&mut self, req: &PlacementRequest) -> Option<Vec<usize>> {
        if req.meta_bits > self.meta_remaining() {
            return None;
        }
        let s_max = self.constraints.stages;
        let mut stages = Vec::with_capacity(req.units.len());
        // Tentative bookkeeping; committed only on full success.
        let mut stateless = self.stateless_used.clone();
        let mut stateful = self.stateful_used.clone();
        let mut bits = self.bits_used.clone();
        let mut cur = 0usize;
        let mut reg_iter = req.reg_bits.iter();
        for unit in &req.units {
            if unit.stateful {
                let need_bits = *reg_iter.next()?;
                if need_bits > self.constraints.max_bits_per_register {
                    return None;
                }
                let mut placed = None;
                let mut s = cur;
                while s + 1 < s_max {
                    let hash_ok = stateless[s] < self.constraints.stateless_per_stage;
                    let upd_ok = stateful[s + 1] < self.constraints.stateful_per_stage
                        && bits[s + 1] + need_bits <= self.constraints.register_bits_per_stage;
                    if hash_ok && upd_ok {
                        placed = Some(s);
                        break;
                    }
                    s += 1;
                }
                let s = placed?;
                stateless[s] += 1;
                stateful[s + 1] += 1;
                bits[s + 1] += need_bits;
                stages.push(s);
                cur = s + 2;
            } else {
                let mut placed = None;
                let mut s = cur;
                while s < s_max {
                    if stateless[s] < self.constraints.stateless_per_stage {
                        placed = Some(s);
                        break;
                    }
                    s += 1;
                }
                let s = placed?;
                stateless[s] += 1;
                stages.push(s);
                cur = s + 1;
            }
        }
        self.stateless_used = stateless;
        self.stateful_used = stateful;
        self.bits_used = bits;
        self.meta_used += req.meta_bits;
        Some(stages)
    }

    /// Stages with any capacity consumed (diagnostics).
    pub fn stages_in_use(&self) -> usize {
        (0..self.constraints.stages)
            .rev()
            .find(|&s| {
                self.stateless_used[s] > 0 || self.stateful_used[s] > 0 || self.bits_used[s] > 0
            })
            .map(|s| s + 1)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(stateful: bool) -> TableSpec {
        TableSpec {
            kind: if stateful { "reduce" } else { "map" },
            ops: 0..1,
            stateful,
            stage_cost: if stateful { 2 } else { 1 },
            switch_ok: true,
            must_be_last: false,
        }
    }

    fn small() -> SwitchConstraints {
        SwitchConstraints {
            stages: 4,
            stateful_per_stage: 1,
            register_bits_per_stage: 1000,
            max_bits_per_register: 1000,
            metadata_bits: 128,
            stateless_per_stage: 2,
        }
    }

    #[test]
    fn sequential_units_get_increasing_stages() {
        let mut a = StageAllocator::new(small());
        let req = PlacementRequest {
            units: vec![unit(false), unit(false), unit(true)],
            reg_bits: vec![500],
            meta_bits: 64,
        };
        let stages = a.place(&req).unwrap();
        assert_eq!(stages, vec![0, 1, 2]); // hash at 2, update at 3
        assert_eq!(a.stages_in_use(), 4);
    }

    #[test]
    fn contention_pushes_to_later_stages() {
        let mut a = StageAllocator::new(small());
        let r1 = PlacementRequest {
            units: vec![unit(true)],
            reg_bits: vec![600],
            meta_bits: 0,
        };
        // First placement: hash at 0, update at 1 (600 bits there).
        assert_eq!(a.place(&r1).unwrap(), vec![0]);
        // Second: stage 1 has no stateful slot left (A=1), so slides to
        // hash at 1, update at 2.
        let r2 = PlacementRequest {
            units: vec![unit(true)],
            reg_bits: vec![600],
            meta_bits: 0,
        };
        assert_eq!(a.place(&r2).unwrap(), vec![1]);
        // Third: update would need stage 3 (stateful free) — hash at 2.
        let r3 = PlacementRequest {
            units: vec![unit(true)],
            reg_bits: vec![600],
            meta_bits: 0,
        };
        assert_eq!(a.place(&r3).unwrap(), vec![2]);
        // Fourth cannot fit (update would need stage 4).
        assert!(a.place(&r3.clone()).is_none());
    }

    #[test]
    fn register_bits_constrain_stage_choice() {
        let mut a = StageAllocator::new(SwitchConstraints {
            stateful_per_stage: 8,
            ..small()
        });
        let big = PlacementRequest {
            units: vec![unit(true)],
            reg_bits: vec![900],
            meta_bits: 0,
        };
        assert_eq!(a.place(&big).unwrap(), vec![0]);
        // Stage 1 has only 100 bits left; the next 900-bit register
        // slides its update to stage 2.
        assert_eq!(a.place(&big).unwrap(), vec![1]);
    }

    #[test]
    fn oversized_register_rejected() {
        let mut a = StageAllocator::new(small());
        let req = PlacementRequest {
            units: vec![unit(true)],
            reg_bits: vec![2000],
            meta_bits: 0,
        };
        assert!(a.place(&req).is_none());
    }

    #[test]
    fn metadata_budget_enforced() {
        let mut a = StageAllocator::new(small());
        let req = PlacementRequest {
            units: vec![unit(false)],
            reg_bits: vec![],
            meta_bits: 100,
        };
        assert!(a.place(&req).is_some());
        assert_eq!(a.meta_remaining(), 28);
        assert!(a
            .place(&PlacementRequest {
                meta_bits: 100,
                ..req.clone()
            })
            .is_none());
    }

    #[test]
    fn failure_consumes_nothing() {
        let mut a = StageAllocator::new(small());
        let impossible = PlacementRequest {
            units: vec![unit(true), unit(true), unit(true), unit(true)],
            reg_bits: vec![100; 4],
            meta_bits: 0,
        };
        assert!(a.place(&impossible).is_none());
        assert_eq!(a.stages_in_use(), 0);
        assert_eq!(a.meta_remaining(), 128);
        // A feasible request still succeeds afterwards.
        let ok = PlacementRequest {
            units: vec![unit(true)],
            reg_bits: vec![100],
            meta_bits: 0,
        };
        assert!(a.place(&ok).is_some());
    }

    #[test]
    fn stateless_slots_fill_per_stage() {
        let mut a = StageAllocator::new(small());
        // 2 stateless per stage × 4 stages = 8 single-unit tasks.
        for i in 0..8 {
            let req = PlacementRequest {
                units: vec![unit(false)],
                reg_bits: vec![],
                meta_bits: 0,
            };
            let s = a.place(&req).unwrap();
            assert_eq!(s[0], i / 2);
        }
        let req = PlacementRequest {
            units: vec![unit(false)],
            reg_bits: vec![],
            meta_bits: 0,
        };
        assert!(a.place(&req).is_none());
    }
}
