//! Online incremental replanning (the DynamiQ-style control loop).
//!
//! The initial plan is solved once against a training trace; when live
//! traffic drifts, the committed per-query tuple budget goes stale and
//! the drift monitor fires a re-plan trigger. The [`Replanner`] closes
//! that loop without a cold solve:
//!
//! 1. **Re-cost** — the last `W` windows of *observed* per-query tuple
//!    loads (reconciled by the obs layer) are reduced by median and
//!    compared against the committed budget; every transition's
//!    `N(k)` vector and distinct-key estimates are scaled by the
//!    observed/predicted ratio, so the catalog prices the traffic that
//!    is actually on the wire, not the training trace.
//! 2. **Re-solve** — by default the combinatorial planner re-runs
//!    against the scaled catalog (milliseconds); optionally the MILP
//!    re-solves warm-started from the committed assignment with a
//!    churn bound ([`plan_ilp_warm`]).
//! 3. The resulting [`GlobalPlan`] carries `epoch = committed + 1`;
//!    the runtime swaps it in atomically at a window boundary.

use crate::costs::{estimate_costs, QueryCosts};
use crate::ilp_planner::{plan_ilp_warm, IlpPlanError};
use crate::plan::GlobalPlan;
use crate::strategies::{plan_with_costs, PlanError, PlannerConfig};
use sonata_ilp::{Solution, SolveOptions};
use sonata_packet::Packet;
use sonata_query::interpret::InterpretError;
use sonata_query::{Query, QueryId};
use std::collections::VecDeque;

/// Floor for the observed/predicted ratio: a query that went quiet
/// must not collapse its cost estimates to zero (registers would be
/// sized for nothing and the next uptick would thrash).
const MIN_RATIO: f64 = 0.05;

/// Ceiling for the ratio: one absurd window must not blow register
/// sizings past anything placeable.
const MAX_RATIO: f64 = 1_000.0;

/// Observed per-query loads and re-costing state for incremental
/// re-solves.
///
/// Owns a clone of the queries, the *base* (training-trace) cost
/// catalog, and a bounded ring of observed per-query tuple loads; a
/// re-solve never touches packets again — it rescales the base
/// catalog from the ring.
#[derive(Debug, Clone)]
pub struct Replanner {
    queries: Vec<Query>,
    base: Vec<QueryCosts>,
    cfg: PlannerConfig,
    history: VecDeque<Vec<(QueryId, u64)>>,
    window_history: usize,
}

/// What a re-solve produced, with enough context to judge it.
#[derive(Debug, Clone)]
pub struct ReplanOutcome {
    /// The new plan; `epoch` is the committed plan's epoch + 1.
    pub plan: GlobalPlan,
    /// Observed/predicted load ratio applied per query, input order.
    pub ratios: Vec<(QueryId, f64)>,
    /// Solver stats when the MILP path ran (`None` for the greedy
    /// path, which has no branch-and-bound to report).
    pub solution: Option<Solution>,
}

impl Replanner {
    /// A replanner over `queries` with their training-trace costs.
    pub fn new(
        queries: &[Query],
        base_costs: Vec<QueryCosts>,
        cfg: PlannerConfig,
        window_history: usize,
    ) -> Self {
        Replanner {
            queries: queries.to_vec(),
            base: base_costs,
            cfg,
            history: VecDeque::new(),
            window_history: window_history.max(1),
        }
    }

    /// Build a replanner straight from the training windows the
    /// initial plan was solved against, estimating each query's base
    /// cost catalog with the same [`CostConfig`](crate::costs::CostConfig)
    /// the planner used — the one-call constructor for runtimes that
    /// hold the training trace.
    pub fn from_training(
        queries: &[Query],
        training_windows: &[&[Packet]],
        cfg: PlannerConfig,
        window_history: usize,
    ) -> Result<Self, InterpretError> {
        let base = queries
            .iter()
            .map(|q| estimate_costs(q, training_windows, &cfg.cost))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::new(queries, base, cfg, window_history))
    }

    /// Record one window's observed per-query tuple loads.
    pub fn observe_window(&mut self, loads: &[(QueryId, u64)]) {
        self.history.push_back(loads.to_vec());
        while self.history.len() > self.window_history {
            self.history.pop_front();
        }
    }

    /// Windows currently in the observation ring.
    pub fn observed_windows(&self) -> usize {
        self.history.len()
    }

    /// Median observed load per query over the ring (0 when empty).
    fn median_observed(&self, query: QueryId) -> f64 {
        let mut vals: Vec<f64> = self
            .history
            .iter()
            .filter_map(|w| w.iter().find(|(q, _)| *q == query).map(|(_, n)| *n as f64))
            .collect();
        if vals.is_empty() {
            return 0.0;
        }
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        vals[vals.len() / 2]
    }

    /// Observed/predicted ratio per query against a committed plan.
    pub fn load_ratios(&self, committed: &GlobalPlan) -> Vec<(QueryId, f64)> {
        let budget = committed.budget();
        budget
            .per_query
            .iter()
            .map(|&(q, predicted)| {
                let observed = self.median_observed(q);
                let ratio = if self.history.is_empty() {
                    1.0
                } else {
                    (observed / predicted.max(1.0)).clamp(MIN_RATIO, MAX_RATIO)
                };
                (q, ratio)
            })
            .collect()
    }

    /// The base catalog with every `N(k)` vector and key estimate
    /// scaled by the query's observed/predicted ratio. Scaling keys
    /// alongside tuples is deliberate: an attack that multiplies
    /// distinct keys needs proportionally larger registers or the
    /// swapped-in plan would shunt just like the stale one.
    pub fn recost(&self, ratios: &[(QueryId, f64)]) -> Vec<QueryCosts> {
        self.base
            .iter()
            .map(|qc| {
                let ratio = ratios
                    .iter()
                    .find(|(q, _)| *q == qc.query)
                    .map(|(_, r)| *r)
                    .unwrap_or(1.0);
                let mut scaled = qc.clone();
                for t in scaled.transitions.values_mut() {
                    for b in &mut t.branches {
                        for n in &mut b.n {
                            *n *= ratio;
                        }
                        for k in &mut b.keys {
                            *k *= ratio;
                        }
                    }
                }
                scaled
            })
            .collect()
    }

    /// Incremental re-solve via the combinatorial planner: re-cost,
    /// re-plan, bump the epoch. Milliseconds, no MILP.
    pub fn replan(&self, committed: &GlobalPlan) -> Result<ReplanOutcome, PlanError> {
        let ratios = self.load_ratios(committed);
        let scaled = self.recost(&ratios);
        let mut plan = plan_with_costs(&self.queries, &scaled, &self.cfg)?;
        plan.epoch = committed.epoch + 1;
        Ok(ReplanOutcome {
            plan,
            ratios,
            solution: None,
        })
    }

    /// Incremental re-solve via the MILP, warm-started from the
    /// committed assignment with an optional churn bound `delta`
    /// (maximum `F`/`P` decision flips from the committed plan).
    pub fn replan_ilp(
        &self,
        committed: &GlobalPlan,
        opts: &SolveOptions,
        delta: Option<usize>,
    ) -> Result<ReplanOutcome, IlpPlanError> {
        let ratios = self.load_ratios(committed);
        let scaled = self.recost(&ratios);
        let (plan, solution) =
            plan_ilp_warm(&self.queries, &scaled, &self.cfg, opts, committed, delta)?;
        Ok(ReplanOutcome {
            plan,
            ratios,
            solution: Some(solution),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::{estimate_costs, CostConfig};
    use crate::strategies::plan_queries;
    use sonata_packet::{Packet, PacketBuilder, TcpFlags};
    use sonata_query::catalog::{self, Thresholds};

    fn syn(src: u32, dst: u32, ts: u64) -> Packet {
        PacketBuilder::tcp_raw(src, 9, dst, 80)
            .flags(TcpFlags::SYN)
            .ts_nanos(ts)
            .build()
    }

    fn window() -> Vec<Packet> {
        let mut pkts = Vec::new();
        for i in 0..30 {
            pkts.push(syn(100 + i, 0x63070019, i as u64));
        }
        for host in 0..40u32 {
            let dst = ((host % 20 + 1) << 24) | host;
            pkts.push(syn(7, dst, 1000 + host as u64));
        }
        pkts
    }

    fn cfg() -> PlannerConfig {
        PlannerConfig {
            cost: CostConfig {
                levels: Some(vec![8, 32]),
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn fixture() -> (Vec<Query>, Vec<QueryCosts>, GlobalPlan) {
        let w = window();
        let queries = vec![catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 10,
            ..Thresholds::default()
        })];
        let cfg = cfg();
        let costs: Vec<_> = queries
            .iter()
            .map(|q| estimate_costs(q, &[&w], &cfg.cost).unwrap())
            .collect();
        let plan = plan_queries(&queries, &[&w], &cfg).unwrap();
        (queries, costs, plan)
    }

    #[test]
    fn no_observations_replans_at_ratio_one() {
        let (queries, costs, committed) = fixture();
        let rp = Replanner::new(&queries, costs, cfg(), 4);
        let out = rp.replan(&committed).unwrap();
        assert_eq!(out.plan.epoch, committed.epoch + 1);
        assert!(out.ratios.iter().all(|(_, r)| *r == 1.0));
        assert!(
            (out.plan.predicted_tuples - committed.predicted_tuples).abs() < 1e-9,
            "identical catalog must reproduce the committed budget"
        );
    }

    #[test]
    fn observed_overload_scales_the_budget_up() {
        let (queries, costs, committed) = fixture();
        let q = queries[0].id;
        let mut rp = Replanner::new(&queries, costs, cfg(), 4);
        let predicted = committed.budget().per_query[0].1;
        let observed = (predicted * 10.0) as u64;
        for _ in 0..4 {
            rp.observe_window(&[(q, observed)]);
        }
        let out = rp.replan(&committed).unwrap();
        let ratio = out.ratios[0].1;
        assert!(ratio > 5.0, "ratio={ratio}");
        let new_budget = out.plan.budget().per_query[0].1;
        assert!(
            new_budget > committed.budget().per_query[0].1,
            "re-costed plan must budget for the observed load"
        );
    }

    #[test]
    fn history_ring_is_bounded_and_median_resists_spikes() {
        let (queries, costs, committed) = fixture();
        let q = queries[0].id;
        let mut rp = Replanner::new(&queries, costs, cfg(), 3);
        // One absurd spike drowned by the ring: 3 quiet windows evict it.
        rp.observe_window(&[(q, 1_000_000)]);
        for _ in 0..3 {
            rp.observe_window(&[(q, committed.budget().per_query[0].1 as u64)]);
        }
        assert_eq!(rp.observed_windows(), 3);
        let ratios = rp.load_ratios(&committed);
        assert!(ratios[0].1 < 2.0, "spike must be evicted: {:?}", ratios);
    }

    #[test]
    fn ratio_is_clamped_on_quiet_traffic() {
        let (queries, costs, committed) = fixture();
        let q = queries[0].id;
        let mut rp = Replanner::new(&queries, costs, cfg(), 4);
        rp.observe_window(&[(q, 0)]);
        let ratios = rp.load_ratios(&committed);
        assert_eq!(ratios[0].1, MIN_RATIO);
        // The re-plan still succeeds and stays structurally valid.
        let out = rp.replan(&committed).unwrap();
        assert_eq!(out.plan.queries[0].levels.last().unwrap().level, 32);
    }

    #[test]
    fn warm_ilp_replan_reports_solver_stats() {
        let (queries, costs, committed) = fixture();
        let q = queries[0].id;
        let mut rp = Replanner::new(&queries, costs, cfg(), 4);
        rp.observe_window(&[(q, 50)]);
        let out = rp
            .replan_ilp(&committed, &SolveOptions::default(), None)
            .unwrap();
        assert_eq!(out.plan.epoch, committed.epoch + 1);
        let sol = out.solution.expect("MILP path carries a Solution");
        assert!(sol.nodes >= 1);
    }
}
