//! Trace-driven cost estimation (Sections 3.3 and 4.2).
//!
//! For every query and every refinement transition `rᵢ → rᵢ₊₁`, the
//! planner replays training windows through the *augmented* query and
//! measures, per candidate partition point `k`:
//!
//! * `N(k)` — tuples the stream processor would receive per window if
//!   the first `k` table units ran on the switch (the paper's
//!   `N_{q,t}`; Figure 5's N₁/N₂ columns are `N(1)`/`N(3)` for
//!   Query 1);
//! * the distinct keys entering each stateful unit, which size its
//!   register (`B_{q,t}`, Figure 5's B column);
//! * relaxed thresholds for coarse levels — the minimum aggregate,
//!   over training windows, among coarse prefixes that cover a key
//!   satisfying the original query (Section 4.1).
//!
//! Following the paper, per-window measurements are reduced by median.

use crate::refine::{refine_query, refinement_levels};
use sonata_packet::{Field, Packet, Value};
use sonata_pisa::compile::{max_switch_units, table_specs, RegisterSizing, TableSpec};
use sonata_pisa::StateLayout;
use sonata_query::interpret::{run_operator, run_query_with_schema, InterpretError};
use sonata_query::query::{OpRef, PipelineRef};
use sonata_query::{Operator, Pipeline, Query, QueryId, Schema, Tuple};
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of the estimation pass.
#[derive(Debug, Clone)]
pub struct CostConfig {
    /// Candidate refinement levels; `None` uses
    /// [`refinement_levels`] for the query's key field.
    pub levels: Option<Vec<u8>>,
    /// Cap on training windows consumed.
    pub max_windows: usize,
    /// Register sizing headroom: slots = keys × headroom.
    pub headroom: f64,
    /// Relax threshold values at coarse levels from training data
    /// (Section 4.1). Disabling keeps the original thresholds — still
    /// correct, but coarse levels pass more traffic downstream; the
    /// `ablations` bench quantifies the difference.
    pub relax_thresholds: bool,
    /// Approximate register layouts (`sonata-sketch`): when enabled,
    /// stateful units are sized as sketches instead of exact key-value
    /// arrays, trading bounded error for register bits.
    pub sketch: SketchPolicy,
}

impl Default for CostConfig {
    fn default() -> Self {
        CostConfig {
            levels: None,
            max_windows: 4,
            headroom: 1.5,
            relax_thresholds: true,
            sketch: SketchPolicy::default(),
        }
    }
}

/// Planner-side policy for approximate register layouts.
///
/// When `enabled`, distinct units are sized as Bloom filters and
/// cm-capable reduce units as count-min sketches whose shape follows
/// the standard bounds: width = ⌈e/ε⌉, depth = ⌈ln(1/δ)⌉. The switch
/// re-checks semantic capability at load time ([`StateLayout`]
/// stamping is a *family* request, not an unconditional override), so
/// a stamped layout on a non-capable aggregate degrades to `Exact`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchPolicy {
    /// Use sketch layouts when sizing stateful registers.
    pub enabled: bool,
    /// Target relative error (vs window L1 mass) for count-min.
    pub epsilon: f64,
    /// Target failure probability of the count-min guarantee.
    pub delta: f64,
}

impl Default for SketchPolicy {
    fn default() -> Self {
        SketchPolicy {
            enabled: false,
            epsilon: 0.01,
            delta: 0.05,
        }
    }
}

/// Per-branch costs of one refinement transition.
#[derive(Debug, Clone)]
pub struct BranchCost {
    /// Table units of the refined branch pipeline.
    pub units: Vec<TableSpec>,
    /// Largest switch-executable partition.
    pub max_units: usize,
    /// Median tuples to the stream processor per window, indexed by
    /// partition point `k ∈ 0..=max_units`.
    pub n: Vec<f64>,
    /// Median distinct keys entering each stateful unit (only units
    /// within `max_units`), in unit order.
    pub keys: Vec<f64>,
    /// Bits per register slot (key + value) for each stateful unit.
    pub slot_bits: Vec<u32>,
}

impl BranchCost {
    /// Register bits required for stateful unit `i` under sizing
    /// headroom `h` and `d` arrays (exact key-value layout).
    pub fn register_bits(&self, i: usize, headroom: f64, d: usize) -> u64 {
        let slots = (self.keys[i] * headroom).ceil().max(16.0) as u64;
        slots * d as u64 * self.slot_bits[i] as u64
    }

    /// Register bits for stateful unit `i` under the sketch policy.
    /// Mirrors [`sonata_pisa::RegisterDecl::total_bits`] so the
    /// planner's accounting agrees with the switch's resource check.
    pub fn register_bits_with(
        &self,
        i: usize,
        headroom: f64,
        d: usize,
        sketch: &SketchPolicy,
    ) -> u64 {
        let s = self.sizing(i, headroom, d, sketch);
        match s.layout {
            StateLayout::Exact => s.slots as u64 * s.arrays as u64 * self.slot_bits[i] as u64,
            StateLayout::CountMin => {
                (s.slots * s.arrays * sonata_sketch::CM_COUNTER_BITS
                    + sonata_sketch::bloom_bits_for(s.capacity)) as u64
            }
            StateLayout::Bloom => sonata_sketch::bloom_bits_for(s.capacity) as u64,
            StateLayout::Hll => {
                (sonata_sketch::bloom_bits_for(s.capacity)
                    + (1usize << sonata_sketch::HLL_PRECISION) * 8) as u64
            }
        }
    }

    /// Suggested slot count for stateful unit `i`.
    pub fn slots(&self, i: usize, headroom: f64) -> usize {
        (self.keys[i] * headroom).ceil().max(16.0) as usize
    }

    /// Operator kind of stateful unit `i` ("reduce" or "distinct").
    fn stateful_kind(&self, i: usize) -> &'static str {
        self.units
            .iter()
            .filter(|u| u.stateful)
            .nth(i)
            .map(|u| u.kind)
            .unwrap_or("reduce")
    }

    /// Full register sizing for stateful unit `i`: exact key-value by
    /// default; under an enabled [`SketchPolicy`], distinct units get
    /// a Bloom layout sized for the trained key count and reduce units
    /// a count-min whose width/depth derive from (ε, δ) — notably
    /// *independent* of the key count, which is where the capacity
    /// multiplication comes from.
    pub fn sizing(
        &self,
        i: usize,
        headroom: f64,
        d: usize,
        sketch: &SketchPolicy,
    ) -> RegisterSizing {
        let capacity = (self.keys[i] * headroom).ceil().max(16.0) as usize;
        if !sketch.enabled {
            return RegisterSizing {
                slots: capacity,
                arrays: d,
                ..Default::default()
            };
        }
        match self.stateful_kind(i) {
            "distinct" => RegisterSizing {
                slots: capacity,
                arrays: 1,
                layout: StateLayout::Bloom,
                capacity,
            },
            _ => RegisterSizing {
                slots: sonata_sketch::cm_width_for(sketch.epsilon),
                arrays: sonata_sketch::cm_depth_for(sketch.delta),
                layout: StateLayout::CountMin,
                capacity,
            },
        }
    }
}

/// Costs of one transition `(prev, level)`.
#[derive(Debug, Clone)]
pub struct TransitionCost {
    /// Branch costs: index 0 = left, index 1 = right (join queries).
    pub branches: Vec<BranchCost>,
}

impl TransitionCost {
    /// Total tuples per window when branch `b` partitions at `ks[b]`.
    pub fn total_n(&self, ks: &[usize]) -> f64 {
        self.branches
            .iter()
            .zip(ks)
            .map(|(b, &k)| b.n[k.min(b.n.len() - 1)])
            .sum()
    }

    /// Minimum achievable tuples (every branch at max partition).
    pub fn best_n(&self) -> f64 {
        self.branches.iter().map(|b| b.n[b.max_units]).sum()
    }
}

/// All estimated costs for one query.
#[derive(Debug, Clone)]
pub struct QueryCosts {
    /// The query.
    pub query: QueryId,
    /// Refinement key field, if refinable.
    pub field: Option<Field>,
    /// The finest level (identity masking).
    pub finest: u8,
    /// Candidate levels, coarse→fine, ending with `finest`.
    pub levels: Vec<u8>,
    /// Relaxed thresholds per level: `(filter position, value)`.
    pub relaxed: BTreeMap<u8, Vec<(OpRef, u64)>>,
    /// Satisfying output keys of the original query per training
    /// window (used to seed transition filters).
    pub satisfying: Vec<BTreeSet<Value>>,
    /// Transition costs keyed by `(previous level, level)`.
    pub transitions: BTreeMap<(Option<u8>, u8), TransitionCost>,
}

impl QueryCosts {
    /// The refined query for a level, with relaxed thresholds applied.
    pub fn refined_with_thresholds(
        &self,
        query: &Query,
        level: u8,
        prev: Option<(u8, BTreeSet<Value>)>,
    ) -> Query {
        let mut q = if self.field.is_some() {
            refine_query(query, level, prev)
        } else {
            query.clone()
        };
        // Positions shift by one when a previous-level filter was
        // prepended to a pipeline.
        let shift = |at: OpRef, shifted: bool| -> OpRef {
            if shifted && matches!(at.pipeline, PipelineRef::Left | PipelineRef::Right) {
                OpRef {
                    pipeline: at.pipeline,
                    index: at.index + 1,
                }
            } else {
                at
            }
        };
        let shifted = q.pipeline.ops.len() > query.pipeline.ops.len();
        if let Some(relaxed) = self.relaxed.get(&level) {
            for (at, value) in relaxed {
                q.set_threshold(shift(*at, shifted), *value);
            }
        }
        q
    }
}

fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    values[values.len() / 2]
}

/// Progressive evaluation of one branch pipeline over one window:
/// `N(k)` for each partition point and keys per stateful unit.
fn branch_pass(
    pipeline: &Pipeline,
    packets: &[Tuple],
) -> Result<(Vec<f64>, Vec<f64>), InterpretError> {
    let units = table_specs(pipeline);
    let maxk = max_switch_units(&units);
    let mut n = Vec::with_capacity(maxk + 1);
    n.push(packets.len() as f64);
    let mut keys = Vec::new();
    let mut schema = Schema::packet();
    let mut tuples: Vec<Tuple> = packets.to_vec();
    for unit in units.iter().take(maxk) {
        for oi in unit.ops.clone() {
            let op = &pipeline.ops[oi];
            if let Operator::Reduce { .. } = op {
                // Count distinct keys entering the reduce before any
                // merged threshold filter prunes them.
                let (s, t) = run_operator(op, &schema, std::mem::take(&mut tuples))?;
                keys.push(t.len() as f64);
                schema = s;
                tuples = t;
            } else {
                let before_distinct = matches!(op, Operator::Distinct);
                let (s, t) = run_operator(op, &schema, std::mem::take(&mut tuples))?;
                if before_distinct {
                    keys.push(t.len() as f64);
                }
                schema = s;
                tuples = t;
            }
        }
        n.push(tuples.len() as f64);
    }
    Ok((n, keys))
}

/// Stateful-unit slot widths (key bits + value bits), computed from
/// the compiled register declarations.
fn slot_bits(pipeline: &Pipeline) -> Vec<u32> {
    let units = table_specs(pipeline);
    let maxk = max_switch_units(&units);
    let stateful = units.iter().take(maxk).filter(|u| u.stateful).count();
    let sizings = vec![
        sonata_pisa::compile::RegisterSizing {
            slots: 16,
            arrays: 1,
            ..Default::default()
        };
        stateful
    ];
    let stages: Vec<usize> = (0..maxk).map(|i| i * 2).collect();
    match sonata_pisa::compile::compile_pipeline(
        pipeline,
        sonata_pisa::TaskId {
            query: QueryId(u32::MAX),
            level: 32,
            branch: 0,
        },
        &stages,
        &sizings,
        0,
        0,
    ) {
        Ok(cp) => cp
            .fragment
            .registers
            .iter()
            .map(|r| r.key_bits + r.value_bits)
            .collect(),
        Err(_) => vec![64; stateful],
    }
}

/// The key column (by refinement-field origin) of a schema, if any.
fn key_col_index(q: &Query, schema: &Schema, field: Field) -> Option<usize> {
    let origins = q.output_origins();
    // Try output origins first, then a direct name scan.
    for (i, c) in schema.columns().iter().enumerate() {
        if origins.get(c) == Some(&field) {
            return Some(i);
        }
    }
    schema
        .columns()
        .iter()
        .position(|c| c.as_ref() == field.name())
}

/// Estimate relaxed thresholds for one level from training windows.
fn relax_level(
    query: &Query,
    field: Field,
    level: u8,
    windows: &[Vec<Tuple>],
    raw_windows: &[&[Packet]],
    satisfying: &[BTreeSet<Value>],
) -> Vec<(OpRef, u64)> {
    let _ = windows;
    let refined = refine_query(query, level, None);
    let mut relaxed = Vec::new();
    for (at, col, orig) in refined.threshold_filters() {
        // Probe: the pipeline containing the filter, truncated before
        // it, run standalone (Left/Right); post filters are skipped —
        // they run at the stream processor anyway.
        let pipeline = match at.pipeline {
            PipelineRef::Left => refined.pipeline.clone(),
            PipelineRef::Right => match &refined.join {
                Some(j) => j.right.clone(),
                None => continue,
            },
            PipelineRef::Post => continue,
        };
        let probe = Query {
            id: refined.id,
            name: format!("{}-probe", refined.name),
            window_ms: refined.window_ms,
            pipeline: Pipeline {
                ops: pipeline.ops[..at.index].to_vec(),
            },
            join: None,
            refinement: refined.refinement.clone(),
            delay_budget: None,
        };
        let mut mins: Vec<f64> = Vec::new();
        for (w, pkts) in raw_windows.iter().enumerate() {
            let Ok((schema, tuples)) = run_query_with_schema(&probe, pkts) else {
                continue;
            };
            let Some(key_idx) = key_col_index(&probe, &schema, field) else {
                continue;
            };
            let Some(col_idx) = schema.index_of(&col) else {
                continue;
            };
            let prefixes: BTreeSet<Value> = satisfying
                .get(w)
                .map(|s| s.iter().map(|v| v.mask_to_level(level)).collect())
                .unwrap_or_default();
            if prefixes.is_empty() {
                continue;
            }
            let mut level_min: Option<u64> = None;
            for t in &tuples {
                if prefixes.contains(t.get(key_idx)) {
                    if let Some(v) = t.get(col_idx).as_u64() {
                        level_min = Some(level_min.map_or(v, |m| m.min(v)));
                    }
                }
            }
            if let Some(m) = level_min {
                mins.push(m as f64);
            }
        }
        if mins.is_empty() {
            relaxed.push((at, orig));
        } else {
            // The filter is strict (`>`), so pass prefixes whose
            // aggregate reaches the observed minimum.
            let m = median(&mut mins) as u64;
            relaxed.push((at, orig.max(m.saturating_sub(1))));
        }
    }
    relaxed
}

/// Estimate all costs for one query over training windows.
pub fn estimate_costs(
    query: &Query,
    training_windows: &[&[Packet]],
    cfg: &CostConfig,
) -> Result<QueryCosts, InterpretError> {
    let windows: Vec<&[Packet]> = training_windows
        .iter()
        .take(cfg.max_windows.max(1))
        .copied()
        .collect();
    let field = query.refinement.as_ref().map(|h| h.field);
    let finest = field
        .and_then(|f| f.finest_refinement_level())
        .unwrap_or(32);
    let mut levels: Vec<u8> = match (&cfg.levels, field) {
        (Some(l), Some(_)) => l.clone(),
        (None, Some(f)) => refinement_levels(f),
        (_, None) => vec![finest],
    };
    if !levels.contains(&finest) {
        levels.push(finest);
    }
    levels.sort_unstable();
    levels.dedup();

    // Satisfying keys of the original query per window.
    let out_col = query.refinement.as_ref().map(|h| h.out_col.clone());
    let mut satisfying: Vec<BTreeSet<Value>> = Vec::new();
    for pkts in &windows {
        let (schema, tuples) = run_query_with_schema(query, pkts)?;
        let idx = out_col
            .as_ref()
            .and_then(|c| schema.index_of(c))
            .unwrap_or(0);
        satisfying.push(tuples.iter().map(|t| t.get(idx).clone()).collect());
    }

    // Relaxed thresholds per coarse level.
    let mut relaxed = BTreeMap::new();
    if let (Some(f), true) = (field, cfg.relax_thresholds) {
        for &level in &levels {
            if level == finest {
                continue;
            }
            relaxed.insert(
                level,
                relax_level(query, f, level, &[], &windows, &satisfying),
            );
        }
    }
    let costs_shell = QueryCosts {
        query: query.id,
        field,
        finest,
        levels: levels.clone(),
        relaxed,
        satisfying: satisfying.clone(),
        transitions: BTreeMap::new(),
    };

    // Pre-materialize packet tuples per window once.
    let tuple_windows: Vec<Vec<Tuple>> = windows
        .iter()
        .map(|pkts| pkts.iter().map(Tuple::from_packet).collect())
        .collect();

    // Satisfying prefixes per (window, level) under *relaxed* queries —
    // the filter feed for transition estimation.
    let mut level_outputs: BTreeMap<u8, Vec<BTreeSet<Value>>> = BTreeMap::new();
    if field.is_some() {
        for &level in &levels {
            if level == finest {
                continue;
            }
            let rq = costs_shell.refined_with_thresholds(query, level, None);
            let hint_col = query.refinement.as_ref().unwrap().out_col.clone();
            let field_name = query.refinement.as_ref().unwrap().field.name();
            let mut per_window = Vec::new();
            for pkts in &windows {
                // Final output keys (matching the runtime's feed).
                let (schema, tuples) = run_query_with_schema(&rq, pkts)?;
                let idx = schema.index_of(&hint_col).unwrap_or(0);
                let mut keys: BTreeSet<Value> = tuples
                    .iter()
                    .map(|t| t.get(idx).mask_to_level(level))
                    .collect();
                // Plus self-thresholded branch outputs — only when the
                // post-join pipeline hinges on a content predicate
                // (see the runtime's matching rule).
                let post_confirms = rq
                    .join
                    .as_ref()
                    .map(|j| j.post.has_content_predicate())
                    .unwrap_or(false);
                if post_confirms {
                    let mut branch_probe = |pipeline: &Pipeline| -> Result<(), InterpretError> {
                        if !pipeline.ends_with_threshold_filter() {
                            return Ok(());
                        }
                        let probe = Query {
                            id: rq.id,
                            name: format!("{}-branch-probe", rq.name),
                            window_ms: rq.window_ms,
                            pipeline: pipeline.clone(),
                            join: None,
                            refinement: rq.refinement.clone(),
                            delay_budget: None,
                        };
                        let (ps, pt) = run_query_with_schema(&probe, pkts)?;
                        if let Some(pidx) =
                            ps.index_of(&hint_col).or_else(|| ps.index_of(field_name))
                        {
                            keys.extend(pt.iter().map(|t| t.get(pidx).mask_to_level(level)));
                        }
                        Ok(())
                    };
                    branch_probe(&rq.pipeline)?;
                    if let Some(j) = &rq.join {
                        branch_probe(&j.right)?;
                    }
                }
                per_window.push(keys);
            }
            level_outputs.insert(level, per_window);
        }
    }

    // Transition enumeration.
    let mut transitions = BTreeMap::new();
    let mut pairs: Vec<(Option<u8>, u8)> = Vec::new();
    if field.is_some() {
        for (i, &r) in levels.iter().enumerate() {
            pairs.push((None, r));
            for &p in &levels[..i] {
                pairs.push((Some(p), r));
            }
        }
    } else {
        pairs.push((None, finest));
    }

    for (prev, r) in pairs {
        let mut branch_n: Vec<Vec<Vec<f64>>> = Vec::new(); // branch → window → n-vec
        let mut branch_keys: Vec<Vec<Vec<f64>>> = Vec::new();
        let mut units_per_branch: Vec<Vec<TableSpec>> = Vec::new();
        let mut slot_bits_per_branch: Vec<Vec<u32>> = Vec::new();
        for (w, tuples) in tuple_windows.iter().enumerate() {
            // Transition filter: previous level's output from the
            // preceding window (same window for the first transition
            // sample — the training trace is stationary).
            let prev_arg = prev.map(|p| {
                let outs = level_outputs.get(&p).expect("level output computed");
                let src = if w > 0 { w - 1 } else { 0 };
                (p, outs[src].clone())
            });
            let rq = costs_shell.refined_with_thresholds(query, r, prev_arg);
            let mut branches: Vec<&Pipeline> = vec![&rq.pipeline];
            if let Some(j) = &rq.join {
                branches.push(&j.right);
            }
            for (bi, p) in branches.iter().enumerate() {
                if branch_n.len() <= bi {
                    branch_n.push(Vec::new());
                    branch_keys.push(Vec::new());
                    units_per_branch.push(table_specs(p));
                    slot_bits_per_branch.push(slot_bits(p));
                }
                let (n, keys) = branch_pass(p, tuples)?;
                branch_n[bi].push(n);
                branch_keys[bi].push(keys);
            }
        }
        let mut branches = Vec::new();
        for bi in 0..branch_n.len() {
            let units = units_per_branch[bi].clone();
            let max_units = max_switch_units(&units);
            let samples = &branch_n[bi];
            let mut n = Vec::with_capacity(max_units + 1);
            for k in 0..=max_units {
                let mut vals: Vec<f64> = samples.iter().map(|s| s[k]).collect();
                n.push(median(&mut vals));
            }
            let key_samples = &branch_keys[bi];
            let stateful_count = key_samples.first().map(|s| s.len()).unwrap_or(0);
            let mut keys = Vec::with_capacity(stateful_count);
            for i in 0..stateful_count {
                let mut vals: Vec<f64> = key_samples.iter().map(|s| s[i]).collect();
                keys.push(median(&mut vals));
            }
            branches.push(BranchCost {
                units,
                max_units,
                n,
                keys,
                slot_bits: slot_bits_per_branch[bi].clone(),
            });
        }
        transitions.insert((prev, r), TransitionCost { branches });
    }

    Ok(QueryCosts {
        transitions,
        ..costs_shell
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonata_packet::{PacketBuilder, TcpFlags};
    use sonata_query::catalog::{self, Thresholds};

    fn syn(src: u32, dst: u32, ts: u64) -> Packet {
        PacketBuilder::tcp_raw(src, 9, dst, 80)
            .flags(TcpFlags::SYN)
            .ts_nanos(ts)
            .build()
    }

    /// A window with a heavy hitter (victim, 20 SYNs) plus background
    /// hosts spread across /8s (2 SYNs each).
    fn window() -> Vec<Packet> {
        let mut pkts = Vec::new();
        for i in 0..20 {
            pkts.push(syn(100 + i, 0x63070019, i as u64));
        }
        for host in 0..10u32 {
            let dst = ((host % 5 + 1) << 24) | host;
            pkts.push(syn(7, dst, 100 + host as u64));
            pkts.push(syn(8, dst, 200 + host as u64));
        }
        pkts
    }

    fn q1() -> Query {
        catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 10,
            ..Thresholds::default()
        })
    }

    #[test]
    fn costs_have_figure5_shape() {
        let w1 = window();
        let w2 = window();
        let cfg = CostConfig {
            levels: Some(vec![8, 16, 32]),
            ..Default::default()
        };
        let costs = estimate_costs(&q1(), &[&w1, &w2], &cfg).unwrap();
        // Transitions: (*,8),(*,16),(*,32),(8,16),(8,32),(16,32)
        assert_eq!(costs.transitions.len(), 6);
        let star8 = &costs.transitions[&(None, 8)].branches[0];
        // N(0) = all packets; N decreases along the pipeline.
        assert_eq!(star8.n[0], 40.0);
        assert!(star8.n[1] <= star8.n[0]);
        // Partition at the reduce: only satisfying /8 prefixes remain.
        let n_full = star8.n[star8.max_units];
        assert!((1.0..5.0).contains(&n_full), "n_full={n_full}");
        // Filtered transitions see less traffic than unfiltered ones.
        let f8_32 = &costs.transitions[&(Some(8), 32)].branches[0];
        let star32 = &costs.transitions[&(None, 32)].branches[0];
        assert!(
            f8_32.n[1] <= star32.n[1],
            "{} vs {}",
            f8_32.n[1],
            star32.n[1]
        );
        // Keys at coarse level fewer than keys at fine level.
        let k8 = costs.transitions[&(None, 8)].branches[0].keys[0];
        let k32 = star32.keys[0];
        assert!(k8 <= k32, "k8={k8} k32={k32}");
        assert_eq!(star8.slot_bits, vec![64]); // 32-bit key + 32-bit count
    }

    #[test]
    fn relaxed_thresholds_are_no_smaller_than_original() {
        let w = window();
        let cfg = CostConfig {
            levels: Some(vec![8, 32]),
            ..Default::default()
        };
        let costs = estimate_costs(&q1(), &[&w], &cfg).unwrap();
        let relaxed = &costs.relaxed[&8];
        assert_eq!(relaxed.len(), 1);
        // The /8 containing the victim aggregates 20 SYNs; relaxed
        // threshold ≈ 19 ≥ original 10.
        assert!(relaxed[0].1 >= 10, "relaxed={}", relaxed[0].1);
        assert!(relaxed[0].1 <= 20);
    }

    #[test]
    fn relaxed_thresholds_never_lose_true_positives() {
        let w = window();
        let cfg = CostConfig {
            levels: Some(vec![8, 16, 32]),
            ..Default::default()
        };
        let q = q1();
        let costs = estimate_costs(&q, &[&w], &cfg).unwrap();
        let fine_keys = &costs.satisfying[0];
        assert!(!fine_keys.is_empty());
        for &level in &[8u8, 16] {
            let rq = costs.refined_with_thresholds(&q, level, None);
            let out = sonata_query::interpret::run_query(&rq, &w).unwrap();
            let coarse: BTreeSet<Value> = out.iter().map(|t| t.get(0).clone()).collect();
            for k in fine_keys {
                assert!(
                    coarse.contains(&k.mask_to_level(level)),
                    "level {level} lost {k}"
                );
            }
        }
    }

    #[test]
    fn join_query_costs_have_two_branches() {
        let w = window();
        let cfg = CostConfig {
            levels: Some(vec![8, 32]),
            ..Default::default()
        };
        let q = catalog::tcp_syn_flood(&Thresholds {
            syn_flood: 5,
            ..Thresholds::default()
        });
        let costs = estimate_costs(&q, &[&w], &cfg).unwrap();
        let t = &costs.transitions[&(None, 32)];
        assert_eq!(t.branches.len(), 2);
        assert!(t.total_n(&[0, 0]) >= t.best_n());
    }

    #[test]
    fn content_gated_feed_uses_branch_signal() {
        // Zorro-shaped traffic without any keyword packet: the coarse
        // level's *final* output is empty, but the counting branch
        // flags the victim — and the cost model must see the filtered
        // transition shrink accordingly.
        let mut pkts = Vec::new();
        for i in 0..20 {
            // Same-size telnet packets to one victim.
            pkts.push(
                PacketBuilder::tcp_raw(7, 999, 0x63070019, 23)
                    .flags(sonata_packet::TcpFlags::PSH_ACK)
                    .payload(vec![0x42; 32])
                    .ts_nanos(i)
                    .build(),
            );
        }
        for h in 0..30u32 {
            // Background telnet noise, one packet per host.
            pkts.push(
                PacketBuilder::tcp_raw(8, 999, ((h % 15 + 1) << 24) | h, 23)
                    .flags(sonata_packet::TcpFlags::PSH_ACK)
                    .payload(vec![h as u8; 40])
                    .ts_nanos(1000 + h as u64)
                    .build(),
            );
        }
        let q = sonata_query::catalog::zorro(&Thresholds {
            zorro_pkts: 5,
            ..Thresholds::default()
        });
        let cfg = CostConfig {
            levels: Some(vec![8, 32]),
            ..Default::default()
        };
        let costs = estimate_costs(&q, &[&pkts], &cfg).unwrap();
        // No keyword anywhere: final outputs empty at every level.
        assert!(costs.satisfying[0].is_empty());
        // Yet the filtered (8→32) transition sees less traffic than the
        // unfiltered (*→32) one — the branch signal fed the filter.
        let star32 = &costs.transitions[&(None, 32)].branches[0];
        let f8_32 = &costs.transitions[&(Some(8), 32)].branches[0];
        assert!(
            f8_32.n[1] < star32.n[1],
            "branch-fed filter must prune: {} vs {}",
            f8_32.n[1],
            star32.n[1]
        );
    }

    #[test]
    fn relaxation_disabled_keeps_original_thresholds() {
        let w = window();
        let cfg = CostConfig {
            levels: Some(vec![8, 32]),
            relax_thresholds: false,
            ..Default::default()
        };
        let costs = estimate_costs(&q1(), &[&w], &cfg).unwrap();
        assert!(costs.relaxed.is_empty());
        // The refined coarse query keeps the original threshold value.
        let rq = costs.refined_with_thresholds(&q1(), 8, None);
        let th = rq.threshold_filters()[0].2;
        assert_eq!(th, 10);
    }

    #[test]
    fn unrefinable_query_gets_single_transition() {
        let mut q = q1();
        q.refinement = None;
        let w = window();
        let costs = estimate_costs(&q, &[&w], &CostConfig::default()).unwrap();
        assert_eq!(costs.transitions.len(), 1);
        assert!(costs.transitions.contains_key(&(None, 32)));
    }
}
