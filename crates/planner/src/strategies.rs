//! The planning strategies: Sonata's combinatorial planner and the
//! four baseline planners the paper emulates (Table 4).
//!
//! Sonata's planner works per query: a shortest-path search over the
//! refinement-transition DAG (edge weight = tuples delivered at the
//! best partition of that transition) picks the refinement chain, then
//! global first-fit placement assigns stages; when the switch runs out
//! of resources, the partition of the affected task degrades one unit
//! at a time (ultimately to 0 = everything at the stream processor),
//! re-pricing the plan as it goes — the same behavior the paper's ILP
//! exhibits as constraints tighten (Figure 8).

use crate::costs::{estimate_costs, CostConfig, QueryCosts};
use crate::placement::{PlacementRequest, StageAllocator};
use crate::plan::{BranchPlan, GlobalPlan, LevelPlan, PlanMode, QueryPlan};
use sonata_obs::{EventKind, ObsHandle, Stage};
use sonata_packet::Packet;
use sonata_pisa::compile::{compile_pipeline, RegisterSizing, TableSpec};
use sonata_pisa::{SwitchConstraints, TaskId};
use sonata_query::interpret::InterpretError;
use sonata_query::{Pipeline, Query};
use std::collections::BTreeSet;

/// Planner configuration.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Switch resource limits.
    pub constraints: SwitchConstraints,
    /// Cost-estimation settings (levels, training windows, headroom).
    pub cost: CostConfig,
    /// Register arrays per stateful operator (the paper's `d`).
    pub d: usize,
    /// Strategy.
    pub mode: PlanMode,
    /// Default delay budget in windows (levels per chain) when a query
    /// doesn't set its own.
    pub max_delay: usize,
    /// Observability sink; disabled by default (planning stays silent).
    pub obs: ObsHandle,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            constraints: SwitchConstraints::default(),
            cost: CostConfig::default(),
            d: 2,
            mode: PlanMode::Sonata,
            max_delay: 8,
            obs: ObsHandle::disabled(),
        }
    }
}

/// Planning failure.
#[derive(Debug)]
pub enum PlanError {
    /// Cost estimation failed (query-authoring bug).
    Cost(InterpretError),
    /// A query failed validation.
    Invalid(sonata_query::QueryError),
}

impl From<InterpretError> for PlanError {
    fn from(e: InterpretError) -> Self {
        PlanError::Cost(e)
    }
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Cost(e) => write!(f, "cost estimation failed: {e}"),
            PlanError::Invalid(e) => write!(f, "invalid query: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Compute a global plan for `queries` using `training` windows.
pub fn plan_queries(
    queries: &[Query],
    training: &[&[Packet]],
    cfg: &PlannerConfig,
) -> Result<GlobalPlan, PlanError> {
    let mut all_costs = Vec::with_capacity(queries.len());
    for q in queries {
        q.validate().map_err(PlanError::Invalid)?;
        all_costs.push(estimate_costs(q, training, &cfg.cost)?);
    }
    plan_with_costs(queries, &all_costs, cfg)
}

/// Plan against precomputed costs (lets experiments reuse estimates
/// across strategy sweeps).
pub fn plan_with_costs(
    queries: &[Query],
    all_costs: &[QueryCosts],
    cfg: &PlannerConfig,
) -> Result<GlobalPlan, PlanError> {
    let _compile = cfg.obs.stage(Stage::PlanCompile, 0);
    let mut allocator = StageAllocator::new(cfg.constraints);
    let mut plans = Vec::with_capacity(queries.len());
    for (q, costs) in queries.iter().zip(all_costs) {
        let path = choose_path(q, costs, cfg);
        let levels = build_levels(q, costs, &path, cfg, &mut allocator);
        plans.push(QueryPlan {
            query: q.clone(),
            levels,
        });
    }
    let predicted = plans.iter().map(QueryPlan::predicted_n).sum();
    if cfg.obs.is_enabled() {
        for plan in &plans {
            cfg.obs.event(EventKind::RefinementChain {
                query: plan.query.id.0,
                levels: plan.levels.iter().map(|l| l.level).collect(),
            });
        }
        cfg.obs.event(EventKind::PlanCompile {
            mode: cfg.mode.label().to_string(),
            queries: queries.len() as u64,
            predicted_tuples: predicted,
        });
    }
    Ok(GlobalPlan {
        mode: cfg.mode,
        queries: plans,
        predicted_tuples: predicted,
        epoch: 0,
    })
}

/// Choose the refinement chain for one query.
fn choose_path(q: &Query, costs: &QueryCosts, cfg: &PlannerConfig) -> Vec<u8> {
    let finest = costs.finest;
    if costs.field.is_none() {
        return vec![finest];
    }
    let delay = q.delay_budget.unwrap_or(cfg.max_delay).max(1);
    match cfg.mode {
        PlanMode::AllSp | PlanMode::FilterDp | PlanMode::MaxDp => vec![finest],
        PlanMode::FixRef => {
            // All candidate levels, coarsest-first (the paper's DREAM
            // emulation zooms one level at a time); truncate to the
            // delay budget keeping the finest levels.
            let mut levels = costs.levels.clone();
            if levels.len() > delay {
                levels = levels.split_off(levels.len() - delay);
            }
            levels
        }
        PlanMode::Sonata => shortest_path(costs, delay, cfg),
    }
}

/// The cheapest tuple count a transition can achieve with a partition
/// that actually fits an *empty* switch — resource-aware edge weights
/// for the chain search. (Cross-query contention is handled later by
/// degradation during placement.)
fn best_feasible_n(t: &crate::costs::TransitionCost, cfg: &PlannerConfig) -> f64 {
    let mut total = 0.0;
    for bc in &t.branches {
        let mut chosen = bc.n[0];
        for k in (1..=bc.max_units).rev() {
            let reg_bits: Vec<u64> = bc
                .units
                .iter()
                .take(k)
                .filter(|u| u.stateful)
                .enumerate()
                .map(|(i, _)| bc.register_bits_with(i, cfg.cost.headroom, cfg.d, &cfg.cost.sketch))
                .collect();
            let req = PlacementRequest {
                units: bc.units[..k].to_vec(),
                reg_bits,
                meta_bits: 0,
            };
            let mut probe = StageAllocator::new(cfg.constraints);
            if probe.place(&req).is_some() {
                chosen = bc.n[k];
                break;
            }
        }
        total += chosen;
    }
    total
}

/// Shortest path `* → … → finest` in the transition DAG, bounded by
/// `delay` hops; edge weight = the cheapest *feasible* partition's
/// tuples per window.
fn shortest_path(costs: &QueryCosts, delay: usize, cfg: &PlannerConfig) -> Vec<u8> {
    let levels = &costs.levels;
    let finest = costs.finest;
    let n = levels.len();
    let idx_of = |l: u8| levels.iter().position(|&x| x == l).expect("level known");
    // dist[hops][i] = best cost to reach level i with `hops` levels used.
    let inf = f64::INFINITY;
    let max_hops = delay.min(n);
    let mut dist = vec![vec![inf; n]; max_hops + 1];
    let mut parent: Vec<Vec<Option<(usize, usize)>>> = vec![vec![None; n]; max_hops + 1];
    for (&(prev, r), t) in &costs.transitions {
        if prev.is_none() {
            let i = idx_of(r);
            let c = best_feasible_n(t, cfg);
            if c < dist[1][i] {
                dist[1][i] = c;
                parent[1][i] = None;
            }
        }
    }
    for hops in 1..max_hops {
        for i in 0..n {
            if dist[hops][i].is_infinite() {
                continue;
            }
            for j in i + 1..n {
                if let Some(t) = costs.transitions.get(&(Some(levels[i]), levels[j])) {
                    let c = dist[hops][i] + best_feasible_n(t, cfg);
                    if c < dist[hops + 1][j] {
                        dist[hops + 1][j] = c;
                        parent[hops + 1][j] = Some((hops, i));
                    }
                }
            }
        }
    }
    // Best chain ending at the finest level.
    let fi = idx_of(finest);
    let mut best: Option<(usize, f64)> = None;
    for (hops, d) in dist.iter().enumerate().skip(1) {
        if d[fi] < best.map(|(_, c)| c).unwrap_or(inf) {
            best = Some((hops, d[fi]));
        }
    }
    let Some((mut hops, _)) = best else {
        return vec![finest];
    };
    let mut path = vec![finest];
    let mut i = fi;
    while let Some((ph, pi)) = parent[hops][i] {
        path.push(levels[pi]);
        hops = ph;
        i = pi;
    }
    path.reverse();
    path
}

/// Metadata bits a branch partition consumes (via a trial compile).
pub(crate) fn meta_bits_for(pipeline: &Pipeline, units: &[TableSpec], k: usize) -> u64 {
    if k == 0 {
        return 0;
    }
    let stateful = units.iter().take(k).filter(|u| u.stateful).count();
    let mut stages = Vec::with_capacity(k);
    let mut cur = 0;
    for u in units.iter().take(k) {
        stages.push(cur);
        cur += u.stage_cost;
    }
    let sizings = vec![
        RegisterSizing {
            slots: 16,
            arrays: 1,
            ..Default::default()
        };
        stateful
    ];
    match compile_pipeline(
        pipeline,
        TaskId {
            query: sonata_query::QueryId(u32::MAX),
            level: 0,
            branch: 0,
        },
        &stages,
        &sizings,
        0,
        0,
    ) {
        Ok(cp) => cp.fragment.meta_fields[0]
            .1
            .iter()
            .map(|f| f.bits as u64)
            .sum(),
        Err(_) => 64,
    }
}

/// Build the per-level plans for one query along its chain, placing
/// units into the shared allocator with degradation on contention.
fn build_levels(
    q: &Query,
    costs: &QueryCosts,
    path: &[u8],
    cfg: &PlannerConfig,
    allocator: &mut StageAllocator,
) -> Vec<LevelPlan> {
    let mut levels = Vec::with_capacity(path.len());
    let mut prev: Option<u8> = None;
    for &level in path {
        let key = (prev, level);
        let t = costs
            .transitions
            .get(&key)
            .unwrap_or_else(|| panic!("transition {key:?} estimated"));
        let refined = costs.refined_with_thresholds(q, level, prev.map(|p| (p, BTreeSet::new())));
        let mut branch_pipelines: Vec<&Pipeline> = vec![&refined.pipeline];
        if let Some(j) = &refined.join {
            branch_pipelines.push(&j.right);
        }
        let mut branches = Vec::new();
        let mut level_n = 0.0;
        for (bi, bc) in t.branches.iter().enumerate() {
            let pipeline = branch_pipelines[bi];
            let desired = match cfg.mode {
                PlanMode::AllSp => 0,
                PlanMode::FilterDp => bc
                    .units
                    .iter()
                    .take(bc.max_units)
                    .take_while(|u| u.kind == "filter")
                    .count(),
                PlanMode::MaxDp | PlanMode::FixRef | PlanMode::Sonata => bc.max_units,
            };
            // Degrade the partition until placement succeeds (k = 0
            // always fits: no switch resources consumed).
            let mut chosen = 0usize;
            let mut stages = Vec::new();
            let mut k = desired;
            loop {
                if k == 0 {
                    break;
                }
                let reg_bits: Vec<u64> = bc
                    .units
                    .iter()
                    .take(k)
                    .filter(|u| u.stateful)
                    .enumerate()
                    .map(|(i, _)| {
                        bc.register_bits_with(i, cfg.cost.headroom, cfg.d, &cfg.cost.sketch)
                    })
                    .collect();
                let req = PlacementRequest {
                    units: bc.units[..k].to_vec(),
                    reg_bits,
                    meta_bits: meta_bits_for(pipeline, &bc.units, k),
                };
                if let Some(s) = allocator.place(&req) {
                    chosen = k;
                    stages = s;
                    break;
                }
                k -= 1;
            }
            let sizings: Vec<RegisterSizing> = bc
                .units
                .iter()
                .take(chosen)
                .filter(|u| u.stateful)
                .enumerate()
                .map(|(i, _)| bc.sizing(i, cfg.cost.headroom, cfg.d, &cfg.cost.sketch))
                .collect();
            level_n += bc.n[chosen];
            branches.push(BranchPlan {
                branch: bi as u8,
                units: chosen,
                stages,
                sizings,
            });
        }
        levels.push(LevelPlan {
            level,
            prev,
            refined,
            branches,
            predicted_n: level_n,
        });
        prev = Some(level);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonata_packet::{PacketBuilder, TcpFlags};
    use sonata_query::catalog::{self, Thresholds};

    fn syn(src: u32, dst: u32, ts: u64) -> Packet {
        PacketBuilder::tcp_raw(src, 9, dst, 80)
            .flags(TcpFlags::SYN)
            .ts_nanos(ts)
            .build()
    }

    /// Window with a /8-concentrated heavy hitter and scattered noise.
    fn window() -> Vec<Packet> {
        let mut pkts = Vec::new();
        for i in 0..30 {
            pkts.push(syn(100 + i, 0x63070019, i as u64));
        }
        for host in 0..40u32 {
            let dst = ((host % 20 + 1) << 24) | host;
            pkts.push(syn(7, dst, 1000 + host as u64));
        }
        pkts
    }

    fn cfg(mode: PlanMode) -> PlannerConfig {
        PlannerConfig {
            mode,
            cost: CostConfig {
                levels: Some(vec![8, 16, 32]),
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn q1() -> Query {
        catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 10,
            ..Thresholds::default()
        })
    }

    #[test]
    fn all_sp_has_zero_units() {
        let w = window();
        let plan = plan_queries(&[q1()], &[&w], &cfg(PlanMode::AllSp)).unwrap();
        assert_eq!(plan.units_on_switch(), 0);
        assert_eq!(plan.queries[0].levels.len(), 1);
        // Every packet becomes a tuple.
        assert_eq!(plan.predicted_tuples, 70.0);
    }

    #[test]
    fn filter_dp_offloads_only_filters() {
        let w = window();
        let plan = plan_queries(&[q1()], &[&w], &cfg(PlanMode::FilterDp)).unwrap();
        let lp = &plan.queries[0].levels[0];
        assert_eq!(lp.branches[0].units, 1); // just the SYN filter
                                             // All packets are SYNs here, so Filter-DP ≈ All-SP.
        assert_eq!(plan.predicted_tuples, 70.0);
    }

    #[test]
    fn max_dp_offloads_everything() {
        let w = window();
        let plan = plan_queries(&[q1()], &[&w], &cfg(PlanMode::MaxDp)).unwrap();
        let lp = &plan.queries[0].levels[0];
        assert_eq!(lp.branches[0].units, 3); // filter, map, reduce
        assert_eq!(plan.queries[0].levels.len(), 1);
        // Only the heavy hitter crosses the threshold.
        assert_eq!(plan.predicted_tuples, 1.0);
    }

    #[test]
    fn fix_ref_uses_all_levels() {
        let w = window();
        let plan = plan_queries(&[q1()], &[&w], &cfg(PlanMode::FixRef)).unwrap();
        let levels: Vec<u8> = plan.queries[0].levels.iter().map(|l| l.level).collect();
        assert_eq!(levels, vec![8, 16, 32]);
        // Chain links: prev pointers connect the levels.
        assert_eq!(plan.queries[0].levels[1].prev, Some(8));
        assert_eq!(plan.queries[0].levels[2].prev, Some(16));
    }

    #[test]
    fn sonata_path_ends_at_finest_and_beats_baselines() {
        let w1 = window();
        let w2 = window();
        let training: Vec<&[Packet]> = vec![&w1, &w2];
        let queries = vec![q1()];
        let sonata = plan_queries(&queries, &training, &cfg(PlanMode::Sonata)).unwrap();
        let allsp = plan_queries(&queries, &training, &cfg(PlanMode::AllSp)).unwrap();
        let fixref = plan_queries(&queries, &training, &cfg(PlanMode::FixRef)).unwrap();
        assert_eq!(
            sonata.queries[0].levels.last().unwrap().level,
            32,
            "chain must end at the original query"
        );
        assert!(sonata.predicted_tuples <= allsp.predicted_tuples);
        assert!(sonata.predicted_tuples <= fixref.predicted_tuples + 1e-9);
    }

    #[test]
    fn delay_budget_bounds_chain_length() {
        let w = window();
        let mut q = q1();
        q.delay_budget = Some(2);
        let plan = plan_queries(&[q], &[&w], &cfg(PlanMode::Sonata)).unwrap();
        assert!(plan.queries[0].delay_windows() <= 2);
        // Fix-REF also truncates to the budget, keeping finest levels.
        let mut q = q1();
        q.delay_budget = Some(2);
        let plan = plan_queries(&[q], &[&w], &cfg(PlanMode::FixRef)).unwrap();
        let levels: Vec<u8> = plan.queries[0].levels.iter().map(|l| l.level).collect();
        assert_eq!(levels, vec![16, 32]);
    }

    #[test]
    fn tight_stages_degrade_partitions() {
        let w = window();
        let mut c = cfg(PlanMode::MaxDp);
        c.constraints.stages = 2; // room for filter+map only, no reduce
        let plan = plan_queries(&[q1()], &[&w], &c).unwrap();
        let units = plan.queries[0].levels[0].branches[0].units;
        assert!(units < 3, "degraded to {units}");
        // Costs rise accordingly.
        assert!(plan.predicted_tuples > 1.0);
    }

    #[test]
    fn multi_query_contention_is_handled() {
        let w = window();
        let queries = vec![
            q1(),
            catalog::ddos(&Thresholds {
                ddos: 10,
                ..Thresholds::default()
            }),
            catalog::superspreader(&Thresholds {
                superspreader: 10,
                ..Thresholds::default()
            }),
        ];
        let mut c = cfg(PlanMode::Sonata);
        c.constraints.stateful_per_stage = 1;
        c.constraints.stages = 6;
        let plan = plan_queries(&queries, &[&w], &c).unwrap();
        assert_eq!(plan.queries.len(), 3);
        // Plans remain structurally sound under contention.
        for qp in &plan.queries {
            assert!(!qp.levels.is_empty());
            assert_eq!(qp.levels.last().unwrap().level, 32);
        }
    }

    #[test]
    fn join_queries_share_the_refinement_chain() {
        let w = window();
        let q = catalog::tcp_syn_flood(&Thresholds {
            syn_flood: 5,
            ..Thresholds::default()
        });
        let plan = plan_queries(&[q], &[&w], &cfg(PlanMode::Sonata)).unwrap();
        for lp in &plan.queries[0].levels {
            assert_eq!(lp.branches.len(), 2, "both branches planned");
        }
    }

    #[test]
    fn filter_dp_with_no_leading_filter_is_all_sp() {
        // Superspreader starts with a map: Filter-DP has nothing to
        // offload (the paper's observation about broad queries).
        let w = window();
        let q = catalog::superspreader(&Thresholds {
            superspreader: 10,
            ..Thresholds::default()
        });
        let plan = plan_queries(&[q], &[&w], &cfg(PlanMode::FilterDp)).unwrap();
        assert_eq!(plan.queries[0].levels[0].branches[0].units, 0);
        assert_eq!(plan.predicted_tuples, 70.0); // everything mirrored
    }

    #[test]
    fn feasible_edge_weights_prefer_refinement_under_pressure() {
        // With registers too small for fine-level keys, the chain
        // search must route through a coarse level.
        let w = window();
        let mut c = cfg(PlanMode::Sonata);
        // Room for the coarse /8 aggregation (~21 prefixes) but not
        // for all ~41 /32 keys at once.
        c.constraints.register_bits_per_stage = 5_000;
        c.constraints.max_bits_per_register = 5_000;
        let plan = plan_queries(&[q1()], &[&w], &c).unwrap();
        let chain: Vec<u8> = plan.queries[0].levels.iter().map(|l| l.level).collect();
        assert!(chain.len() > 1, "expected a chain, got {chain:?}");
        assert_eq!(*chain.last().unwrap(), 32);
    }

    #[test]
    fn zero_stage_switch_degrades_everything_to_sp() {
        let w = window();
        let mut c = cfg(PlanMode::MaxDp);
        c.constraints.stages = 0;
        let plan = plan_queries(&[q1()], &[&w], &c).unwrap();
        assert_eq!(plan.units_on_switch(), 0);
        assert_eq!(plan.predicted_tuples, 70.0);
    }

    #[test]
    fn empty_training_trace_still_plans() {
        // No packets: all costs zero, partitioning still structurally
        // valid (everything fits, nothing predicted).
        let empty: Vec<Packet> = Vec::new();
        let plan = plan_queries(&[q1()], &[&empty], &cfg(PlanMode::Sonata)).unwrap();
        assert_eq!(plan.predicted_tuples, 0.0);
        assert_eq!(plan.queries[0].levels.last().unwrap().level, 32);
    }

    #[test]
    fn planning_emits_obs_events_and_stage_timing() {
        let w = window();
        let mut c = cfg(PlanMode::Sonata);
        c.obs = ObsHandle::enabled();
        let plan = plan_queries(&[q1()], &[&w], &c).unwrap();
        let events = c.obs.events();
        let compile = events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::PlanCompile {
                    mode,
                    queries,
                    predicted_tuples,
                } => Some((mode.clone(), *queries, *predicted_tuples)),
                _ => None,
            })
            .expect("PlanCompile event");
        assert_eq!(compile.0, "Sonata");
        assert_eq!(compile.1, 1);
        assert!((compile.2 - plan.predicted_tuples).abs() < 1e-9);
        let chain = events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::RefinementChain { query, levels } => Some((*query, levels.clone())),
                _ => None,
            })
            .expect("RefinementChain event");
        assert_eq!(chain.0, plan.queries[0].query.id.0);
        let planned: Vec<u8> = plan.queries[0].levels.iter().map(|l| l.level).collect();
        assert_eq!(chain.1, planned);
        // The compile stage was timed into the registry.
        let snap = c.obs.snapshot();
        let hist = snap
            .histogram("sonata_stage_ns{stage=\"plan_compile\"}")
            .expect("plan_compile histogram");
        assert!(hist.count >= 1);
    }

    #[test]
    fn plan_display_is_readable() {
        let w = window();
        let plan = plan_queries(&[q1()], &[&w], &cfg(PlanMode::Sonata)).unwrap();
        let text = plan.to_string();
        assert!(text.contains("Sonata plan"));
        assert!(text.contains("newly_opened_tcp_conns"));
    }
}
