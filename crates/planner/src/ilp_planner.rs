//! The paper's query-planning ILP (Sections 3.3 and 4.2), built on the
//! `sonata-ilp` solver.
//!
//! Decision variables follow the paper:
//!
//! * `F_{q,r₁,r₂}` — level `r₂` executes after `r₁` in query `q`'s
//!   refinement chain (`r₁ = *` for the first level); the paper's
//!   `I_{q,r}` is the inflow `Σ_{r₁} F_{q,r₁,r}`;
//! * `P_{q,t,b,k}` — branch `b` of transition `t` partitions after
//!   unit `k` (the paper's `P_{q,t}` per table, at unit granularity);
//! * `X_{q,t,b,u,s}` — unit `u` executes with its first table in stage
//!   `s` (the paper's `X_{q,t,s}` / `S_{q,t}`).
//!
//! Constraints C1–C5 (register bits, stateful actions, stage count,
//! intra-query order, metadata) bind per stage across everything
//! installed concurrently; join sub-queries share the chain because
//! `F` is per query; `Σ_r I_{q,r} ≤ D_q` bounds detection delay. The
//! objective minimizes `Σ P·N` — tuples at the stream processor.
//!
//! The instance grows as queries × transitions × units × stages; like
//! the paper (which caps Gurobi at 20 minutes and takes the best
//! feasible plan), callers bound the solve with [`SolveOptions`].

use crate::costs::QueryCosts;
use crate::plan::{BranchPlan, GlobalPlan, LevelPlan, PlanMode, QueryPlan};
use crate::strategies::PlannerConfig;
use sonata_ilp::{Model, Sense, Solution, SolveError, SolveOptions, VarId};
use sonata_obs::{EventKind, Stage};
use sonata_pisa::compile::RegisterSizing;
use sonata_query::{Pipeline, Query};
use std::collections::{BTreeMap, BTreeSet};

/// ILP planning failure.
#[derive(Debug)]
pub enum IlpPlanError {
    /// The solver failed (infeasible models indicate a bug: partition
    /// 0 everywhere is always feasible).
    Solve(SolveError),
}

impl std::fmt::Display for IlpPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IlpPlanError::Solve(e) => write!(f, "ILP solve failed: {e}"),
        }
    }
}

impl std::error::Error for IlpPlanError {}

type TransKey = (Option<u8>, u8);

struct TransVars {
    f: VarId,
    /// per branch: partition vars by k, and per unit placement vars by stage.
    p: Vec<Vec<(usize, VarId)>>,
    x: Vec<Vec<Vec<(usize, VarId)>>>, // branch → unit → (stage, var)
}

/// Solve the joint partitioning + refinement ILP and extract a plan.
pub fn plan_ilp(
    queries: &[Query],
    all_costs: &[QueryCosts],
    cfg: &PlannerConfig,
    opts: &SolveOptions,
) -> Result<GlobalPlan, IlpPlanError> {
    let _compile = cfg.obs.stage(Stage::PlanCompile, 0);
    let (model, vars) = build_model(queries, all_costs, cfg);
    let (plan, _) = solve_and_extract(queries, all_costs, cfg, &model, &vars, opts)?;
    Ok(plan)
}

/// Warm-started, churn-bounded re-solve of the same ILP from a
/// committed plan (the online replanning path).
///
/// The committed plan's `F`/`P`/`X` assignment seeds the solver's
/// incumbent ([`SolveOptions::warm_start`]) so branch-and-bound opens
/// with a bound to prune against instead of a cold search; `delta`,
/// when set, adds a Hamming-distance constraint over the `F`/`P`
/// decision binaries — the re-solve may flip at most `delta` of them,
/// bounding plan churn per epoch (`delta = 0` pins the committed
/// plan; a slack delta leaves the optimum untouched). Returns the
/// plan (epoch = committed epoch + 1) together with the full
/// [`Solution`] so callers can read the warm-vs-cold solver stats
/// (`warm`, `pivots`, `wall`).
pub fn plan_ilp_warm(
    queries: &[Query],
    all_costs: &[QueryCosts],
    cfg: &PlannerConfig,
    opts: &SolveOptions,
    committed: &GlobalPlan,
    delta: Option<usize>,
) -> Result<(GlobalPlan, Solution), IlpPlanError> {
    let _compile = cfg.obs.stage(Stage::PlanCompile, 0);
    let (mut model, vars) = build_model(queries, all_costs, cfg);
    let point = committed_point(&model, &vars, committed);
    if let Some(d) = delta {
        // Σ_{committed=0} v − Σ_{committed=1} v ≤ delta − |committed=1|
        // ⇔ Hamming distance from the committed F/P assignment ≤ delta.
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        let mut ones = 0usize;
        for per_trans in &vars {
            for tv in per_trans.values() {
                let mut bins = vec![tv.f];
                for p_b in &tv.p {
                    bins.extend(p_b.iter().map(|(_, v)| *v));
                }
                for v in bins {
                    if point[v.index()] > 0.5 {
                        ones += 1;
                        terms.push((v, -1.0));
                    } else {
                        terms.push((v, 1.0));
                    }
                }
            }
        }
        model.add_le(&terms, d as f64 - ones as f64);
    }
    let mut warm_opts = opts.clone();
    warm_opts.warm_start = Some(point);
    let (mut plan, solution) =
        solve_and_extract(queries, all_costs, cfg, &model, &vars, &warm_opts)?;
    plan.epoch = committed.epoch + 1;
    Ok((plan, solution))
}

/// The committed plan's variable assignment in this model's space
/// (zeros everywhere the committed plan selects nothing). Chain edges,
/// partition choices, and stage placements are looked up by value;
/// selections the rebuilt model no longer offers (e.g. a partition
/// pruned by a tighter register cap after re-costing) are left unset —
/// such a point fails the solver's feasibility screen and the solve
/// silently falls back to cold.
fn committed_point(
    model: &Model,
    vars: &[BTreeMap<TransKey, TransVars>],
    committed: &GlobalPlan,
) -> Vec<f64> {
    let mut point = vec![0.0; model.num_vars()];
    for (qi, qp) in committed.queries.iter().enumerate() {
        let Some(per_trans) = vars.get(qi) else {
            continue;
        };
        for lp in &qp.levels {
            let Some(tv) = per_trans.get(&(lp.prev, lp.level)) else {
                continue;
            };
            point[tv.f.index()] = 1.0;
            for bp in &lp.branches {
                let b = bp.branch as usize;
                if let Some((_, v)) =
                    tv.p.get(b)
                        .and_then(|p_b| p_b.iter().find(|(k, _)| *k == bp.units))
                {
                    point[v.index()] = 1.0;
                }
                for (u, &s) in bp.stages.iter().enumerate() {
                    if let Some((_, v)) =
                        tv.x.get(b)
                            .and_then(|x_b| x_b.get(u))
                            .and_then(|x_u| x_u.iter().find(|(xs, _)| *xs == s))
                    {
                        point[v.index()] = 1.0;
                    }
                }
            }
        }
    }
    point
}

/// Build the ILP instance — variables and constraints C1–C5 — for the
/// whole query set.
fn build_model(
    queries: &[Query],
    all_costs: &[QueryCosts],
    cfg: &PlannerConfig,
) -> (Model, Vec<BTreeMap<TransKey, TransVars>>) {
    let s_max = cfg.constraints.stages;
    let mut model = Model::new(Sense::Minimize);
    let mut vars: Vec<BTreeMap<TransKey, TransVars>> = Vec::new();

    // Pre-compute meta bits per (query, transition, branch, k).
    let meta_of = |q: &Query, costs: &QueryCosts, key: TransKey, b: usize, k: usize| -> u64 {
        let refined = costs.refined_with_thresholds(q, key.1, key.0.map(|p| (p, BTreeSet::new())));
        let pipeline: &Pipeline = if b == 0 {
            &refined.pipeline
        } else {
            &refined.join.as_ref().expect("branch 1 implies join").right
        };
        let units = sonata_pisa::compile::table_specs(pipeline);
        crate::strategies::meta_bits_for(pipeline, &units, k)
    };

    for (qi, (_q, costs)) in queries.iter().zip(all_costs).enumerate() {
        let mut per_trans = BTreeMap::new();
        for (&key, t) in &costs.transitions {
            let f = model.bin_var(&format!("f_q{qi}_{key:?}"), 0.0);
            let mut p_all = Vec::new();
            let mut x_all = Vec::new();
            for (b, bc) in t.branches.iter().enumerate() {
                // Candidate partitions: skip k whose stateful units
                // exceed the per-register cap.
                let mut p_b = Vec::new();
                for k in 0..=bc.max_units {
                    let mut reg_ok = true;
                    let mut si = 0;
                    for u in bc.units.iter().take(k) {
                        if u.stateful {
                            if bc.register_bits_with(si, cfg.cost.headroom, cfg.d, &cfg.cost.sketch)
                                > cfg.constraints.max_bits_per_register
                            {
                                reg_ok = false;
                            }
                            si += 1;
                        }
                    }
                    if !reg_ok {
                        continue;
                    }
                    let n = bc.n[k];
                    let v = model.bin_var(&format!("p_q{qi}_{key:?}_b{b}_k{k}"), n);
                    p_b.push((k, v));
                }
                // Placement vars per unit and stage.
                let mut x_b = Vec::new();
                for (u, unit) in bc.units.iter().take(bc.max_units).enumerate() {
                    let mut x_u = Vec::new();
                    let top = if unit.stateful {
                        s_max.saturating_sub(1)
                    } else {
                        s_max
                    };
                    for s in 0..top {
                        let v = model.bin_var(&format!("x_q{qi}_{key:?}_b{b}_u{u}_s{s}"), 0.0);
                        x_u.push((s, v));
                    }
                    x_b.push(x_u);
                }
                p_all.push(p_b);
                x_all.push(x_b);
            }
            per_trans.insert(
                key,
                TransVars {
                    f,
                    p: p_all,
                    x: x_all,
                },
            );
        }
        vars.push(per_trans);
    }

    // Flow constraints per query.
    for (qi, (q, costs)) in queries.iter().zip(all_costs).enumerate() {
        let per_trans = &vars[qi];
        let finest = costs.finest;
        // Exactly one start edge.
        let starts: Vec<(VarId, f64)> = per_trans
            .iter()
            .filter(|((p, _), _)| p.is_none())
            .map(|(_, tv)| (tv.f, 1.0))
            .collect();
        model.add_eq(&starts, 1.0);
        // Conservation and terminal inflow.
        for &r in &costs.levels {
            let inflow: Vec<(VarId, f64)> = per_trans
                .iter()
                .filter(|((_, to), _)| *to == r)
                .map(|(_, tv)| (tv.f, 1.0))
                .collect();
            if r == finest {
                model.add_eq(&inflow, 1.0);
            } else {
                let mut terms = inflow;
                for ((from, _), tv) in per_trans.iter() {
                    if *from == Some(r) {
                        terms.push((tv.f, -1.0));
                    }
                }
                model.add_eq(&terms, 0.0);
            }
        }
        // Delay budget: Σ_r I_{q,r} ≤ D_q ⇔ Σ_t F_t ≤ D_q.
        let delay = q.delay_budget.unwrap_or(cfg.max_delay).max(1) as f64;
        let all_f: Vec<(VarId, f64)> = per_trans.values().map(|tv| (tv.f, 1.0)).collect();
        model.add_le(&all_f, delay);
    }

    // Partition and placement linking.
    for (qi, costs) in all_costs.iter().enumerate() {
        for (&key, t) in &costs.transitions {
            let tv = &vars[qi][&key];
            for (b, bc) in t.branches.iter().enumerate() {
                // Σ_k P = F.
                let mut terms: Vec<(VarId, f64)> = tv.p[b].iter().map(|(_, v)| (*v, 1.0)).collect();
                terms.push((tv.f, -1.0));
                model.add_eq(&terms, 0.0);
                // Unit u placed ⇔ Σ_s X_{u,s} = Σ_{k>u} P_k.
                for (u, x_u) in tv.x[b].iter().enumerate() {
                    let mut terms: Vec<(VarId, f64)> = x_u.iter().map(|(_, v)| (*v, 1.0)).collect();
                    for (k, v) in &tv.p[b] {
                        if *k > u {
                            terms.push((*v, -1.0));
                        }
                    }
                    model.add_eq(&terms, 0.0);
                }
                // Order (C4): start(u+1) ≥ start(u) + cost(u) − S·(1−placed(u+1)).
                for u in 0..tv.x[b].len().saturating_sub(1) {
                    let cost_u = bc.units[u].stage_cost as f64;
                    let big = s_max as f64 + cost_u;
                    // Σ s·X_{u+1,s} − Σ s·X_{u,s} − (cost_u + big)·placed(u+1) ≥ −big
                    // where placed(u+1) = Σ_s X_{u+1,s}:
                    // Σ (s − cost_u − big)·X_{u+1,s} − Σ s·X_{u,s} ≥ −big
                    let mut terms: Vec<(VarId, f64)> = Vec::new();
                    for (s, v) in &tv.x[b][u + 1] {
                        terms.push((*v, *s as f64 - cost_u - big));
                    }
                    for (s, v) in &tv.x[b][u] {
                        terms.push((*v, -(*s as f64)));
                    }
                    model.add_ge(&terms, -big);
                }
            }
        }
    }

    // Per-stage resource constraints (C1–C3) across everything.
    for s in 0..s_max {
        let mut stateless_terms: Vec<(VarId, f64)> = Vec::new();
        let mut stateful_terms: Vec<(VarId, f64)> = Vec::new();
        let mut bit_terms: Vec<(VarId, f64)> = Vec::new();
        for (qi, costs) in all_costs.iter().enumerate() {
            for (&key, t) in &costs.transitions {
                let tv = &vars[qi][&key];
                for (b, bc) in t.branches.iter().enumerate() {
                    let mut si = 0;
                    for (u, unit) in bc.units.iter().take(bc.max_units).enumerate() {
                        for (xs, v) in &tv.x[b][u] {
                            if *xs == s {
                                // Every unit's first table is a
                                // stateless slot (filters/maps/hash).
                                stateless_terms.push((*v, 1.0));
                                if unit.stateful {
                                    // Update lives in stage s+1.
                                    stateful_terms.push((*v, 1.0));
                                    let bits =
                                        bc.register_bits(si, cfg.cost.headroom, cfg.d) as f64;
                                    bit_terms.push((*v, bits));
                                }
                            }
                        }
                        if unit.stateful {
                            si += 1;
                        }
                    }
                }
            }
        }
        if !stateless_terms.is_empty() {
            model.add_le(&stateless_terms, cfg.constraints.stateless_per_stage as f64);
        }
        if !stateful_terms.is_empty() {
            model.add_le(&stateful_terms, cfg.constraints.stateful_per_stage as f64);
        }
        if !bit_terms.is_empty() {
            model.add_le(&bit_terms, cfg.constraints.register_bits_per_stage as f64);
        }
    }

    // Metadata budget (C5): Σ meta(q,t,b,k)·P ≤ M.
    let mut meta_terms: Vec<(VarId, f64)> = Vec::new();
    for (qi, (q, costs)) in queries.iter().zip(all_costs).enumerate() {
        for &key in costs.transitions.keys() {
            let tv = &vars[qi][&key];
            for (b, p_b) in tv.p.iter().enumerate() {
                for (k, v) in p_b {
                    if *k > 0 {
                        let bits = meta_of(q, costs, key, b, *k) as f64;
                        meta_terms.push((*v, bits));
                    }
                }
            }
        }
    }
    if !meta_terms.is_empty() {
        model.add_le(&meta_terms, cfg.constraints.metadata_bits as f64);
    }
    (model, vars)
}

/// Solve a built instance and read the plan out of the solution.
fn solve_and_extract(
    queries: &[Query],
    all_costs: &[QueryCosts],
    cfg: &PlannerConfig,
    model: &Model,
    vars: &[BTreeMap<TransKey, TransVars>],
    opts: &SolveOptions,
) -> Result<(GlobalPlan, Solution), IlpPlanError> {
    let solve_timer = cfg.obs.stage(Stage::IlpSolve, 0);
    let solution = model.solve_with(opts).map_err(IlpPlanError::Solve)?;
    drop(solve_timer);
    if cfg.obs.is_enabled() {
        cfg.obs.event(EventKind::IlpSolve {
            nodes: solution.nodes as u64,
            pivots: solution.pivots,
            wall_ns: solution.wall.as_nanos() as u64,
            objective: solution.objective,
        });
    }

    // Extract the plan.
    let mut plans = Vec::with_capacity(queries.len());
    for (qi, (q, costs)) in queries.iter().zip(all_costs).enumerate() {
        let per_trans = &vars[qi];
        // Reconstruct the chain by following F from the start edge.
        let mut chain: Vec<TransKey> = Vec::new();
        let mut cursor: Option<u8> = None;
        loop {
            let next = per_trans
                .iter()
                .find(|((from, _), tv)| *from == cursor && solution.int_value(tv.f) == 1);
            let Some((&key, _)) = next else { break };
            chain.push(key);
            if key.1 == costs.finest {
                break;
            }
            cursor = Some(key.1);
        }
        let mut levels = Vec::new();
        for key in chain {
            let tv = &per_trans[&key];
            let t = &costs.transitions[&key];
            let refined =
                costs.refined_with_thresholds(q, key.1, key.0.map(|p| (p, BTreeSet::new())));
            let mut branches = Vec::new();
            let mut level_n = 0.0;
            for (b, bc) in t.branches.iter().enumerate() {
                let k = tv.p[b]
                    .iter()
                    .find(|(_, v)| solution.int_value(*v) == 1)
                    .map(|(k, _)| *k)
                    .unwrap_or(0);
                let mut stages = Vec::new();
                for x_u in tv.x[b].iter().take(k) {
                    let s = x_u
                        .iter()
                        .find(|(_, v)| solution.int_value(*v) == 1)
                        .map(|(s, _)| *s)
                        .unwrap_or(0);
                    stages.push(s);
                }
                let sizings: Vec<RegisterSizing> = bc
                    .units
                    .iter()
                    .take(k)
                    .filter(|u| u.stateful)
                    .enumerate()
                    .map(|(i, _)| bc.sizing(i, cfg.cost.headroom, cfg.d, &cfg.cost.sketch))
                    .collect();
                level_n += bc.n[k];
                branches.push(BranchPlan {
                    branch: b as u8,
                    units: k,
                    stages,
                    sizings,
                });
            }
            levels.push(LevelPlan {
                level: key.1,
                prev: key.0,
                refined,
                branches,
                predicted_n: level_n,
            });
        }
        plans.push(QueryPlan {
            query: q.clone(),
            levels,
        });
    }
    let predicted = plans.iter().map(QueryPlan::predicted_n).sum();
    if cfg.obs.is_enabled() {
        for plan in &plans {
            cfg.obs.event(EventKind::RefinementChain {
                query: plan.query.id.0,
                levels: plan.levels.iter().map(|l| l.level).collect(),
            });
        }
        cfg.obs.event(EventKind::PlanCompile {
            mode: "Sonata-ILP".to_string(),
            queries: queries.len() as u64,
            predicted_tuples: predicted,
        });
    }
    Ok((
        GlobalPlan {
            mode: PlanMode::Sonata,
            queries: plans,
            predicted_tuples: predicted,
            epoch: 0,
        },
        solution,
    ))
}

/// Convenience: model size diagnostics for an instance (used by the
/// solver-behavior bench).
pub fn instance_size(all_costs: &[QueryCosts], stages: usize) -> (usize, usize) {
    let mut vars = 0;
    for costs in all_costs {
        for t in costs.transitions.values() {
            vars += 1; // f
            for bc in &t.branches {
                vars += bc.max_units + 1; // p
                vars += bc.max_units * stages; // x (upper bound)
            }
        }
    }
    (vars, stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::{estimate_costs, CostConfig};
    use crate::strategies::{plan_queries, plan_with_costs};
    use sonata_packet::{Packet, PacketBuilder, TcpFlags};
    use sonata_query::catalog::{self, Thresholds};

    fn syn(src: u32, dst: u32, ts: u64) -> Packet {
        PacketBuilder::tcp_raw(src, 9, dst, 80)
            .flags(TcpFlags::SYN)
            .ts_nanos(ts)
            .build()
    }

    fn window() -> Vec<Packet> {
        let mut pkts = Vec::new();
        for i in 0..30 {
            pkts.push(syn(100 + i, 0x63070019, i as u64));
        }
        for host in 0..40u32 {
            let dst = ((host % 20 + 1) << 24) | host;
            pkts.push(syn(7, dst, 1000 + host as u64));
        }
        pkts
    }

    fn small_cfg() -> PlannerConfig {
        PlannerConfig {
            cost: CostConfig {
                levels: Some(vec![8, 32]),
                ..Default::default()
            },
            max_delay: 3,
            ..Default::default()
        }
    }

    #[test]
    fn ilp_plan_is_valid_and_at_least_as_good_as_greedy() {
        let w = window();
        let queries = vec![catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 10,
            ..Thresholds::default()
        })];
        let cfg = small_cfg();
        let costs: Vec<_> = queries
            .iter()
            .map(|q| estimate_costs(q, &[&w], &cfg.cost).unwrap())
            .collect();
        let ilp = plan_ilp(&queries, &costs, &cfg, &SolveOptions::default()).unwrap();
        let greedy = plan_with_costs(&queries, &costs, &cfg).unwrap();
        // Chain ends at the original query.
        assert_eq!(ilp.queries[0].levels.last().unwrap().level, 32);
        // The ILP optimum cannot be worse than the greedy plan.
        assert!(
            ilp.predicted_tuples <= greedy.predicted_tuples + 1e-6,
            "ilp={} greedy={}",
            ilp.predicted_tuples,
            greedy.predicted_tuples
        );
        // Stage assignments respect intra-task order.
        for lp in &ilp.queries[0].levels {
            for bp in &lp.branches {
                for w in bp.stages.windows(2) {
                    assert!(w[1] > w[0], "stages not increasing: {:?}", bp.stages);
                }
            }
        }
    }

    #[test]
    fn ilp_degrades_under_tight_stages() {
        let w = window();
        let queries = vec![catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 10,
            ..Thresholds::default()
        })];
        let mut cfg = small_cfg();
        cfg.constraints.stages = 2; // no room for the reduce (needs 2 + filter + map)
        let costs: Vec<_> = queries
            .iter()
            .map(|q| estimate_costs(q, &[&w], &cfg.cost).unwrap())
            .collect();
        let ilp = plan_ilp(&queries, &costs, &cfg, &SolveOptions::default()).unwrap();
        let max_units: usize = ilp.queries[0]
            .levels
            .iter()
            .flat_map(|l| &l.branches)
            .map(|b| b.units)
            .max()
            .unwrap();
        assert!(max_units <= 2, "got {max_units} units in 2 stages");
        // And the full-resource plan is strictly better.
        let cfg_full = small_cfg();
        let ilp_full = plan_ilp(&queries, &costs, &cfg_full, &SolveOptions::default()).unwrap();
        assert!(ilp_full.predicted_tuples <= ilp.predicted_tuples);
    }

    #[test]
    fn ilp_and_greedy_agree_on_trivial_allsp_bound() {
        // With zero stages the only feasible partition is k=0 and both
        // planners should predict the All-SP workload.
        let w = window();
        let queries = vec![catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 10,
            ..Thresholds::default()
        })];
        let mut cfg = small_cfg();
        cfg.constraints.stages = 0;
        let costs: Vec<_> = queries
            .iter()
            .map(|q| estimate_costs(q, &[&w], &cfg.cost).unwrap())
            .collect();
        let ilp = plan_ilp(&queries, &costs, &cfg, &SolveOptions::default()).unwrap();
        let mut greedy_cfg = cfg;
        greedy_cfg.mode = crate::plan::PlanMode::AllSp;
        let greedy = plan_queries(&queries, &[&w], &greedy_cfg).unwrap();
        assert!((ilp.predicted_tuples - greedy.predicted_tuples).abs() < 1e-6);
    }

    #[test]
    fn ilp_solve_emits_statistics_event() {
        let w = window();
        let queries = vec![catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 10,
            ..Thresholds::default()
        })];
        let mut cfg = small_cfg();
        cfg.obs = sonata_obs::ObsHandle::enabled();
        let costs: Vec<_> = queries
            .iter()
            .map(|q| estimate_costs(q, &[&w], &cfg.cost).unwrap())
            .collect();
        plan_ilp(&queries, &costs, &cfg, &SolveOptions::default()).unwrap();
        let events = cfg.obs.events();
        let (nodes, pivots, wall_ns) = events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::IlpSolve {
                    nodes,
                    pivots,
                    wall_ns,
                    ..
                } => Some((*nodes, *pivots, *wall_ns)),
                _ => None,
            })
            .expect("IlpSolve event");
        assert!(nodes >= 1);
        assert!(pivots > 0);
        assert!(wall_ns > 0);
        // Both nested stage timers recorded.
        let snap = cfg.obs.snapshot();
        for stage in ["ilp_solve", "plan_compile"] {
            let key = format!("sonata_stage_ns{{stage=\"{stage}\"}}");
            assert!(
                snap.histogram(&key).map(|h| h.count).unwrap_or(0) >= 1,
                "{stage} not timed"
            );
        }
    }

    #[test]
    fn instance_size_reports() {
        let w = window();
        let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
        let costs = vec![estimate_costs(&q, &[&w], &small_cfg().cost).unwrap()];
        let (vars, stages) = instance_size(&costs, 16);
        assert!(vars > 0);
        assert_eq!(stages, 16);
    }
}
