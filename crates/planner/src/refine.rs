//! Query augmentation for dynamic refinement (Section 4.1).
//!
//! A query refinable on a hierarchical key (say `dIP`) is *augmented*
//! to run at a coarser level `r`:
//!
//! 1. every reference to the key field inside `map` expressions and
//!    join key expressions is wrapped in a mask to level `r`, so the
//!    rest of the query operates on `dIP/r` buckets unchanged;
//! 2. when the level follows a previous level `p`, a filter on
//!    `mask(key, p) ∈ {prefixes that satisfied level p}` is prepended
//!    to every packet-consuming pipeline — compiled to a dynamic
//!    filter table whose entries the runtime rewrites each window;
//! 3. threshold filters keep their original values here; the planner
//!    relaxes them separately from training data (coarser aggregates
//!    are larger sums, so the original threshold is correct but
//!    inefficient).

use sonata_packet::{Field, Value};
use sonata_query::expr::{Expr, Pred};
use sonata_query::{Operator, Pipeline, Query};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The candidate refinement levels used throughout the evaluation:
/// /4, /8, …, /32 for IPv4 keys (the paper considers a maximum of
/// eight levels, Section 6.1).
pub fn refinement_levels(field: Field) -> Vec<u8> {
    match field.finest_refinement_level() {
        Some(32) => (1..=8).map(|i| i * 4).collect(),
        Some(f) => (1..=f).collect(),
        None => Vec::new(),
    }
}

/// Wrap key-field references in `expr` with a mask to `level`.
fn mask_expr(e: &Expr, field: Field, level: u8) -> Expr {
    match e {
        Expr::Col(c) if c.as_ref() == field.name() => {
            Expr::Mask(Box::new(Expr::Col(c.clone())), level)
        }
        Expr::Col(_) | Expr::Lit(_) => e.clone(),
        // An existing mask over the key field is re-leveled (refining
        // an already-refined query); other masks pass through.
        Expr::Mask(inner, l) => {
            if expr_mentions(inner, field) {
                Expr::Mask(inner.clone(), (*l).min(level))
            } else {
                Expr::Mask(Box::new(mask_expr(inner, field, level)), *l)
            }
        }
        Expr::Add(a, b) => Expr::Add(
            Box::new(mask_expr(a, field, level)),
            Box::new(mask_expr(b, field, level)),
        ),
        Expr::Sub(a, b) => Expr::Sub(
            Box::new(mask_expr(a, field, level)),
            Box::new(mask_expr(b, field, level)),
        ),
        Expr::Mul(a, b) => Expr::Mul(
            Box::new(mask_expr(a, field, level)),
            Box::new(mask_expr(b, field, level)),
        ),
        Expr::Div(a, b) => Expr::Div(
            Box::new(mask_expr(a, field, level)),
            Box::new(mask_expr(b, field, level)),
        ),
    }
}

fn expr_mentions(e: &Expr, field: Field) -> bool {
    let mut cols = Vec::new();
    e.referenced_cols(&mut cols);
    cols.iter().any(|c| c.as_ref() == field.name())
}

fn mask_pipeline(p: &mut Pipeline, field: Field, level: u8) {
    for op in &mut p.ops {
        if let Operator::Map { exprs } = op {
            for (_, e) in exprs.iter_mut() {
                *e = mask_expr(e, field, level);
            }
        }
    }
}

/// Build the refined variant of `query` at `level`.
///
/// `prev` supplies the previous (coarser) level and the prefix set
/// that satisfied it — pass an empty set for runtime use (the dynamic
/// filter starts closed and the runtime opens it window by window), or
/// a concrete set for training-time cost estimation.
pub fn refine_query(query: &Query, level: u8, prev: Option<(u8, BTreeSet<Value>)>) -> Query {
    let hint = query
        .refinement
        .as_ref()
        .expect("refine_query needs a refinement hint");
    let field = hint.field;
    let finest = field.finest_refinement_level().unwrap_or(32);
    let mut q = query.clone();
    q.name = match prev {
        Some((p, _)) => format!("{}@{}from{}", query.name, level, p),
        None => format!("{}@{}", query.name, level),
    };
    if level < finest {
        mask_pipeline(&mut q.pipeline, field, level);
        if let Some(join) = &mut q.join {
            mask_pipeline(&mut join.right, field, level);
            mask_pipeline(&mut join.post, field, level);
            for e in &mut join.left_keys {
                *e = mask_expr(e, field, level);
            }
        }
    }
    if let Some((prev_level, set)) = prev {
        let filter = Operator::Filter(Pred::InSet {
            expr: Expr::Mask(Box::new(Expr::Col(field.name().into())), prev_level),
            set: Arc::new(set),
        });
        q.pipeline.ops.insert(0, filter.clone());
        if let Some(join) = &mut q.join {
            join.right.ops.insert(0, filter);
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonata_packet::{PacketBuilder, TcpFlags};
    use sonata_query::catalog::{self, Thresholds};
    use sonata_query::interpret::run_query;

    fn syn(src: u32, dst: u32) -> sonata_packet::Packet {
        PacketBuilder::tcp_raw(src, 9, dst, 80)
            .flags(TcpFlags::SYN)
            .build()
    }

    #[test]
    fn levels_for_ipv4_and_dns() {
        assert_eq!(
            refinement_levels(Field::Ipv4Dst),
            vec![4, 8, 12, 16, 20, 24, 28, 32]
        );
        assert_eq!(refinement_levels(Field::DnsRrName).len(), 8);
        assert!(refinement_levels(Field::TcpFlags).is_empty());
    }

    #[test]
    fn refined_query_aggregates_by_prefix() {
        let t = Thresholds {
            new_tcp: 2,
            ..Thresholds::default()
        };
        let q = catalog::newly_opened_tcp_conns(&t);
        let r8 = refine_query(&q, 8, None);
        assert!(r8.validate().is_ok());
        // Two /32s in the same /8: counts merge at level 8.
        let pkts = vec![syn(1, 0x0a000001), syn(2, 0x0a000002), syn(3, 0x0a000002)];
        let out = run_query(&r8, &pkts).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0), &Value::U64(0x0a000000));
        assert_eq!(out[0].get(1), &Value::U64(3));
        // At the finest level, the original query is unchanged.
        let r32 = refine_query(&q, 32, None);
        let out32 = run_query(&r32, &pkts).unwrap();
        assert_eq!(out32, run_query(&q, &pkts).unwrap());
    }

    #[test]
    fn prev_filter_restricts_traffic() {
        let t = Thresholds {
            new_tcp: 0,
            ..Thresholds::default()
        };
        let q = catalog::newly_opened_tcp_conns(&t);
        let allowed: BTreeSet<Value> = [Value::U64(0x0a000000)].into_iter().collect();
        let r16 = refine_query(&q, 16, Some((8, allowed)));
        assert!(r16.validate().is_ok());
        let pkts = vec![syn(1, 0x0a010001), syn(2, 0x0b010001)];
        let out = run_query(&r16, &pkts).unwrap();
        // Only the 10.0.0.0/8 packet survives, bucketed at /16.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0), &Value::U64(0x0a010000));
    }

    #[test]
    fn join_query_refines_both_branches() {
        let t = Thresholds {
            syn_flood: 0,
            ..Thresholds::default()
        };
        let q = catalog::tcp_syn_flood(&t);
        let r8 = refine_query(&q, 8, Some((4, BTreeSet::new())));
        assert!(r8.validate().is_ok());
        // Both branches got the prepended dynamic filter.
        assert!(matches!(
            r8.pipeline.ops[0],
            Operator::Filter(Pred::InSet { .. })
        ));
        let join = r8.join.as_ref().unwrap();
        assert!(matches!(
            join.right.ops[0],
            Operator::Filter(Pred::InSet { .. })
        ));
        // With an empty previous set, nothing passes.
        let out = run_query(&r8, &[syn(1, 0x0a000001)]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn refinement_monotonicity_no_lost_traffic() {
        // Every /32 that satisfies the original query lies inside a /8
        // that satisfies the coarse query with the same threshold.
        let t = Thresholds {
            new_tcp: 3,
            ..Thresholds::default()
        };
        let q = catalog::newly_opened_tcp_conns(&t);
        let mut pkts = Vec::new();
        for i in 0..6 {
            pkts.push(syn(i, 0x0a000001)); // 6 SYNs: satisfies
        }
        for i in 0..2 {
            pkts.push(syn(i, 0x0b000001)); // 2 SYNs: does not
        }
        let fine = run_query(&q, &pkts).unwrap();
        assert_eq!(fine.len(), 1);
        let coarse = run_query(&refine_query(&q, 8, None), &pkts).unwrap();
        let coarse_keys: BTreeSet<Value> = coarse.iter().map(|t| t.get(0).clone()).collect();
        for hit in &fine {
            let prefix = hit.get(0).mask_to_level(8);
            assert!(coarse_keys.contains(&prefix), "lost {hit}");
        }
    }

    #[test]
    fn refining_a_refined_query_tightens_the_mask() {
        // Re-refinement (runtime re-planning path): masking an
        // already-masked key keeps the coarser of the two levels.
        let q = catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 0,
            ..Thresholds::default()
        });
        let r16 = refine_query(&q, 16, None);
        let r8_of_16 = refine_query(&r16, 8, None);
        let pkts = vec![syn(1, 0x0a0b0c0d)];
        let out = run_query(
            &Query {
                pipeline: r8_of_16.pipeline.clone(),
                ..r8_of_16
            },
            &pkts,
        )
        .unwrap();
        assert_eq!(out[0].get(0), &Value::U64(0x0a000000));
    }

    #[test]
    fn text_key_masking_in_refined_query() {
        use sonata_packet::Field;
        let q = catalog::malicious_domains(&Thresholds {
            malicious_domains: 0,
            ..Thresholds::default()
        });
        assert_eq!(q.refinement.as_ref().unwrap().field, Field::DnsRrName);
        let r2 = refine_query(&q, 2, None);
        assert!(r2.validate().is_ok());
        let msg = sonata_packet::DnsHeader::response(
            1,
            "a.b.evil.example",
            sonata_packet::dns::DnsQType::A,
            vec![sonata_packet::DnsRecord {
                name: "a.b.evil.example".into(),
                rtype: sonata_packet::dns::DnsQType::A,
                ttl: 5,
                rdata: vec![5, 0, 0, 1],
            }],
        );
        let pkt = sonata_packet::PacketBuilder::dns(0x08080808, 0xc0000201, msg).build();
        let out = run_query(&r2, &[pkt]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0).as_text(), Some("evil.example"));
    }

    #[test]
    fn refined_names_are_distinct_and_descriptive() {
        let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
        let a = refine_query(&q, 8, None);
        let b = refine_query(&q, 16, Some((8, BTreeSet::new())));
        assert_ne!(a.name, b.name);
        assert!(a.name.contains("@8"));
        assert!(b.name.contains("16from8"));
    }

    #[test]
    fn deepest_level_with_empty_forwarded_set_blocks_everything() {
        // The runtime hands the deepest level an *empty* forwarded key
        // set when the coarser level produced nothing (or when a fault
        // forced the boundary update to be skipped): the refined query
        // must stay valid, keep full key precision, and simply pass no
        // traffic until a later window opens the filter.
        let t = Thresholds {
            new_tcp: 0,
            ..Thresholds::default()
        };
        let q = catalog::newly_opened_tcp_conns(&t);
        let r32 = refine_query(&q, 32, Some((16, BTreeSet::new())));
        assert!(r32.validate().is_ok());
        let out = run_query(&r32, &[syn(1, 0x0a000001), syn(2, 0x0b000001)]).unwrap();
        assert!(out.is_empty(), "closed filter must block all traffic");
        // The closed dynamic filter is the *only* structural change
        // relative to the unfiltered finest level.
        assert!(matches!(
            r32.pipeline.ops[0],
            Operator::Filter(Pred::InSet { .. })
        ));
        assert_eq!(
            r32.pipeline.ops.len(),
            refine_query(&q, 32, None).pipeline.ops.len() + 1
        );
    }

    #[test]
    fn boundary_update_for_a_retired_level_gates_at_full_precision() {
        // Re-planning can retire a fine level while a boundary update
        // keyed at it is still in flight. Building the coarser level
        // with the retired level's (/32-keyed) set must gate traffic
        // at the set's own precision — never widen stale /32 entries
        // into whole /8 buckets.
        let t = Thresholds {
            new_tcp: 0,
            ..Thresholds::default()
        };
        let q = catalog::newly_opened_tcp_conns(&t);
        let stale: BTreeSet<Value> = [Value::U64(0x0a000001)].into_iter().collect();
        let r8 = refine_query(&q, 8, Some((32, stale)));
        assert!(r8.validate().is_ok());
        let pkts = vec![syn(1, 0x0a000001), syn(2, 0x0a000002), syn(3, 0x0b000001)];
        let out = run_query(&r8, &pkts).unwrap();
        // Only the exact /32 in the stale set survives; its sibling in
        // the same /8 is (correctly) excluded, so the bucket count is
        // 1, not 2.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0), &Value::U64(0x0a000000));
        assert_eq!(out[0].get(1), &Value::U64(1));
    }

    #[test]
    fn zorro_right_branch_masks_key() {
        let q = catalog::zorro(&Thresholds::default());
        let r8 = refine_query(&q, 8, None);
        assert!(r8.validate().is_ok());
        // The join's left-key expression is masked too.
        let join = r8.join.as_ref().unwrap();
        assert!(matches!(join.left_keys[0], Expr::Mask(_, 8)));
    }
}
