//! # sonata-planner
//!
//! Sonata's query planner (Sections 3.3 and 4): given a set of
//! queries, a training trace, and the switch's resource constraints,
//! decide — jointly — *where to partition* each query between the
//! switch and the stream processor and *which refinement levels* to
//! execute, minimizing the tuples the stream processor must handle.
//!
//! * [`refine`] — query augmentation for dynamic refinement: masking
//!   the hierarchical key to a coarser level, inserting the dynamic
//!   filter fed by the previous level's output, and relaxing threshold
//!   values at coarse levels from training data (Section 4.1);
//! * [`costs`] — trace-driven estimation of the paper's `N_{q,t}`
//!   (tuples to the stream processor per partition point) and
//!   `B_{q,t}` (register bits) for every refinement transition — the
//!   numbers behind Figure 5;
//! * [`placement`] — first-fit stage assignment under the `M/A/B/S`
//!   resource model, shared across all concurrently-installed tasks;
//! * [`plan`] — the plan data structures handed to the runtime;
//! * [`strategies`] — the Sonata planner (per-query shortest-path over
//!   refinement transitions + degradation under contention) and the
//!   four baseline planners the paper compares against (Table 4):
//!   All-SP, Filter-DP, Max-DP, Fix-REF;
//! * [`ilp_planner`] — the paper's ILP formulation built on
//!   `sonata-ilp`, used to cross-check the combinatorial planner on
//!   small instances and to reproduce the solver-behavior notes of
//!   Section 6.1;
//! * [`replan`] — online incremental replanning: re-cost the catalog
//!   from observed per-query loads and re-solve (greedy, or MILP
//!   warm-started from the committed plan with a churn bound),
//!   producing an epoch-bumped plan for a mid-run swap.

pub mod costs;
pub mod ilp_planner;
pub mod placement;
pub mod plan;
pub mod refine;
pub mod replan;
pub mod strategies;

pub use costs::{estimate_costs, BranchCost, QueryCosts, TransitionCost};
pub use ilp_planner::{plan_ilp, plan_ilp_warm};
pub use plan::{BranchPlan, GlobalPlan, LevelPlan, PlanBudget, PlanMode, QueryPlan};
pub use refine::{refine_query, refinement_levels};
pub use replan::{ReplanOutcome, Replanner};
pub use strategies::{plan_queries, plan_with_costs, PlannerConfig};
// Solver surface the runtime needs to drive a warm-started re-solve
// without depending on `sonata-ilp` directly.
pub use sonata_ilp::{Solution, SolveOptions};
