//! Plan data structures: the planner's output, consumed by the
//! runtime's data-plane and streaming drivers.

use sonata_pisa::compile::RegisterSizing;
use sonata_query::Query;
use std::fmt;

/// Which planning strategy produced a plan (Table 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanMode {
    /// Mirror all packets to the stream processor (Gigascope, OpenSOC,
    /// NetQRE).
    AllSp,
    /// Only filter operations on the switch (EverFlow).
    FilterDp,
    /// As many dataflow operators as possible on the switch (UnivMon,
    /// OpenSketch).
    MaxDp,
    /// Fixed refinement plan: iterate one level at a time (DREAM).
    FixRef,
    /// Sonata: jointly optimized partitioning and refinement.
    Sonata,
}

impl PlanMode {
    /// All modes, in the paper's comparison order.
    pub const ALL: &'static [PlanMode] = &[
        PlanMode::AllSp,
        PlanMode::FilterDp,
        PlanMode::MaxDp,
        PlanMode::FixRef,
        PlanMode::Sonata,
    ];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PlanMode::AllSp => "All-SP",
            PlanMode::FilterDp => "Filter-DP",
            PlanMode::MaxDp => "Max-DP",
            PlanMode::FixRef => "Fix-REF",
            PlanMode::Sonata => "Sonata",
        }
    }
}

impl fmt::Display for PlanMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The switch-side plan of one branch at one refinement level.
#[derive(Debug, Clone)]
pub struct BranchPlan {
    /// Branch index: 0 = left/main, 1 = join right.
    pub branch: u8,
    /// Number of table units on the switch (0 = everything at the
    /// stream processor).
    pub units: usize,
    /// Stage of each unit's first table (length = `units`).
    pub stages: Vec<usize>,
    /// Register sizing per stateful unit on the switch.
    pub sizings: Vec<RegisterSizing>,
}

/// One refinement level of one query.
#[derive(Debug, Clone)]
pub struct LevelPlan {
    /// The level (the key field's finest level = original query).
    pub level: u8,
    /// The preceding level in the refinement chain, if any.
    pub prev: Option<u8>,
    /// The augmented query: masked key, dynamic filter when `prev` is
    /// set (installed empty; the runtime feeds it), relaxed thresholds.
    pub refined: Query,
    /// Per-branch switch plans.
    pub branches: Vec<BranchPlan>,
    /// Predicted tuples per window delivered to the stream processor
    /// by this level.
    pub predicted_n: f64,
}

/// The full plan of one query: its refinement chain, coarse → fine.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The original query.
    pub query: Query,
    /// The chain; the last level is the finest (original semantics).
    pub levels: Vec<LevelPlan>,
}

impl QueryPlan {
    /// Detection delay in windows (one per refinement step beyond the
    /// first — the paper's `W × |R|` bound).
    pub fn delay_windows(&self) -> usize {
        self.levels.len()
    }

    /// Predicted tuples per window across all levels.
    pub fn predicted_n(&self) -> f64 {
        self.levels.iter().map(|l| l.predicted_n).sum()
    }
}

/// The planner's output for a whole query set.
#[derive(Debug, Clone)]
pub struct GlobalPlan {
    /// Strategy that produced the plan.
    pub mode: PlanMode,
    /// Per-query plans, in input order.
    pub queries: Vec<QueryPlan>,
    /// Predicted total tuples per window at the stream processor.
    pub predicted_tuples: f64,
    /// Plan epoch: 0 for an initial (cold) plan, incremented by each
    /// online re-solve. Every deployed artifact — wire frames, window
    /// reports, collector merges — is tagged with the epoch of the
    /// plan that produced it, so a mid-run swap can never mix state
    /// across plans.
    pub epoch: u64,
}

/// The plan's predicted per-window tuple loads, recorded at deploy
/// time so the runtime can reconcile the prediction against observed
/// per-window counters (the plan-drift monitor). The ILP/DP solver
/// chose the deployment *because* of these numbers; when reality
/// diverges from them the plan is stale regardless of how healthy the
/// run looks otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanBudget {
    /// Predicted tuples per window per source query, in input order.
    pub per_query: Vec<(sonata_query::QueryId, f64)>,
    /// Predicted total tuples per window at the stream processor.
    pub total: f64,
}

impl GlobalPlan {
    /// The per-query tuple budget the solver committed to.
    pub fn budget(&self) -> PlanBudget {
        PlanBudget {
            per_query: self
                .queries
                .iter()
                .map(|q| (q.query.id, q.predicted_n()))
                .collect(),
            total: self.predicted_tuples,
        }
    }

    /// Total switch table units across all tasks.
    pub fn units_on_switch(&self) -> usize {
        self.queries
            .iter()
            .flat_map(|q| &q.levels)
            .flat_map(|l| &l.branches)
            .map(|b| b.units)
            .sum()
    }

    /// Longest refinement chain (worst-case detection delay).
    pub fn max_delay_windows(&self) -> usize {
        self.queries
            .iter()
            .map(QueryPlan::delay_windows)
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for GlobalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# {} plan: {:.0} predicted tuples/window, {} switch units",
            self.mode,
            self.predicted_tuples,
            self.units_on_switch()
        )?;
        for qp in &self.queries {
            let path: Vec<String> = qp.levels.iter().map(|l| format!("/{}", l.level)).collect();
            writeln!(
                f,
                "  {}: {} (N≈{:.0}/win)",
                qp.query.name,
                if path.is_empty() {
                    "unplanned".to_string()
                } else {
                    path.join(" → ")
                },
                qp.predicted_n()
            )?;
            for lp in &qp.levels {
                for bp in &lp.branches {
                    writeln!(
                        f,
                        "    level /{} branch {}: {} units on switch @ stages {:?}",
                        lp.level, bp.branch, bp.units, bp.stages
                    )?;
                }
            }
        }
        Ok(())
    }
}
