//! Property-based tests: every packet the builder can construct must
//! encode to bytes that decode back to an equivalent packet, and the
//! checksums of emitted headers must verify.

use proptest::prelude::*;
use sonata_packet::wire::{Ipv4View, TcpView, UdpView};
use sonata_packet::{
    dns::{DnsQType, DnsRecord},
    DnsHeader, Field, Packet, PacketBuilder, TcpFlags, Value,
};

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    (0u8..=0x3f).prop_map(TcpFlags)
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..512)
}

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]{1,20}").unwrap()
}

fn arb_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(arb_label(), 1..6).prop_map(|labels| labels.join("."))
}

proptest! {
    #[test]
    fn tcp_encode_decode_roundtrip(
        sip in any::<u32>(), dip in any::<u32>(),
        sport in any::<u16>(), dport in any::<u16>(),
        seq in any::<u32>(), flags in arb_flags(),
        payload in arb_payload(),
    ) {
        let pkt = PacketBuilder::tcp_raw(sip, sport, dip, dport)
            .seq(seq)
            .flags(flags)
            .payload(payload.clone())
            .build();
        let bytes = pkt.encode();
        let back = Packet::decode(&bytes).unwrap();
        prop_assert_eq!(back.ipv4.src, sip);
        prop_assert_eq!(back.ipv4.dst, dip);
        prop_assert_eq!(back.get(Field::TcpSrcPort), Some(Value::U64(sport as u64)));
        prop_assert_eq!(back.get(Field::TcpDstPort), Some(Value::U64(dport as u64)));
        prop_assert_eq!(back.get(Field::TcpFlags), Some(Value::U64(flags.0 as u64)));
        prop_assert_eq!(back.get(Field::TcpSeq), Some(Value::U64(seq as u64)));
        prop_assert_eq!(back.payload.as_ref(), &payload[..]);
        // wire views agree and the IP checksum verifies
        let ip = Ipv4View::new(&bytes).unwrap();
        prop_assert!(ip.checksum_ok());
        let tcp = TcpView::new(ip.payload()).unwrap();
        prop_assert_eq!(tcp.payload(), &payload[..]);
    }

    #[test]
    fn udp_encode_decode_roundtrip(
        sip in any::<u32>(), dip in any::<u32>(),
        sport in 1u16.., dport in 1u16..,
        payload in arb_payload(),
    ) {
        // Avoid port 53 so the DNS parser stays out of the way.
        prop_assume!(sport != 53 && dport != 53);
        let pkt = PacketBuilder::udp_raw(sip, sport, dip, dport)
            .payload(payload.clone())
            .build();
        let bytes = pkt.encode();
        let back = Packet::decode(&bytes).unwrap();
        prop_assert_eq!(back.get(Field::UdpSrcPort), Some(Value::U64(sport as u64)));
        prop_assert_eq!(back.get(Field::UdpDstPort), Some(Value::U64(dport as u64)));
        prop_assert_eq!(back.payload.as_ref(), &payload[..]);
        let ip = Ipv4View::new(&bytes).unwrap();
        let udp = UdpView::new(ip.payload()).unwrap();
        prop_assert_eq!(udp.payload(), &payload[..]);
    }

    #[test]
    fn dns_message_roundtrip(
        id in any::<u16>(),
        name in arb_name(),
        qtype in prop_oneof![
            Just(DnsQType::A), Just(DnsQType::Txt), Just(DnsQType::Any),
            (0u16..1000).prop_map(DnsQType::from_wire),
        ],
        answers in proptest::collection::vec(
            (arb_name(), proptest::collection::vec(any::<u8>(), 0..64)),
            0..5,
        ),
    ) {
        let records: Vec<DnsRecord> = answers
            .into_iter()
            .map(|(name, rdata)| DnsRecord { name, rtype: DnsQType::A, ttl: 60, rdata })
            .collect();
        let msg = DnsHeader::response(id, &name, qtype, records);
        let mut buf = Vec::new();
        msg.emit(&mut buf);
        prop_assert_eq!(buf.len(), msg.wire_len());
        let back = DnsHeader::decode(&buf).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn dns_in_udp_roundtrip(sip in any::<u32>(), dip in any::<u32>(), name in arb_name()) {
        let msg = DnsHeader::query(1, &name, DnsQType::Txt);
        let pkt = PacketBuilder::dns(sip, dip, msg).build();
        let back = Packet::decode(&pkt.encode()).unwrap();
        prop_assert_eq!(
            back.get(Field::DnsRrName),
            Some(Value::Text(name.as_str().into()))
        );
    }

    #[test]
    fn decode_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Packet::decode(&data);
        let _ = Packet::decode_ethernet(&data);
        let _ = DnsHeader::decode(&data);
    }

    #[test]
    fn mask_is_monotone_and_idempotent(v in any::<u32>(), a in 0u8..=32, b in 0u8..=32) {
        let val = Value::U64(v as u64);
        let (coarse, fine) = if a <= b { (a, b) } else { (b, a) };
        // Masking finer-then-coarser equals masking coarser directly.
        prop_assert_eq!(
            val.mask_to_level(fine).mask_to_level(coarse),
            val.mask_to_level(coarse)
        );
        // Idempotence.
        prop_assert_eq!(
            val.mask_to_level(a).mask_to_level(a),
            val.mask_to_level(a)
        );
    }
}
