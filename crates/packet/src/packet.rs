//! The owned [`Packet`] type: a decoded packet with timestamp, headers,
//! and payload, plus [`PacketBuilder`] for constructing packets and the
//! [`Packet::get`] accessor that resolves query [`Field`]s to [`Value`]s.

use crate::dns::DnsHeader;
use crate::field::{parse_ipv4, Field, Value};
use crate::headers::{
    EthernetHeader, IcmpHeader, IpProtocol, Ipv4Header, TcpFlags, TcpHeader, UdpHeader,
};
use crate::wire::{EthernetView, IcmpView, Ipv4View, TcpView, UdpView};
use crate::DecodeError;
use bytes::Bytes;

/// Transport-layer header of a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// A TCP segment.
    Tcp(TcpHeader),
    /// A UDP datagram.
    Udp(UdpHeader),
    /// An ICMP message.
    Icmp(IcmpHeader),
    /// Unparsed transport (unknown IP protocol).
    Opaque,
}

/// Application-layer content recognized by the stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppLayer {
    /// A DNS message (parsed when the UDP port is 53).
    Dns(DnsHeader),
    /// No recognized application layer.
    None,
}

/// An owned, decoded packet.
///
/// Timestamps are nanoseconds from the start of the trace; the traffic
/// substrate assigns them and the runtime's window logic consumes them.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Capture timestamp, nanoseconds from trace start.
    pub ts_nanos: u64,
    /// Optional Ethernet header (CAIDA-style traces have none).
    pub eth: Option<EthernetHeader>,
    /// IPv4 header.
    pub ipv4: Ipv4Header,
    /// Transport header.
    pub transport: Transport,
    /// Parsed application layer, if recognized.
    pub app: AppLayer,
    /// Transport payload bytes (after the transport header). For DNS
    /// packets this holds the serialized DNS message.
    pub payload: Bytes,
    encoded: EncodedCache,
}

/// Lazily-populated cache of a packet's encoded wire bytes.
///
/// Several call sites re-encode the same packet per window (wire-mode
/// feed, report embedding, arena build); the cache makes the second and
/// later encodes free. It is deliberately *not* part of the packet's
/// identity: clones start cold (a clone may be mutated before its next
/// encode), equality ignores it, and it is only ever populated through
/// [`Packet::encode_cached`], which callers use solely on packets that
/// are no longer mutated.
#[derive(Default)]
struct EncodedCache(std::sync::OnceLock<Vec<u8>>);

impl Clone for EncodedCache {
    fn clone(&self) -> Self {
        // A clone may be mutated before it is encoded; start cold.
        EncodedCache::default()
    }
}

impl PartialEq for EncodedCache {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl std::fmt::Debug for EncodedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.get() {
            Some(b) => write!(f, "EncodedCache({} bytes)", b.len()),
            None => write!(f, "EncodedCache(cold)"),
        }
    }
}

impl Packet {
    /// Total on-wire length in bytes (what the paper calls `pktlen`).
    pub fn wire_len(&self) -> usize {
        let l2 = if self.eth.is_some() {
            EthernetHeader::SIZE
        } else {
            0
        };
        l2 + Ipv4Header::SIZE + self.transport_header_len() + self.payload.len()
    }

    fn transport_header_len(&self) -> usize {
        match &self.transport {
            Transport::Tcp(_) => TcpHeader::SIZE,
            Transport::Udp(_) => UdpHeader::SIZE,
            Transport::Icmp(_) => IcmpHeader::SIZE,
            Transport::Opaque => 0,
        }
    }

    /// Serialize to wire bytes (IPv4 and up; prepends Ethernet only if
    /// present).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        if let Some(eth) = &self.eth {
            eth.emit(&mut buf);
        }
        let total = (Ipv4Header::SIZE + self.transport_header_len() + self.payload.len()) as u16;
        self.ipv4.emit(&mut buf, total);
        match &self.transport {
            Transport::Tcp(t) => t.emit(&mut buf, self.ipv4.src, self.ipv4.dst, &self.payload),
            Transport::Udp(u) => u.emit(&mut buf, self.ipv4.src, self.ipv4.dst, &self.payload),
            Transport::Icmp(i) => i.emit(&mut buf, &self.payload),
            Transport::Opaque => {}
        }
        buf.extend_from_slice(&self.payload);
        buf
    }

    /// Like [`Packet::encode`], but memoizes the wire bytes on first
    /// call and hands back the cached slice afterwards.
    ///
    /// Only call this on packets that will not be mutated again (trace
    /// packets after generation, report-embedded packets): the cache is
    /// never invalidated in place. Clones start cold, so the usual
    /// clone-then-tweak patterns stay safe.
    pub fn encode_cached(&self) -> &[u8] {
        self.encoded.0.get_or_init(|| self.encode())
    }

    /// Decode wire bytes starting at the IPv4 header.
    pub fn decode(data: &[u8]) -> Result<Self, DecodeError> {
        Self::decode_at(data, 0, false)
    }

    /// Decode wire bytes starting at an Ethernet header.
    pub fn decode_ethernet(data: &[u8]) -> Result<Self, DecodeError> {
        Self::decode_at(data, 0, true)
    }

    fn decode_at(data: &[u8], ts_nanos: u64, has_eth: bool) -> Result<Self, DecodeError> {
        let (eth, ip_bytes) = if has_eth {
            let view = EthernetView::new(data)?;
            let eth = EthernetHeader {
                dst: view.dst(),
                src: view.src(),
                ethertype: view.ethertype(),
            };
            (Some(eth), view.payload())
        } else {
            (None, data)
        };
        let ip = Ipv4View::new(ip_bytes)?;
        let ipv4 = Ipv4Header {
            src: ip.src(),
            dst: ip.dst(),
            protocol: ip.protocol(),
            ttl: ip.ttl(),
            tos: ip.tos(),
            ident: ip.ident(),
            total_len: ip.total_len(),
        };
        let l4 = ip.payload();
        let (transport, payload) = match ipv4.protocol {
            IpProtocol::Tcp => {
                let t = TcpView::new(l4)?;
                (
                    Transport::Tcp(TcpHeader {
                        src_port: t.src_port(),
                        dst_port: t.dst_port(),
                        seq: t.seq(),
                        ack: t.ack(),
                        flags: TcpFlags(t.flags()),
                        window: t.window(),
                    }),
                    Bytes::copy_from_slice(t.payload()),
                )
            }
            IpProtocol::Udp => {
                let u = UdpView::new(l4)?;
                (
                    Transport::Udp(UdpHeader {
                        src_port: u.src_port(),
                        dst_port: u.dst_port(),
                    }),
                    Bytes::copy_from_slice(u.payload()),
                )
            }
            IpProtocol::Icmp => {
                let i = IcmpView::new(l4)?;
                (
                    Transport::Icmp(IcmpHeader {
                        icmp_type: i.icmp_type(),
                        code: i.code(),
                        ident: i.ident(),
                        seq: i.seq(),
                    }),
                    Bytes::copy_from_slice(i.payload()),
                )
            }
            _ => (Transport::Opaque, Bytes::copy_from_slice(l4)),
        };
        let app = match &transport {
            Transport::Udp(u) if (u.dst_port == 53 || u.src_port == 53) && !payload.is_empty() => {
                match DnsHeader::decode(&payload) {
                    Ok(dns) => AppLayer::Dns(dns),
                    Err(_) => AppLayer::None,
                }
            }
            _ => AppLayer::None,
        };
        Ok(Packet {
            ts_nanos,
            eth,
            ipv4,
            transport,
            app,
            payload,
            encoded: EncodedCache::default(),
        })
    }

    /// Resolve a query [`Field`] on this packet. Returns `None` when
    /// the packet has no such field (e.g. `TcpFlags` on a UDP packet).
    pub fn get(&self, field: Field) -> Option<Value> {
        match field {
            Field::Ipv4Src => Some(Value::U64(self.ipv4.src as u64)),
            Field::Ipv4Dst => Some(Value::U64(self.ipv4.dst as u64)),
            Field::Ipv4Proto => Some(Value::U64(self.ipv4.protocol.to_wire() as u64)),
            Field::Ipv4Len => Some(Value::U64(
                (Ipv4Header::SIZE + self.transport_header_len() + self.payload.len()) as u64,
            )),
            Field::Ipv4Ttl => Some(Value::U64(self.ipv4.ttl as u64)),
            Field::TcpSrcPort => match &self.transport {
                Transport::Tcp(t) => Some(Value::U64(t.src_port as u64)),
                _ => None,
            },
            Field::TcpDstPort => match &self.transport {
                Transport::Tcp(t) => Some(Value::U64(t.dst_port as u64)),
                _ => None,
            },
            Field::TcpFlags => match &self.transport {
                Transport::Tcp(t) => Some(Value::U64(t.flags.0 as u64)),
                _ => None,
            },
            Field::TcpSeq => match &self.transport {
                Transport::Tcp(t) => Some(Value::U64(t.seq as u64)),
                _ => None,
            },
            Field::TcpAck => match &self.transport {
                Transport::Tcp(t) => Some(Value::U64(t.ack as u64)),
                _ => None,
            },
            Field::UdpSrcPort => match &self.transport {
                Transport::Udp(u) => Some(Value::U64(u.src_port as u64)),
                _ => None,
            },
            Field::UdpDstPort => match &self.transport {
                Transport::Udp(u) => Some(Value::U64(u.dst_port as u64)),
                _ => None,
            },
            Field::IcmpType => match &self.transport {
                Transport::Icmp(i) => Some(Value::U64(i.icmp_type as u64)),
                _ => None,
            },
            Field::DnsQr => match &self.app {
                AppLayer::Dns(d) => Some(Value::U64(d.is_response as u64)),
                _ => None,
            },
            Field::DnsQType => match &self.app {
                AppLayer::Dns(d) => d
                    .questions
                    .first()
                    .map(|q| Value::U64(q.qtype.to_wire() as u64)),
                _ => None,
            },
            Field::DnsAnCount => match &self.app {
                AppLayer::Dns(d) => Some(Value::U64(d.answers.len() as u64)),
                _ => None,
            },
            Field::DnsRrName => match &self.app {
                AppLayer::Dns(d) => d.first_qname().map(|n| Value::Text(n.into())),
                _ => None,
            },
            Field::DnsAnswerIp => match &self.app {
                AppLayer::Dns(d) => d
                    .answers
                    .iter()
                    .find(|r| r.rtype == crate::dns::DnsQType::A && r.rdata.len() == 4)
                    .map(|r| {
                        Value::U64(u32::from_be_bytes([
                            r.rdata[0], r.rdata[1], r.rdata[2], r.rdata[3],
                        ]) as u64)
                    }),
                _ => None,
            },
            Field::PktLen => Some(Value::U64(self.wire_len() as u64)),
            Field::PayloadLen => Some(Value::U64(self.payload.len() as u64)),
            Field::Payload => Some(Value::Bytes(self.payload.to_vec().into())),
        }
    }
}

/// A fluent builder for packets, used pervasively by the traffic
/// substrate and by tests.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    packet: Packet,
}

impl PacketBuilder {
    /// Start a TCP packet from `src` to `dst`, each `"a.b.c.d:port"`.
    pub fn tcp(src: &str, dst: &str) -> Option<Self> {
        let (sip, sport) = split_endpoint(src)?;
        let (dip, dport) = split_endpoint(dst)?;
        Some(Self::tcp_raw(sip, sport, dip, dport))
    }

    /// Start a TCP packet from raw address/port values.
    pub fn tcp_raw(src_ip: u32, src_port: u16, dst_ip: u32, dst_port: u16) -> Self {
        PacketBuilder {
            packet: Packet {
                ts_nanos: 0,
                eth: None,
                ipv4: Ipv4Header::new(src_ip, dst_ip, IpProtocol::Tcp),
                transport: Transport::Tcp(TcpHeader::new(src_port, dst_port)),
                app: AppLayer::None,
                payload: Bytes::new(),
                encoded: EncodedCache::default(),
            },
        }
    }

    /// Start a UDP packet from raw address/port values.
    pub fn udp_raw(src_ip: u32, src_port: u16, dst_ip: u32, dst_port: u16) -> Self {
        PacketBuilder {
            packet: Packet {
                ts_nanos: 0,
                eth: None,
                ipv4: Ipv4Header::new(src_ip, dst_ip, IpProtocol::Udp),
                transport: Transport::Udp(UdpHeader { src_port, dst_port }),
                app: AppLayer::None,
                payload: Bytes::new(),
                encoded: EncodedCache::default(),
            },
        }
    }

    /// Start an ICMP echo-request packet.
    pub fn icmp_raw(src_ip: u32, dst_ip: u32) -> Self {
        PacketBuilder {
            packet: Packet {
                ts_nanos: 0,
                eth: None,
                ipv4: Ipv4Header::new(src_ip, dst_ip, IpProtocol::Icmp),
                transport: Transport::Icmp(IcmpHeader {
                    icmp_type: 8,
                    code: 0,
                    ident: 1,
                    seq: 1,
                }),
                app: AppLayer::None,
                payload: Bytes::new(),
                encoded: EncodedCache::default(),
            },
        }
    }

    /// Start a DNS packet (UDP port 53) carrying `msg`.
    pub fn dns(src_ip: u32, dst_ip: u32, msg: DnsHeader) -> Self {
        let (src_port, dst_port) = if msg.is_response {
            (53, 33000)
        } else {
            (33000, 53)
        };
        let mut payload = Vec::with_capacity(msg.wire_len());
        msg.emit(&mut payload);
        PacketBuilder {
            packet: Packet {
                ts_nanos: 0,
                eth: None,
                ipv4: Ipv4Header::new(src_ip, dst_ip, IpProtocol::Udp),
                transport: Transport::Udp(UdpHeader { src_port, dst_port }),
                app: AppLayer::Dns(msg),
                payload: payload.into(),
                encoded: EncodedCache::default(),
            },
        }
    }

    /// Set the timestamp (nanoseconds from trace start).
    pub fn ts_nanos(mut self, ts: u64) -> Self {
        self.packet.ts_nanos = ts;
        self
    }

    /// Set TCP flags (no-op on non-TCP packets).
    pub fn flags(mut self, flags: TcpFlags) -> Self {
        if let Transport::Tcp(t) = &mut self.packet.transport {
            t.flags = flags;
        }
        self
    }

    /// Set the TCP sequence number (no-op on non-TCP packets).
    pub fn seq(mut self, seq: u32) -> Self {
        if let Transport::Tcp(t) = &mut self.packet.transport {
            t.seq = seq;
        }
        self
    }

    /// Set the payload.
    pub fn payload(mut self, data: impl Into<Bytes>) -> Self {
        self.packet.payload = data.into();
        self
    }

    /// Set the IPv4 TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.packet.ipv4.ttl = ttl;
        self
    }

    /// Attach a default Ethernet header.
    pub fn with_ethernet(mut self) -> Self {
        self.packet.eth = Some(EthernetHeader::ipv4_default());
        self
    }

    /// Finish building.
    pub fn build(self) -> Packet {
        self.packet
    }
}

fn split_endpoint(s: &str) -> Option<(u32, u16)> {
    let (ip, port) = s.rsplit_once(':')?;
    Some((parse_ipv4(ip)?, port.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns::DnsQType;

    #[test]
    fn tcp_roundtrip() {
        let pkt = PacketBuilder::tcp("10.0.0.1:1234", "192.168.1.5:80")
            .unwrap()
            .flags(TcpFlags::SYN)
            .seq(99)
            .payload(&b"data"[..])
            .build();
        let bytes = pkt.encode();
        assert_eq!(bytes.len(), pkt.wire_len());
        let mut back = Packet::decode(&bytes).unwrap();
        back.ipv4.total_len = 0; // builder leaves it 0; normalize
        let mut orig = pkt;
        orig.ipv4.total_len = 0;
        assert_eq!(back, orig);
    }

    #[test]
    fn ethernet_roundtrip() {
        let pkt = PacketBuilder::tcp("1.2.3.4:5:", "5.6.7.8:9"); // malformed src
        assert!(pkt.is_none());
        let pkt = PacketBuilder::tcp("1.2.3.4:5", "5.6.7.8:9")
            .unwrap()
            .with_ethernet()
            .build();
        let bytes = pkt.encode();
        let back = Packet::decode_ethernet(&bytes).unwrap();
        assert_eq!(back.eth, pkt.eth);
        assert_eq!(back.ipv4.src, pkt.ipv4.src);
    }

    #[test]
    fn udp_dns_roundtrip() {
        let msg = DnsHeader::query(42, "tunnel.evil.example", DnsQType::Txt);
        let pkt = PacketBuilder::dns(0x01020304, 0x08080808, msg.clone()).build();
        let bytes = pkt.encode();
        let back = Packet::decode(&bytes).unwrap();
        match &back.app {
            AppLayer::Dns(d) => assert_eq!(d, &msg),
            other => panic!("expected DNS app layer, got {other:?}"),
        }
        assert_eq!(
            back.get(Field::DnsRrName),
            Some(Value::Text("tunnel.evil.example".into()))
        );
        assert_eq!(back.get(Field::DnsQType), Some(Value::U64(16)));
    }

    #[test]
    fn icmp_roundtrip() {
        let pkt = PacketBuilder::icmp_raw(1, 2).payload(&b"ping!"[..]).build();
        let bytes = pkt.encode();
        let back = Packet::decode(&bytes).unwrap();
        assert_eq!(back.get(Field::IcmpType), Some(Value::U64(8)));
        assert_eq!(back.payload.as_ref(), b"ping!");
    }

    #[test]
    fn field_access_on_tcp() {
        let pkt = PacketBuilder::tcp("10.0.0.1:1234", "192.168.1.5:80")
            .unwrap()
            .flags(TcpFlags::SYN)
            .build();
        assert_eq!(pkt.get(Field::Ipv4Src), Some(Value::U64(0x0a000001)));
        assert_eq!(pkt.get(Field::Ipv4Dst), Some(Value::U64(0xc0a80105)));
        assert_eq!(pkt.get(Field::TcpFlags), Some(Value::U64(2)));
        assert_eq!(pkt.get(Field::TcpDstPort), Some(Value::U64(80)));
        assert_eq!(pkt.get(Field::Ipv4Proto), Some(Value::U64(6)));
        assert_eq!(pkt.get(Field::UdpDstPort), None);
        assert_eq!(pkt.get(Field::DnsRrName), None);
        assert_eq!(pkt.get(Field::PayloadLen), Some(Value::U64(0)));
    }

    #[test]
    fn wire_len_matches_encoded_len() {
        for payload_len in [0usize, 1, 100, 1400] {
            let pkt = PacketBuilder::udp_raw(1, 2, 3, 4)
                .payload(vec![0u8; payload_len])
                .build();
            assert_eq!(pkt.encode().len(), pkt.wire_len());
            assert_eq!(
                pkt.get(Field::PktLen),
                Some(Value::U64((28 + payload_len) as u64))
            );
        }
    }

    #[test]
    fn opaque_protocol_preserved() {
        let mut pkt = PacketBuilder::tcp_raw(1, 2, 3, 4).build();
        pkt.ipv4.protocol = IpProtocol::Other(89);
        pkt.transport = Transport::Opaque;
        pkt.payload = Bytes::from_static(&[1, 2, 3]);
        let bytes = pkt.encode();
        let back = Packet::decode(&bytes).unwrap();
        assert_eq!(back.ipv4.protocol, IpProtocol::Other(89));
        assert_eq!(back.transport, Transport::Opaque);
        assert_eq!(back.payload.as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn encode_cached_matches_encode_and_survives_clone_mutation() {
        let pkt = PacketBuilder::tcp("10.0.0.1:1234", "192.168.1.5:80")
            .unwrap()
            .flags(TcpFlags::SYN)
            .payload(&b"data"[..])
            .build();
        assert_eq!(pkt.encode_cached(), pkt.encode().as_slice());
        // Second call returns the same cached allocation.
        assert_eq!(pkt.encode_cached().as_ptr(), pkt.encode_cached().as_ptr());
        // A clone starts cold: mutating it must not see the stale cache.
        let mut tweaked = pkt.clone();
        tweaked.payload = Bytes::from_static(b"different bytes");
        assert_eq!(tweaked.encode_cached(), tweaked.encode().as_slice());
        assert_ne!(tweaked.encode_cached(), pkt.encode_cached());
        // Equality ignores the cache state.
        let cold = Packet::decode(&pkt.encode()).unwrap();
        let mut warm = cold.clone();
        warm.ipv4.total_len = 0;
        let _ = cold.encode_cached();
        let mut cold2 = cold;
        cold2.ipv4.total_len = 0;
        assert_eq!(cold2, warm);
    }

    #[test]
    fn malformed_dns_payload_degrades_gracefully() {
        // UDP port 53 with garbage payload: packet decodes, app layer None.
        let pkt = PacketBuilder::udp_raw(1, 2, 3, 53)
            .payload(&b"not dns"[..])
            .build();
        let back = Packet::decode(&pkt.encode()).unwrap();
        assert_eq!(back.app, AppLayer::None);
    }
}
