//! The field model: the closed set of packet fields Sonata queries can
//! reference, their bit widths, and the dynamic [`Value`] type.
//!
//! Fields are the contract between the query language (which names
//! fields in predicates and projections), the PISA parser (which must
//! budget PHV bits per extracted field), and the stream processor
//! (which receives field values inside tuples).

use std::fmt;
use std::sync::Arc;

/// A packet field addressable from a Sonata query.
///
/// The set mirrors the fields used by the eleven queries in Table 3 of
/// the paper: IPv4 and transport headers, a few DNS fields for the DNS
/// tunneling / reflection queries, and payload-derived pseudo-fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Field {
    /// IPv4 source address (32 bits).
    Ipv4Src,
    /// IPv4 destination address (32 bits).
    Ipv4Dst,
    /// IPv4 protocol number (8 bits).
    Ipv4Proto,
    /// IPv4 total length (16 bits).
    Ipv4Len,
    /// IPv4 time-to-live (8 bits).
    Ipv4Ttl,
    /// TCP source port (16 bits).
    TcpSrcPort,
    /// TCP destination port (16 bits).
    TcpDstPort,
    /// TCP flags (8 bits; SYN = 0x02 as used by Query 1).
    TcpFlags,
    /// TCP sequence number (32 bits).
    TcpSeq,
    /// TCP acknowledgement number (32 bits).
    TcpAck,
    /// UDP source port (16 bits).
    UdpSrcPort,
    /// UDP destination port (16 bits).
    UdpDstPort,
    /// ICMP type (8 bits).
    IcmpType,
    /// DNS query/response flag (1 bit, taken from the DNS header QR bit).
    DnsQr,
    /// DNS query type of the first question (16 bits).
    DnsQType,
    /// DNS answer record count (16 bits).
    DnsAnCount,
    /// DNS resource-record name of the first question (variable width;
    /// hierarchical — usable as a refinement key, levels = label count).
    DnsRrName,
    /// First A-record address in the answer section (32 bits).
    /// Extracting it requires walking compressed names, which PISA
    /// parsers cannot do — stream-processor only.
    DnsAnswerIp,
    /// Total packet length on the wire (16 bits). The paper's `p.pktlen`.
    PktLen,
    /// Payload length in bytes (16 bits). The paper's `p.nBytes`.
    PayloadLen,
    /// The raw payload (variable width; only parseable at the stream
    /// processor — PISA switches cannot parse payloads).
    Payload,
}

/// The width of a field in bits, used for PHV/metadata budgeting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldWidth {
    /// A fixed number of bits.
    Bits(u32),
    /// Variable width (DNS names, payloads); cannot live in a PHV.
    Variable,
}

impl FieldWidth {
    /// Fixed width in bits, or `None` for variable-width fields.
    pub fn fixed(self) -> Option<u32> {
        match self {
            FieldWidth::Bits(b) => Some(b),
            FieldWidth::Variable => None,
        }
    }
}

impl Field {
    /// All fields, in a stable order.
    pub const ALL: &'static [Field] = &[
        Field::Ipv4Src,
        Field::Ipv4Dst,
        Field::Ipv4Proto,
        Field::Ipv4Len,
        Field::Ipv4Ttl,
        Field::TcpSrcPort,
        Field::TcpDstPort,
        Field::TcpFlags,
        Field::TcpSeq,
        Field::TcpAck,
        Field::UdpSrcPort,
        Field::UdpDstPort,
        Field::IcmpType,
        Field::DnsQr,
        Field::DnsQType,
        Field::DnsAnCount,
        Field::DnsRrName,
        Field::DnsAnswerIp,
        Field::PktLen,
        Field::PayloadLen,
        Field::Payload,
    ];

    /// The width of this field in bits.
    pub fn width(self) -> FieldWidth {
        use Field::*;
        match self {
            Ipv4Src | Ipv4Dst | TcpSeq | TcpAck | DnsAnswerIp => FieldWidth::Bits(32),
            Ipv4Len | TcpSrcPort | TcpDstPort | UdpSrcPort | UdpDstPort | DnsQType | DnsAnCount
            | PktLen | PayloadLen => FieldWidth::Bits(16),
            Ipv4Proto | Ipv4Ttl | TcpFlags | IcmpType => FieldWidth::Bits(8),
            DnsQr => FieldWidth::Bits(1),
            DnsRrName | Payload => FieldWidth::Variable,
        }
    }

    /// Whether the PISA switch parser can extract this field into the
    /// packet header vector. Payloads and DNS names require the stream
    /// processor (Section 2.1 of the paper: "sophisticated parsing").
    pub fn switch_parseable(self) -> bool {
        !matches!(self, Field::Payload | Field::DnsRrName | Field::DnsAnswerIp)
    }

    /// Whether the field has a hierarchical structure usable for
    /// dynamic query refinement (Section 4.1).
    ///
    /// IPv4 addresses refine by prefix length (levels 1..=32); DNS
    /// names refine by label depth.
    pub fn is_hierarchical(self) -> bool {
        matches!(self, Field::Ipv4Src | Field::Ipv4Dst | Field::DnsRrName)
    }

    /// The finest refinement level for a hierarchical field: 32 for an
    /// IPv4 prefix (/32), and a nominal maximum label depth of 8 for
    /// DNS names.
    pub fn finest_refinement_level(self) -> Option<u8> {
        match self {
            Field::Ipv4Src | Field::Ipv4Dst => Some(32),
            Field::DnsRrName => Some(8),
            _ => None,
        }
    }

    /// Short stable name used in generated P4-IR code and reports.
    pub fn name(self) -> &'static str {
        use Field::*;
        match self {
            Ipv4Src => "ipv4.sIP",
            Ipv4Dst => "ipv4.dIP",
            Ipv4Proto => "ipv4.proto",
            Ipv4Len => "ipv4.len",
            Ipv4Ttl => "ipv4.ttl",
            TcpSrcPort => "tcp.sPort",
            TcpDstPort => "tcp.dPort",
            TcpFlags => "tcp.flags",
            TcpSeq => "tcp.seq",
            TcpAck => "tcp.ack",
            UdpSrcPort => "udp.sPort",
            UdpDstPort => "udp.dPort",
            IcmpType => "icmp.type",
            DnsQr => "dns.qr",
            DnsQType => "dns.qtype",
            DnsAnCount => "dns.ancount",
            DnsRrName => "dns.rr.name",
            DnsAnswerIp => "dns.answer.ip",
            PktLen => "pkt.len",
            PayloadLen => "pkt.nBytes",
            Payload => "pkt.payload",
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically typed field value carried in tuples.
///
/// Scalar header fields are `U64`; DNS names and payload slices are
/// `Text`/`Bytes`. `Value` implements `Ord` so it can key BTree-based
/// state and sort deterministically in reports.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An unsigned scalar (all fixed-width header fields).
    U64(u64),
    /// A textual value (DNS names).
    Text(Arc<str>),
    /// Raw bytes (payload).
    Bytes(Arc<[u8]>),
}

impl Value {
    /// The scalar value, if this is a `U64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The textual value, if this is `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The raw bytes, if this is `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Size of the value in bits when stored in switch metadata or a
    /// report packet. Variable-size values count their current length.
    pub fn width_bits(&self) -> u32 {
        match self {
            Value::U64(_) => 64,
            Value::Text(s) => (s.len() as u32) * 8,
            Value::Bytes(b) => (b.len() as u32) * 8,
        }
    }

    /// Apply an IPv4-style prefix mask: keep the top `prefix_len` bits
    /// of a 32-bit value. For `Text` values (DNS names), keep the last
    /// `prefix_len` labels (the DNS hierarchy grows right-to-left).
    pub fn mask_to_level(&self, prefix_len: u8) -> Value {
        match self {
            Value::U64(v) => {
                let mask = if prefix_len == 0 {
                    0
                } else if prefix_len >= 32 {
                    u32::MAX
                } else {
                    u32::MAX << (32 - prefix_len as u32)
                };
                Value::U64(v & mask as u64)
            }
            Value::Text(s) => {
                let labels: Vec<&str> = s.split('.').filter(|l| !l.is_empty()).collect();
                let keep = (prefix_len as usize).min(labels.len());
                let start = labels.len() - keep;
                Value::Text(labels[start..].join(".").into())
            }
            Value::Bytes(_) => self.clone(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bytes(b) => {
                for byte in b.iter().take(16) {
                    write!(f, "{byte:02x}")?;
                }
                if b.len() > 16 {
                    write!(f, "…")?;
                }
                Ok(())
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.into())
    }
}

/// Render a `U64` value that holds an IPv4 address as dotted quad.
pub fn format_ipv4(v: u64) -> String {
    let v = v as u32;
    format!(
        "{}.{}.{}.{}",
        (v >> 24) & 0xff,
        (v >> 16) & 0xff,
        (v >> 8) & 0xff,
        v & 0xff
    )
}

/// Parse a dotted-quad IPv4 address into its u32 value.
pub fn parse_ipv4(s: &str) -> Option<u32> {
    let mut parts = s.split('.');
    let mut out: u32 = 0;
    for _ in 0..4 {
        let octet: u32 = parts.next()?.parse().ok()?;
        if octet > 255 {
            return None;
        }
        out = (out << 8) | octet;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_match_wire_sizes() {
        assert_eq!(Field::Ipv4Src.width(), FieldWidth::Bits(32));
        assert_eq!(Field::TcpFlags.width(), FieldWidth::Bits(8));
        assert_eq!(Field::Payload.width(), FieldWidth::Variable);
        assert_eq!(FieldWidth::Bits(16).fixed(), Some(16));
        assert_eq!(FieldWidth::Variable.fixed(), None);
    }

    #[test]
    fn payload_not_switch_parseable() {
        assert!(!Field::Payload.switch_parseable());
        assert!(!Field::DnsRrName.switch_parseable());
        assert!(Field::Ipv4Dst.switch_parseable());
        assert!(Field::DnsQType.switch_parseable());
    }

    #[test]
    fn hierarchical_fields() {
        assert!(Field::Ipv4Dst.is_hierarchical());
        assert!(Field::DnsRrName.is_hierarchical());
        assert!(!Field::TcpFlags.is_hierarchical());
        assert_eq!(Field::Ipv4Dst.finest_refinement_level(), Some(32));
        assert_eq!(Field::TcpFlags.finest_refinement_level(), None);
    }

    #[test]
    fn ipv4_mask_levels() {
        let v = Value::U64(0x0a0b0c0d);
        assert_eq!(v.mask_to_level(32), Value::U64(0x0a0b0c0d));
        assert_eq!(v.mask_to_level(24), Value::U64(0x0a0b0c00));
        assert_eq!(v.mask_to_level(16), Value::U64(0x0a0b0000));
        assert_eq!(v.mask_to_level(8), Value::U64(0x0a000000));
        assert_eq!(v.mask_to_level(0), Value::U64(0));
    }

    #[test]
    fn dns_name_mask_levels() {
        let v = Value::Text("mail.corp.example.com".into());
        assert_eq!(v.mask_to_level(2).as_text(), Some("example.com"));
        assert_eq!(v.mask_to_level(1).as_text(), Some("com"));
        assert_eq!(v.mask_to_level(8).as_text(), Some("mail.corp.example.com"));
        assert_eq!(v.mask_to_level(0).as_text(), Some(""));
    }

    #[test]
    fn ipv4_parse_format_roundtrip() {
        for s in ["0.0.0.0", "255.255.255.255", "10.1.2.3", "192.168.0.1"] {
            let v = parse_ipv4(s).unwrap();
            assert_eq!(format_ipv4(v as u64), s);
        }
        assert_eq!(parse_ipv4("256.0.0.1"), None);
        assert_eq!(parse_ipv4("1.2.3"), None);
        assert_eq!(parse_ipv4("1.2.3.4.5"), None);
        assert_eq!(parse_ipv4("a.b.c.d"), None);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::U64(7).as_u64(), Some(7));
        assert_eq!(Value::U64(7).as_text(), None);
        assert_eq!(Value::from("x").as_text(), Some("x"));
        let b = Value::Bytes(vec![1, 2, 3].into());
        assert_eq!(b.as_bytes(), Some(&[1u8, 2, 3][..]));
        assert_eq!(b.width_bits(), 24);
    }

    #[test]
    fn all_fields_have_distinct_names() {
        let mut names: Vec<&str> = Field::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Field::ALL.len());
    }
}
