//! # sonata-packet
//!
//! Wire-format packet encoding and decoding for the Sonata telemetry
//! system, together with the *field model* shared by the query language,
//! the PISA switch parser, and the stream processor.
//!
//! The crate provides three layers:
//!
//! 1. **Typed headers** ([`EthernetHeader`], [`Ipv4Header`], [`TcpHeader`],
//!    [`UdpHeader`], [`IcmpHeader`], [`DnsHeader`]) — owned, structured
//!    representations that traffic generators build and serializers emit.
//! 2. **Wire views** ([`wire`]) — zero-copy accessors over `&[u8]` in the
//!    style of smoltcp, used by the PISA behavioral model's
//!    reconfigurable parser so that switch-side parsing operates on raw
//!    bytes exactly as hardware would.
//! 3. **The field model** ([`field`]) — a closed enumeration of packet
//!    fields ([`Field`]) with bit widths and hierarchy metadata (which
//!    fields can serve as *refinement keys*), and the dynamic [`Value`]
//!    type carried through tuples.
//!
//! ```
//! use sonata_packet::{Packet, PacketBuilder, TcpFlags, Field};
//!
//! let pkt = PacketBuilder::tcp("10.0.0.1:1234", "192.168.1.5:80")
//!     .unwrap()
//!     .flags(TcpFlags::SYN)
//!     .build();
//! let bytes = pkt.encode();
//! let decoded = Packet::decode(&bytes).unwrap();
//! assert_eq!(decoded.get(Field::TcpFlags).unwrap().as_u64(), Some(2));
//! ```

pub mod arena;
pub mod dns;
pub mod field;
pub mod headers;
pub mod packet;
pub mod wire;

pub use arena::{ArenaBatch, ArenaIndex, PacketArena, PacketView};
pub use dns::{DnsHeader, DnsQType, DnsQuestion, DnsRecord};
pub use field::{format_ipv4, parse_ipv4, Field, FieldWidth, Value};
pub use headers::{
    EtherType, EthernetHeader, IcmpHeader, IpProtocol, Ipv4Header, TcpFlags, TcpHeader, UdpHeader,
};
pub use packet::{AppLayer, Packet, PacketBuilder, Transport};

/// Errors produced while decoding raw bytes into packets or header views.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than the fixed part of the header.
    Truncated {
        /// Which layer was being decoded.
        layer: &'static str,
        /// Bytes required to make progress.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A length or offset field points outside the buffer.
    BadLength {
        /// Which layer was being decoded.
        layer: &'static str,
    },
    /// A version/type field holds a value this stack does not handle.
    Unsupported {
        /// Which layer was being decoded.
        layer: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A malformed DNS name (bad label length or pointer loop).
    MalformedName,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated {
                layer,
                needed,
                available,
            } => write!(
                f,
                "truncated {layer} header: need {needed} bytes, have {available}"
            ),
            DecodeError::BadLength { layer } => write!(f, "bad length field in {layer} header"),
            DecodeError::Unsupported { layer, value } => {
                write!(f, "unsupported {layer} value {value}")
            }
            DecodeError::MalformedName => write!(f, "malformed DNS name"),
        }
    }
}

impl std::error::Error for DecodeError {}
