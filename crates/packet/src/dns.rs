//! Minimal DNS message encoding/decoding.
//!
//! Two of the paper's eleven queries (DNS tunneling, DNS reflection)
//! need DNS header fields and the query name; this module implements
//! the subset of RFC 1035 required to generate and parse such traffic:
//! the fixed header, question section, and answer records with A/TXT
//! rdata. Name compression pointers are decoded (with loop protection)
//! but never emitted.

use crate::DecodeError;
use bytes::BufMut;

/// DNS query/record types used by the telemetry queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnsQType {
    /// IPv4 address record.
    A,
    /// Name server record.
    Ns,
    /// Canonical name.
    Cname,
    /// Text record (the classic DNS-tunneling carrier).
    Txt,
    /// "All records" — common in reflection/amplification attacks.
    Any,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl DnsQType {
    /// The 16-bit wire value.
    pub fn to_wire(self) -> u16 {
        match self {
            DnsQType::A => 1,
            DnsQType::Ns => 2,
            DnsQType::Cname => 5,
            DnsQType::Txt => 16,
            DnsQType::Any => 255,
            DnsQType::Other(v) => v,
        }
    }

    /// Decode from the 16-bit wire value.
    pub fn from_wire(v: u16) -> Self {
        match v {
            1 => DnsQType::A,
            2 => DnsQType::Ns,
            5 => DnsQType::Cname,
            16 => DnsQType::Txt,
            255 => DnsQType::Any,
            other => DnsQType::Other(other),
        }
    }
}

/// A question-section entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsQuestion {
    /// The query name, dotted form without trailing dot.
    pub name: String,
    /// The query type.
    pub qtype: DnsQType,
}

/// An answer-section resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsRecord {
    /// The record name, dotted form.
    pub name: String,
    /// The record type.
    pub rtype: DnsQType,
    /// Time to live.
    pub ttl: u32,
    /// Raw rdata bytes (4-byte address for A, text for TXT).
    pub rdata: Vec<u8>,
}

/// A decoded DNS message: header plus question and answer sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsHeader {
    /// Transaction id.
    pub id: u16,
    /// True for responses (QR bit).
    pub is_response: bool,
    /// Questions.
    pub questions: Vec<DnsQuestion>,
    /// Answer records.
    pub answers: Vec<DnsRecord>,
}

impl DnsHeader {
    /// Build a query message for `name` with the given type.
    pub fn query(id: u16, name: &str, qtype: DnsQType) -> Self {
        DnsHeader {
            id,
            is_response: false,
            questions: vec![DnsQuestion {
                name: name.to_string(),
                qtype,
            }],
            answers: Vec::new(),
        }
    }

    /// Build a response message answering `name` with `answers`.
    pub fn response(id: u16, name: &str, qtype: DnsQType, answers: Vec<DnsRecord>) -> Self {
        DnsHeader {
            id,
            is_response: true,
            questions: vec![DnsQuestion {
                name: name.to_string(),
                qtype,
            }],
            answers,
        }
    }

    /// Name of the first question, if any — this is the `dns.rr.name`
    /// field the queries reference.
    pub fn first_qname(&self) -> Option<&str> {
        self.questions.first().map(|q| q.name.as_str())
    }

    /// Serialize onto `buf` (no name compression).
    pub fn emit<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(self.id);
        // Flags: QR bit + recursion desired for queries, recursion
        // available for responses.
        let flags: u16 = if self.is_response { 0x8180 } else { 0x0100 };
        buf.put_u16(flags);
        buf.put_u16(self.questions.len() as u16);
        buf.put_u16(self.answers.len() as u16);
        buf.put_u16(0); // NSCOUNT
        buf.put_u16(0); // ARCOUNT
        for q in &self.questions {
            emit_name(buf, &q.name);
            buf.put_u16(q.qtype.to_wire());
            buf.put_u16(1); // class IN
        }
        for a in &self.answers {
            emit_name(buf, &a.name);
            buf.put_u16(a.rtype.to_wire());
            buf.put_u16(1); // class IN
            buf.put_u32(a.ttl);
            buf.put_u16(a.rdata.len() as u16);
            buf.put_slice(&a.rdata);
        }
    }

    /// Serialized size in bytes.
    pub fn wire_len(&self) -> usize {
        let mut n = 12;
        for q in &self.questions {
            n += name_wire_len(&q.name) + 4;
        }
        for a in &self.answers {
            n += name_wire_len(&a.name) + 10 + a.rdata.len();
        }
        n
    }

    /// Decode a DNS message from `data`.
    pub fn decode(data: &[u8]) -> Result<Self, DecodeError> {
        if data.len() < 12 {
            return Err(DecodeError::Truncated {
                layer: "dns",
                needed: 12,
                available: data.len(),
            });
        }
        let id = u16::from_be_bytes([data[0], data[1]]);
        let flags = u16::from_be_bytes([data[2], data[3]]);
        let qdcount = u16::from_be_bytes([data[4], data[5]]) as usize;
        let ancount = u16::from_be_bytes([data[6], data[7]]) as usize;
        // Cap the section counts to defend against hostile headers.
        if qdcount > 64 || ancount > 256 {
            return Err(DecodeError::BadLength { layer: "dns" });
        }
        let mut pos = 12;
        let mut questions = Vec::with_capacity(qdcount);
        for _ in 0..qdcount {
            let (name, next) = decode_name(data, pos)?;
            pos = next;
            if data.len() < pos + 4 {
                return Err(DecodeError::Truncated {
                    layer: "dns question",
                    needed: pos + 4,
                    available: data.len(),
                });
            }
            let qtype = DnsQType::from_wire(u16::from_be_bytes([data[pos], data[pos + 1]]));
            pos += 4; // skip type + class
            questions.push(DnsQuestion { name, qtype });
        }
        let mut answers = Vec::with_capacity(ancount);
        for _ in 0..ancount {
            let (name, next) = decode_name(data, pos)?;
            pos = next;
            if data.len() < pos + 10 {
                return Err(DecodeError::Truncated {
                    layer: "dns answer",
                    needed: pos + 10,
                    available: data.len(),
                });
            }
            let rtype = DnsQType::from_wire(u16::from_be_bytes([data[pos], data[pos + 1]]));
            let ttl = u32::from_be_bytes(data[pos + 4..pos + 8].try_into().unwrap());
            let rdlen = u16::from_be_bytes([data[pos + 8], data[pos + 9]]) as usize;
            pos += 10;
            if data.len() < pos + rdlen {
                return Err(DecodeError::Truncated {
                    layer: "dns rdata",
                    needed: pos + rdlen,
                    available: data.len(),
                });
            }
            let rdata = data[pos..pos + rdlen].to_vec();
            pos += rdlen;
            answers.push(DnsRecord {
                name,
                rtype,
                ttl,
                rdata,
            });
        }
        Ok(DnsHeader {
            id,
            is_response: flags & 0x8000 != 0,
            questions,
            answers,
        })
    }
}

fn emit_name<B: BufMut>(buf: &mut B, name: &str) {
    for label in name.split('.').filter(|l| !l.is_empty()) {
        let len = label.len().min(63);
        buf.put_u8(len as u8);
        buf.put_slice(&label.as_bytes()[..len]);
    }
    buf.put_u8(0);
}

fn name_wire_len(name: &str) -> usize {
    let mut n = 1; // terminating zero
    for label in name.split('.').filter(|l| !l.is_empty()) {
        n += 1 + label.len().min(63);
    }
    n
}

/// Decode a (possibly compressed) name starting at `pos`. Returns the
/// dotted name and the offset just past the name in the original
/// (uncompressed) byte stream.
fn decode_name(data: &[u8], mut pos: usize) -> Result<(String, usize), DecodeError> {
    let mut labels: Vec<String> = Vec::new();
    let mut end: Option<usize> = None;
    let mut jumps = 0;
    loop {
        let len = *data.get(pos).ok_or(DecodeError::Truncated {
            layer: "dns name",
            needed: pos + 1,
            available: data.len(),
        })? as usize;
        if len == 0 {
            pos += 1;
            break;
        }
        if len & 0xc0 == 0xc0 {
            // Compression pointer.
            let lo = *data.get(pos + 1).ok_or(DecodeError::Truncated {
                layer: "dns name pointer",
                needed: pos + 2,
                available: data.len(),
            })? as usize;
            let target = ((len & 0x3f) << 8) | lo;
            if end.is_none() {
                end = Some(pos + 2);
            }
            jumps += 1;
            if jumps > 16 || target >= pos {
                return Err(DecodeError::MalformedName);
            }
            pos = target;
            continue;
        }
        if len > 63 {
            return Err(DecodeError::MalformedName);
        }
        let start = pos + 1;
        let stop = start + len;
        if data.len() < stop {
            return Err(DecodeError::Truncated {
                layer: "dns label",
                needed: stop,
                available: data.len(),
            });
        }
        labels.push(String::from_utf8_lossy(&data[start..stop]).into_owned());
        pos = stop;
        if labels.len() > 127 {
            return Err(DecodeError::MalformedName);
        }
    }
    Ok((labels.join("."), end.unwrap_or(pos)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let msg = DnsHeader::query(0x1234, "www.example.com", DnsQType::A);
        let mut buf = Vec::new();
        msg.emit(&mut buf);
        assert_eq!(buf.len(), msg.wire_len());
        let back = DnsHeader::decode(&buf).unwrap();
        assert_eq!(back, msg);
        assert_eq!(back.first_qname(), Some("www.example.com"));
        assert!(!back.is_response);
    }

    #[test]
    fn response_roundtrip_with_answers() {
        let answers = vec![
            DnsRecord {
                name: "example.com".to_string(),
                rtype: DnsQType::A,
                ttl: 300,
                rdata: vec![93, 184, 216, 34],
            },
            DnsRecord {
                name: "example.com".to_string(),
                rtype: DnsQType::Txt,
                ttl: 60,
                rdata: b"exfil-data".to_vec(),
            },
        ];
        let msg = DnsHeader::response(7, "example.com", DnsQType::Any, answers);
        let mut buf = Vec::new();
        msg.emit(&mut buf);
        assert_eq!(buf.len(), msg.wire_len());
        let back = DnsHeader::decode(&buf).unwrap();
        assert_eq!(back, msg);
        assert!(back.is_response);
        assert_eq!(back.answers.len(), 2);
    }

    #[test]
    fn compressed_name_decoding() {
        // Hand-built message: question for "a.bc" then an answer whose
        // name is a pointer back to offset 12.
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(&0x0001u16.to_be_bytes()); // id
        buf.extend_from_slice(&0x8180u16.to_be_bytes()); // response flags
        buf.extend_from_slice(&1u16.to_be_bytes()); // qdcount
        buf.extend_from_slice(&1u16.to_be_bytes()); // ancount
        buf.extend_from_slice(&0u16.to_be_bytes());
        buf.extend_from_slice(&0u16.to_be_bytes());
        // question: 1 'a' 2 'b' 'c' 0, type A, class IN
        buf.extend_from_slice(&[1, b'a', 2, b'b', b'c', 0]);
        buf.extend_from_slice(&1u16.to_be_bytes());
        buf.extend_from_slice(&1u16.to_be_bytes());
        // answer: pointer to offset 12
        buf.extend_from_slice(&[0xc0, 12]);
        buf.extend_from_slice(&1u16.to_be_bytes()); // type A
        buf.extend_from_slice(&1u16.to_be_bytes()); // class
        buf.extend_from_slice(&300u32.to_be_bytes()); // ttl
        buf.extend_from_slice(&4u16.to_be_bytes()); // rdlen
        buf.extend_from_slice(&[1, 2, 3, 4]);
        let msg = DnsHeader::decode(&buf).unwrap();
        assert_eq!(msg.questions[0].name, "a.bc");
        assert_eq!(msg.answers[0].name, "a.bc");
        assert_eq!(msg.answers[0].rdata, vec![1, 2, 3, 4]);
    }

    #[test]
    fn pointer_loop_rejected() {
        let mut buf: Vec<u8> = vec![0; 12];
        buf[5] = 1; // qdcount = 1
                    // name at offset 12 is a pointer to itself
        buf.extend_from_slice(&[0xc0, 12]);
        buf.extend_from_slice(&[0, 1, 0, 1]);
        assert_eq!(DnsHeader::decode(&buf), Err(DecodeError::MalformedName));
    }

    #[test]
    fn truncated_message_rejected() {
        let msg = DnsHeader::query(1, "example.com", DnsQType::A);
        let mut buf = Vec::new();
        msg.emit(&mut buf);
        for cut in [0, 5, 11, buf.len() - 1] {
            assert!(DnsHeader::decode(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_counts_rejected() {
        let mut buf: Vec<u8> = vec![0; 12];
        buf[4] = 0xff; // qdcount = 65280
        buf[5] = 0x00;
        assert!(DnsHeader::decode(&buf).is_err());
    }

    #[test]
    fn label_too_long_rejected() {
        let mut buf: Vec<u8> = vec![0; 12];
        buf[5] = 1;
        buf.push(64); // label length 64 is illegal without compression bits
        buf.extend_from_slice(&[0u8; 70]);
        // 64 & 0xc0 == 0x40, neither plain (<64) nor pointer (0xc0)
        assert_eq!(DnsHeader::decode(&buf), Err(DecodeError::MalformedName));
    }

    #[test]
    fn empty_name_roundtrip() {
        let msg = DnsHeader::query(9, "", DnsQType::Any);
        let mut buf = Vec::new();
        msg.emit(&mut buf);
        let back = DnsHeader::decode(&buf).unwrap();
        assert_eq!(back.first_qname(), Some(""));
    }
}
