//! Contiguous packet arenas for zero-copy batched ingest.
//!
//! A [`PacketArena`] stores a whole trace (or one window of it) as a
//! single contiguous byte buffer of encoded packets plus a fixed-width
//! index table ([`ArenaIndex`]: offset, length, timestamp). The layout
//! is mmap-friendly — the buffer is exactly the concatenation of the
//! packets' wire bytes, and the index is a flat array — so an arena can
//! be built either from owned [`Packet`]s or decoded straight out of
//! the binary trace-file format without materializing owned packets.
//!
//! [`PacketView`] is the borrowed counterpart of [`Packet`]: a slice
//! into the arena plus a timestamp. It parses headers *lazily* through
//! the [`crate::wire`] views — no `Bytes` clone, no header enum
//! materialization until a field is actually read. The PISA switch's
//! batch path parses these slices with the same reconfigurable parser
//! it uses for wire-mode bytes, which is what makes the arena path
//! bit-identical to the owned path.
//!
//! Like wire mode, the arena path requires IPv4-first framing (traces
//! never attach Ethernet headers; this is debug-asserted at build
//! time).

use crate::packet::Packet;
use crate::wire::{IcmpView, Ipv4View, TcpView, UdpView};
use crate::{DecodeError, IpProtocol};

/// One fixed-width index entry: where a packet's wire bytes live in
/// the arena buffer, and when it was captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaIndex {
    /// Byte offset of the packet's first wire byte in the arena buffer.
    pub offset: u64,
    /// Encoded length in bytes.
    pub len: u32,
    /// Capture timestamp, nanoseconds from trace start.
    pub ts_nanos: u64,
}

/// A contiguous buffer of encoded packets plus a flat index table.
///
/// Packets are stored in push order; builders feed them in timestamp
/// order (traces are sorted), so [`PacketArena::windows`] can hand out
/// contiguous per-window [`ArenaBatch`]es.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PacketArena {
    bytes: Vec<u8>,
    index: Vec<ArenaIndex>,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty arena pre-sized for `packets` packets totalling
    /// `bytes` wire bytes.
    pub fn with_capacity(packets: usize, bytes: usize) -> Self {
        PacketArena {
            bytes: Vec::with_capacity(bytes),
            index: Vec::with_capacity(packets),
        }
    }

    /// Build an arena by encoding `packets` in order.
    ///
    /// The arena path (like wire mode) assumes IPv4-first framing;
    /// traces never attach Ethernet headers.
    pub fn from_packets(packets: &[Packet]) -> Self {
        let total: usize = packets.iter().map(|p| p.wire_len()).sum();
        let mut arena = Self::with_capacity(packets.len(), total);
        for p in packets {
            debug_assert!(p.eth.is_none(), "arena ingest requires IPv4-first framing");
            arena.push_record(p.ts_nanos, p.encode_cached());
        }
        arena
    }

    /// Rebuild this arena in place from `packets`, reusing the buffer
    /// and index allocations from a previous window.
    pub fn rebuild_from_packets(&mut self, packets: &[Packet]) {
        self.bytes.clear();
        self.index.clear();
        for p in packets {
            debug_assert!(p.eth.is_none(), "arena ingest requires IPv4-first framing");
            self.push_record(p.ts_nanos, p.encode_cached());
        }
    }

    /// Append one already-encoded packet record.
    pub fn push_record(&mut self, ts_nanos: u64, wire: &[u8]) {
        self.index.push(ArenaIndex {
            offset: self.bytes.len() as u64,
            len: wire.len() as u32,
            ts_nanos,
        });
        self.bytes.extend_from_slice(wire);
    }

    /// Number of packets in the arena.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the arena holds no packets.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total wire bytes stored.
    pub fn total_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The raw contiguous buffer.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The index table.
    pub fn index(&self) -> &[ArenaIndex] {
        &self.index
    }

    /// Borrowed view of packet `i`.
    pub fn view(&self, i: usize) -> PacketView<'_> {
        self.batch().view(i)
    }

    /// A batch spanning the whole arena.
    pub fn batch(&self) -> ArenaBatch<'_> {
        ArenaBatch {
            bytes: &self.bytes,
            index: &self.index,
        }
    }

    /// A batch spanning packets `[lo, hi)`.
    pub fn range_batch(&self, lo: usize, hi: usize) -> ArenaBatch<'_> {
        ArenaBatch {
            bytes: &self.bytes,
            index: &self.index[lo..hi],
        }
    }

    /// Iterate non-empty tumbling windows of `window_ms` milliseconds,
    /// yielding `(window_index, batch)` — the arena analogue of
    /// `Trace::windows`. Requires the arena to be in timestamp order
    /// (builders preserve trace order, which is sorted).
    pub fn windows(&self, window_ms: u64) -> impl Iterator<Item = (u64, ArenaBatch<'_>)> + '_ {
        let window_ns = window_ms.max(1) * 1_000_000;
        let mut lo = 0usize;
        std::iter::from_fn(move || {
            if lo >= self.index.len() {
                return None;
            }
            let w = self.index[lo].ts_nanos / window_ns;
            let mut hi = lo + 1;
            while hi < self.index.len() && self.index[hi].ts_nanos / window_ns == w {
                hi += 1;
            }
            let batch = self.range_batch(lo, hi);
            lo = hi;
            Some((w, batch))
        })
    }
}

/// A borrowed slice of a [`PacketArena`]: the shared byte buffer plus
/// a sub-range of the index table. This is the unit the batch executor
/// consumes — one window's packets, no copies.
#[derive(Debug, Clone, Copy)]
pub struct ArenaBatch<'a> {
    bytes: &'a [u8],
    index: &'a [ArenaIndex],
}

impl<'a> ArenaBatch<'a> {
    /// Assemble a batch from raw parts (the buffer and an index slice
    /// whose entries must lie within it).
    pub fn from_parts(bytes: &'a [u8], index: &'a [ArenaIndex]) -> Self {
        ArenaBatch { bytes, index }
    }

    /// Number of packets in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the batch holds no packets.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The shared arena buffer (offsets in the index are relative to
    /// this slice).
    #[inline]
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// The index entries of this batch.
    pub fn index(&self) -> &'a [ArenaIndex] {
        self.index
    }

    /// Borrowed view of packet `i` within the batch.
    #[inline]
    pub fn view(&self, i: usize) -> PacketView<'a> {
        let e = &self.index[i];
        PacketView {
            bytes: &self.bytes[e.offset as usize..e.offset as usize + e.len as usize],
            ts_nanos: e.ts_nanos,
        }
    }

    /// Iterate borrowed views in batch order.
    pub fn iter(&self) -> impl Iterator<Item = PacketView<'a>> + '_ {
        (0..self.len()).map(|i| self.view(i))
    }
}

/// A borrowed packet: a slice of arena bytes plus its timestamp.
///
/// Headers are parsed lazily through the zero-copy [`crate::wire`]
/// views — nothing is materialized until a field is read, and reading
/// a field touches only the bytes that field lives in. `decode()`
/// materializes an owned [`Packet`] (used off the hot path: fault
/// replay, report embedding on the owned fallback).
#[derive(Debug, Clone, Copy)]
pub struct PacketView<'a> {
    bytes: &'a [u8],
    ts_nanos: u64,
}

impl<'a> PacketView<'a> {
    /// Wrap `bytes` (IPv4-first wire bytes) captured at `ts_nanos`.
    pub fn new(bytes: &'a [u8], ts_nanos: u64) -> Self {
        PacketView { bytes, ts_nanos }
    }

    /// The packet's wire bytes.
    #[inline]
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Capture timestamp, nanoseconds from trace start.
    #[inline]
    pub fn ts_nanos(&self) -> u64 {
        self.ts_nanos
    }

    /// On-wire length in bytes.
    pub fn wire_len(&self) -> usize {
        self.bytes.len()
    }

    /// Lazy IPv4 header view.
    pub fn ipv4(&self) -> Result<Ipv4View<'a>, DecodeError> {
        Ipv4View::new(self.bytes)
    }

    /// Lazy TCP view, if the packet is TCP and well-formed.
    pub fn tcp(&self) -> Option<TcpView<'a>> {
        let ip = self.ipv4().ok()?;
        if ip.protocol() != IpProtocol::Tcp {
            return None;
        }
        TcpView::new(ip.payload()).ok()
    }

    /// Lazy UDP view, if the packet is UDP and well-formed.
    pub fn udp(&self) -> Option<UdpView<'a>> {
        let ip = self.ipv4().ok()?;
        if ip.protocol() != IpProtocol::Udp {
            return None;
        }
        UdpView::new(ip.payload()).ok()
    }

    /// Lazy ICMP view, if the packet is ICMP and well-formed.
    pub fn icmp(&self) -> Option<IcmpView<'a>> {
        let ip = self.ipv4().ok()?;
        if ip.protocol() != IpProtocol::Icmp {
            return None;
        }
        IcmpView::new(ip.payload()).ok()
    }

    /// Materialize an owned [`Packet`] (timestamp carried over). This
    /// allocates and sits off the hot path by design.
    pub fn decode(&self) -> Result<Packet, DecodeError> {
        let mut pkt = Packet::decode(self.bytes)?;
        pkt.ts_nanos = self.ts_nanos;
        Ok(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBuilder;
    use crate::{Field, TcpFlags};

    fn sample_packets() -> Vec<Packet> {
        vec![
            PacketBuilder::tcp_raw(0x0a000001, 1234, 0xc0a80105, 80)
                .flags(TcpFlags::SYN)
                .ts_nanos(5)
                .build(),
            PacketBuilder::udp_raw(1, 9999, 2, 53)
                .payload(&b"not dns"[..])
                .ts_nanos(1_500_000)
                .build(),
            PacketBuilder::icmp_raw(3, 4)
                .payload(&b"ping"[..])
                .ts_nanos(2_700_000)
                .build(),
        ]
    }

    #[test]
    fn arena_layout_is_contiguous_and_indexed() {
        let pkts = sample_packets();
        let arena = PacketArena::from_packets(&pkts);
        assert_eq!(arena.len(), 3);
        assert_eq!(
            arena.total_bytes(),
            pkts.iter().map(|p| p.wire_len()).sum::<usize>()
        );
        let mut expect_off = 0u64;
        for (i, p) in pkts.iter().enumerate() {
            let e = arena.index()[i];
            assert_eq!(e.offset, expect_off);
            assert_eq!(e.len as usize, p.wire_len());
            assert_eq!(e.ts_nanos, p.ts_nanos);
            expect_off += e.len as u64;
            let view = arena.view(i);
            assert_eq!(view.bytes(), p.encode().as_slice());
        }
    }

    #[test]
    fn views_parse_lazily_and_decode_round_trips() {
        let pkts = sample_packets();
        let arena = PacketArena::from_packets(&pkts);
        let tcp = arena.view(0);
        assert_eq!(tcp.ipv4().unwrap().src(), 0x0a000001);
        assert_eq!(tcp.tcp().unwrap().dst_port(), 80);
        assert_eq!(tcp.tcp().unwrap().flags(), TcpFlags::SYN.0);
        assert!(tcp.udp().is_none());
        let udp = arena.view(1);
        assert_eq!(udp.udp().unwrap().dst_port(), 53);
        let icmp = arena.view(2);
        assert_eq!(icmp.icmp().unwrap().icmp_type(), 8);
        for (i, p) in pkts.iter().enumerate() {
            let back = arena.view(i).decode().unwrap();
            assert_eq!(back.ts_nanos, p.ts_nanos);
            assert_eq!(back.get(Field::PktLen), p.get(Field::PktLen));
            assert_eq!(back.get(Field::Ipv4Src), p.get(Field::Ipv4Src));
        }
    }

    #[test]
    fn windows_mirror_trace_semantics() {
        let pkts = sample_packets();
        let arena = PacketArena::from_packets(&pkts);
        // window_ms = 1 → packets at 5ns, 1.5ms, 2.7ms land in windows 0, 1, 2.
        let wins: Vec<(u64, usize)> = arena.windows(1).map(|(w, b)| (w, b.len())).collect();
        assert_eq!(wins, vec![(0, 1), (1, 1), (2, 1)]);
        // One big window holds everything.
        let wins: Vec<(u64, usize)> = arena.windows(10).map(|(w, b)| (w, b.len())).collect();
        assert_eq!(wins, vec![(0, 3)]);
        // Batches borrow contiguous ranges.
        let (_, b) = arena.windows(10).next().unwrap();
        assert_eq!(b.view(2).bytes(), arena.view(2).bytes());
        assert_eq!(
            b.iter().map(|v| v.ts_nanos()).collect::<Vec<_>>(),
            vec![5, 1_500_000, 2_700_000]
        );
    }

    #[test]
    fn range_batch_and_push_record() {
        let pkts = sample_packets();
        let mut arena = PacketArena::new();
        for p in &pkts {
            arena.push_record(p.ts_nanos, &p.encode());
        }
        let batch = arena.range_batch(1, 3);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.view(0).ts_nanos(), 1_500_000);
        assert_eq!(batch.view(1).bytes(), pkts[2].encode().as_slice());
        let empty = arena.range_batch(1, 1);
        assert!(empty.is_empty());
    }

    #[test]
    fn rebuild_reuses_allocations() {
        let pkts = sample_packets();
        let mut arena = PacketArena::from_packets(&pkts);
        let cap_bytes = arena.bytes.capacity();
        arena.rebuild_from_packets(&pkts[..2]);
        assert_eq!(arena.len(), 2);
        assert!(arena.bytes.capacity() >= cap_bytes.min(arena.total_bytes()));
        assert_eq!(arena.view(0).bytes(), pkts[0].encode().as_slice());
    }

    #[test]
    fn decoded_view_matches_packet_fields() {
        let p = PacketBuilder::tcp_raw(7, 1, 8, 2)
            .flags(TcpFlags::SYN_ACK)
            .payload(vec![9u8; 40])
            .ts_nanos(77)
            .build();
        let arena = PacketArena::from_packets(std::slice::from_ref(&p));
        let back = arena.view(0).decode().unwrap();
        for f in [
            Field::Ipv4Src,
            Field::Ipv4Dst,
            Field::Ipv4Proto,
            Field::Ipv4Len,
            Field::TcpFlags,
            Field::PktLen,
            Field::PayloadLen,
        ] {
            assert_eq!(back.get(f), p.get(f), "{f:?}");
        }
        assert_eq!(back, {
            let mut q = p;
            q.ipv4.total_len = back.ipv4.total_len;
            q
        });
    }
}
