//! Zero-copy wire-format views over raw byte slices.
//!
//! The PISA behavioral model's reconfigurable parser operates on these
//! views: it walks Ethernet → IPv4 → TCP/UDP/ICMP (→ DNS) extracting
//! exactly the fields a compiled query needs, just as a hardware parse
//! graph would. Each view validates only what it must to expose its
//! fields safely; deeper validation (checksums) is opt-in.

use crate::headers::{EtherType, IpProtocol};
use crate::DecodeError;

/// A view over an Ethernet II frame.
#[derive(Debug, Clone, Copy)]
pub struct EthernetView<'a> {
    data: &'a [u8],
}

impl<'a> EthernetView<'a> {
    /// Wrap `data`, checking the fixed header is present.
    #[inline]
    pub fn new(data: &'a [u8]) -> Result<Self, DecodeError> {
        if data.len() < 14 {
            return Err(DecodeError::Truncated {
                layer: "ethernet",
                needed: 14,
                available: data.len(),
            });
        }
        Ok(EthernetView { data })
    }

    /// Destination MAC.
    #[inline]
    pub fn dst(&self) -> [u8; 6] {
        self.data[0..6].try_into().unwrap()
    }

    /// Source MAC.
    #[inline]
    pub fn src(&self) -> [u8; 6] {
        self.data[6..12].try_into().unwrap()
    }

    /// EtherType of the payload.
    #[inline]
    pub fn ethertype(&self) -> EtherType {
        EtherType::from_wire(u16::from_be_bytes([self.data[12], self.data[13]]))
    }

    /// The bytes after the Ethernet header.
    #[inline]
    pub fn payload(&self) -> &'a [u8] {
        &self.data[14..]
    }
}

/// A view over an IPv4 packet.
#[derive(Debug, Clone, Copy)]
pub struct Ipv4View<'a> {
    data: &'a [u8],
}

impl<'a> Ipv4View<'a> {
    /// Wrap `data`, validating version, IHL, and the length fields.
    #[inline]
    pub fn new(data: &'a [u8]) -> Result<Self, DecodeError> {
        if data.len() < 20 {
            return Err(DecodeError::Truncated {
                layer: "ipv4",
                needed: 20,
                available: data.len(),
            });
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(DecodeError::Unsupported {
                layer: "ip version",
                value: version as u64,
            });
        }
        let view = Ipv4View { data };
        let ihl = view.header_len();
        if ihl < 20 || data.len() < ihl {
            return Err(DecodeError::BadLength { layer: "ipv4" });
        }
        let total = view.total_len() as usize;
        if total < ihl || total > data.len() {
            return Err(DecodeError::BadLength { layer: "ipv4" });
        }
        Ok(view)
    }

    /// Header length in bytes (IHL × 4).
    #[inline]
    pub fn header_len(&self) -> usize {
        ((self.data[0] & 0x0f) as usize) * 4
    }

    /// Total packet length from the header.
    #[inline]
    pub fn total_len(&self) -> u16 {
        u16::from_be_bytes([self.data[2], self.data[3]])
    }

    /// DSCP/ECN byte.
    #[inline]
    pub fn tos(&self) -> u8 {
        self.data[1]
    }

    /// Identification field.
    #[inline]
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes([self.data[4], self.data[5]])
    }

    /// Time to live.
    #[inline]
    pub fn ttl(&self) -> u8 {
        self.data[8]
    }

    /// Payload protocol.
    #[inline]
    pub fn protocol(&self) -> IpProtocol {
        IpProtocol::from_wire(self.data[9])
    }

    /// Source address as host-order u32.
    #[inline]
    pub fn src(&self) -> u32 {
        u32::from_be_bytes(self.data[12..16].try_into().unwrap())
    }

    /// Destination address as host-order u32.
    #[inline]
    pub fn dst(&self) -> u32 {
        u32::from_be_bytes(self.data[16..20].try_into().unwrap())
    }

    /// Verify the header checksum.
    #[inline]
    pub fn checksum_ok(&self) -> bool {
        crate::headers::internet_checksum(&self.data[..self.header_len()]) == 0
    }

    /// The transport payload (bounded by `total_len`).
    #[inline]
    pub fn payload(&self) -> &'a [u8] {
        &self.data[self.header_len()..self.total_len() as usize]
    }
}

/// A view over a TCP segment.
#[derive(Debug, Clone, Copy)]
pub struct TcpView<'a> {
    data: &'a [u8],
}

impl<'a> TcpView<'a> {
    /// Wrap `data`, validating the data offset.
    #[inline]
    pub fn new(data: &'a [u8]) -> Result<Self, DecodeError> {
        if data.len() < 20 {
            return Err(DecodeError::Truncated {
                layer: "tcp",
                needed: 20,
                available: data.len(),
            });
        }
        let view = TcpView { data };
        let off = view.header_len();
        if off < 20 || data.len() < off {
            return Err(DecodeError::BadLength { layer: "tcp" });
        }
        Ok(view)
    }

    /// Source port.
    #[inline]
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.data[0], self.data[1]])
    }

    /// Destination port.
    #[inline]
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.data[2], self.data[3]])
    }

    /// Sequence number.
    #[inline]
    pub fn seq(&self) -> u32 {
        u32::from_be_bytes(self.data[4..8].try_into().unwrap())
    }

    /// Acknowledgement number.
    #[inline]
    pub fn ack(&self) -> u32 {
        u32::from_be_bytes(self.data[8..12].try_into().unwrap())
    }

    /// Header length in bytes (data offset × 4).
    #[inline]
    pub fn header_len(&self) -> usize {
        ((self.data[12] >> 4) as usize) * 4
    }

    /// Raw flag byte.
    #[inline]
    pub fn flags(&self) -> u8 {
        self.data[13]
    }

    /// Receive window.
    #[inline]
    pub fn window(&self) -> u16 {
        u16::from_be_bytes([self.data[14], self.data[15]])
    }

    /// The segment payload.
    #[inline]
    pub fn payload(&self) -> &'a [u8] {
        &self.data[self.header_len()..]
    }
}

/// A view over a UDP datagram.
#[derive(Debug, Clone, Copy)]
pub struct UdpView<'a> {
    data: &'a [u8],
}

impl<'a> UdpView<'a> {
    /// Wrap `data`, validating the length field.
    #[inline]
    pub fn new(data: &'a [u8]) -> Result<Self, DecodeError> {
        if data.len() < 8 {
            return Err(DecodeError::Truncated {
                layer: "udp",
                needed: 8,
                available: data.len(),
            });
        }
        let view = UdpView { data };
        let len = view.len() as usize;
        if len < 8 || len > data.len() {
            return Err(DecodeError::BadLength { layer: "udp" });
        }
        Ok(view)
    }

    /// Source port.
    #[inline]
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.data[0], self.data[1]])
    }

    /// Destination port.
    #[inline]
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.data[2], self.data[3]])
    }

    /// Datagram length (header + payload).
    #[inline]
    pub fn len(&self) -> u16 {
        u16::from_be_bytes([self.data[4], self.data[5]])
    }

    /// Whether the datagram carries no payload.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 8
    }

    /// The datagram payload (bounded by the length field).
    #[inline]
    pub fn payload(&self) -> &'a [u8] {
        &self.data[8..self.len() as usize]
    }
}

/// A view over an echo-style ICMP message.
#[derive(Debug, Clone, Copy)]
pub struct IcmpView<'a> {
    data: &'a [u8],
}

impl<'a> IcmpView<'a> {
    /// Wrap `data`, checking the fixed header is present.
    #[inline]
    pub fn new(data: &'a [u8]) -> Result<Self, DecodeError> {
        if data.len() < 8 {
            return Err(DecodeError::Truncated {
                layer: "icmp",
                needed: 8,
                available: data.len(),
            });
        }
        Ok(IcmpView { data })
    }

    /// ICMP type.
    #[inline]
    pub fn icmp_type(&self) -> u8 {
        self.data[0]
    }

    /// ICMP code.
    #[inline]
    pub fn code(&self) -> u8 {
        self.data[1]
    }

    /// Echo identifier.
    #[inline]
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes([self.data[4], self.data[5]])
    }

    /// Echo sequence number.
    #[inline]
    pub fn seq(&self) -> u16 {
        u16::from_be_bytes([self.data[6], self.data[7]])
    }

    /// The message payload.
    #[inline]
    pub fn payload(&self) -> &'a [u8] {
        &self.data[8..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::*;

    fn sample_ipv4_tcp() -> Vec<u8> {
        let ip = Ipv4Header::new(0x0a000001, 0x0a000002, IpProtocol::Tcp);
        let mut tcp = TcpHeader::new(1234, 80);
        tcp.flags = TcpFlags::SYN;
        tcp.seq = 42;
        let payload = b"hello";
        let total = (Ipv4Header::SIZE + TcpHeader::SIZE + payload.len()) as u16;
        let mut buf = Vec::new();
        ip.emit(&mut buf, total);
        tcp.emit(&mut buf, ip.src, ip.dst, payload);
        buf.extend_from_slice(payload);
        buf
    }

    #[test]
    fn ipv4_view_fields() {
        let buf = sample_ipv4_tcp();
        let v = Ipv4View::new(&buf).unwrap();
        assert_eq!(v.src(), 0x0a000001);
        assert_eq!(v.dst(), 0x0a000002);
        assert_eq!(v.protocol(), IpProtocol::Tcp);
        assert_eq!(v.ttl(), 64);
        assert_eq!(v.header_len(), 20);
        assert_eq!(v.total_len() as usize, buf.len());
        assert!(v.checksum_ok());
    }

    #[test]
    fn tcp_view_fields() {
        let buf = sample_ipv4_tcp();
        let ip = Ipv4View::new(&buf).unwrap();
        let tcp = TcpView::new(ip.payload()).unwrap();
        assert_eq!(tcp.src_port(), 1234);
        assert_eq!(tcp.dst_port(), 80);
        assert_eq!(tcp.seq(), 42);
        assert_eq!(tcp.flags(), 0x02);
        assert_eq!(tcp.payload(), b"hello");
    }

    #[test]
    fn truncated_buffers_rejected() {
        let buf = sample_ipv4_tcp();
        assert!(matches!(
            Ipv4View::new(&buf[..10]),
            Err(DecodeError::Truncated { .. })
        ));
        assert!(matches!(
            TcpView::new(&buf[20..30]),
            Err(DecodeError::Truncated { .. })
        ));
        assert!(matches!(
            UdpView::new(&buf[20..24]),
            Err(DecodeError::Truncated { .. })
        ));
        assert!(matches!(
            EthernetView::new(&buf[..5]),
            Err(DecodeError::Truncated { .. })
        ));
        assert!(matches!(
            IcmpView::new(&buf[..4]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = sample_ipv4_tcp();
        buf[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4View::new(&buf),
            Err(DecodeError::Unsupported { .. })
        ));
    }

    #[test]
    fn bad_total_len_rejected() {
        let mut buf = sample_ipv4_tcp();
        // total_len larger than the buffer
        buf[2] = 0xff;
        buf[3] = 0xff;
        assert!(matches!(
            Ipv4View::new(&buf),
            Err(DecodeError::BadLength { .. })
        ));
        // total_len smaller than the header
        let mut buf2 = sample_ipv4_tcp();
        buf2[2] = 0;
        buf2[3] = 8;
        assert!(matches!(
            Ipv4View::new(&buf2),
            Err(DecodeError::BadLength { .. })
        ));
    }

    #[test]
    fn udp_view_roundtrip() {
        let udp = UdpHeader {
            src_port: 5353,
            dst_port: 53,
        };
        let payload = [9u8; 11];
        let mut buf = Vec::new();
        udp.emit(&mut buf, 1, 2, &payload);
        buf.extend_from_slice(&payload);
        let v = UdpView::new(&buf).unwrap();
        assert_eq!(v.src_port(), 5353);
        assert_eq!(v.dst_port(), 53);
        assert_eq!(v.len() as usize, buf.len());
        assert!(!v.is_empty());
        assert_eq!(v.payload(), &payload);
    }

    #[test]
    fn udp_length_field_bounds_payload() {
        let udp = UdpHeader {
            src_port: 1,
            dst_port: 2,
        };
        let payload = [7u8; 4];
        let mut buf = Vec::new();
        udp.emit(&mut buf, 1, 2, &payload);
        buf.extend_from_slice(&payload);
        // Trailing garbage beyond the UDP length must not leak into payload().
        buf.extend_from_slice(&[0xde, 0xad]);
        let v = UdpView::new(&buf).unwrap();
        assert_eq!(v.payload(), &payload);
    }

    #[test]
    fn ethernet_view_fields() {
        let eth = EthernetHeader::ipv4_default();
        let mut buf = Vec::new();
        eth.emit(&mut buf);
        buf.extend_from_slice(&[1, 2, 3]);
        let v = EthernetView::new(&buf).unwrap();
        assert_eq!(v.dst(), eth.dst);
        assert_eq!(v.src(), eth.src);
        assert_eq!(v.ethertype(), EtherType::Ipv4);
        assert_eq!(v.payload(), &[1, 2, 3]);
    }

    #[test]
    fn icmp_view_fields() {
        let icmp = IcmpHeader {
            icmp_type: 8,
            code: 0,
            ident: 7,
            seq: 9,
        };
        let mut buf = Vec::new();
        icmp.emit(&mut buf, b"ping");
        buf.extend_from_slice(b"ping");
        let v = IcmpView::new(&buf).unwrap();
        assert_eq!(v.icmp_type(), 8);
        assert_eq!(v.ident(), 7);
        assert_eq!(v.seq(), 9);
        assert_eq!(v.payload(), b"ping");
    }
}
