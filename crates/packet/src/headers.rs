//! Owned, typed protocol headers and their wire serialization.
//!
//! These are the structures traffic generators build. Each header knows
//! how to emit itself onto a byte buffer ([`bytes::BufMut`]) and how to
//! compute the checksums the wire views will later verify.

use bytes::BufMut;

/// EtherType values this stack understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806) — recognized but not parsed further.
    Arp,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// The 16-bit wire value.
    pub fn to_wire(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// Decode from the 16-bit wire value.
    pub fn from_wire(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II header (no 802.1Q tags; the CAIDA traces the paper
/// evaluates on carry no layer-2 headers at all, so this layer is
/// optional throughout the stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination MAC address.
    pub dst: [u8; 6],
    /// Source MAC address.
    pub src: [u8; 6],
    /// EtherType of the payload.
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Wire size of an Ethernet II header.
    pub const SIZE: usize = 14;

    /// A conventional header for generated IPv4 traffic.
    pub fn ipv4_default() -> Self {
        EthernetHeader {
            dst: [0x02, 0, 0, 0, 0, 0x01],
            src: [0x02, 0, 0, 0, 0, 0x02],
            ethertype: EtherType::Ipv4,
        }
    }

    /// Serialize onto `buf`.
    pub fn emit<B: BufMut>(&self, buf: &mut B) {
        buf.put_slice(&self.dst);
        buf.put_slice(&self.src);
        buf.put_u16(self.ethertype.to_wire());
    }
}

/// IP protocol numbers this stack understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl IpProtocol {
    /// The 8-bit wire value.
    pub fn to_wire(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }

    /// Decode from the 8-bit wire value.
    pub fn from_wire(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

/// An IPv4 header without options (IHL = 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address as a host-order u32.
    pub src: u32,
    /// Destination address as a host-order u32.
    pub dst: u32,
    /// Payload protocol.
    pub protocol: IpProtocol,
    /// Time to live.
    pub ttl: u8,
    /// DSCP/ECN byte.
    pub tos: u8,
    /// IP identification field.
    pub ident: u16,
    /// Total length (header + payload) in bytes. Filled by the packet
    /// serializer; generators can leave it zero.
    pub total_len: u16,
}

impl Ipv4Header {
    /// Wire size of an option-less IPv4 header.
    pub const SIZE: usize = 20;

    /// A header with conventional defaults for generated traffic.
    pub fn new(src: u32, dst: u32, protocol: IpProtocol) -> Self {
        Ipv4Header {
            src,
            dst,
            protocol,
            ttl: 64,
            tos: 0,
            ident: 0,
            total_len: 0,
        }
    }

    /// Serialize onto `buf` with the given total length, computing the
    /// header checksum.
    pub fn emit<B: BufMut>(&self, buf: &mut B, total_len: u16) {
        let mut hdr = [0u8; Self::SIZE];
        hdr[0] = 0x45; // version 4, IHL 5
        hdr[1] = self.tos;
        hdr[2..4].copy_from_slice(&total_len.to_be_bytes());
        hdr[4..6].copy_from_slice(&self.ident.to_be_bytes());
        // flags: don't fragment, offset 0
        hdr[6] = 0x40;
        hdr[8] = self.ttl;
        hdr[9] = self.protocol.to_wire();
        hdr[12..16].copy_from_slice(&self.src.to_be_bytes());
        hdr[16..20].copy_from_slice(&self.dst.to_be_bytes());
        let csum = internet_checksum(&hdr);
        hdr[10..12].copy_from_slice(&csum.to_be_bytes());
        buf.put_slice(&hdr);
    }
}

/// TCP flag bits, matching the wire layout of byte 13 of the TCP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag. Query 1 filters on `tcp.flags == 2`.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// SYN|ACK, the second step of the handshake.
    pub const SYN_ACK: TcpFlags = TcpFlags(0x12);
    /// PSH|ACK, a typical data segment.
    pub const PSH_ACK: TcpFlags = TcpFlags(0x18);

    /// Whether all bits of `other` are set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Bitwise union.
    pub fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }
}

/// A TCP header without options (data offset = 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl TcpHeader {
    /// Wire size of an option-less TCP header.
    pub const SIZE: usize = 20;

    /// A header with conventional defaults.
    pub fn new(src_port: u16, dst_port: u16) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq: 0,
            ack: 0,
            flags: TcpFlags::default(),
            window: 65535,
        }
    }

    /// Serialize onto `buf`, computing the checksum over the
    /// pseudo-header and `payload`.
    pub fn emit<B: BufMut>(&self, buf: &mut B, src_ip: u32, dst_ip: u32, payload: &[u8]) {
        let mut hdr = [0u8; Self::SIZE];
        hdr[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        hdr[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        hdr[4..8].copy_from_slice(&self.seq.to_be_bytes());
        hdr[8..12].copy_from_slice(&self.ack.to_be_bytes());
        hdr[12] = 0x50; // data offset 5
        hdr[13] = self.flags.0;
        hdr[14..16].copy_from_slice(&self.window.to_be_bytes());
        let csum = transport_checksum(src_ip, dst_ip, IpProtocol::Tcp.to_wire(), &hdr, payload);
        hdr[16..18].copy_from_slice(&csum.to_be_bytes());
        buf.put_slice(&hdr);
    }
}

/// A UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl UdpHeader {
    /// Wire size of a UDP header.
    pub const SIZE: usize = 8;

    /// Serialize onto `buf`, computing length and checksum.
    pub fn emit<B: BufMut>(&self, buf: &mut B, src_ip: u32, dst_ip: u32, payload: &[u8]) {
        let len = (Self::SIZE + payload.len()) as u16;
        let mut hdr = [0u8; Self::SIZE];
        hdr[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        hdr[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        hdr[4..6].copy_from_slice(&len.to_be_bytes());
        let csum = transport_checksum(src_ip, dst_ip, IpProtocol::Udp.to_wire(), &hdr, payload);
        // Per RFC 768 a computed checksum of zero is transmitted as 0xffff.
        let csum = if csum == 0 { 0xffff } else { csum };
        hdr[6..8].copy_from_slice(&csum.to_be_bytes());
        buf.put_slice(&hdr);
    }
}

/// An ICMP header (echo-style; 8 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcmpHeader {
    /// ICMP type (8 = echo request, 0 = echo reply).
    pub icmp_type: u8,
    /// ICMP code.
    pub code: u8,
    /// Identifier (echo).
    pub ident: u16,
    /// Sequence number (echo).
    pub seq: u16,
}

impl IcmpHeader {
    /// Wire size of an echo-style ICMP header.
    pub const SIZE: usize = 8;

    /// Serialize onto `buf`, computing the checksum over `payload`.
    pub fn emit<B: BufMut>(&self, buf: &mut B, payload: &[u8]) {
        let mut hdr = [0u8; Self::SIZE];
        hdr[0] = self.icmp_type;
        hdr[1] = self.code;
        hdr[4..6].copy_from_slice(&self.ident.to_be_bytes());
        hdr[6..8].copy_from_slice(&self.seq.to_be_bytes());
        let csum = checksum_chunks(&[&hdr, payload]);
        hdr[2..4].copy_from_slice(&csum.to_be_bytes());
        buf.put_slice(&hdr);
    }
}

/// RFC 1071 Internet checksum over one buffer.
pub fn internet_checksum(data: &[u8]) -> u16 {
    checksum_chunks(&[data])
}

/// RFC 1071 Internet checksum over a sequence of buffers, treating them
/// as one contiguous byte stream (odd-length chunks are handled by
/// carrying the dangling byte into the next chunk).
pub fn checksum_chunks(chunks: &[&[u8]]) -> u16 {
    let mut sum: u32 = 0;
    let mut leftover: Option<u8> = None;
    for chunk in chunks {
        let mut bytes = chunk.iter().copied();
        if let Some(hi) = leftover.take() {
            match bytes.next() {
                Some(lo) => sum += u32::from(u16::from_be_bytes([hi, lo])),
                None => {
                    leftover = Some(hi);
                    continue;
                }
            }
        }
        loop {
            match (bytes.next(), bytes.next()) {
                (Some(hi), Some(lo)) => sum += u32::from(u16::from_be_bytes([hi, lo])),
                (Some(hi), None) => {
                    leftover = Some(hi);
                    break;
                }
                _ => break,
            }
        }
    }
    if let Some(hi) = leftover {
        sum += u32::from(u16::from_be_bytes([hi, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Checksum over an IPv4 pseudo-header plus transport header and payload,
/// used by both TCP and UDP.
pub fn transport_checksum(
    src_ip: u32,
    dst_ip: u32,
    protocol: u8,
    header: &[u8],
    payload: &[u8],
) -> u16 {
    let len = (header.len() + payload.len()) as u16;
    let mut pseudo = [0u8; 12];
    pseudo[0..4].copy_from_slice(&src_ip.to_be_bytes());
    pseudo[4..8].copy_from_slice(&dst_ip.to_be_bytes());
    pseudo[9] = protocol;
    pseudo[10..12].copy_from_slice(&len.to_be_bytes());
    checksum_chunks(&[&pseudo, header, payload])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethertype_roundtrip() {
        for v in [0x0800u16, 0x0806, 0x86dd, 0x1234] {
            assert_eq!(EtherType::from_wire(v).to_wire(), v);
        }
    }

    #[test]
    fn ip_protocol_roundtrip() {
        for v in [1u8, 6, 17, 89, 255] {
            assert_eq!(IpProtocol::from_wire(v).to_wire(), v);
        }
    }

    #[test]
    fn tcp_flags_operations() {
        let f = TcpFlags::SYN.union(TcpFlags::ACK);
        assert_eq!(f, TcpFlags::SYN_ACK);
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::FIN));
        assert!(!TcpFlags::SYN.contains(TcpFlags::SYN_ACK));
    }

    #[test]
    fn checksum_known_vector() {
        // Example from RFC 1071 discussion: bytes 00 01 f2 03 f4 f5 f6 f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> 0xddf2, !x = 0x220d
        assert_eq!(internet_checksum(&data), 0x220d);
    }

    #[test]
    fn checksum_odd_length() {
        // Odd number of bytes: last byte is padded with zero.
        let a = internet_checksum(&[0xab]);
        let b = internet_checksum(&[0xab, 0x00]);
        assert_eq!(a, b);
    }

    #[test]
    fn checksum_chunks_equivalent_to_contiguous() {
        let whole = [1u8, 2, 3, 4, 5, 6, 7];
        let split = checksum_chunks(&[&whole[..3], &whole[3..]]);
        assert_eq!(split, internet_checksum(&whole));
        // Splits at odd offsets must also agree.
        let split_odd = checksum_chunks(&[&whole[..1], &whole[1..4], &whole[4..]]);
        assert_eq!(split_odd, internet_checksum(&whole));
        // Empty chunks are ignored.
        let with_empty = checksum_chunks(&[&[], &whole, &[]]);
        assert_eq!(with_empty, internet_checksum(&whole));
    }

    #[test]
    fn ipv4_header_emit_is_self_consistent() {
        let hdr = Ipv4Header::new(0x0a000001, 0xc0a80105, IpProtocol::Tcp);
        let mut buf = Vec::new();
        hdr.emit(&mut buf, 40);
        assert_eq!(buf.len(), Ipv4Header::SIZE);
        // Checksum over an emitted header must verify to zero.
        assert_eq!(internet_checksum(&buf), 0);
        assert_eq!(buf[0], 0x45);
        assert_eq!(u16::from_be_bytes([buf[2], buf[3]]), 40);
    }
}
