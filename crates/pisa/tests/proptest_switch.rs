//! Property tests for the behavioral model:
//!
//! * the raw-bytes path (wire parsing, as hardware) and the decoded
//!   fast path must produce identical reports and dumps;
//! * garbage bytes never panic the pipeline;
//! * register invariants hold under arbitrary key streams.

use proptest::prelude::*;
use sonata_packet::{Packet, PacketBuilder, TcpFlags};
use sonata_pisa::compile::{compile_pipeline, max_switch_units, table_specs, RegisterSizing};
use sonata_pisa::registers::{HashRegisters, RegOutcome};
use sonata_pisa::{Switch, SwitchConstraints, TaskId};
use sonata_query::catalog::{self, Thresholds};
use sonata_query::{Agg, QueryId};

fn load(q: &sonata_query::Query, slots: usize) -> Switch {
    let specs = table_specs(&q.pipeline);
    let k = max_switch_units(&specs);
    let stateful = specs.iter().take(k).filter(|s| s.stateful).count();
    let mut stages = Vec::new();
    let mut cur = 0;
    for s in specs.iter().take(k) {
        stages.push(cur);
        cur += s.stage_cost;
    }
    let cp = compile_pipeline(
        &q.pipeline,
        TaskId {
            query: q.id,
            level: 32,
            branch: 0,
        },
        &stages,
        &vec![
            RegisterSizing {
                slots,
                arrays: 2,
                ..Default::default()
            };
            stateful
        ],
        0,
        0,
    )
    .unwrap();
    Switch::load(cp.fragment, &SwitchConstraints::default()).unwrap()
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        0u32..64,
        0u32..32,
        prop_oneof![
            Just(TcpFlags::SYN),
            Just(TcpFlags::ACK),
            Just(TcpFlags::SYN_ACK),
            Just(TcpFlags::PSH_ACK)
        ],
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(s, d, flags, payload)| {
            PacketBuilder::tcp_raw(0x0a000000 + s, 1234, 0x14000000 + d, 80)
                .flags(flags)
                .payload(payload)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bytes_and_decoded_paths_agree(
        pkts in proptest::collection::vec(arb_packet(), 0..150),
        th in 0u64..5,
        slots in 1usize..64,
    ) {
        let q = catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: th,
            ..Thresholds::default()
        });
        let mut a = load(&q, slots);
        let mut b = load(&q, slots);
        for p in &pkts {
            let ra = a.process(p);
            let rb = b.process_bytes(&p.encode(), p.ts_nanos);
            prop_assert_eq!(ra.len(), rb.len());
            for (x, y) in ra.iter().zip(&rb) {
                prop_assert_eq!(x.kind, y.kind);
                prop_assert_eq!(&x.columns, &y.columns);
                prop_assert_eq!(x.entry_op, y.entry_op);
            }
        }
        let da = a.end_window();
        let db = b.end_window();
        prop_assert_eq!(da.tuples.len(), db.tuples.len());
        for (x, y) in da.tuples.iter().zip(&db.tuples) {
            prop_assert_eq!(&x.columns, &y.columns);
        }
        prop_assert_eq!(da.shunted_packets, db.shunted_packets);
    }

    #[test]
    fn garbage_bytes_never_panic(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..128),
            0..40,
        ),
    ) {
        let q = catalog::superspreader(&Thresholds::default());
        let mut sw = load(&q, 64);
        for c in &chunks {
            let _ = sw.process_bytes(c, 0);
        }
        let _ = sw.end_window();
        prop_assert_eq!(sw.counters().packets_in as usize, chunks.len());
    }

    #[test]
    fn register_dump_is_exact_for_resident_keys(
        keys in proptest::collection::vec(0u64..200, 0..400),
        slots in 1usize..128,
        d in 1usize..4,
    ) {
        // Model check: for every key, register count + shunt count
        // equals its true frequency.
        let mut regs = HashRegisters::new(slots, d, 32);
        let mut truth: std::collections::HashMap<u64, u64> = Default::default();
        let mut shunted: std::collections::HashMap<u64, u64> = Default::default();
        for &k in &keys {
            *truth.entry(k).or_default() += 1;
            if regs.update(&[k], Agg::Sum, 1) == RegOutcome::Shunted {
                *shunted.entry(k).or_default() += 1;
            }
        }
        let dump: std::collections::HashMap<u64, u64> =
            regs.dump().into_iter().map(|(k, v)| (k[0], v)).collect();
        for (k, &count) in &truth {
            let resident = dump.get(k).copied().unwrap_or(0);
            let shunt = shunted.get(k).copied().unwrap_or(0);
            prop_assert_eq!(resident + shunt, count, "key {}", k);
            // Disjointness: a key is either resident or fully shunted.
            prop_assert!(resident == 0 || shunt == 0, "key {} split", k);
        }
        prop_assert_eq!(
            regs.shunted_packets(),
            shunted.values().sum::<u64>()
        );
    }

    #[test]
    fn resource_check_agrees_with_usage(
        stages in 1usize..8,
        a in 1usize..4,
        b_kb in 1u64..64,
    ) {
        // A program accepted by `check` must never exceed the declared
        // limits in its computed usage.
        let constraints = SwitchConstraints {
            stages,
            stateful_per_stage: a,
            register_bits_per_stage: b_kb * 1000,
            max_bits_per_register: b_kb * 1000,
            metadata_bits: 8192,
            stateless_per_stage: 8,
        };
        let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
        let specs = table_specs(&q.pipeline);
        let k = max_switch_units(&specs);
        let mut stage_ids = Vec::new();
        let mut cur = 0;
        for s in specs.iter().take(k) {
            stage_ids.push(cur);
            cur += s.stage_cost;
        }
        let slots = (b_kb * 1000 / 64).max(1) as usize;
        let cp = compile_pipeline(
            &q.pipeline,
            TaskId { query: QueryId(1), level: 32, branch: 0 },
            &stage_ids,
            &[RegisterSizing { slots, arrays: 1, ..Default::default() }],
            0,
            0,
        )
        .unwrap();
        match Switch::load(cp.fragment, &constraints) {
            Ok(sw) => {
                let usage = sw.usage();
                prop_assert!(usage.stages_used <= stages);
                for &n in &usage.stateful_by_stage {
                    prop_assert!(n <= a);
                }
                for &bits in &usage.register_bits_by_stage {
                    prop_assert!(bits <= b_kb * 1000);
                }
            }
            Err(_) => {
                // Rejection is fine — the point is no false accepts.
            }
        }
    }
}
