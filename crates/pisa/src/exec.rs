//! Compile-once / execute-many switch fast path.
//!
//! [`crate::switch::Switch::load`] lowers the validated
//! [`PisaProgram`] into a flat [`ExecPlan`]:
//!
//! * PHV field lookups pre-resolved to slot indices (no `Field::ALL`
//!   scans per packet);
//! * registers remapped from `HashMap<RegId, _>` to a dense array
//!   index shared with the reference path;
//! * match-action dispatch via a precomputed step table in execution
//!   order — task liveness indices, shunt specs, and report layouts
//!   are all resolved at load time instead of searched per packet;
//! * every [`PhvExpr`] tree flattened into a postfix op range of one
//!   shared pool, evaluated with an explicit value stack — no
//!   recursion and no allocation on the per-packet path;
//! * report column names interned as [`ColName`]s so emitting a tuple
//!   clones `Arc`s instead of formatting strings.
//!
//! The tree-walking interpreter in `Switch` remains the reference
//! oracle: `force_reference_path` routes execution through it, and
//! the differential suite asserts bit-identical outputs.

use crate::ir::{MatchRel, PhvExpr, PisaProgram, RegId, ReportMode, TableKind, TaskId};
use crate::phv::{field_slot, Phv};
use crate::registers::StateLayout;
use sonata_packet::Field;
use sonata_query::{Agg, ColName};
use std::collections::HashMap;

/// One postfix micro-op of a flattened [`PhvExpr`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum FlatOp {
    /// Push a constant.
    Const(u64),
    /// Push a header field by pre-resolved PHV slot.
    Field(usize),
    /// Push a metadata container by raw slot.
    Meta(usize),
    /// Apply a precomputed 32-bit prefix mask to the top of stack.
    Mask(u32),
    /// Shift the top of stack right by a pre-clamped amount.
    Shr(u32),
    /// Shift the top of stack left by a pre-clamped amount.
    Shl(u32),
    /// Pop two, push the wrapping sum.
    Add,
    /// Pop two, push the saturating difference.
    Sub,
}

/// A range into the shared [`ExecPlan`] op pool.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExprRef {
    start: u32,
    len: u32,
}

/// One lowered filter clause: `a rel b`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlatClause {
    pub a: ExprRef,
    pub rel: MatchRel,
    pub b: ExprRef,
}

/// Lowered shunt layout for an `Update` step.
#[derive(Debug, Clone)]
pub(crate) struct FlatShunt {
    pub entry_op: usize,
    pub include_packet: bool,
    pub columns: Vec<(ColName, ExprRef)>,
}

/// The action of one step in the precomputed dispatch table.
#[derive(Debug, Clone)]
pub(crate) enum StepKind {
    /// Static filter: kill the task unless some rule matches.
    Filter { rules: Vec<Vec<FlatClause>> },
    /// Dynamic filter: entries are read live from the program table so
    /// control-plane updates between packets are observed.
    DynFilter { table_idx: usize, key: ExprRef },
    /// Metadata assignments (evaluate all, then write — parallel ALU).
    Map { assigns: Vec<(usize, ExprRef)> },
    /// Stateful read-modify-write against a dense register index.
    Update {
        reg_idx: usize,
        /// The register's resolved layout. Sketch layouts admit every
        /// key (no shunting), so their shunt spec is dead weight the
        /// fast path never evaluates.
        layout: StateLayout,
        agg: Agg,
        operand: ExprRef,
        distinct: bool,
        /// Register key parts (from the preceding Hash table),
        /// resolved at lowering instead of looked up per packet.
        keys: Vec<ExprRef>,
        shunt: FlatShunt,
    },
}

/// One table lowered into the dispatch table, in execution order.
#[derive(Debug, Clone)]
pub(crate) struct Step {
    pub task: TaskId,
    pub task_idx: usize,
    pub kind: StepKind,
}

/// A lowered per-packet report spec (deparser mirror).
#[derive(Debug, Clone)]
pub(crate) struct FlatReport {
    pub task: TaskId,
    pub task_idx: usize,
    pub include_packet: bool,
    pub columns: Vec<(ColName, ExprRef)>,
}

/// A lowered window-dump spec.
#[derive(Debug, Clone)]
pub(crate) struct FlatDump {
    pub task: TaskId,
    pub task_idx: Option<usize>,
    pub reg_idx: usize,
    pub threshold: Option<u64>,
    pub key_names: Vec<ColName>,
    pub value_name: ColName,
    pub value_input_name: ColName,
    pub reduce_op: usize,
    /// Dense indices of every shunt-capable register of the task (the
    /// raw-dump decision sums their shunt counts).
    pub shunt_reg_idxs: Vec<usize>,
    /// The task's earliest upstream `distinct` register, if any:
    /// `(reg_idx, entry_op, key_names)`. In deferred-threshold mode
    /// the admitted-key set of this register is dumped raw (entering
    /// at the distinct op) *instead of* the reduce partials, so a
    /// collector merging several switches can dedup keys across
    /// switches before recounting.
    pub distinct: Option<(usize, usize, Vec<ColName>)>,
}

/// The compiled program: everything the per-packet loop needs,
/// pre-resolved.
#[derive(Debug, Clone, Default)]
pub(crate) struct ExecPlan {
    /// Shared postfix op pool all [`ExprRef`]s point into.
    flat: Vec<FlatOp>,
    /// Dispatch table in `(stage, insertion)` order.
    pub steps: Vec<Step>,
    /// Per-packet report specs in program order.
    pub reports: Vec<FlatReport>,
    /// Window-dump specs in program order.
    pub dumps: Vec<FlatDump>,
    /// Whether any report mirrors the original packet.
    pub needs_packet: bool,
    /// Resolved [`StateLayout`] per dense register index. Sketch
    /// layouts never produce `RegOutcome::Shunted`, which the fast
    /// path's update step relies on (debug-asserted).
    pub reg_layouts: Vec<StateLayout>,
    /// Hoisted leading filters for columnar batch gating.
    pub gates: GatePlan,
}

/// Reusable per-switch scratch: with this, the steady-state packet
/// loop performs no allocation (report `Vec`s only grow when a packet
/// actually emits).
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    /// PHV reused across packets (reset in place).
    pub phv: Phv,
    /// Expression evaluation stack.
    pub stack: Vec<u64>,
    /// Map-step staging values (evaluate all before writing).
    pub vals: Vec<u64>,
    /// Register key staging.
    pub key: Vec<u64>,
}

impl ExecPlan {
    /// Lower `program` given its execution order and the dense
    /// register index (`RegId` → index into the switch's register
    /// vector).
    pub(crate) fn lower(
        program: &PisaProgram,
        exec_order: &[usize],
        reg_index: &HashMap<RegId, usize>,
        reg_layouts: &[StateLayout],
    ) -> ExecPlan {
        let mut plan = ExecPlan {
            reg_layouts: reg_layouts.to_vec(),
            ..ExecPlan::default()
        };
        let task_index =
            |t: TaskId| -> Option<usize> { program.tasks.iter().position(|x| *x == t) };
        // Hash-table key expressions, resolved once (the reference
        // path re-looks these up per packet).
        let mut reg_keys: HashMap<RegId, &Vec<PhvExpr>> = HashMap::new();
        for t in &program.tables {
            if let TableKind::Hash { reg, key } = &t.kind {
                reg_keys.insert(*reg, key);
            }
        }
        for &ti in exec_order {
            let table = &program.tables[ti];
            let Some(task_idx) = task_index(table.task) else {
                continue;
            };
            let kind = match &table.kind {
                TableKind::Filter { rules } => StepKind::Filter {
                    rules: rules
                        .iter()
                        .map(|r| {
                            r.clauses
                                .iter()
                                .map(|(a, rel, b)| FlatClause {
                                    a: plan.flatten(a),
                                    rel: *rel,
                                    b: plan.flatten(b),
                                })
                                .collect()
                        })
                        .collect(),
                },
                TableKind::DynFilter { key, .. } => StepKind::DynFilter {
                    table_idx: ti,
                    key: plan.flatten(key),
                },
                TableKind::Map { assigns } => StepKind::Map {
                    assigns: assigns
                        .iter()
                        .map(|(slot, e)| (slot.0, plan.flatten(e)))
                        .collect(),
                },
                TableKind::Hash { .. } => continue,
                TableKind::Update {
                    reg,
                    agg,
                    operand,
                    distinct,
                    ..
                } => {
                    let spec = program
                        .reports
                        .iter()
                        .find(|r| r.task == table.task)
                        .expect("report spec per task");
                    let shunt = spec
                        .shunts
                        .iter()
                        .find(|sh| sh.reg == *reg)
                        .expect("shunt spec per register");
                    let keys = reg_keys.get(reg).expect("hash table precedes update");
                    let key_refs: Vec<ExprRef> = keys.iter().map(|e| plan.flatten(e)).collect();
                    StepKind::Update {
                        reg_idx: reg_index[reg],
                        layout: reg_layouts.get(reg_index[reg]).copied().unwrap_or_default(),
                        agg: *agg,
                        operand: plan.flatten(operand),
                        distinct: *distinct,
                        keys: key_refs,
                        shunt: FlatShunt {
                            entry_op: shunt.entry_op,
                            include_packet: spec.include_packet,
                            columns: shunt
                                .columns
                                .iter()
                                .map(|(n, e)| (n.clone(), plan.flatten(e)))
                                .collect(),
                        },
                    }
                }
            };
            plan.steps.push(Step {
                task: table.task,
                task_idx,
                kind,
            });
        }
        for spec in &program.reports {
            match &spec.mode {
                ReportMode::PerPacket => {
                    let Some(task_idx) = task_index(spec.task) else {
                        continue;
                    };
                    let columns = spec
                        .columns
                        .iter()
                        .map(|(n, e)| (n.clone(), plan.flatten(e)))
                        .collect();
                    plan.reports.push(FlatReport {
                        task: spec.task,
                        task_idx,
                        include_packet: spec.include_packet,
                        columns,
                    });
                }
                ReportMode::WindowDump {
                    reg,
                    threshold,
                    key_names,
                    value_name,
                    value_input_name,
                    reduce_op,
                } => {
                    plan.dumps.push(FlatDump {
                        task: spec.task,
                        task_idx: task_index(spec.task),
                        reg_idx: reg_index[reg],
                        threshold: *threshold,
                        key_names: key_names.clone(),
                        value_name: value_name.clone(),
                        value_input_name: value_input_name.clone(),
                        reduce_op: *reduce_op,
                        shunt_reg_idxs: spec
                            .shunts
                            .iter()
                            .filter_map(|sh| reg_index.get(&sh.reg).copied())
                            .collect(),
                        distinct: spec
                            .shunts
                            .iter()
                            .filter(|sh| sh.reg != *reg)
                            .min_by_key(|sh| sh.entry_op)
                            .and_then(|sh| {
                                reg_index.get(&sh.reg).map(|&idx| {
                                    (
                                        idx,
                                        sh.entry_op,
                                        sh.columns.iter().map(|(n, _)| n.clone()).collect(),
                                    )
                                })
                            }),
                    });
                }
            }
        }
        plan.needs_packet = program.reports.iter().any(|r| r.include_packet);
        plan.gates = GatePlan::extract(&plan, program.tasks.len());
        plan
    }

    /// Whether an expression reads only header fields and constants —
    /// i.e. it can be hoisted into the pre-parse gate, which runs
    /// before any `Map` step has populated metadata slots.
    fn expr_hoistable(&self, e: ExprRef) -> bool {
        self.flat[e.start as usize..(e.start + e.len) as usize]
            .iter()
            .all(|op| !matches!(op, FlatOp::Meta(_)))
    }

    /// Flatten one expression tree into the shared postfix pool.
    fn flatten(&mut self, e: &PhvExpr) -> ExprRef {
        let start = self.flat.len() as u32;
        self.push_flat(e);
        ExprRef {
            start,
            len: self.flat.len() as u32 - start,
        }
    }

    fn push_flat(&mut self, e: &PhvExpr) {
        match e {
            PhvExpr::Const(v) => self.flat.push(FlatOp::Const(*v)),
            PhvExpr::Field(f) => self.flat.push(FlatOp::Field(field_slot(*f))),
            PhvExpr::Meta(m) => self.flat.push(FlatOp::Meta(m.0)),
            PhvExpr::Mask(inner, level) => {
                self.push_flat(inner);
                let mask = if *level == 0 {
                    0
                } else if *level >= 32 {
                    u32::MAX
                } else {
                    u32::MAX << (32 - *level as u32)
                };
                self.flat.push(FlatOp::Mask(mask));
            }
            PhvExpr::Shr(inner, k) => {
                self.push_flat(inner);
                self.flat.push(FlatOp::Shr((*k).min(63)));
            }
            PhvExpr::Shl(inner, k) => {
                self.push_flat(inner);
                self.flat.push(FlatOp::Shl((*k).min(63)));
            }
            PhvExpr::Add(a, b) => {
                self.push_flat(a);
                self.push_flat(b);
                self.flat.push(FlatOp::Add);
            }
            PhvExpr::Sub(a, b) => {
                self.push_flat(a);
                self.push_flat(b);
                self.flat.push(FlatOp::Sub);
            }
        }
    }

    /// Evaluate a flattened expression. Semantics are bit-for-bit
    /// those of [`PhvExpr::eval`]: wrapping add, saturating sub,
    /// 32-bit prefix masks, shifts clamped to 63.
    #[inline]
    pub(crate) fn eval(&self, e: ExprRef, phv: &Phv, stack: &mut Vec<u64>) -> u64 {
        let ops = &self.flat[e.start as usize..(e.start + e.len) as usize];
        // Leaf expressions (the common case) skip the stack entirely.
        match ops {
            [FlatOp::Const(v)] => return *v,
            [FlatOp::Field(s)] => return phv.field_by_slot(*s),
            [FlatOp::Meta(s)] => return phv.meta_by_slot(*s),
            _ => {}
        }
        stack.clear();
        for op in ops {
            match *op {
                FlatOp::Const(v) => stack.push(v),
                FlatOp::Field(s) => stack.push(phv.field_by_slot(s)),
                FlatOp::Meta(s) => stack.push(phv.meta_by_slot(s)),
                FlatOp::Mask(m) => {
                    let v = stack.last_mut().expect("postfix arity");
                    *v = ((*v as u32) & m) as u64;
                }
                FlatOp::Shr(k) => {
                    let v = stack.last_mut().expect("postfix arity");
                    *v >>= k;
                }
                FlatOp::Shl(k) => {
                    let v = stack.last_mut().expect("postfix arity");
                    *v <<= k;
                }
                FlatOp::Add => {
                    let b = stack.pop().expect("postfix arity");
                    let a = stack.last_mut().expect("postfix arity");
                    *a = a.wrapping_add(b);
                }
                FlatOp::Sub => {
                    let b = stack.pop().expect("postfix arity");
                    let a = stack.last_mut().expect("postfix arity");
                    *a = a.saturating_sub(b);
                }
            }
        }
        stack.pop().expect("postfix leaves one value")
    }

    /// Whether any rule of a lowered filter matches.
    #[inline]
    pub(crate) fn rules_match(
        &self,
        rules: &[Vec<FlatClause>],
        phv: &Phv,
        stack: &mut Vec<u64>,
    ) -> bool {
        rules.iter().any(|clauses| {
            clauses.iter().all(|c| {
                c.rel
                    .eval(self.eval(c.a, phv, stack), self.eval(c.b, phv, stack))
            })
        })
    }
}

/// One hoisted gate predicate of a task.
#[derive(Debug, Clone)]
pub(crate) enum GateFilter {
    /// A static `Filter` step: pass iff some rule matches.
    Static { rules: Vec<Vec<FlatClause>> },
    /// A `DynFilter` step; entries are read live from the program
    /// table at gate time. Sound to hoist because dyn-filter tables
    /// are only mutated between windows (`set_dyn_filter` needs
    /// `&mut Switch`, which batch execution holds for the whole
    /// window).
    Dyn { table_idx: usize, key: ExprRef },
}

/// The columnar pre-parse gate of an [`ExecPlan`].
///
/// Batch execution parses only `fields` (the union of header fields
/// the hoisted filters read) into a struct-of-arrays column block and
/// evaluates each task's *leading* `Filter`/`DynFilter` steps over it.
/// A packet that fails every task's gate is dead before any `Map`,
/// `Update`, or report step could observe it — the full parse and the
/// step loop are skipped entirely. Leading pure filters cannot change
/// state or emit, so skipping gated-out packets is bit-identical to
/// running them through [`crate::switch::Switch::process`].
#[derive(Debug, Clone, Default)]
pub(crate) struct GatePlan {
    /// Header fields the partial gate parse extracts, one per column.
    pub fields: Vec<Field>,
    /// PHV slot per column, parallel to `fields`.
    pub slots: Vec<usize>,
    /// Column-remapped postfix pool: here `FlatOp::Field(c)` denotes
    /// *column* `c` of the batch scratch, not a PHV slot.
    ops: Vec<FlatOp>,
    /// Hoisted leading filters per dense task index, in step order. A
    /// task passes the gate iff **all** of its entries pass.
    pub tasks: Vec<Vec<GateFilter>>,
    /// True when some task hoists nothing (its first step is a `Map`
    /// or `Update`, or it has no steps at all): every packet then
    /// passes the gate and batching degenerates to a full-parse loop.
    pub all_pass: bool,
    /// True when every gate field is a fixed-offset L3/L4 scalar, so
    /// columns load through [`crate::parser::parse_gate_columns`]
    /// (straight bytes → column block) instead of the PHV parse.
    pub fast_extract: bool,
}

/// Reusable scratch for the columnar gate evaluation. All buffers are
/// retained across batches — the steady-state gate never allocates.
#[derive(Debug, Default)]
pub(crate) struct GateScratch {
    /// Per-packet "all of this task's filters pass" accumulator.
    pub pass: Vec<bool>,
    /// Per-packet "some rule of this filter matches" accumulator.
    rule_or: Vec<bool>,
    /// Per-packet "all clauses of this rule match" accumulator.
    rule_and: Vec<bool>,
    /// Materialized left/right operand columns for clauses whose
    /// expression is not a bare column or constant.
    buf_a: Vec<u64>,
    buf_b: Vec<u64>,
    /// Scalar fallback evaluation stack.
    stack: Vec<u64>,
}

/// One gate expression evaluated over a whole batch: either the same
/// value in every lane or a per-packet column.
pub(crate) enum GateOperand<'c> {
    Splat(u64),
    Col(&'c [u64]),
}

/// AND `rel(a, b)` into `acc`, element-wise. The operand-kind match
/// sits outside the lane loop so each arm is a tight branch-free pass
/// the compiler can vectorize.
fn clause_and(rel: MatchRel, a: &GateOperand<'_>, b: &GateOperand<'_>, acc: &mut [bool]) {
    use GateOperand::*;
    match (a, b) {
        (Splat(x), Splat(y)) => {
            if !rel.eval(*x, *y) {
                acc.fill(false);
            }
        }
        (Splat(x), Col(ys)) => {
            for (m, &y) in acc.iter_mut().zip(ys.iter()) {
                *m = *m && rel.eval(*x, y);
            }
        }
        (Col(xs), Splat(y)) => {
            for (m, &x) in acc.iter_mut().zip(xs.iter()) {
                *m = *m && rel.eval(x, *y);
            }
        }
        (Col(xs), Col(ys)) => {
            for ((m, &x), &y) in acc.iter_mut().zip(xs.iter()).zip(ys.iter()) {
                *m = *m && rel.eval(x, y);
            }
        }
    }
}

impl GatePlan {
    /// Hoist each task's leading `Filter`/`DynFilter` steps whose
    /// expressions read no metadata, remapping PHV slots to dense
    /// column indices.
    fn extract(plan: &ExecPlan, n_tasks: usize) -> GatePlan {
        let mut g = GatePlan {
            tasks: vec![Vec::new(); n_tasks],
            ..GatePlan::default()
        };
        let mut done = vec![false; n_tasks];
        let mut col_of_slot: HashMap<usize, usize> = HashMap::new();
        for step in &plan.steps {
            if done[step.task_idx] {
                continue;
            }
            let hoisted = match &step.kind {
                StepKind::Filter { rules } => rules
                    .iter()
                    .flatten()
                    .all(|c| plan.expr_hoistable(c.a) && plan.expr_hoistable(c.b))
                    .then(|| GateFilter::Static {
                        rules: rules
                            .iter()
                            .map(|clauses| {
                                clauses
                                    .iter()
                                    .map(|c| FlatClause {
                                        a: g.remap(plan, c.a, &mut col_of_slot),
                                        rel: c.rel,
                                        b: g.remap(plan, c.b, &mut col_of_slot),
                                    })
                                    .collect()
                            })
                            .collect(),
                    }),
                StepKind::DynFilter { table_idx, key } => {
                    plan.expr_hoistable(*key).then(|| GateFilter::Dyn {
                        table_idx: *table_idx,
                        key: g.remap(plan, *key, &mut col_of_slot),
                    })
                }
                _ => None,
            };
            match hoisted {
                Some(f) => g.tasks[step.task_idx].push(f),
                None => done[step.task_idx] = true,
            }
        }
        g.all_pass = g.tasks.iter().any(|t| t.is_empty());
        g.fast_extract = crate::parser::gate_specializable(&g.fields);
        g
    }

    /// Copy one expression from the plan pool into the gate pool,
    /// rewriting `Field(slot)` to `Field(column)`.
    fn remap(
        &mut self,
        plan: &ExecPlan,
        e: ExprRef,
        col_of_slot: &mut HashMap<usize, usize>,
    ) -> ExprRef {
        let start = self.ops.len() as u32;
        for op in &plan.flat[e.start as usize..(e.start + e.len) as usize] {
            let op = match *op {
                FlatOp::Field(slot) => {
                    let col = match col_of_slot.get(&slot) {
                        Some(&c) => c,
                        None => {
                            let c = self.fields.len();
                            self.fields.push(Field::ALL[slot]);
                            self.slots.push(slot);
                            col_of_slot.insert(slot, c);
                            c
                        }
                    };
                    FlatOp::Field(col)
                }
                FlatOp::Meta(_) => unreachable!("hoisted exprs are metadata-free"),
                other => other,
            };
            self.ops.push(op);
        }
        ExprRef {
            start,
            len: self.ops.len() as u32 - start,
        }
    }

    /// Evaluate a gate expression for packet `i` of an `n`-packet
    /// batch over the column block (`cols[c * n + i]`). Semantics are
    /// bit-for-bit those of [`ExecPlan::eval`].
    #[inline]
    pub(crate) fn eval(
        &self,
        e: ExprRef,
        cols: &[u64],
        n: usize,
        i: usize,
        stack: &mut Vec<u64>,
    ) -> u64 {
        let ops = &self.ops[e.start as usize..(e.start + e.len) as usize];
        match ops {
            [FlatOp::Const(v)] => return *v,
            [FlatOp::Field(c)] => return cols[c * n + i],
            _ => {}
        }
        stack.clear();
        for op in ops {
            match *op {
                FlatOp::Const(v) => stack.push(v),
                FlatOp::Field(c) => stack.push(cols[c * n + i]),
                FlatOp::Meta(_) => unreachable!("hoisted exprs are metadata-free"),
                FlatOp::Mask(m) => {
                    let v = stack.last_mut().expect("postfix arity");
                    *v = ((*v as u32) & m) as u64;
                }
                FlatOp::Shr(k) => {
                    let v = stack.last_mut().expect("postfix arity");
                    *v >>= k;
                }
                FlatOp::Shl(k) => {
                    let v = stack.last_mut().expect("postfix arity");
                    *v <<= k;
                }
                FlatOp::Add => {
                    let b = stack.pop().expect("postfix arity");
                    let a = stack.last_mut().expect("postfix arity");
                    *a = a.wrapping_add(b);
                }
                FlatOp::Sub => {
                    let b = stack.pop().expect("postfix arity");
                    let a = stack.last_mut().expect("postfix arity");
                    *a = a.saturating_sub(b);
                }
            }
        }
        stack.pop().expect("postfix leaves one value")
    }

    /// Materialize one gate expression over the whole batch: a bare
    /// constant splats, a bare column borrows the block in place, a
    /// masked column (the refinement-prefix shape) fills `buf` in one
    /// vectorizable pass, and anything else falls back to the scalar
    /// evaluator per lane.
    pub(crate) fn operand<'c>(
        &self,
        e: ExprRef,
        cols: &'c [u64],
        n: usize,
        buf: &'c mut Vec<u64>,
        stack: &mut Vec<u64>,
    ) -> GateOperand<'c> {
        let ops = &self.ops[e.start as usize..(e.start + e.len) as usize];
        match ops {
            [FlatOp::Const(v)] => GateOperand::Splat(*v),
            [FlatOp::Field(c)] => GateOperand::Col(&cols[c * n..c * n + n]),
            [FlatOp::Field(c), FlatOp::Mask(m)] => {
                buf.clear();
                buf.extend(
                    cols[c * n..c * n + n]
                        .iter()
                        .map(|&v| ((v as u32) & m) as u64),
                );
                GateOperand::Col(buf)
            }
            _ => {
                buf.clear();
                for i in 0..n {
                    let v = self.eval(e, cols, n, i, stack);
                    buf.push(v);
                }
                GateOperand::Col(buf)
            }
        }
    }

    /// AND a hoisted static filter's verdict into `scratch.pass`,
    /// column-wise: OR over rules, AND over each rule's clauses, with
    /// every clause one element-wise pass over the batch. Semantics
    /// per lane are bit-for-bit those of the scalar
    /// [`ExecPlan::rules_match`].
    pub(crate) fn rules_match_cols(
        &self,
        rules: &[Vec<FlatClause>],
        cols: &[u64],
        n: usize,
        scratch: &mut GateScratch,
    ) {
        scratch.rule_or.clear();
        scratch.rule_or.resize(n, false);
        for clauses in rules {
            scratch.rule_and.clear();
            scratch.rule_and.resize(n, true);
            for c in clauses {
                let a = self.operand(c.a, cols, n, &mut scratch.buf_a, &mut scratch.stack);
                let b = self.operand(c.b, cols, n, &mut scratch.buf_b, &mut scratch.stack);
                clause_and(c.rel, &a, &b, &mut scratch.rule_and);
            }
            for (o, &r) in scratch.rule_or.iter_mut().zip(scratch.rule_and.iter()) {
                *o = *o || r;
            }
        }
        for (p, &o) in scratch.pass.iter_mut().zip(scratch.rule_or.iter()) {
            *p = *p && o;
        }
    }

    /// AND a hoisted dynamic filter's verdict into `scratch.pass`:
    /// evaluate the key over the batch and test each lane against the
    /// live entry set.
    pub(crate) fn dyn_match_cols(
        &self,
        key: ExprRef,
        entries: &std::collections::BTreeSet<u64>,
        pass_when_empty: bool,
        cols: &[u64],
        n: usize,
        scratch: &mut GateScratch,
    ) {
        if entries.is_empty() {
            if !pass_when_empty {
                scratch.pass.fill(false);
            }
            return;
        }
        match self.operand(key, cols, n, &mut scratch.buf_a, &mut scratch.stack) {
            GateOperand::Splat(k) => {
                if !entries.contains(&k) {
                    scratch.pass.fill(false);
                }
            }
            GateOperand::Col(ks) => {
                for (m, k) in scratch.pass.iter_mut().zip(ks.iter()) {
                    *m = *m && entries.contains(k);
                }
            }
        }
    }
}

impl GateScratch {
    /// Start a task's gate: every lane passes until a filter vetoes.
    pub(crate) fn begin_task(&mut self, n: usize) {
        self.pass.clear();
        self.pass.resize(n, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phv::MetaRef;
    use sonata_packet::Field;

    fn eval_both(e: &PhvExpr, phv: &Phv) -> (u64, u64) {
        let mut plan = ExecPlan::default();
        let r = plan.flatten(e);
        let mut stack = Vec::new();
        (e.eval(phv), plan.eval(r, phv, &mut stack))
    }

    #[test]
    fn flattened_eval_matches_tree_walk() {
        let mut phv = Phv::new(2, 1);
        phv.set_field(Field::Ipv4Dst, 0x0a0b0c0d);
        phv.set_meta(MetaRef(1), 100);
        let exprs = vec![
            PhvExpr::Const(7),
            PhvExpr::Field(Field::Ipv4Dst),
            PhvExpr::Meta(MetaRef(1)),
            PhvExpr::Mask(Box::new(PhvExpr::Field(Field::Ipv4Dst)), 16),
            PhvExpr::Mask(Box::new(PhvExpr::Field(Field::Ipv4Dst)), 0),
            PhvExpr::Mask(Box::new(PhvExpr::Field(Field::Ipv4Dst)), 32),
            PhvExpr::Shr(Box::new(PhvExpr::Const(32)), 4),
            PhvExpr::Shl(Box::new(PhvExpr::Const(2)), 3),
            PhvExpr::Shr(Box::new(PhvExpr::Const(u64::MAX)), 200),
            PhvExpr::Add(
                Box::new(PhvExpr::Const(u64::MAX)),
                Box::new(PhvExpr::Const(3)),
            ),
            PhvExpr::Sub(Box::new(PhvExpr::Const(2)), Box::new(PhvExpr::Const(3))),
            PhvExpr::Add(
                Box::new(PhvExpr::Sub(
                    Box::new(PhvExpr::Meta(MetaRef(1))),
                    Box::new(PhvExpr::Const(1)),
                )),
                Box::new(PhvExpr::Mask(Box::new(PhvExpr::Field(Field::Ipv4Dst)), 8)),
            ),
        ];
        for e in &exprs {
            let (tree, flat) = eval_both(e, &phv);
            assert_eq!(tree, flat, "{e}");
        }
    }

    #[test]
    fn shared_pool_keeps_refs_independent() {
        let mut plan = ExecPlan::default();
        let a = plan.flatten(&PhvExpr::Const(1));
        let b = plan.flatten(&PhvExpr::Add(
            Box::new(PhvExpr::Const(2)),
            Box::new(PhvExpr::Const(3)),
        ));
        let phv = Phv::new(0, 1);
        let mut stack = Vec::new();
        assert_eq!(plan.eval(a, &phv, &mut stack), 1);
        assert_eq!(plan.eval(b, &phv, &mut stack), 5);
        assert_eq!(plan.eval(a, &phv, &mut stack), 1);
    }
}
