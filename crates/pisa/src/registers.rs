//! Hash-indexed register arrays with the paper's collision-mitigation
//! scheme (Section 3.1.3).
//!
//! True hash tables with chaining don't exist on PISA hardware, so
//! Sonata uses a sequence of `d` register arrays, each indexed by a
//! different hash of the key, with the original key stored next to the
//! value for collision *detection*. An incoming key probes array 0; on
//! a collision (slot holds a different key) it falls through to array
//! 1, and so on. A key that collides in all `d` arrays is *shunted*:
//! the packet is sent to the stream processor, which finishes the
//! aggregation there and reconciles at window end.

use sonata_query::Agg;

/// Key parts as fixed-width scalars (what switch metadata can carry).
pub type RegKey = Vec<u64>;

/// Outcome of a register update for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegOutcome {
    /// The key's slot was created or updated.
    Updated {
        /// True when this packet created the key's slot (first packet
        /// of this key in the window).
        first_touch: bool,
        /// The value after the update.
        new_value: u64,
        /// The value before the update (0 on first touch).
        old_value: u64,
    },
    /// All `d` probes collided; the packet must go to the stream
    /// processor.
    Shunted,
}

/// A sequence of `d` hash-indexed register arrays.
#[derive(Debug, Clone)]
pub struct HashRegisters {
    slots_per_array: usize,
    seeds: Vec<u64>,
    value_mask: u64,
    /// Flat storage: `arrays × slots`, each slot `Option<(key, value)>`.
    slots: Vec<Option<(RegKey, u64)>>,
    shunted_packets: u64,
    /// Occupied-slot count maintained incrementally so `occupancy()`
    /// and dump pre-sizing never scan the slot vector.
    occupied: usize,
}

impl HashRegisters {
    /// Create with `slots_per_array` slots (`n`), `arrays` arrays
    /// (`d`), and values truncated to `value_bits`.
    pub fn new(slots_per_array: usize, arrays: usize, value_bits: u32) -> Self {
        assert!(slots_per_array >= 1, "register needs at least one slot");
        assert!((1..=8).contains(&arrays), "d must be in 1..=8");
        let value_mask = if value_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << value_bits) - 1
        };
        HashRegisters {
            slots_per_array,
            seeds: (0..arrays as u64)
                .map(|i| 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i * 2 + 1))
                .collect(),
            value_mask,
            slots: vec![None; slots_per_array * arrays],
            shunted_packets: 0,
            occupied: 0,
        }
    }

    /// Number of arrays (`d`).
    pub fn arrays(&self) -> usize {
        self.seeds.len()
    }

    /// Slots per array (`n`).
    pub fn slots_per_array(&self) -> usize {
        self.slots_per_array
    }

    fn index(&self, array: usize, key: &[u64]) -> usize {
        let mut h = self.seeds[array];
        for part in key {
            h ^= part.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            h = h.rotate_left(31).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        }
        h ^= h >> 33;
        array * self.slots_per_array + (h as usize % self.slots_per_array)
    }

    /// Apply `agg` with `operand` for `key`, probing the arrays in
    /// order. Mirrors a per-packet read-modify-write action.
    pub fn update(&mut self, key: &[u64], agg: Agg, operand: u64) -> RegOutcome {
        for array in 0..self.arrays() {
            let idx = self.index(array, key);
            match &mut self.slots[idx] {
                slot @ None => {
                    let v = agg.init(operand) & self.value_mask;
                    *slot = Some((key.to_vec(), v));
                    self.occupied += 1;
                    return RegOutcome::Updated {
                        first_touch: true,
                        new_value: v,
                        old_value: 0,
                    };
                }
                Some((k, v)) if k.as_slice() == key => {
                    let old = *v;
                    *v = agg.fold(*v, operand) & self.value_mask;
                    return RegOutcome::Updated {
                        first_touch: false,
                        new_value: *v,
                        old_value: old,
                    };
                }
                Some(_) => continue,
            }
        }
        self.shunted_packets += 1;
        RegOutcome::Shunted
    }

    /// Read a key's current value without modifying it.
    pub fn read(&self, key: &[u64]) -> Option<u64> {
        for array in 0..self.arrays() {
            let idx = self.index(array, key);
            match &self.slots[idx] {
                Some((k, v)) if k.as_slice() == key => return Some(*v),
                Some(_) => continue,
                None => return None,
            }
        }
        None
    }

    /// Dump all stored `(key, value)` pairs — the end-of-window
    /// register poll, in deterministic slot order. Pre-sized from the
    /// tracked occupancy so the poll allocates exactly once.
    pub fn dump(&self) -> Vec<(RegKey, u64)> {
        let mut out = Vec::with_capacity(self.occupied);
        out.extend(
            self.slots
                .iter()
                .filter_map(|s| s.as_ref().map(|(k, v)| (k.clone(), *v))),
        );
        out
    }

    /// Number of occupied slots.
    pub fn occupancy(&self) -> usize {
        self.occupied
    }

    /// Packets shunted since the last reset.
    pub fn shunted_packets(&self) -> u64 {
        self.shunted_packets
    }

    /// Clear all slots and counters (end-of-window reset).
    pub fn reset(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.shunted_packets = 0;
        self.occupied = 0;
    }
}

/// Simulate the collision rate for Figure 3: insert `keys` distinct
/// keys into a `d`-array register sized for `n` expected keys, and
/// return the fraction of *keys* that shunt.
///
/// Matches the paper's setup: the x-axis is `keys / n` and each curve
/// is one `d`.
pub fn collision_rate(n: usize, d: usize, keys: usize, seed: u64) -> f64 {
    if keys == 0 {
        return 0.0;
    }
    let mut regs = HashRegisters::new(n.max(1), d, 32);
    let mut shunted = 0usize;
    // Distinct synthetic keys; mix the seed in so repeated runs vary.
    for i in 0..keys {
        let key = [seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ (i as u64)];
        match regs.update(&key, Agg::Count, 1) {
            RegOutcome::Shunted => shunted += 1,
            RegOutcome::Updated { .. } => {}
        }
    }
    shunted as f64 / keys as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_aggregation_per_key() {
        let mut r = HashRegisters::new(64, 2, 32);
        let k1 = vec![1u64];
        let k2 = vec![2u64];
        assert_eq!(
            r.update(&k1, Agg::Sum, 5),
            RegOutcome::Updated {
                first_touch: true,
                new_value: 5,
                old_value: 0
            }
        );
        assert_eq!(
            r.update(&k1, Agg::Sum, 3),
            RegOutcome::Updated {
                first_touch: false,
                new_value: 8,
                old_value: 5
            }
        );
        r.update(&k2, Agg::Sum, 7);
        assert_eq!(r.read(&k1), Some(8));
        assert_eq!(r.read(&k2), Some(7));
        assert_eq!(r.read(&[3]), None);
        assert_eq!(r.occupancy(), 2);
    }

    #[test]
    fn value_width_truncates() {
        let mut r = HashRegisters::new(4, 1, 8);
        let k = vec![1u64];
        r.update(&k, Agg::Sum, 250);
        let out = r.update(&k, Agg::Sum, 10);
        // 260 mod 256 = 4: an 8-bit counter wraps like hardware.
        assert_eq!(
            out,
            RegOutcome::Updated {
                first_touch: false,
                new_value: 4,
                old_value: 250
            }
        );
    }

    #[test]
    fn collisions_cascade_then_shunt() {
        // One slot per array: the second distinct key must cascade,
        // the (d+1)-th must shunt.
        for d in 1..=4usize {
            let mut r = HashRegisters::new(1, d, 32);
            let mut shunts = 0;
            for key in 0..(d as u64 + 1) {
                if r.update(&[key], Agg::Count, 1) == RegOutcome::Shunted {
                    shunts += 1;
                }
            }
            assert_eq!(shunts, 1, "d={d}");
            assert_eq!(r.occupancy(), d);
            assert_eq!(r.shunted_packets(), 1);
        }
    }

    #[test]
    fn shunted_key_stays_shunted_within_window() {
        let mut r = HashRegisters::new(1, 1, 32);
        assert!(matches!(
            r.update(&[1], Agg::Count, 1),
            RegOutcome::Updated { .. }
        ));
        // Key 2 collides (single slot) and must shunt every time.
        for _ in 0..5 {
            assert_eq!(r.update(&[2], Agg::Count, 1), RegOutcome::Shunted);
        }
        assert_eq!(r.shunted_packets(), 5);
        // Key 1 keeps aggregating in the register.
        assert!(matches!(
            r.update(&[1], Agg::Count, 1),
            RegOutcome::Updated {
                first_touch: false,
                new_value: 2,
                ..
            }
        ));
    }

    #[test]
    fn dump_returns_all_pairs() {
        let mut r = HashRegisters::new(128, 2, 32);
        for k in 0..50u64 {
            r.update(&[k], Agg::Sum, k);
        }
        let mut dump = r.dump();
        dump.sort();
        assert_eq!(dump.len(), 50);
        for (k, v) in dump {
            assert_eq!(v, k[0]);
        }
    }

    #[test]
    fn reset_clears_everything() {
        let mut r = HashRegisters::new(1, 1, 32);
        r.update(&[1], Agg::Count, 1);
        r.update(&[2], Agg::Count, 1); // shunt
        r.reset();
        assert_eq!(r.occupancy(), 0);
        assert_eq!(r.shunted_packets(), 0);
        assert!(matches!(
            r.update(&[2], Agg::Count, 1),
            RegOutcome::Updated {
                first_touch: true,
                ..
            }
        ));
    }

    #[test]
    fn distinct_via_bitor() {
        let mut r = HashRegisters::new(64, 1, 1);
        let out1 = r.update(&[7], Agg::BitOr, 1);
        let out2 = r.update(&[7], Agg::BitOr, 1);
        assert!(matches!(
            out1,
            RegOutcome::Updated {
                first_touch: true,
                new_value: 1,
                ..
            }
        ));
        assert!(matches!(
            out2,
            RegOutcome::Updated {
                first_touch: false,
                new_value: 1,
                ..
            }
        ));
    }

    #[test]
    fn multipart_keys_are_distinguished() {
        let mut r = HashRegisters::new(256, 2, 32);
        r.update(&[1, 2], Agg::Count, 1);
        r.update(&[2, 1], Agg::Count, 1);
        r.update(&[1, 2], Agg::Count, 1);
        assert_eq!(r.read(&[1, 2]), Some(2));
        assert_eq!(r.read(&[2, 1]), Some(1));
    }

    #[test]
    fn collision_rate_monotonic_in_load_and_d() {
        // More keys than slots -> more collisions; more arrays -> fewer.
        let n = 1024;
        let r_half = collision_rate(n, 1, n / 2, 1);
        let r_double = collision_rate(n, 1, n * 2, 1);
        assert!(r_double > r_half);
        let d1 = collision_rate(n, 1, n, 2);
        let d4 = collision_rate(n, 4, n, 2);
        assert!(d1 > d4, "d1={d1} d4={d4}");
        // At very light load the rate is near zero for d=4.
        assert!(collision_rate(n, 4, n / 10, 3) < 0.01);
    }

    #[test]
    fn collision_rate_zero_for_no_keys() {
        assert_eq!(collision_rate(16, 2, 0, 0), 0.0);
    }
}
