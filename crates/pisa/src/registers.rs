//! Hash-indexed register arrays with the paper's collision-mitigation
//! scheme (Section 3.1.3).
//!
//! True hash tables with chaining don't exist on PISA hardware, so
//! Sonata uses a sequence of `d` register arrays, each indexed by a
//! different hash of the key, with the original key stored next to the
//! value for collision *detection*. An incoming key probes array 0; on
//! a collision (slot holds a different key) it falls through to array
//! 1, and so on. A key that collides in all `d` arrays is *shunted*:
//! the packet is sent to the stream processor, which finishes the
//! aggregation there and reconciles at window end.

use sonata_query::Agg;
use sonata_sketch::{
    bloom_bits_for, mix64, BloomFilter, CmOp, CountMinSketch, ErrorBound, HyperLogLog,
    BLOOM_HASHES, HLL_PRECISION,
};

pub use sonata_sketch::StateLayout;

/// Key parts as fixed-width scalars (what switch metadata can carry).
pub type RegKey = Vec<u64>;

/// Outcome of a register update for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegOutcome {
    /// The key's slot was created or updated.
    Updated {
        /// True when this packet created the key's slot (first packet
        /// of this key in the window).
        first_touch: bool,
        /// The value after the update.
        new_value: u64,
        /// The value before the update (0 on first touch).
        old_value: u64,
    },
    /// All `d` probes collided; the packet must go to the stream
    /// processor.
    Shunted,
}

/// A sequence of `d` hash-indexed register arrays.
#[derive(Debug, Clone)]
pub struct HashRegisters {
    slots_per_array: usize,
    seeds: Vec<u64>,
    value_mask: u64,
    /// Flat storage: `arrays × slots`, each slot `Option<(key, value)>`.
    slots: Vec<Option<(RegKey, u64)>>,
    shunted_packets: u64,
    /// Occupied-slot count maintained incrementally so `occupancy()`
    /// and dump pre-sizing never scan the slot vector.
    occupied: usize,
}

impl HashRegisters {
    /// Create with `slots_per_array` slots (`n`), `arrays` arrays
    /// (`d`), and values truncated to `value_bits`.
    pub fn new(slots_per_array: usize, arrays: usize, value_bits: u32) -> Self {
        assert!(slots_per_array >= 1, "register needs at least one slot");
        assert!((1..=8).contains(&arrays), "d must be in 1..=8");
        let value_mask = if value_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << value_bits) - 1
        };
        HashRegisters {
            slots_per_array,
            seeds: (0..arrays as u64)
                .map(|i| 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i * 2 + 1))
                .collect(),
            value_mask,
            slots: vec![None; slots_per_array * arrays],
            shunted_packets: 0,
            occupied: 0,
        }
    }

    /// Number of arrays (`d`).
    pub fn arrays(&self) -> usize {
        self.seeds.len()
    }

    /// Slots per array (`n`).
    pub fn slots_per_array(&self) -> usize {
        self.slots_per_array
    }

    fn index(&self, array: usize, key: &[u64]) -> usize {
        let mut h = self.seeds[array];
        for part in key {
            h ^= part.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            h = h.rotate_left(31).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        }
        h ^= h >> 33;
        array * self.slots_per_array + (h as usize % self.slots_per_array)
    }

    /// Apply `agg` with `operand` for `key`, probing the arrays in
    /// order. Mirrors a per-packet read-modify-write action.
    pub fn update(&mut self, key: &[u64], agg: Agg, operand: u64) -> RegOutcome {
        for array in 0..self.arrays() {
            let idx = self.index(array, key);
            match &mut self.slots[idx] {
                slot @ None => {
                    let v = agg.init(operand) & self.value_mask;
                    *slot = Some((key.to_vec(), v));
                    self.occupied += 1;
                    return RegOutcome::Updated {
                        first_touch: true,
                        new_value: v,
                        old_value: 0,
                    };
                }
                Some((k, v)) if k.as_slice() == key => {
                    let old = *v;
                    *v = agg.fold(*v, operand) & self.value_mask;
                    return RegOutcome::Updated {
                        first_touch: false,
                        new_value: *v,
                        old_value: old,
                    };
                }
                Some(_) => continue,
            }
        }
        self.shunted_packets += 1;
        RegOutcome::Shunted
    }

    /// Read a key's current value without modifying it.
    pub fn read(&self, key: &[u64]) -> Option<u64> {
        for array in 0..self.arrays() {
            let idx = self.index(array, key);
            match &self.slots[idx] {
                Some((k, v)) if k.as_slice() == key => return Some(*v),
                Some(_) => continue,
                None => return None,
            }
        }
        None
    }

    /// Dump all stored `(key, value)` pairs — the end-of-window
    /// register poll, in deterministic slot order. Pre-sized from the
    /// tracked occupancy so the poll allocates exactly once.
    pub fn dump(&self) -> Vec<(RegKey, u64)> {
        let mut out = Vec::with_capacity(self.occupied);
        out.extend(
            self.slots
                .iter()
                .filter_map(|s| s.as_ref().map(|(k, v)| (k.clone(), *v))),
        );
        out
    }

    /// Number of occupied slots.
    pub fn occupancy(&self) -> usize {
        self.occupied
    }

    /// Packets shunted since the last reset.
    pub fn shunted_packets(&self) -> u64 {
        self.shunted_packets
    }

    /// Clear all slots and counters (end-of-window reset).
    pub fn reset(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.shunted_packets = 0;
        self.occupied = 0;
    }
}

/// Runtime knob selecting approximate register layouts (the
/// `RuntimeConfig::sketch` field threads this down to every switch).
///
/// `layout` names the *family*; the loader maps it per register by
/// operator kind — see [`SketchConfig::effective_layout`]. All other
/// fields are `0` ("derive from the register declaration") by
/// default, so the knob's off-path (`StateLayout::Exact`) is a
/// byte-for-byte no-op against the pre-sketch code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchConfig {
    /// Layout family to apply where the declaration doesn't already
    /// pin one (the planner stamps `RegisterDecl::layout` when its
    /// sketch cost model is on; a stamped non-exact layout wins).
    pub layout: StateLayout,
    /// Hash-family seed; each register derives its own sub-seed so
    /// rows are independent across registers.
    pub seed: u64,
    /// Count-min width override (`0` = the declaration's `slots`).
    pub cm_width: usize,
    /// Count-min depth override (`0` = the declaration's `arrays`).
    pub cm_depth: usize,
    /// Bloom admission bits override (`0` = size for the
    /// declaration's expected key capacity).
    pub bloom_bits: usize,
    /// Bloom hash count override (`0` = [`BLOOM_HASHES`]).
    pub bloom_hashes: usize,
    /// HyperLogLog precision for the `Hll` family.
    pub hll_precision: u8,
}

impl Default for SketchConfig {
    fn default() -> Self {
        SketchConfig {
            layout: StateLayout::Exact,
            seed: 0x534f_4e41_5441_534b, // "SONATASK"
            cm_width: 0,
            cm_depth: 0,
            bloom_bits: 0,
            bloom_hashes: 0,
            hll_precision: HLL_PRECISION,
        }
    }
}

impl SketchConfig {
    /// Resolve the layout one register actually runs.
    ///
    /// A non-exact layout stamped on the declaration (by the
    /// planner's sketch cost model) wins. Otherwise the family knob
    /// maps by operator kind: count-min only fits monotone
    /// aggregations (`Sum`/`Count`/`Max` — the whole catalog), Bloom
    /// only fits `distinct` admission, so e.g. `layout: Bloom` leaves
    /// `reduce` registers exact and `layout: CountMin` runs
    /// `distinct` registers on Bloom admission.
    pub fn effective_layout(
        &self,
        decl_layout: StateLayout,
        distinct: bool,
        agg: Agg,
    ) -> StateLayout {
        let family = if decl_layout != StateLayout::Exact {
            decl_layout
        } else {
            self.layout
        };
        let cm_capable = matches!(agg, Agg::Sum | Agg::Count | Agg::Max);
        match family {
            StateLayout::Exact => StateLayout::Exact,
            StateLayout::CountMin => {
                if distinct {
                    StateLayout::Bloom
                } else if cm_capable {
                    StateLayout::CountMin
                } else {
                    StateLayout::Exact
                }
            }
            StateLayout::Bloom => {
                if distinct {
                    StateLayout::Bloom
                } else {
                    StateLayout::Exact
                }
            }
            StateLayout::Hll => {
                if distinct {
                    StateLayout::Hll
                } else if cm_capable {
                    StateLayout::CountMin
                } else {
                    StateLayout::Exact
                }
            }
        }
    }

    /// Per-register sub-seed, mixing the register index in so no two
    /// registers share hash rows.
    pub fn reg_seed(&self, reg_idx: usize) -> u64 {
        mix64(self.seed ^ (reg_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5354)
    }
}

/// Count-min backed `reduce` state: a sketch for the aggregates plus
/// a Bloom admission filter for first-touch detection and an exact
/// first-touch key list.
///
/// The key list models Sonata's mirror channel (first occurrences are
/// reported to the stream processor, exactly as `distinct` already
/// mirrors them), so it costs report bandwidth, **not** register
/// SRAM — `RegisterDecl::total_bits` charges only the sketch cells
/// and the admission bits. Sketch state never shunts: collisions fold
/// into the error bound instead of consuming the mirror channel.
#[derive(Debug, Clone)]
pub struct CmRegisters {
    cm: CountMinSketch,
    admission: BloomFilter,
    keys: Vec<RegKey>,
    capacity: usize,
    value_mask: u64,
}

impl CmRegisters {
    /// Build for `width × depth` counters with admission state sized
    /// for `capacity` expected keys.
    pub fn new(
        width: usize,
        depth: usize,
        capacity: usize,
        bloom_bits: usize,
        bloom_hashes: usize,
        value_bits: u32,
        seed: u64,
    ) -> Self {
        let capacity = capacity.max(16);
        let m_bits = if bloom_bits > 0 {
            bloom_bits
        } else {
            bloom_bits_for(capacity)
        };
        let k = if bloom_hashes > 0 {
            bloom_hashes
        } else {
            BLOOM_HASHES
        };
        let value_mask = if value_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << value_bits) - 1
        };
        CmRegisters {
            cm: CountMinSketch::new(width, depth.clamp(1, 16), seed, CmOp::Add),
            admission: BloomFilter::new(m_bits, k, mix64(seed ^ 0xB100)),
            keys: Vec::new(),
            capacity,
            value_mask,
        }
    }

    fn op_value(agg: Agg, operand: u64) -> (CmOp, u64) {
        match agg {
            Agg::Sum => (CmOp::Add, operand),
            Agg::Count => (CmOp::Add, 1),
            Agg::Max => (CmOp::Max, operand),
            // Unreachable via `effective_layout`, which keeps Min and
            // BitOr registers exact; fold conservatively if forced.
            Agg::Min | Agg::BitOr => (CmOp::Max, operand),
        }
    }

    /// Mirror of [`HashRegisters::update`]; never shunts.
    pub fn update(&mut self, key: &[u64], agg: Agg, operand: u64) -> RegOutcome {
        let (op, v) = Self::op_value(agg, operand);
        debug_assert_eq!(
            op,
            self.cm.op(),
            "register built for a different agg family"
        );
        let first_touch = self.admission.insert(key);
        if first_touch {
            self.keys.push(key.to_vec());
        }
        let old_value = if first_touch {
            0
        } else {
            self.cm.estimate(key) & self.value_mask
        };
        self.cm.update(key, v);
        RegOutcome::Updated {
            first_touch,
            new_value: self.cm.estimate(key) & self.value_mask,
            old_value,
        }
    }

    /// Conservative point estimate for a key seen this window.
    pub fn read(&self, key: &[u64]) -> Option<u64> {
        if self.admission.contains(key) {
            Some(self.cm.estimate(key) & self.value_mask)
        } else {
            None
        }
    }

    /// End-of-window poll: admitted keys in first-touch order with
    /// their (over-)estimates.
    pub fn dump(&self) -> Vec<(RegKey, u64)> {
        self.keys
            .iter()
            .map(|k| (k.clone(), self.cm.estimate(k) & self.value_mask))
            .collect()
    }

    /// Admitted keys this window.
    pub fn occupancy(&self) -> usize {
        self.keys.len()
    }

    /// The declared `(ε, δ)` contract for this shape.
    pub fn bound(&self) -> ErrorBound {
        self.cm.bound()
    }

    /// Total stream mass folded in (the bound's ε is relative to it).
    pub fn mass(&self) -> u64 {
        self.cm.mass()
    }

    /// Updates folded in this window.
    pub fn updates(&self) -> u64 {
        self.cm.updates()
    }

    /// True once the admission filter is past its design load — the
    /// point where first-touch false positives (dropped keys) become
    /// likely and the declared bound degrades.
    pub fn saturated(&self) -> bool {
        self.keys.len() > self.capacity
    }

    /// Sketch width (for gauges).
    pub fn width(&self) -> usize {
        self.cm.width()
    }

    /// Sketch depth (for gauges).
    pub fn depth(&self) -> usize {
        self.cm.depth()
    }

    /// End-of-window reset, keeping shape and seeds.
    pub fn reset(&mut self) {
        self.cm.reset();
        self.admission.reset();
        self.keys.clear();
    }
}

/// Bloom-admission `distinct` state: the filter decides first-touch,
/// an exact admitted-key list backs the end-of-window dump (the PR 6
/// fabric merge and collector suffix-recompute consume key sets, so
/// that contract is unchanged), and the `Hll` family adds a
/// HyperLogLog whose union-mergeable cardinality estimate feeds the
/// occupancy gauge.
///
/// A false positive makes a new key look already-seen (an undercount
/// at probability ε = the filter's fp rate); false negatives cannot
/// occur, so a key is never reported twice.
#[derive(Debug, Clone)]
pub struct BloomRegisters {
    bloom: BloomFilter,
    hll: Option<HyperLogLog>,
    keys: Vec<RegKey>,
    capacity: usize,
}

impl BloomRegisters {
    /// Build for `capacity` expected keys; `with_hll` adds the
    /// cardinality estimator (the `Hll` family).
    pub fn new(
        capacity: usize,
        bloom_bits: usize,
        bloom_hashes: usize,
        with_hll: bool,
        hll_precision: u8,
        seed: u64,
    ) -> Self {
        let capacity = capacity.max(16);
        let m_bits = if bloom_bits > 0 {
            bloom_bits
        } else {
            bloom_bits_for(capacity)
        };
        let k = if bloom_hashes > 0 {
            bloom_hashes
        } else {
            BLOOM_HASHES
        };
        BloomRegisters {
            bloom: BloomFilter::new(m_bits, k, seed),
            hll: with_hll.then(|| HyperLogLog::new(hll_precision, mix64(seed ^ 0x4811))),
            keys: Vec::new(),
            capacity,
        }
    }

    /// Mirror of [`HashRegisters::update`]; never shunts.
    pub fn update(&mut self, key: &[u64], agg: Agg, operand: u64) -> RegOutcome {
        let first_touch = self.bloom.insert(key);
        if let Some(h) = &mut self.hll {
            h.insert(key);
        }
        if first_touch {
            self.keys.push(key.to_vec());
        }
        let v = agg.init(operand) & 1;
        RegOutcome::Updated {
            first_touch,
            new_value: v.max(1),
            old_value: if first_touch { 0 } else { 1 },
        }
    }

    /// Membership probe.
    pub fn read(&self, key: &[u64]) -> Option<u64> {
        self.bloom.contains(key).then_some(1)
    }

    /// End-of-window poll: the admitted key set, in first-touch
    /// order (the same shape the exact `distinct` dump has).
    pub fn dump(&self) -> Vec<(RegKey, u64)> {
        self.keys.iter().map(|k| (k.clone(), 1)).collect()
    }

    /// Admitted keys this window.
    pub fn occupancy(&self) -> usize {
        self.keys.len()
    }

    /// The HyperLogLog cardinality estimate, when the `Hll` family
    /// is active.
    pub fn cardinality_estimate(&self) -> Option<u64> {
        self.hll.as_ref().map(|h| h.estimate())
    }

    /// The declared `(ε, δ)` contract at the current load.
    pub fn bound(&self) -> ErrorBound {
        match &self.hll {
            // With an estimator attached, report the dominating bound
            // of the admission filter and the estimator.
            Some(h) => self.bloom.bound().fold(h.bound()),
            None => self.bloom.bound(),
        }
    }

    /// Keys admitted (≈ update count for distinct state).
    pub fn updates(&self) -> u64 {
        self.bloom.inserted()
    }

    /// True once past design load (fp rate beyond the provisioned ε).
    pub fn saturated(&self) -> bool {
        self.keys.len() > self.capacity
    }

    /// Filter bits (for gauges).
    pub fn width(&self) -> usize {
        self.bloom.bits()
    }

    /// Hash count (for gauges).
    pub fn depth(&self) -> usize {
        self.bloom.hashes()
    }

    /// End-of-window reset, keeping shape and seeds.
    pub fn reset(&mut self) {
        self.bloom.reset();
        if let Some(h) = &mut self.hll {
            h.reset();
        }
        self.keys.clear();
    }
}

/// One stateful task's register state under its chosen layout.
///
/// `Exact` is the reference oracle (the original [`HashRegisters`]);
/// the sketch variants present the same update/dump surface so both
/// the reference interpreter and the compiled `ExecPlan` hot path are
/// layout-transparent.
#[derive(Debug, Clone)]
pub enum RegisterState {
    /// Keyed hash table with shunt-on-collision (the reference).
    Exact(HashRegisters),
    /// Count-min `reduce` state.
    CountMin(CmRegisters),
    /// Bloom-admission `distinct` state (optionally with HLL).
    Bloom(BloomRegisters),
}

impl RegisterState {
    /// Which layout this state runs.
    pub fn layout(&self) -> StateLayout {
        match self {
            RegisterState::Exact(_) => StateLayout::Exact,
            RegisterState::CountMin(_) => StateLayout::CountMin,
            RegisterState::Bloom(b) => {
                if b.hll.is_some() {
                    StateLayout::Hll
                } else {
                    StateLayout::Bloom
                }
            }
        }
    }

    /// Apply `agg` with `operand` for `key` (the per-packet
    /// read-modify-write action both execution paths call).
    #[inline]
    pub fn update(&mut self, key: &[u64], agg: Agg, operand: u64) -> RegOutcome {
        match self {
            RegisterState::Exact(r) => r.update(key, agg, operand),
            RegisterState::CountMin(r) => r.update(key, agg, operand),
            RegisterState::Bloom(r) => r.update(key, agg, operand),
        }
    }

    /// Read a key's current value/membership without modifying it.
    pub fn read(&self, key: &[u64]) -> Option<u64> {
        match self {
            RegisterState::Exact(r) => r.read(key),
            RegisterState::CountMin(r) => r.read(key),
            RegisterState::Bloom(r) => r.read(key),
        }
    }

    /// End-of-window register poll.
    pub fn dump(&self) -> Vec<(RegKey, u64)> {
        match self {
            RegisterState::Exact(r) => r.dump(),
            RegisterState::CountMin(r) => r.dump(),
            RegisterState::Bloom(r) => r.dump(),
        }
    }

    /// Occupied slots / admitted keys.
    pub fn occupancy(&self) -> usize {
        match self {
            RegisterState::Exact(r) => r.occupancy(),
            RegisterState::CountMin(r) => r.occupancy(),
            RegisterState::Bloom(r) => r.occupancy(),
        }
    }

    /// Packets shunted since the last reset (always 0 for sketch
    /// layouts — they never shunt).
    pub fn shunted_packets(&self) -> u64 {
        match self {
            RegisterState::Exact(r) => r.shunted_packets(),
            _ => 0,
        }
    }

    /// The declared `(ε, δ)` contract (`ErrorBound::EXACT` for the
    /// reference layout).
    pub fn bound(&self) -> ErrorBound {
        match self {
            RegisterState::Exact(_) => ErrorBound::EXACT,
            RegisterState::CountMin(r) => r.bound(),
            RegisterState::Bloom(r) => r.bound(),
        }
    }

    /// Stream mass the bound's ε is relative to (count-min only).
    pub fn mass(&self) -> u64 {
        match self {
            RegisterState::CountMin(r) => r.mass(),
            _ => 0,
        }
    }

    /// Updates folded in this window.
    pub fn updates(&self) -> u64 {
        match self {
            RegisterState::Exact(r) => r.occupancy() as u64,
            RegisterState::CountMin(r) => r.updates(),
            RegisterState::Bloom(r) => r.updates(),
        }
    }

    /// Whether the sketch is past its design load and the declared
    /// bound no longer holds (never true for exact state).
    pub fn saturated(&self) -> bool {
        match self {
            RegisterState::Exact(_) => false,
            RegisterState::CountMin(r) => r.saturated(),
            RegisterState::Bloom(r) => r.saturated(),
        }
    }

    /// Primary dimension for gauges (slots / cm width / bloom bits).
    pub fn gauge_width(&self) -> u64 {
        match self {
            RegisterState::Exact(r) => r.slots_per_array() as u64,
            RegisterState::CountMin(r) => r.width() as u64,
            RegisterState::Bloom(r) => r.width() as u64,
        }
    }

    /// Secondary dimension for gauges (arrays / cm depth / bloom k).
    pub fn gauge_depth(&self) -> u64 {
        match self {
            RegisterState::Exact(r) => r.arrays() as u64,
            RegisterState::CountMin(r) => r.depth() as u64,
            RegisterState::Bloom(r) => r.depth() as u64,
        }
    }

    /// End-of-window reset.
    pub fn reset(&mut self) {
        match self {
            RegisterState::Exact(r) => r.reset(),
            RegisterState::CountMin(r) => r.reset(),
            RegisterState::Bloom(r) => r.reset(),
        }
    }
}

/// Simulate the collision rate for Figure 3: insert `keys` distinct
/// keys into a `d`-array register sized for `n` expected keys, and
/// return the fraction of *keys* that shunt.
///
/// Matches the paper's setup: the x-axis is `keys / n` and each curve
/// is one `d`.
pub fn collision_rate(n: usize, d: usize, keys: usize, seed: u64) -> f64 {
    if keys == 0 {
        return 0.0;
    }
    let mut regs = HashRegisters::new(n.max(1), d, 32);
    let mut shunted = 0usize;
    // Distinct synthetic keys; mix the seed in so repeated runs vary.
    for i in 0..keys {
        let key = [seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ (i as u64)];
        match regs.update(&key, Agg::Count, 1) {
            RegOutcome::Shunted => shunted += 1,
            RegOutcome::Updated { .. } => {}
        }
    }
    shunted as f64 / keys as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_aggregation_per_key() {
        let mut r = HashRegisters::new(64, 2, 32);
        let k1 = vec![1u64];
        let k2 = vec![2u64];
        assert_eq!(
            r.update(&k1, Agg::Sum, 5),
            RegOutcome::Updated {
                first_touch: true,
                new_value: 5,
                old_value: 0
            }
        );
        assert_eq!(
            r.update(&k1, Agg::Sum, 3),
            RegOutcome::Updated {
                first_touch: false,
                new_value: 8,
                old_value: 5
            }
        );
        r.update(&k2, Agg::Sum, 7);
        assert_eq!(r.read(&k1), Some(8));
        assert_eq!(r.read(&k2), Some(7));
        assert_eq!(r.read(&[3]), None);
        assert_eq!(r.occupancy(), 2);
    }

    #[test]
    fn value_width_truncates() {
        let mut r = HashRegisters::new(4, 1, 8);
        let k = vec![1u64];
        r.update(&k, Agg::Sum, 250);
        let out = r.update(&k, Agg::Sum, 10);
        // 260 mod 256 = 4: an 8-bit counter wraps like hardware.
        assert_eq!(
            out,
            RegOutcome::Updated {
                first_touch: false,
                new_value: 4,
                old_value: 250
            }
        );
    }

    #[test]
    fn collisions_cascade_then_shunt() {
        // One slot per array: the second distinct key must cascade,
        // the (d+1)-th must shunt.
        for d in 1..=4usize {
            let mut r = HashRegisters::new(1, d, 32);
            let mut shunts = 0;
            for key in 0..(d as u64 + 1) {
                if r.update(&[key], Agg::Count, 1) == RegOutcome::Shunted {
                    shunts += 1;
                }
            }
            assert_eq!(shunts, 1, "d={d}");
            assert_eq!(r.occupancy(), d);
            assert_eq!(r.shunted_packets(), 1);
        }
    }

    #[test]
    fn shunted_key_stays_shunted_within_window() {
        let mut r = HashRegisters::new(1, 1, 32);
        assert!(matches!(
            r.update(&[1], Agg::Count, 1),
            RegOutcome::Updated { .. }
        ));
        // Key 2 collides (single slot) and must shunt every time.
        for _ in 0..5 {
            assert_eq!(r.update(&[2], Agg::Count, 1), RegOutcome::Shunted);
        }
        assert_eq!(r.shunted_packets(), 5);
        // Key 1 keeps aggregating in the register.
        assert!(matches!(
            r.update(&[1], Agg::Count, 1),
            RegOutcome::Updated {
                first_touch: false,
                new_value: 2,
                ..
            }
        ));
    }

    #[test]
    fn dump_returns_all_pairs() {
        let mut r = HashRegisters::new(128, 2, 32);
        for k in 0..50u64 {
            r.update(&[k], Agg::Sum, k);
        }
        let mut dump = r.dump();
        dump.sort();
        assert_eq!(dump.len(), 50);
        for (k, v) in dump {
            assert_eq!(v, k[0]);
        }
    }

    #[test]
    fn reset_clears_everything() {
        let mut r = HashRegisters::new(1, 1, 32);
        r.update(&[1], Agg::Count, 1);
        r.update(&[2], Agg::Count, 1); // shunt
        r.reset();
        assert_eq!(r.occupancy(), 0);
        assert_eq!(r.shunted_packets(), 0);
        assert!(matches!(
            r.update(&[2], Agg::Count, 1),
            RegOutcome::Updated {
                first_touch: true,
                ..
            }
        ));
    }

    #[test]
    fn distinct_via_bitor() {
        let mut r = HashRegisters::new(64, 1, 1);
        let out1 = r.update(&[7], Agg::BitOr, 1);
        let out2 = r.update(&[7], Agg::BitOr, 1);
        assert!(matches!(
            out1,
            RegOutcome::Updated {
                first_touch: true,
                new_value: 1,
                ..
            }
        ));
        assert!(matches!(
            out2,
            RegOutcome::Updated {
                first_touch: false,
                new_value: 1,
                ..
            }
        ));
    }

    #[test]
    fn multipart_keys_are_distinguished() {
        let mut r = HashRegisters::new(256, 2, 32);
        r.update(&[1, 2], Agg::Count, 1);
        r.update(&[2, 1], Agg::Count, 1);
        r.update(&[1, 2], Agg::Count, 1);
        assert_eq!(r.read(&[1, 2]), Some(2));
        assert_eq!(r.read(&[2, 1]), Some(1));
    }

    #[test]
    fn collision_rate_monotonic_in_load_and_d() {
        // More keys than slots -> more collisions; more arrays -> fewer.
        let n = 1024;
        let r_half = collision_rate(n, 1, n / 2, 1);
        let r_double = collision_rate(n, 1, n * 2, 1);
        assert!(r_double > r_half);
        let d1 = collision_rate(n, 1, n, 2);
        let d4 = collision_rate(n, 4, n, 2);
        assert!(d1 > d4, "d1={d1} d4={d4}");
        // At very light load the rate is near zero for d=4.
        assert!(collision_rate(n, 4, n / 10, 3) < 0.01);
    }

    #[test]
    fn collision_rate_zero_for_no_keys() {
        assert_eq!(collision_rate(16, 2, 0, 0), 0.0);
    }
}
