//! The data-plane resource model (Section 3.2): metadata (`M`),
//! stateful actions per stage (`A`), register bits per stage (`B`),
//! and pipeline stages (`S`), plus a stateless-table budget per stage.
//!
//! [`SwitchConstraints::check`] validates a program at load time and
//! [`ResourceUsage`] reports how much of each budget a program uses —
//! the same accounting the query planner optimizes against.

use crate::ir::PisaProgram;
use std::fmt;

/// Resource limits of a simulated PISA switch.
///
/// Defaults match the paper's evaluation target: 16 stages, 8 stateful
/// actions per stage, 8 Mb of register memory per stage (with a 4 Mb
/// per-register cap), and an 8 Kb metadata budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchConstraints {
    /// `S`: number of physical stages.
    pub stages: usize,
    /// `A`: stateful actions per stage.
    pub stateful_per_stage: usize,
    /// `B`: register bits per stage.
    pub register_bits_per_stage: u64,
    /// Per-register cap within a stage ("a single stateful operator
    /// can use up to four Mb", Section 6.1).
    pub max_bits_per_register: u64,
    /// `M`: total metadata bits in the PHV.
    pub metadata_bits: u64,
    /// Stateless tables per stage (PISA switches support 100–200
    /// stateless actions per stage, Section 3.2).
    pub stateless_per_stage: usize,
}

impl Default for SwitchConstraints {
    fn default() -> Self {
        SwitchConstraints {
            stages: 16,
            stateful_per_stage: 8,
            register_bits_per_stage: 8_000_000,
            max_bits_per_register: 4_000_000,
            metadata_bits: 8 * 8192,
            stateless_per_stage: 128,
        }
    }
}

impl SwitchConstraints {
    /// The strict example configuration from Section 3.3 (S = 4,
    /// B = 3,000 Kb, A = 4).
    pub fn strict_example() -> Self {
        SwitchConstraints {
            stages: 4,
            stateful_per_stage: 4,
            register_bits_per_stage: 3_000_000,
            max_bits_per_register: 3_000_000,
            metadata_bits: 8 * 8192,
            stateless_per_stage: 128,
        }
    }

    /// Compute a program's usage and validate it against the limits.
    pub fn check(&self, program: &PisaProgram) -> Result<ResourceUsage, ResourceError> {
        let usage = ResourceUsage::of(program, self.stages);
        if usage.stages_used > self.stages {
            return Err(ResourceError::Stages {
                used: usage.stages_used,
                limit: self.stages,
            });
        }
        for (stage, &n) in usage.stateful_by_stage.iter().enumerate() {
            if n > self.stateful_per_stage {
                return Err(ResourceError::StatefulActions {
                    stage,
                    used: n,
                    limit: self.stateful_per_stage,
                });
            }
        }
        for (stage, &bits) in usage.register_bits_by_stage.iter().enumerate() {
            if bits > self.register_bits_per_stage {
                return Err(ResourceError::RegisterBits {
                    stage,
                    used: bits,
                    limit: self.register_bits_per_stage,
                });
            }
        }
        for r in &program.registers {
            if r.total_bits() > self.max_bits_per_register {
                return Err(ResourceError::SingleRegister {
                    register: r.id.0,
                    used: r.total_bits(),
                    limit: self.max_bits_per_register,
                });
            }
        }
        for (stage, &n) in usage.stateless_by_stage.iter().enumerate() {
            if n > self.stateless_per_stage {
                return Err(ResourceError::StatelessTables {
                    stage,
                    used: n,
                    limit: self.stateless_per_stage,
                });
            }
        }
        if usage.metadata_bits > self.metadata_bits {
            return Err(ResourceError::Metadata {
                used: usage.metadata_bits,
                limit: self.metadata_bits,
            });
        }
        // Table order within each task must be strictly increasing in
        // stage (the ILP's C4: an operator cannot precede its inputs).
        let mut last_stage: std::collections::HashMap<crate::ir::TaskId, usize> =
            std::collections::HashMap::new();
        for t in &program.tables {
            if let Some(&prev) = last_stage.get(&t.task) {
                if t.stage <= prev {
                    return Err(ResourceError::StageOrder {
                        table: t.name.clone(),
                        stage: t.stage,
                        previous: prev,
                    });
                }
            }
            last_stage.insert(t.task, t.stage);
        }
        Ok(usage)
    }
}

/// Per-stage and total resource usage of a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Highest stage index used + 1.
    pub stages_used: usize,
    /// Stateful actions per stage.
    pub stateful_by_stage: Vec<usize>,
    /// Stateless tables per stage.
    pub stateless_by_stage: Vec<usize>,
    /// Register bits per stage.
    pub register_bits_by_stage: Vec<u64>,
    /// Total metadata bits across all tasks.
    pub metadata_bits: u64,
}

impl ResourceUsage {
    /// Compute usage for a program, sized to at least `min_stages`.
    pub fn of(program: &PisaProgram, min_stages: usize) -> Self {
        let stages = (program.max_stage() + 1).max(min_stages).max(1);
        let mut stateful = vec![0usize; stages];
        let mut stateless = vec![0usize; stages];
        let mut bits = vec![0u64; stages];
        for t in &program.tables {
            if t.kind.is_stateful() {
                stateful[t.stage] += 1;
            } else {
                stateless[t.stage] += 1;
            }
        }
        for r in &program.registers {
            bits[r.stage] += r.total_bits();
        }
        let metadata_bits: u64 = program
            .meta_fields
            .iter()
            .flat_map(|(_, fs)| fs.iter())
            .map(|f| f.bits as u64)
            .sum();
        let stages_used = if program.tables.is_empty() && program.registers.is_empty() {
            0
        } else {
            program.max_stage() + 1
        };
        ResourceUsage {
            stages_used,
            stateful_by_stage: stateful,
            stateless_by_stage: stateless,
            register_bits_by_stage: bits,
            metadata_bits,
        }
    }

    /// Total register bits across stages.
    pub fn total_register_bits(&self) -> u64 {
        self.register_bits_by_stage.iter().sum()
    }
}

/// A violated resource constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceError {
    /// Too many stages.
    Stages {
        /// Stages used.
        used: usize,
        /// The `S` limit.
        limit: usize,
    },
    /// Too many stateful actions in one stage.
    StatefulActions {
        /// The offending stage.
        stage: usize,
        /// Actions placed there.
        used: usize,
        /// The `A` limit.
        limit: usize,
    },
    /// Too many register bits in one stage.
    RegisterBits {
        /// The offending stage.
        stage: usize,
        /// Bits placed there.
        used: u64,
        /// The `B` limit.
        limit: u64,
    },
    /// A single register exceeds the per-register cap.
    SingleRegister {
        /// Register id.
        register: u32,
        /// Its size in bits.
        used: u64,
        /// The cap.
        limit: u64,
    },
    /// Too many stateless tables in one stage.
    StatelessTables {
        /// The offending stage.
        stage: usize,
        /// Tables placed there.
        used: usize,
        /// The limit.
        limit: usize,
    },
    /// Metadata over budget.
    Metadata {
        /// Bits declared.
        used: u64,
        /// The `M` limit.
        limit: u64,
    },
    /// A task's tables are not in strictly increasing stages.
    StageOrder {
        /// The offending table.
        table: String,
        /// Its stage.
        stage: usize,
        /// The previous table's stage.
        previous: usize,
    },
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::Stages { used, limit } => {
                write!(f, "program uses {used} stages, switch has {limit}")
            }
            ResourceError::StatefulActions { stage, used, limit } => {
                write!(
                    f,
                    "stage {stage} has {used} stateful actions, limit {limit}"
                )
            }
            ResourceError::RegisterBits { stage, used, limit } => {
                write!(f, "stage {stage} uses {used} register bits, limit {limit}")
            }
            ResourceError::SingleRegister {
                register,
                used,
                limit,
            } => {
                write!(
                    f,
                    "register {register} uses {used} bits, per-register cap {limit}"
                )
            }
            ResourceError::StatelessTables { stage, used, limit } => {
                write!(
                    f,
                    "stage {stage} has {used} stateless tables, limit {limit}"
                )
            }
            ResourceError::Metadata { used, limit } => {
                write!(f, "metadata uses {used} bits, PHV budget {limit}")
            }
            ResourceError::StageOrder {
                table,
                stage,
                previous,
            } => {
                write!(
                    f,
                    "table `{table}` at stage {stage} does not follow its predecessor at stage {previous}"
                )
            }
        }
    }
}

impl std::error::Error for ResourceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::*;
    use crate::phv::MetaRef;
    use sonata_query::{Agg, QueryId};

    fn task() -> TaskId {
        TaskId {
            query: QueryId(1),
            level: 32,
            branch: 0,
        }
    }

    fn update_table(name: &str, stage: usize, reg: u32) -> Table {
        Table {
            name: name.into(),
            task: task(),
            stage,
            kind: TableKind::Update {
                reg: RegId(reg),
                agg: Agg::Sum,
                operand: PhvExpr::Const(1),
                distinct: false,
                last_on_switch: true,
                threshold: None,
            },
        }
    }

    fn map_table(name: &str, stage: usize) -> Table {
        Table {
            name: name.into(),
            task: task(),
            stage,
            kind: TableKind::Map {
                assigns: vec![(MetaRef(0), PhvExpr::Const(1))],
            },
        }
    }

    fn register(id: u32, stage: usize, slots: usize) -> RegisterDecl {
        RegisterDecl {
            id: RegId(id),
            task: task(),
            slots,
            arrays: 1,
            value_bits: 32,
            key_bits: 32,
            stage,
            layout: crate::registers::StateLayout::Exact,
            capacity: 0,
        }
    }

    #[test]
    fn empty_program_passes() {
        let c = SwitchConstraints::default();
        let usage = c.check(&PisaProgram::default()).unwrap();
        assert_eq!(usage.stages_used, 0);
        assert_eq!(usage.metadata_bits, 0);
    }

    #[test]
    fn stage_overflow_detected() {
        let c = SwitchConstraints {
            stages: 2,
            ..Default::default()
        };
        let mut p = PisaProgram {
            tasks: vec![task()],
            ..Default::default()
        };
        p.tables.push(map_table("t0", 0));
        p.tables.push(map_table("t1", 1));
        assert!(c.check(&p).is_ok());
        p.tables.push(map_table("t2", 2));
        assert_eq!(
            c.check(&p),
            Err(ResourceError::Stages { used: 3, limit: 2 })
        );
    }

    #[test]
    fn stateful_per_stage_enforced() {
        let c = SwitchConstraints {
            stateful_per_stage: 1,
            ..Default::default()
        };
        // Two stateful updates in stage 0 — but they belong to the same
        // task, which also violates ordering; use different tasks.
        let t2 = TaskId {
            query: QueryId(2),
            level: 32,
            branch: 0,
        };
        let mut second = update_table("u2", 0, 1);
        second.task = t2;
        let p = PisaProgram {
            tables: vec![update_table("u1", 0, 0), second],
            tasks: vec![task(), t2],
            ..Default::default()
        };
        assert!(matches!(
            c.check(&p),
            Err(ResourceError::StatefulActions {
                stage: 0,
                used: 2,
                limit: 1
            })
        ));
    }

    #[test]
    fn register_bits_per_stage_enforced() {
        let c = SwitchConstraints {
            register_bits_per_stage: 1000,
            max_bits_per_register: 1000,
            ..Default::default()
        };
        let p = PisaProgram {
            registers: vec![register(0, 0, 10), register(1, 0, 10)],
            tasks: vec![task()],
            ..Default::default()
        };
        // Each register: 10 slots * 64 bits = 640; two in one stage = 1280.
        assert!(matches!(
            c.check(&p),
            Err(ResourceError::RegisterBits {
                stage: 0,
                used: 1280,
                ..
            })
        ));
    }

    #[test]
    fn single_register_cap_enforced() {
        let c = SwitchConstraints {
            register_bits_per_stage: 100_000,
            max_bits_per_register: 1_000,
            ..Default::default()
        };
        let p = PisaProgram {
            registers: vec![register(0, 0, 100)], // 6400 bits
            tasks: vec![task()],
            ..Default::default()
        };
        assert!(matches!(
            c.check(&p),
            Err(ResourceError::SingleRegister { register: 0, .. })
        ));
    }

    #[test]
    fn metadata_budget_enforced() {
        let c = SwitchConstraints {
            metadata_bits: 64,
            ..Default::default()
        };
        let p = PisaProgram {
            meta_fields: vec![(
                task(),
                vec![
                    MetaField {
                        slot: MetaRef(0),
                        name: "dIP".into(),
                        bits: 32,
                    },
                    MetaField {
                        slot: MetaRef(1),
                        name: "count".into(),
                        bits: 64,
                    },
                ],
            )],
            tasks: vec![task()],
            ..Default::default()
        };
        assert_eq!(
            c.check(&p),
            Err(ResourceError::Metadata {
                used: 96,
                limit: 64
            })
        );
    }

    #[test]
    fn stage_order_within_task_enforced() {
        let p = PisaProgram {
            tables: vec![map_table("a", 1), map_table("b", 1)],
            tasks: vec![task()],
            ..Default::default()
        };
        assert!(matches!(
            SwitchConstraints::default().check(&p),
            Err(ResourceError::StageOrder { .. })
        ));
    }

    #[test]
    fn usage_reports_per_stage() {
        let p = PisaProgram {
            tables: vec![map_table("a", 0), update_table("u", 1, 0)],
            registers: vec![register(0, 1, 100)],
            tasks: vec![task()],
            ..Default::default()
        };
        let usage = SwitchConstraints::default().check(&p).unwrap();
        assert_eq!(usage.stages_used, 2);
        assert_eq!(usage.stateless_by_stage[0], 1);
        assert_eq!(usage.stateful_by_stage[1], 1);
        assert_eq!(usage.register_bits_by_stage[1], 6400);
        assert_eq!(usage.total_register_bits(), 6400);
    }
}
