//! The reconfigurable parser: extracts a program's `parse_fields` into
//! a PHV, either from raw wire bytes (as hardware would) or from an
//! already-decoded [`Packet`] (the fast path for trace-driven runs).
//! Both paths must agree — a property test in the crate's test suite
//! checks them against each other.

use crate::phv::Phv;
use sonata_packet::wire::{Ipv4View, TcpView, UdpView};
use sonata_packet::{Field, Packet};

/// Parse a decoded packet into a fresh PHV.
///
/// Only `parse_fields` are extracted; everything else reads zero.
/// Fields a PISA parser cannot extract (payload, DNS names) are
/// skipped — the stream processor handles them from the mirrored
/// original packet.
pub fn parse_packet(pkt: &Packet, parse_fields: &[Field], meta_slots: usize, tasks: usize) -> Phv {
    let mut phv = Phv::new(meta_slots, tasks);
    parse_packet_into(&mut phv, pkt, parse_fields, meta_slots, tasks);
    phv
}

/// [`parse_packet`] into a reusable scratch PHV: the buffer is reset
/// in place, so a steady-state packet loop never allocates.
pub fn parse_packet_into(
    phv: &mut Phv,
    pkt: &Packet,
    parse_fields: &[Field],
    meta_slots: usize,
    tasks: usize,
) {
    phv.reset(meta_slots, tasks);
    for &f in parse_fields {
        if !f.switch_parseable() {
            continue;
        }
        if let Some(v) = pkt.get(f) {
            if let Some(u) = v.as_u64() {
                phv.set_field(f, u);
            }
        }
    }
}

/// Parse raw wire bytes (IPv4-first framing) into a fresh PHV, walking
/// the parse graph: IPv4 → {TCP, UDP} (→ DNS header bits).
pub fn parse_bytes(bytes: &[u8], parse_fields: &[Field], meta_slots: usize, tasks: usize) -> Phv {
    let mut phv = Phv::new(meta_slots, tasks);
    parse_bytes_into(&mut phv, bytes, parse_fields, meta_slots, tasks);
    phv
}

/// [`parse_bytes`] into a reusable scratch PHV (reset in place).
pub fn parse_bytes_into(
    phv: &mut Phv,
    bytes: &[u8],
    parse_fields: &[Field],
    meta_slots: usize,
    tasks: usize,
) {
    phv.reset(meta_slots, tasks);
    // `Field` has < 32 variants in `Field::ALL` declaration order, so
    // membership checks collapse to one bit test instead of a linear
    // scan per candidate field.
    let mut mask = 0u32;
    for &f in parse_fields {
        mask |= 1 << f as u32;
    }
    let want = |f: Field| mask & (1 << f as u32) != 0;
    let Ok(ip) = Ipv4View::new(bytes) else {
        return;
    };
    if want(Field::Ipv4Src) {
        phv.set_field(Field::Ipv4Src, ip.src() as u64);
    }
    if want(Field::Ipv4Dst) {
        phv.set_field(Field::Ipv4Dst, ip.dst() as u64);
    }
    if want(Field::Ipv4Proto) {
        phv.set_field(Field::Ipv4Proto, ip.protocol().to_wire() as u64);
    }
    if want(Field::Ipv4Len) {
        phv.set_field(Field::Ipv4Len, ip.total_len() as u64);
    }
    if want(Field::Ipv4Ttl) {
        phv.set_field(Field::Ipv4Ttl, ip.ttl() as u64);
    }
    if want(Field::PktLen) {
        phv.set_field(Field::PktLen, bytes.len() as u64);
    }
    let l4 = ip.payload();
    match ip.protocol() {
        sonata_packet::IpProtocol::Tcp => {
            if let Ok(tcp) = TcpView::new(l4) {
                if want(Field::TcpSrcPort) {
                    phv.set_field(Field::TcpSrcPort, tcp.src_port() as u64);
                }
                if want(Field::TcpDstPort) {
                    phv.set_field(Field::TcpDstPort, tcp.dst_port() as u64);
                }
                if want(Field::TcpFlags) {
                    phv.set_field(Field::TcpFlags, tcp.flags() as u64);
                }
                if want(Field::TcpSeq) {
                    phv.set_field(Field::TcpSeq, tcp.seq() as u64);
                }
                if want(Field::TcpAck) {
                    phv.set_field(Field::TcpAck, tcp.ack() as u64);
                }
                if want(Field::PayloadLen) {
                    phv.set_field(Field::PayloadLen, tcp.payload().len() as u64);
                }
            }
        }
        sonata_packet::IpProtocol::Udp => {
            if let Ok(udp) = UdpView::new(l4) {
                if want(Field::UdpSrcPort) {
                    phv.set_field(Field::UdpSrcPort, udp.src_port() as u64);
                }
                if want(Field::UdpDstPort) {
                    phv.set_field(Field::UdpDstPort, udp.dst_port() as u64);
                }
                if want(Field::PayloadLen) {
                    phv.set_field(Field::PayloadLen, udp.payload().len() as u64);
                }
                // Fixed-offset DNS header fields are parseable in the
                // data plane (the variable-length name is not).
                let dns = udp.payload();
                if (udp.dst_port() == 53 || udp.src_port() == 53) && dns.len() >= 12 {
                    if want(Field::DnsQr) {
                        phv.set_field(Field::DnsQr, ((dns[2] >> 7) & 1) as u64);
                    }
                    if want(Field::DnsAnCount) {
                        phv.set_field(
                            Field::DnsAnCount,
                            u16::from_be_bytes([dns[6], dns[7]]) as u64,
                        );
                    }
                    if want(Field::DnsQType) {
                        // First question's qtype sits right after its
                        // name; walk labels (bounded).
                        let mut pos = 12usize;
                        let mut hops = 0;
                        while pos < dns.len() && dns[pos] != 0 && hops < 32 {
                            pos += 1 + dns[pos] as usize;
                            hops += 1;
                        }
                        if pos + 2 < dns.len() && dns.get(pos) == Some(&0) {
                            phv.set_field(
                                Field::DnsQType,
                                u16::from_be_bytes([dns[pos + 1], dns[pos + 2]]) as u64,
                            );
                        }
                    }
                }
            }
        }
        sonata_packet::IpProtocol::Icmp => {
            if want(Field::IcmpType) && !l4.is_empty() {
                phv.set_field(Field::IcmpType, l4[0] as u64);
            }
            if want(Field::PayloadLen) && l4.len() >= 8 {
                phv.set_field(Field::PayloadLen, (l4.len() - 8) as u64);
            }
        }
        _ => {
            if want(Field::PayloadLen) {
                phv.set_field(Field::PayloadLen, l4.len() as u64);
            }
        }
    }
}

/// Whether [`parse_gate_columns`] can extract every field in
/// `fields`: the fixed-offset L3/L4 scalars. Protocol-conditional
/// lengths (`PayloadLen`) and DNS header fields keep their logic in
/// one place — [`parse_bytes_into`] — and gate extraction falls back
/// to the PHV parse for them.
pub fn gate_specializable(fields: &[Field]) -> bool {
    fields.iter().all(|f| {
        matches!(
            f,
            Field::Ipv4Src
                | Field::Ipv4Dst
                | Field::Ipv4Proto
                | Field::Ipv4Len
                | Field::Ipv4Ttl
                | Field::PktLen
                | Field::TcpSrcPort
                | Field::TcpDstPort
                | Field::TcpFlags
                | Field::TcpSeq
                | Field::TcpAck
                | Field::UdpSrcPort
                | Field::UdpDstPort
                | Field::IcmpType
        )
    })
}

/// Extract gate fields of one packet straight into a column-major
/// block (`cols[c * n + i]` is column `c` of packet `i`), bypassing
/// the PHV entirely — no slot reset, no valid-bit bookkeeping. Values
/// are bit-identical to what [`parse_bytes_into`] would put in the
/// corresponding PHV slots for every field [`gate_specializable`]
/// admits: an unparseable layer reads zero, exactly like an unset
/// slot.
#[inline]
pub fn parse_gate_columns(bytes: &[u8], fields: &[Field], cols: &mut [u64], n: usize, i: usize) {
    let Ok(ip) = Ipv4View::new(bytes) else {
        for c in 0..fields.len() {
            cols[c * n + i] = 0;
        }
        return;
    };
    let l4 = ip.payload();
    let proto = ip.protocol();
    let tcp = match proto {
        sonata_packet::IpProtocol::Tcp => TcpView::new(l4).ok(),
        _ => None,
    };
    let udp = match proto {
        sonata_packet::IpProtocol::Udp => UdpView::new(l4).ok(),
        _ => None,
    };
    for (c, &f) in fields.iter().enumerate() {
        cols[c * n + i] = match f {
            Field::Ipv4Src => ip.src() as u64,
            Field::Ipv4Dst => ip.dst() as u64,
            Field::Ipv4Proto => proto.to_wire() as u64,
            Field::Ipv4Len => ip.total_len() as u64,
            Field::Ipv4Ttl => ip.ttl() as u64,
            Field::PktLen => bytes.len() as u64,
            Field::TcpSrcPort => tcp.map_or(0, |t| t.src_port() as u64),
            Field::TcpDstPort => tcp.map_or(0, |t| t.dst_port() as u64),
            Field::TcpFlags => tcp.map_or(0, |t| t.flags() as u64),
            Field::TcpSeq => tcp.map_or(0, |t| t.seq() as u64),
            Field::TcpAck => tcp.map_or(0, |t| t.ack() as u64),
            Field::UdpSrcPort => udp.map_or(0, |u| u.src_port() as u64),
            Field::UdpDstPort => udp.map_or(0, |u| u.dst_port() as u64),
            Field::IcmpType => match proto {
                sonata_packet::IpProtocol::Icmp if !l4.is_empty() => l4[0] as u64,
                _ => 0,
            },
            _ => unreachable!("gate_specializable admitted the field list"),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonata_packet::{DnsHeader, PacketBuilder, TcpFlags};

    fn all_switch_fields() -> Vec<Field> {
        Field::ALL
            .iter()
            .copied()
            .filter(|f| f.switch_parseable())
            .collect()
    }

    #[test]
    fn bytes_and_packet_paths_agree_tcp() {
        let pkt = PacketBuilder::tcp("10.0.0.1:1234", "192.168.1.5:80")
            .unwrap()
            .flags(TcpFlags::SYN)
            .seq(7)
            .payload(&b"hello"[..])
            .build();
        let fields = all_switch_fields();
        let a = parse_packet(&pkt, &fields, 0, 1);
        let b = parse_bytes(&pkt.encode(), &fields, 0, 1);
        for f in &fields {
            assert_eq!(a.field(*f), b.field(*f), "field {f}");
        }
        assert_eq!(a.field(Field::TcpFlags), 2);
        assert_eq!(a.field(Field::PayloadLen), 5);
    }

    #[test]
    fn bytes_and_packet_paths_agree_dns() {
        let msg = DnsHeader::response(
            1,
            "x.example.com",
            sonata_packet::dns::DnsQType::Txt,
            vec![sonata_packet::DnsRecord {
                name: "x.example.com".into(),
                rtype: sonata_packet::dns::DnsQType::Txt,
                ttl: 1,
                rdata: vec![1, 2, 3],
            }],
        );
        let pkt = PacketBuilder::dns(5, 6, msg).build();
        let fields = all_switch_fields();
        let a = parse_packet(&pkt, &fields, 0, 1);
        let b = parse_bytes(&pkt.encode(), &fields, 0, 1);
        for f in &fields {
            assert_eq!(a.field(*f), b.field(*f), "field {f}");
        }
        assert_eq!(a.field(Field::DnsQr), 1);
        assert_eq!(a.field(Field::DnsAnCount), 1);
        assert_eq!(a.field(Field::DnsQType), 16);
    }

    #[test]
    fn only_requested_fields_are_parsed() {
        let pkt = PacketBuilder::tcp("1.2.3.4:1:", "5.6.7.8:9");
        assert!(pkt.is_none());
        let pkt = PacketBuilder::tcp("1.2.3.4:1", "5.6.7.8:9")
            .unwrap()
            .build();
        let phv = parse_packet(&pkt, &[Field::Ipv4Dst], 0, 1);
        assert!(phv.field_valid(Field::Ipv4Dst));
        assert!(!phv.field_valid(Field::Ipv4Src));
        assert_eq!(phv.field(Field::TcpSrcPort), 0);
    }

    #[test]
    fn unparseable_fields_skipped() {
        let pkt = PacketBuilder::tcp("1.2.3.4:1", "5.6.7.8:9")
            .unwrap()
            .payload(&b"zorro"[..])
            .build();
        let phv = parse_packet(&pkt, &[Field::Payload, Field::DnsRrName], 0, 1);
        assert!(!phv.field_valid(Field::Payload));
        assert!(!phv.field_valid(Field::DnsRrName));
    }

    #[test]
    fn garbage_bytes_yield_empty_phv() {
        let phv = parse_bytes(&[0xde, 0xad], &all_switch_fields(), 0, 1);
        for f in Field::ALL {
            assert!(!phv.field_valid(*f));
        }
    }

    #[test]
    fn gate_columns_match_phv_parse() {
        use sonata_packet::dns::DnsQType;
        let fields: Vec<Field> = all_switch_fields()
            .into_iter()
            .filter(|f| gate_specializable(&[*f]))
            .collect();
        assert!(gate_specializable(&fields));
        // Out-of-subset fields force the PHV fallback.
        assert!(!gate_specializable(&[Field::Ipv4Dst, Field::PayloadLen]));
        assert!(!gate_specializable(&[Field::DnsQr]));

        let packets = [
            PacketBuilder::tcp("10.0.0.1:1234", "192.168.1.5:80")
                .unwrap()
                .flags(TcpFlags::SYN)
                .seq(7)
                .payload(&b"hello"[..])
                .build(),
            PacketBuilder::udp_raw(0x0a000002, 5353, 0x0b000003, 53).build(),
            PacketBuilder::icmp_raw(0x0a000004, 0x0b000005).build(),
            PacketBuilder::dns(9, 10, DnsHeader::query(1, "x.example.com", DnsQType::A)).build(),
        ];
        let wires: Vec<Vec<u8>> = packets.iter().map(|p| p.encode()).collect();
        // One garbage record: the specialized path must zero its lane
        // like a failed parse zeroes the PHV.
        let mut records: Vec<&[u8]> = wires.iter().map(Vec::as_slice).collect();
        records.push(&[0xde, 0xad]);

        let n = records.len();
        let mut cols = vec![0xffu64; fields.len() * n];
        for (i, bytes) in records.iter().enumerate() {
            parse_gate_columns(bytes, &fields, &mut cols, n, i);
        }
        for (i, bytes) in records.iter().enumerate() {
            let phv = parse_bytes(bytes, &fields, 0, 1);
            for (c, &f) in fields.iter().enumerate() {
                assert_eq!(
                    cols[c * n + i],
                    phv.field(f),
                    "record {i}, field {f}: specialized gate extraction diverged"
                );
            }
        }
    }
}
