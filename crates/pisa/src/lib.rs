//! # sonata-pisa
//!
//! A behavioral model of a PISA (protocol-independent switch
//! architecture) switch — the substrate Sonata partitions queries onto.
//!
//! The paper targets Barefoot Tofino and the BMV2 P4 software switch;
//! its evaluation parameterizes a *simulated* PISA switch by four
//! resource constraints (Section 3.2): metadata bits `M`, stateful
//! actions per stage `A`, register bits per stage `B`, and pipeline
//! stages `S`. This crate implements that model end to end:
//!
//! * a **P4-like IR** ([`ir`]) — parser specification, match-action
//!   tables (filter / map / dynamic filter / hash / register-update),
//!   metadata layout, and register declarations, all assigned to
//!   pipeline stages;
//! * a **packet header vector** ([`phv`]) and a **reconfigurable
//!   parser** ([`parser`]) that extracts exactly the fields a compiled
//!   query needs, either from raw wire bytes or from decoded packets;
//! * **hash-indexed registers** ([`registers`]) with the paper's
//!   `d`-register collision-mitigation scheme: keys are stored beside
//!   values, probes cascade across `d` differently-seeded arrays, and
//!   keys that collide in all `d` are *shunted* to the stream
//!   processor (Section 3.1.3);
//! * the **resource model** ([`resources`]) that validates a program
//!   against `M`/`A`/`B`/`S` at load time;
//! * the **behavioral model** itself ([`switch`]) — per-packet
//!   pipeline execution, report mirroring, end-of-window register
//!   dumps — and the **control API** ([`control`]) with the measured
//!   update-latency cost model from Section 6.2 (≈127 ms per 200 table
//!   entries, ≈4 ms register reset);
//! * a **query compiler** ([`compile`]) that turns a prefix of a
//!   Sonata dataflow pipeline into IR tables exactly as Section 3.1.2
//!   prescribes (filter → 1 table, map → 1 table, reduce/distinct →
//!   hash + update tables, threshold filters merged into the update
//!   table), and **codegen** ([`codegen`]) that renders the IR as
//!   P4-ish source for the Table 3 lines-of-code comparison.

pub mod batch;
pub mod codegen;
pub mod compile;
pub mod control;
pub(crate) mod exec;
pub mod ir;
pub mod parser;
pub mod phv;
pub mod registers;
pub mod resources;
pub mod switch;

pub use batch::{ReportBatch, ReportRef};
pub use compile::{compile_pipeline, table_specs, CompileError, CompiledPipeline, TableSpec};
pub use control::{AppliedUpdate, ControlOp, UpdateCostModel};
pub use ir::{PisaProgram, RegisterDecl, Table, TableKind, TaskId};
pub use registers::{
    BloomRegisters, CmRegisters, HashRegisters, RegOutcome, RegisterState, SketchConfig,
    StateLayout,
};
pub use resources::{ResourceError, ResourceUsage, SwitchConstraints};
pub use switch::{Report, ReportKind, SketchBound, Switch, SwitchCounters, WindowDump};
