//! The control-plane API: the channel Sonata's runtime uses to update
//! the switch between windows (the paper drives BMV2/Tofino over a
//! Thrift API; here it is an in-process call with the same semantics
//! and a calibrated latency model).
//!
//! Section 6.2 measures the update overhead on a Tofino: updating 200
//! filter-table entries takes ≈127 ms and resetting registers ≈4 ms,
//! together ≈5 % of a 3-second window. [`UpdateCostModel`] reproduces
//! those costs so the experiment harness can regenerate the numbers.

use crate::switch::Switch;
use std::collections::BTreeSet;
use std::time::Duration;

/// One control-plane operation.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlOp {
    /// Replace the entry set of a dynamic filter table.
    SetDynFilter {
        /// The table's name.
        table: String,
        /// The new entries (masked key values).
        entries: BTreeSet<u64>,
    },
    /// Reset all registers (implicit in `end_window`, but counted as a
    /// control operation for the overhead model).
    ResetRegisters,
}

/// Latency model for control operations, calibrated to the paper's
/// Tofino micro-benchmarks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateCostModel {
    /// Time per filter-table entry written (127 ms / 200 entries).
    pub per_entry: Duration,
    /// Fixed cost of one register reset pass.
    pub register_reset: Duration,
}

impl Default for UpdateCostModel {
    fn default() -> Self {
        UpdateCostModel {
            per_entry: Duration::from_micros(635), // 127 ms / 200
            register_reset: Duration::from_millis(4),
        }
    }
}

impl UpdateCostModel {
    /// Cost of one operation.
    pub fn cost_of(&self, op: &ControlOp) -> Duration {
        match op {
            ControlOp::SetDynFilter { entries, .. } => self.per_entry * entries.len() as u32,
            ControlOp::ResetRegisters => self.register_reset,
        }
    }

    /// Apply a batch of operations to a switch, returning the total
    /// simulated latency and the number of entries written. Unknown
    /// table names are reported as errors.
    pub fn apply(&self, switch: &mut Switch, ops: &[ControlOp]) -> Result<AppliedUpdate, String> {
        let mut total = Duration::ZERO;
        let mut entries_written = 0usize;
        for op in ops {
            total += self.cost_of(op);
            match op {
                ControlOp::SetDynFilter { table, entries } => {
                    entries_written += switch.set_dyn_filter(table, entries.clone())?;
                }
                ControlOp::ResetRegisters => {
                    // Registers are reset by `end_window`; this op only
                    // accounts for its latency.
                }
            }
        }
        Ok(AppliedUpdate {
            latency: total,
            entries_written,
        })
    }
}

/// Result of applying a control batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppliedUpdate {
    /// Total simulated control-plane latency.
    pub latency: Duration,
    /// Filter entries written.
    pub entries_written: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_match_paper_microbenchmarks() {
        let m = UpdateCostModel::default();
        let entries: BTreeSet<u64> = (0..200).collect();
        let update = ControlOp::SetDynFilter {
            table: "x".into(),
            entries,
        };
        let c = m.cost_of(&update);
        // 200 entries ≈ 127 ms.
        assert!((c.as_millis() as i64 - 127).abs() <= 1, "{c:?}");
        assert_eq!(
            m.cost_of(&ControlOp::ResetRegisters),
            Duration::from_millis(4)
        );
        // Combined ≈131 ms ≈ 5% of a 3 s window (Section 6.2).
        let total = c + Duration::from_millis(4);
        let frac = total.as_secs_f64() / 3.0;
        assert!((0.035..0.055).contains(&frac), "frac={frac}");
    }

    #[test]
    fn apply_updates_switch_and_accumulates_latency() {
        use crate::compile::{compile_pipeline, RegisterSizing};
        use sonata_packet::Field;
        use sonata_query::expr::{col, field, lit, Pred};
        use sonata_query::Agg;
        let q = sonata_query::Query::builder("refined", 4)
            .filter(Pred::in_set(
                field(Field::Ipv4Dst).mask(8),
                std::collections::BTreeSet::new(),
            ))
            .map([("dIP", field(Field::Ipv4Dst)), ("c", lit(1))])
            .reduce(&["dIP"], Agg::Sum, "c")
            .filter(col("c").gt(lit(0)))
            .build()
            .unwrap();
        let cp = compile_pipeline(
            &q.pipeline,
            crate::ir::TaskId {
                query: sonata_query::QueryId(4),
                level: 8,
                branch: 0,
            },
            &[0, 1, 2],
            &[RegisterSizing {
                slots: 32,
                arrays: 1,
                ..Default::default()
            }],
            0,
            0,
        )
        .unwrap();
        let mut sw = crate::switch::Switch::load(cp.fragment, &Default::default()).unwrap();
        let table = sw.dyn_filter_tables()[0].0.clone();
        let m = UpdateCostModel::default();
        let applied = m
            .apply(
                &mut sw,
                &[
                    ControlOp::SetDynFilter {
                        table,
                        entries: (0..10u64).collect(),
                    },
                    ControlOp::ResetRegisters,
                ],
            )
            .unwrap();
        assert_eq!(applied.entries_written, 10);
        assert_eq!(
            applied.latency,
            Duration::from_micros(6350) + Duration::from_millis(4)
        );
        // Unknown table errors.
        assert!(m
            .apply(
                &mut sw,
                &[ControlOp::SetDynFilter {
                    table: "ghost".into(),
                    entries: BTreeSet::new(),
                }],
            )
            .is_err());
    }
}
