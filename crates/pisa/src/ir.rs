//! The P4-like intermediate representation a Sonata query plan
//! compiles to: a parser specification, metadata layout, register
//! declarations, and stage-assigned match-action tables.

use crate::phv::{MetaRef, Phv};
use sonata_packet::Field;
use sonata_query::{Agg, ColName, QueryId};
use sonata_sketch::StateLayout;
use std::collections::BTreeSet;
use std::fmt;

/// Identifies one compiled pipeline instance on the switch: a query,
/// the refinement level it runs at, and which branch of the query
/// (joins compile each sub-query separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId {
    /// The owning query.
    pub query: QueryId,
    /// Refinement level this instance runs at (the field's finest
    /// level means "unrefined": masking at the finest level is the
    /// identity).
    pub level: u8,
    /// Branch: 0 = left/main pipeline, 1 = join's right sub-query.
    pub branch: u8,
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_r{}_b{}", self.query, self.level, self.branch)
    }
}

/// An identifier of a register allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId(pub u32);

/// An expression over PHV contents, restricted to what a match-action
/// ALU can compute: copies, constants, masks, shifts, add/sub.
#[derive(Debug, Clone, PartialEq)]
pub enum PhvExpr {
    /// A constant.
    Const(u64),
    /// A parsed header field.
    Field(Field),
    /// A metadata container.
    Meta(MetaRef),
    /// Prefix mask (keep top `level` bits of a 32-bit value).
    Mask(Box<PhvExpr>, u8),
    /// Logical shift right (division by a power of two).
    Shr(Box<PhvExpr>, u32),
    /// Logical shift left (multiplication by a power of two).
    Shl(Box<PhvExpr>, u32),
    /// Wrapping addition.
    Add(Box<PhvExpr>, Box<PhvExpr>),
    /// Saturating subtraction.
    Sub(Box<PhvExpr>, Box<PhvExpr>),
}

impl PhvExpr {
    /// Evaluate against a PHV.
    pub fn eval(&self, phv: &Phv) -> u64 {
        match self {
            PhvExpr::Const(v) => *v,
            PhvExpr::Field(f) => phv.field(*f),
            PhvExpr::Meta(m) => phv.meta(*m),
            PhvExpr::Mask(e, level) => {
                let v = e.eval(phv) as u32;
                let mask = if *level == 0 {
                    0
                } else if *level >= 32 {
                    u32::MAX
                } else {
                    u32::MAX << (32 - *level as u32)
                };
                (v & mask) as u64
            }
            PhvExpr::Shr(e, k) => e.eval(phv) >> k.min(&63),
            PhvExpr::Shl(e, k) => e.eval(phv) << k.min(&63),
            PhvExpr::Add(a, b) => a.eval(phv).wrapping_add(b.eval(phv)),
            PhvExpr::Sub(a, b) => a.eval(phv).saturating_sub(b.eval(phv)),
        }
    }
}

impl fmt::Display for PhvExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhvExpr::Const(v) => write!(f, "{v}"),
            PhvExpr::Field(x) => write!(f, "hdr.{}", x.name()),
            PhvExpr::Meta(m) => write!(f, "meta.m{}", m.0),
            PhvExpr::Mask(e, l) => write!(f, "({e} & pfx{l})"),
            PhvExpr::Shr(e, k) => write!(f, "({e} >> {k})"),
            PhvExpr::Shl(e, k) => write!(f, "({e} << {k})"),
            PhvExpr::Add(a, b) => write!(f, "({a} + {b})"),
            PhvExpr::Sub(a, b) => write!(f, "({a} |-| {b})"),
        }
    }
}

/// Comparison relation in a filter table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchRel {
    /// Equality (exact match).
    Eq,
    /// Inequality.
    Ne,
    /// Greater than (range match).
    Gt,
    /// Greater or equal.
    Ge,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
}

impl MatchRel {
    /// Evaluate the relation.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            MatchRel::Eq => a == b,
            MatchRel::Ne => a != b,
            MatchRel::Gt => a > b,
            MatchRel::Ge => a >= b,
            MatchRel::Lt => a < b,
            MatchRel::Le => a <= b,
        }
    }
}

/// A static filter condition: conjunction of comparisons.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatchSpec {
    /// All clauses must hold (one rule row with multiple columns).
    pub clauses: Vec<(PhvExpr, MatchRel, PhvExpr)>,
}

impl MatchSpec {
    /// Evaluate against a PHV.
    pub fn matches(&self, phv: &Phv) -> bool {
        self.clauses
            .iter()
            .all(|(a, rel, b)| rel.eval(a.eval(phv), b.eval(phv)))
    }
}

/// What a table does when it executes.
#[derive(Debug, Clone, PartialEq)]
pub enum TableKind {
    /// A static filter: on miss, kill the task.
    Filter {
        /// The compiled predicate (disjunction of conjunctions: one
        /// rule row per disjunct).
        rules: Vec<MatchSpec>,
    },
    /// A dynamic filter whose entries the control plane updates at
    /// every window boundary (the refinement feedback loop): the task
    /// survives iff `key ∈ entries`.
    DynFilter {
        /// Key expression (e.g. `dIP masked to the previous level`).
        key: PhvExpr,
        /// Allowed values; starts empty (nothing passes) unless
        /// `pass_when_empty`.
        entries: BTreeSet<u64>,
        /// If true, an empty entry set passes everything — used for
        /// the first (coarsest) refinement level.
        pass_when_empty: bool,
    },
    /// Stateless transform: assign metadata containers.
    Map {
        /// Assignments applied in order.
        assigns: Vec<(MetaRef, PhvExpr)>,
    },
    /// First half of a stateful operator: compute the register key
    /// into metadata (the "index computation" table of Section 3.1.2).
    Hash {
        /// The backing register.
        reg: RegId,
        /// Key parts; stored for collision detection.
        key: Vec<PhvExpr>,
    },
    /// Second half of a stateful operator: read-modify-write the
    /// register (the "update" table).
    Update {
        /// The backing register.
        reg: RegId,
        /// Aggregation function.
        agg: Agg,
        /// Operand expression (the value column).
        operand: PhvExpr,
        /// `distinct` semantics: pass only the first occurrence of a
        /// key, kill repeats (instead of aggregating a count).
        distinct: bool,
        /// If this is the task's last switch table: report one packet
        /// per key (first touch), or per threshold crossing when a
        /// merged threshold is present.
        last_on_switch: bool,
        /// Threshold merged from a following `filter(out > Th)`;
        /// reports exactly when the running value crosses it.
        threshold: Option<u64>,
    },
}

impl TableKind {
    /// Whether the table performs a stateful action (consumes one of
    /// the `A` stateful units of its stage).
    pub fn is_stateful(&self) -> bool {
        matches!(self, TableKind::Update { .. })
    }

    /// Short kind label for codegen and diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TableKind::Filter { .. } => "filter",
            TableKind::DynFilter { .. } => "dyn_filter",
            TableKind::Map { .. } => "map",
            TableKind::Hash { .. } => "hash",
            TableKind::Update { .. } => "update",
        }
    }
}

/// A match-action table assigned to a stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Unique name, e.g. `q1_r32_b0_t2_map`.
    pub name: String,
    /// The owning task.
    pub task: TaskId,
    /// Pipeline stage (must respect the program's stage count).
    pub stage: usize,
    /// Behavior.
    pub kind: TableKind,
}

/// A register declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisterDecl {
    /// Identifier referenced by Hash/Update tables.
    pub id: RegId,
    /// The owning task.
    pub task: TaskId,
    /// Slots per array (the paper's `n`, estimated from training data).
    pub slots: usize,
    /// Number of differently-hashed arrays (the paper's `d`).
    pub arrays: usize,
    /// Value width in bits.
    pub value_bits: u32,
    /// Stored-key width in bits (for collision detection).
    pub key_bits: u32,
    /// Stage holding the register (co-located with its Update table).
    pub stage: usize,
    /// Physical layout of the state. `Exact` is a keyed hash table;
    /// the sketch layouts reinterpret `slots`/`arrays` as sketch
    /// dimensions (count-min width/depth) and stop charging for
    /// stored keys.
    pub layout: StateLayout,
    /// Expected distinct keys per window (sizes the Bloom admission
    /// state of sketch layouts). `0` means "derive from the exact
    /// table dimensions".
    pub capacity: usize,
}

impl RegisterDecl {
    /// Expected distinct keys per window, defaulting to the table's
    /// total slot count when the planner didn't stamp one.
    pub fn capacity_keys(&self) -> usize {
        if self.capacity > 0 {
            self.capacity
        } else {
            self.slots * self.arrays
        }
    }

    /// Total register memory consumed, in bits.
    ///
    /// Sketch layouts are what make this interesting: a count-min
    /// charges `width × depth` 32-bit counters plus a Bloom admission
    /// filter at [`sonata_sketch::BLOOM_BITS_PER_KEY`] bits per
    /// expected key, and a Bloom `distinct` charges only the
    /// admission bits — neither stores keys, which is where the
    /// capacity multiplier over `Exact` comes from. First-touch keys
    /// are mirrored to the stream processor instead (Sonata already
    /// mirrors first touches for `distinct`), so they cost report
    /// bandwidth, not register SRAM.
    pub fn total_bits(&self) -> u64 {
        match self.layout {
            StateLayout::Exact => {
                self.slots as u64 * self.arrays as u64 * (self.value_bits + self.key_bits) as u64
            }
            StateLayout::CountMin => {
                self.slots as u64 * self.arrays as u64 * sonata_sketch::CM_COUNTER_BITS as u64
                    + sonata_sketch::bloom_bits_for(self.capacity_keys()) as u64
            }
            StateLayout::Bloom => sonata_sketch::bloom_bits_for(self.capacity_keys()) as u64,
            StateLayout::Hll => {
                sonata_sketch::bloom_bits_for(self.capacity_keys()) as u64
                    + ((1u64 << sonata_sketch::HLL_PRECISION) * 8)
            }
        }
    }
}

/// Metadata owned by one task.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaField {
    /// Container index.
    pub slot: MetaRef,
    /// Column name it carries (for the emitter's tuple layout).
    pub name: String,
    /// Declared width in bits (counts against `M`).
    pub bits: u32,
}

/// How a task's results leave the switch.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportMode {
    /// Every packet alive after the task's last table is mirrored to
    /// the monitoring port (partition ends in a stateless table, or in
    /// a `distinct`, which passes first occurrences).
    PerPacket,
    /// The task ends in a `reduce`: results are read from the register
    /// at window end (one tuple per stored key). When no collision
    /// shunted during the window, the merged threshold is applied at
    /// the switch; otherwise the dump is delivered raw and the emitter
    /// adjusts it with the shunted packets before thresholding
    /// (Section 5: the emitter's local key-value store).
    WindowDump {
        /// The register to poll.
        reg: RegId,
        /// Merged threshold: only keys whose aggregate exceeds it are
        /// delivered (applied at the switch on the no-shunt fast path,
        /// by the emitter otherwise).
        threshold: Option<u64>,
        /// Column names of the key parts, in order.
        key_names: Vec<ColName>,
        /// Output column name of the aggregated value.
        value_name: ColName,
        /// The reduce's *input* value column name — the column a dump
        /// tuple must populate when re-entering the pipeline at the
        /// reduce for shunt merging.
        value_input_name: ColName,
        /// Pipeline operator index of the reduce (merge entry point).
        reduce_op: usize,
    },
}

/// Shunt reporting for one stateful unit: where its shunted tuples
/// re-enter the residual pipeline and what they carry.
#[derive(Debug, Clone, PartialEq)]
pub struct ShuntSpec {
    /// The register whose collision produced the shunt.
    pub reg: RegId,
    /// Pipeline operator index of the stateful operator.
    pub entry_op: usize,
    /// Tuple columns `(name, source)` — the operator's input columns,
    /// evaluated from the PHV at shunt time. Names are interned so
    /// per-packet report construction only clones an `Arc`.
    pub columns: Vec<(ColName, PhvExpr)>,
}

/// A task's report configuration: how tuples leave the switch and what
/// they contain.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSpec {
    /// The task.
    pub task: TaskId,
    /// Delivery mode.
    pub mode: ReportMode,
    /// For [`ReportMode::PerPacket`]: tuple columns `(name, source)`.
    /// Names are interned `ColName`s bound at compile time.
    pub columns: Vec<(ColName, PhvExpr)>,
    /// Per-register shunt layouts (one per stateful unit on the switch).
    pub shunts: Vec<ShuntSpec>,
    /// Mirror the original packet alongside the tuple (partition ends
    /// while the stream is still raw packets, or payload is needed).
    pub include_packet: bool,
}

/// A complete program loadable onto the behavioral model.
#[derive(Debug, Clone, Default)]
pub struct PisaProgram {
    /// Fields the reconfigurable parser extracts.
    pub parse_fields: Vec<Field>,
    /// Total metadata containers (u64 slots) in the PHV.
    pub meta_slots: usize,
    /// Per-task metadata declarations (for `M` accounting).
    pub meta_fields: Vec<(TaskId, Vec<MetaField>)>,
    /// All tables, any order; execution sorts by (stage, insertion).
    pub tables: Vec<Table>,
    /// Register declarations.
    pub registers: Vec<RegisterDecl>,
    /// Report layouts per task.
    pub reports: Vec<ReportSpec>,
    /// Number of tasks (PHV liveness slots); tasks are dense indices
    /// assigned by the compiler, mapped from `TaskId` via `task_index`.
    pub tasks: Vec<TaskId>,
}

impl PisaProgram {
    /// Dense index of a task.
    pub fn task_index(&self, t: TaskId) -> Option<usize> {
        self.tasks.iter().position(|x| *x == t)
    }

    /// Highest stage referenced by any table or register.
    pub fn max_stage(&self) -> usize {
        self.tables
            .iter()
            .map(|t| t.stage)
            .chain(self.registers.iter().map(|r| r.stage))
            .max()
            .unwrap_or(0)
    }

    /// Merge another program fragment into this one (distinct tasks).
    pub fn merge(&mut self, other: PisaProgram) {
        for f in other.parse_fields {
            if !self.parse_fields.contains(&f) {
                self.parse_fields.push(f);
            }
        }
        self.meta_slots = self.meta_slots.max(other.meta_slots);
        self.meta_fields.extend(other.meta_fields);
        self.tables.extend(other.tables);
        self.registers.extend(other.registers);
        self.reports.extend(other.reports);
        for t in other.tasks {
            if !self.tasks.contains(&t) {
                self.tasks.push(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phv_expr_eval() {
        let mut phv = Phv::new(2, 1);
        phv.set_field(Field::Ipv4Dst, 0x0a0b0c0d);
        phv.set_meta(MetaRef(0), 100);
        assert_eq!(PhvExpr::Const(7).eval(&phv), 7);
        assert_eq!(PhvExpr::Field(Field::Ipv4Dst).eval(&phv), 0x0a0b0c0d);
        assert_eq!(PhvExpr::Meta(MetaRef(0)).eval(&phv), 100);
        assert_eq!(
            PhvExpr::Mask(Box::new(PhvExpr::Field(Field::Ipv4Dst)), 16).eval(&phv),
            0x0a0b0000
        );
        assert_eq!(PhvExpr::Shr(Box::new(PhvExpr::Const(32)), 4).eval(&phv), 2);
        assert_eq!(PhvExpr::Shl(Box::new(PhvExpr::Const(2)), 3).eval(&phv), 16);
        assert_eq!(
            PhvExpr::Add(Box::new(PhvExpr::Const(2)), Box::new(PhvExpr::Const(3))).eval(&phv),
            5
        );
        assert_eq!(
            PhvExpr::Sub(Box::new(PhvExpr::Const(2)), Box::new(PhvExpr::Const(3))).eval(&phv),
            0
        );
    }

    #[test]
    fn match_spec_conjunction() {
        let mut phv = Phv::new(0, 1);
        phv.set_field(Field::TcpFlags, 2);
        phv.set_field(Field::TcpDstPort, 80);
        let spec = MatchSpec {
            clauses: vec![
                (
                    PhvExpr::Field(Field::TcpFlags),
                    MatchRel::Eq,
                    PhvExpr::Const(2),
                ),
                (
                    PhvExpr::Field(Field::TcpDstPort),
                    MatchRel::Eq,
                    PhvExpr::Const(80),
                ),
            ],
        };
        assert!(spec.matches(&phv));
        phv.set_field(Field::TcpDstPort, 81);
        assert!(!spec.matches(&phv));
        // Empty spec matches everything.
        assert!(MatchSpec::default().matches(&phv));
    }

    #[test]
    fn match_rel_relations() {
        assert!(MatchRel::Gt.eval(3, 2));
        assert!(!MatchRel::Gt.eval(2, 2));
        assert!(MatchRel::Ge.eval(2, 2));
        assert!(MatchRel::Lt.eval(1, 2));
        assert!(MatchRel::Le.eval(2, 2));
        assert!(MatchRel::Ne.eval(1, 2));
        assert!(MatchRel::Eq.eval(2, 2));
    }

    #[test]
    fn register_bits_accounting() {
        let r = RegisterDecl {
            id: RegId(0),
            task: TaskId {
                query: QueryId(1),
                level: 32,
                branch: 0,
            },
            slots: 1024,
            arrays: 2,
            value_bits: 32,
            key_bits: 32,
            stage: 3,
            layout: StateLayout::Exact,
            capacity: 0,
        };
        assert_eq!(r.total_bits(), 1024 * 2 * 64);
        // Sketch layouts stop charging for stored keys: a count-min
        // of the same nominal shape charges 32-bit counters plus the
        // admission filter, a Bloom distinct only the admission bits.
        let cm = RegisterDecl {
            layout: StateLayout::CountMin,
            slots: 136,
            arrays: 4,
            capacity: 1024,
            ..r
        };
        assert_eq!(
            cm.total_bits(),
            136 * 4 * 32 + 1024 * sonata_sketch::BLOOM_BITS_PER_KEY as u64
        );
        let bloom = RegisterDecl {
            layout: StateLayout::Bloom,
            capacity: 2048,
            ..r
        };
        assert_eq!(
            bloom.total_bits(),
            2048 * sonata_sketch::BLOOM_BITS_PER_KEY as u64
        );
        assert!(cm.total_bits() < r.total_bits());
        assert!(bloom.total_bits() < r.total_bits());
    }

    #[test]
    fn program_merge_dedups_fields_and_tasks() {
        let t1 = TaskId {
            query: QueryId(1),
            level: 32,
            branch: 0,
        };
        let mut a = PisaProgram {
            parse_fields: vec![Field::Ipv4Dst],
            tasks: vec![t1],
            ..Default::default()
        };
        let b = PisaProgram {
            parse_fields: vec![Field::Ipv4Dst, Field::TcpFlags],
            tasks: vec![t1],
            ..Default::default()
        };
        a.merge(b);
        assert_eq!(a.parse_fields.len(), 2);
        assert_eq!(a.tasks.len(), 1);
        assert_eq!(a.task_index(t1), Some(0));
    }
}
