//! Compiling a prefix of a Sonata dataflow pipeline to match-action
//! tables (Section 3.1.2).
//!
//! The mapping is exactly the paper's:
//!
//! * `filter` → one match-action table (a set-membership filter from
//!   dynamic refinement becomes a *dynamic* filter table whose entries
//!   the control plane rewrites every window);
//! * `map` → one table of metadata assignments;
//! * `reduce` / `distinct` → two tables: hash (key/index computation)
//!   and update (the stateful read-modify-write), backed by a
//!   [`RegisterDecl`];
//! * a threshold `filter(out > Th)` immediately after a `reduce` is
//!   merged into the reduce's update table ("more than one dataflow
//!   operator can be compiled to the same table", Section 3.3).
//!
//! [`table_specs`] exposes the table structure without building IR —
//! the planner's unit of partitioning; [`compile_pipeline`] builds the
//! loadable program fragment for a chosen partition.

use crate::ir::{
    MatchRel, MatchSpec, MetaField, PhvExpr, PisaProgram, RegId, RegisterDecl, ReportMode,
    ReportSpec, ShuntSpec, Table, TableKind, TaskId,
};
use crate::phv::MetaRef;
use sonata_packet::{Field, FieldWidth, Value};
use sonata_query::expr::{CmpOp, Expr, Pred};
use sonata_query::{Agg, ColName, Operator, Pipeline, Schema};
use sonata_sketch::StateLayout;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Sizing for one stateful operator's register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterSizing {
    /// Slots per array (the paper's `n`). For sketch layouts this is
    /// the count-min *width* (Bloom layouts size from `capacity`).
    pub slots: usize,
    /// Number of arrays (the paper's `d`); the count-min *depth* for
    /// sketch layouts.
    pub arrays: usize,
    /// Physical layout the planner picked for this register.
    pub layout: StateLayout,
    /// Expected distinct keys per window, sizing Bloom admission
    /// state; `0` derives it from `slots × arrays`.
    pub capacity: usize,
}

impl Default for RegisterSizing {
    fn default() -> Self {
        RegisterSizing {
            slots: 4096,
            arrays: 2,
            layout: StateLayout::Exact,
            capacity: 0,
        }
    }
}

/// The planner's view of one compiled table unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSpec {
    /// Operator kind implemented ("filter", "map", "reduce", "distinct").
    pub kind: &'static str,
    /// Pipeline operator indices covered (merged filters included);
    /// `ops.end` is the op index where the stream processor resumes if
    /// this is the last switch table.
    pub ops: std::ops::Range<usize>,
    /// Whether the unit holds state (consumes an `A` slot and `B` bits).
    pub stateful: bool,
    /// Physical stages consumed (2 for stateful: hash + update).
    pub stage_cost: usize,
    /// Whether the switch can execute this unit at all.
    pub switch_ok: bool,
    /// A `reduce` emits per-key results only at window end, so nothing
    /// may follow it on the switch: if this unit is on the switch it
    /// must be the partition point.
    pub must_be_last: bool,
}

/// Why compilation to the data plane failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The requested partition includes an operator the switch cannot
    /// execute (payload predicates, general division, …).
    NotSwitchExecutable {
        /// The offending operator index.
        op: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The requested partition puts tables after a `reduce`.
    ReduceNotLast {
        /// The reduce's operator index.
        op: usize,
    },
    /// Stage list length doesn't match the number of switch tables.
    StageArity {
        /// Tables requested on the switch.
        tables: usize,
        /// Stages provided.
        stages: usize,
    },
    /// Register sizing list doesn't match the number of stateful units.
    SizingArity {
        /// Stateful units on the switch.
        stateful: usize,
        /// Sizings provided.
        sizings: usize,
    },
    /// An expression references a column absent from the schema
    /// (should have been caught by query validation).
    UnknownColumn {
        /// The missing column.
        column: ColName,
    },
    /// More switch tables requested than the pipeline has.
    PartitionTooDeep {
        /// Units requested.
        requested: usize,
        /// Units available.
        available: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NotSwitchExecutable { op, reason } => {
                write!(f, "operator {op} cannot run on the switch: {reason}")
            }
            CompileError::ReduceNotLast { op } => {
                write!(f, "reduce at operator {op} must be the last switch table")
            }
            CompileError::StageArity { tables, stages } => {
                write!(f, "{tables} switch tables but {stages} stages provided")
            }
            CompileError::SizingArity { stateful, sizings } => {
                write!(
                    f,
                    "{stateful} stateful units but {sizings} sizings provided"
                )
            }
            CompileError::UnknownColumn { column } => write!(f, "unknown column `{column}`"),
            CompileError::PartitionTooDeep {
                requested,
                available,
            } => {
                write!(
                    f,
                    "partition of {requested} units but pipeline has {available}"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Whether a predicate is a threshold filter on `out_col` (mergeable
/// into the preceding reduce's update table).
fn threshold_of(pred: &Pred, out_col: &str) -> Option<u64> {
    if let Pred::Cmp {
        lhs: Expr::Col(c),
        op: CmpOp::Gt,
        rhs: Expr::Lit(Value::U64(t)),
    } = pred
    {
        if c.as_ref() == out_col {
            return Some(*t);
        }
    }
    None
}

/// Decompose a pipeline into planner-grade table units.
pub fn table_specs(pipeline: &Pipeline) -> Vec<TableSpec> {
    let mut specs: Vec<TableSpec> = Vec::new();
    let mut schema = Schema::packet();
    let mut switch_ok_so_far = true;
    let mut i = 0;
    let ops = &pipeline.ops;
    while i < ops.len() {
        let op = &ops[i];
        let this_ok = switch_ok_so_far && operator_switch_ok(op, &schema);
        match op {
            Operator::Filter(_) | Operator::Map { .. } => {
                specs.push(TableSpec {
                    kind: op.kind(),
                    ops: i..i + 1,
                    stateful: false,
                    stage_cost: 1,
                    switch_ok: this_ok,
                    must_be_last: false,
                });
                schema = op.output_schema(&schema).unwrap_or(schema);
                i += 1;
            }
            Operator::Distinct => {
                specs.push(TableSpec {
                    kind: "distinct",
                    ops: i..i + 1,
                    stateful: true,
                    stage_cost: 2,
                    switch_ok: this_ok,
                    must_be_last: false,
                });
                i += 1;
            }
            Operator::Reduce { out, .. } => {
                // Absorb immediately following threshold filters.
                let mut end = i + 1;
                while let Some(Operator::Filter(p)) = ops.get(end) {
                    if threshold_of(p, out).is_some() {
                        end += 1;
                    } else {
                        break;
                    }
                }
                schema = op.output_schema(&schema).unwrap_or(schema);
                specs.push(TableSpec {
                    kind: "reduce",
                    ops: i..end,
                    stateful: true,
                    stage_cost: 2,
                    switch_ok: this_ok,
                    must_be_last: true,
                });
                i = end;
            }
        }
        if !this_ok {
            switch_ok_so_far = false;
        }
    }
    specs
}

/// The largest switch-executable partition: number of leading units
/// that can run on the switch (stopping after the first `reduce` unit,
/// which must be last).
pub fn max_switch_units(specs: &[TableSpec]) -> usize {
    let mut k = 0;
    for s in specs {
        if !s.switch_ok {
            break;
        }
        k += 1;
        if s.must_be_last {
            break;
        }
    }
    k
}

fn operator_switch_ok(op: &Operator, schema: &Schema) -> bool {
    if !op.switch_computable() {
        return false;
    }
    // Every referenced column that names a packet field must be
    // parseable in the data plane.
    let mut cols: Vec<ColName> = Vec::new();
    match op {
        Operator::Filter(p) => p.referenced_cols(&mut cols),
        Operator::Map { exprs } => {
            for (_, e) in exprs {
                e.referenced_cols(&mut cols);
            }
        }
        Operator::Reduce { keys, value, .. } => {
            cols.extend(keys.iter().cloned());
            cols.push(value.clone());
        }
        Operator::Distinct => cols.extend(schema.columns().iter().cloned()),
    }
    for c in cols {
        if let Some(f) = Field::ALL.iter().find(|f| f.name() == c.as_ref()) {
            if !f.switch_parseable() {
                return false;
            }
        }
    }
    true
}

/// How a column is materialized on the switch.
#[derive(Debug, Clone)]
enum Binding {
    /// Directly a parsed header field.
    Field(Field),
    /// A metadata container.
    Meta(MetaRef, u32),
}

impl Binding {
    fn expr(&self) -> PhvExpr {
        match self {
            Binding::Field(f) => PhvExpr::Field(*f),
            Binding::Meta(m, _) => PhvExpr::Meta(*m),
        }
    }

    fn bits(&self) -> u32 {
        match self {
            Binding::Field(f) => match f.width() {
                FieldWidth::Bits(b) => b,
                FieldWidth::Variable => 32,
            },
            Binding::Meta(_, b) => *b,
        }
    }
}

/// The result of compiling one pipeline prefix.
#[derive(Debug, Clone)]
pub struct CompiledPipeline {
    /// The loadable program fragment (one task).
    pub fragment: PisaProgram,
    /// The task id.
    pub task: TaskId,
    /// Units placed on the switch.
    pub units_on_switch: usize,
    /// Operator index where the stream processor resumes for
    /// per-packet reports (and for window-dump tuples).
    pub sp_resume_op: usize,
    /// Shunt entry points: one per stateful unit on the switch —
    /// `(operator index, input columns)`.
    pub shunt_entries: Vec<(usize, Vec<ColName>)>,
    /// Whether per-packet reports carry the original packet (partition
    /// sits before the first `map`, so the tuple is the packet itself).
    pub report_packet: bool,
    /// Columns of per-packet or dump report tuples.
    pub report_columns: Vec<ColName>,
}

/// Fixed per-task metadata overhead: qid tag, report bit, liveness.
pub const TASK_META_OVERHEAD_BITS: u32 = 16;

/// Compile the first `stages.len()` table units of `pipeline` for the
/// switch.
///
/// * `stages` — the physical stage of each unit's *first* table;
///   stateful units occupy `stage` and `stage + 1`. Must be strictly
///   increasing between units.
/// * `sizings` — one register sizing per stateful unit on the switch.
/// * `meta_base` / `reg_base` — global allocation bases so fragments
///   from different tasks never collide.
pub fn compile_pipeline(
    pipeline: &Pipeline,
    task: TaskId,
    stages: &[usize],
    sizings: &[RegisterSizing],
    meta_base: usize,
    reg_base: u32,
) -> Result<CompiledPipeline, CompileError> {
    let specs = table_specs(pipeline);
    let k = stages.len();
    if k > specs.len() {
        return Err(CompileError::PartitionTooDeep {
            requested: k,
            available: specs.len(),
        });
    }
    // Validate executability and the reduce-last rule.
    for (u, spec) in specs.iter().take(k).enumerate() {
        if !spec.switch_ok {
            return Err(CompileError::NotSwitchExecutable {
                op: spec.ops.start,
                reason: format!("{} unit not supported in the data plane", spec.kind),
            });
        }
        if spec.must_be_last && u + 1 < k {
            return Err(CompileError::ReduceNotLast { op: spec.ops.start });
        }
    }
    let stateful_count = specs.iter().take(k).filter(|s| s.stateful).count();
    if sizings.len() != stateful_count {
        return Err(CompileError::SizingArity {
            stateful: stateful_count,
            sizings: sizings.len(),
        });
    }

    let mut fragment = PisaProgram {
        tasks: vec![task],
        ..Default::default()
    };
    let mut meta_next = meta_base;
    let mut reg_next = reg_base;
    let mut meta_fields: Vec<MetaField> = Vec::new();
    let mut sizing_iter = sizings.iter();

    // Current schema and column bindings.
    let mut schema = Schema::packet();
    let mut binding: HashMap<ColName, Binding> = Schema::packet()
        .columns()
        .iter()
        .map(|c| {
            let f = Field::ALL
                .iter()
                .find(|f| f.name() == c.as_ref())
                .expect("packet schema col is a field");
            (c.clone(), Binding::Field(*f))
        })
        .collect();

    let mut alloc_meta = |name: &str, bits: u32, fields: &mut Vec<MetaField>| -> MetaRef {
        let slot = MetaRef(meta_next);
        meta_next += 1;
        fields.push(MetaField {
            slot,
            name: name.to_string(),
            bits,
        });
        slot
    };

    let compile_expr = |e: &Expr,
                        binding: &HashMap<ColName, Binding>|
     -> Result<PhvExpr, CompileError> { compile_expr_rec(e, binding) };

    let mut shunt_specs: Vec<ShuntSpec> = Vec::new();
    let mut shunt_entries: Vec<(usize, Vec<ColName>)> = Vec::new();
    let mut dump_mode: Option<ReportMode> = None;
    let mut sp_resume_op = 0usize;

    for (u, spec) in specs.iter().take(k).enumerate() {
        let stage = stages[u];
        let op = &pipeline.ops[spec.ops.start];
        sp_resume_op = spec.ops.end;
        let tname = |suffix: &str| format!("{task}_t{u}_{suffix}");
        match op {
            Operator::Filter(pred) => {
                if let Pred::InSet { expr, set } = pred {
                    let key = compile_expr(expr, &binding)?;
                    let entries: BTreeSet<u64> = set.iter().filter_map(|v| v.as_u64()).collect();
                    fragment.tables.push(Table {
                        name: tname("dynfilter"),
                        task,
                        stage,
                        kind: TableKind::DynFilter {
                            key,
                            entries,
                            pass_when_empty: false,
                        },
                    });
                } else {
                    let rules = compile_pred(pred, &binding)?;
                    fragment.tables.push(Table {
                        name: tname("filter"),
                        task,
                        stage,
                        kind: TableKind::Filter { rules },
                    });
                }
            }
            Operator::Map { exprs } => {
                let mut assigns = Vec::new();
                let mut new_binding = HashMap::new();
                for (name, e) in exprs {
                    let compiled = compile_expr(e, &binding)?;
                    let bits = expr_bits(e, &binding);
                    let slot = alloc_meta(name, bits, &mut meta_fields);
                    assigns.push((slot, compiled));
                    new_binding.insert(name.clone(), Binding::Meta(slot, bits));
                }
                fragment.tables.push(Table {
                    name: tname("map"),
                    task,
                    stage,
                    kind: TableKind::Map { assigns },
                });
                binding = new_binding;
                schema = op
                    .output_schema(&schema)
                    .map_err(|c| CompileError::UnknownColumn { column: c })?;
                continue; // schema already advanced
            }
            Operator::Distinct => {
                let sizing = sizing_iter.next().expect("arity checked");
                let key_cols: Vec<ColName> = schema.columns().to_vec();
                let key_exprs: Vec<PhvExpr> = key_cols
                    .iter()
                    .map(|c| {
                        binding
                            .get(c)
                            .map(|b| b.expr())
                            .ok_or_else(|| CompileError::UnknownColumn { column: c.clone() })
                    })
                    .collect::<Result<_, _>>()?;
                let key_bits: u32 = key_cols
                    .iter()
                    .map(|c| binding.get(c).map(|b| b.bits()).unwrap_or(32))
                    .sum();
                let reg = RegId(reg_next);
                reg_next += 1;
                fragment.registers.push(RegisterDecl {
                    id: reg,
                    task,
                    slots: sizing.slots,
                    arrays: sizing.arrays,
                    value_bits: 1,
                    key_bits,
                    stage: stage + 1,
                    layout: sizing.layout,
                    capacity: sizing.capacity,
                });
                fragment.tables.push(Table {
                    name: tname("hash"),
                    task,
                    stage,
                    kind: TableKind::Hash {
                        reg,
                        key: key_exprs.clone(),
                    },
                });
                fragment.tables.push(Table {
                    name: tname("distinct"),
                    task,
                    stage: stage + 1,
                    kind: TableKind::Update {
                        reg,
                        agg: Agg::BitOr,
                        operand: PhvExpr::Const(1),
                        distinct: true,
                        last_on_switch: u + 1 == k,
                        threshold: None,
                    },
                });
                let shunt_cols: Vec<(ColName, PhvExpr)> = key_cols
                    .iter()
                    .zip(&key_exprs)
                    .map(|(c, e)| (c.clone(), e.clone()))
                    .collect();
                shunt_specs.push(ShuntSpec {
                    reg,
                    entry_op: spec.ops.start,
                    columns: shunt_cols,
                });
                shunt_entries.push((spec.ops.start, key_cols));
            }
            Operator::Reduce {
                keys,
                agg,
                value,
                out,
            } => {
                let sizing = sizing_iter.next().expect("arity checked");
                let key_exprs: Vec<PhvExpr> = keys
                    .iter()
                    .map(|c| {
                        binding
                            .get(c)
                            .map(|b| b.expr())
                            .ok_or_else(|| CompileError::UnknownColumn { column: c.clone() })
                    })
                    .collect::<Result<_, _>>()?;
                let key_bits: u32 = keys
                    .iter()
                    .map(|c| binding.get(c).map(|b| b.bits()).unwrap_or(32))
                    .sum();
                let operand = binding.get(value).map(|b| b.expr()).ok_or_else(|| {
                    CompileError::UnknownColumn {
                        column: value.clone(),
                    }
                })?;
                // Merged threshold from the absorbed filter(s): use the
                // tightest (they are conjoined).
                let mut threshold: Option<u64> = None;
                for oi in spec.ops.start + 1..spec.ops.end {
                    if let Operator::Filter(p) = &pipeline.ops[oi] {
                        if let Some(t) = threshold_of(p, out) {
                            threshold = Some(threshold.map_or(t, |prev: u64| prev.max(t)));
                        }
                    }
                }
                let reg = RegId(reg_next);
                reg_next += 1;
                fragment.registers.push(RegisterDecl {
                    id: reg,
                    task,
                    slots: sizing.slots,
                    arrays: sizing.arrays,
                    value_bits: 32,
                    key_bits,
                    stage: stage + 1,
                    layout: sizing.layout,
                    capacity: sizing.capacity,
                });
                fragment.tables.push(Table {
                    name: tname("hash"),
                    task,
                    stage,
                    kind: TableKind::Hash {
                        reg,
                        key: key_exprs.clone(),
                    },
                });
                fragment.tables.push(Table {
                    name: tname("reduce"),
                    task,
                    stage: stage + 1,
                    kind: TableKind::Update {
                        reg,
                        agg: *agg,
                        operand,
                        distinct: false,
                        last_on_switch: true,
                        threshold,
                    },
                });
                let mut scols = keys.clone();
                if !scols.contains(value) {
                    scols.push(value.clone());
                }
                let shunt_cols: Vec<(ColName, PhvExpr)> = scols
                    .iter()
                    .map(|c| {
                        let e = binding
                            .get(c)
                            .map(|b| b.expr())
                            .unwrap_or(PhvExpr::Const(0));
                        (c.clone(), e)
                    })
                    .collect();
                shunt_specs.push(ShuntSpec {
                    reg,
                    entry_op: spec.ops.start,
                    columns: shunt_cols,
                });
                shunt_entries.push((spec.ops.start, scols));
                dump_mode = Some(ReportMode::WindowDump {
                    reg,
                    threshold,
                    key_names: keys.clone(),
                    value_name: out.clone(),
                    value_input_name: value.clone(),
                    reduce_op: spec.ops.start,
                });
            }
        }
        // Advance schema for non-map ops (map advanced above).
        for oi in spec.ops.clone() {
            schema = pipeline.ops[oi]
                .output_schema(&schema)
                .map_err(|c| CompileError::UnknownColumn { column: c })?;
        }
        // Reduce output binding (keys keep bindings; out column has no
        // per-packet binding — only the window dump carries it).
        if matches!(op, Operator::Reduce { .. }) {
            let keep: Vec<ColName> = schema.columns().to_vec();
            binding.retain(|c, _| keep.contains(c));
        }
    }

    // Report specification.
    let report_packet = schema.is_packet();
    let report_columns: Vec<ColName> = if report_packet {
        Vec::new()
    } else {
        schema.columns().to_vec()
    };
    let mode = dump_mode.unwrap_or(ReportMode::PerPacket);
    let columns: Vec<(ColName, PhvExpr)> = if matches!(mode, ReportMode::PerPacket) {
        report_columns
            .iter()
            .filter_map(|c| binding.get(c).map(|b| (c.clone(), b.expr())))
            .collect()
    } else {
        Vec::new()
    };
    fragment.reports.push(ReportSpec {
        task,
        mode,
        columns,
        shunts: shunt_specs,
        include_packet: report_packet,
    });
    fragment.meta_slots = meta_next;
    let mut fields = meta_fields;
    if k > 0 {
        // A task with no switch tables mirrors packets wholesale and
        // needs no PHV metadata; partitioned tasks pay a fixed tag
        // (qid, report bit, liveness) on top of their columns.
        fields.push(MetaField {
            slot: MetaRef(usize::MAX),
            name: "__task_overhead".into(),
            bits: TASK_META_OVERHEAD_BITS,
        });
    }
    fragment.meta_fields.push((task, fields));
    if k > 0 {
        fragment
            .parse_fields
            .extend(referenced_parse_fields(pipeline, k, &specs));
    } else {
        // All-SP: the switch parses nothing, mirrors everything.
    }
    fragment.parse_fields.sort();
    fragment.parse_fields.dedup();

    Ok(CompiledPipeline {
        fragment,
        task,
        units_on_switch: k,
        sp_resume_op,
        shunt_entries,
        report_packet,
        report_columns,
    })
}

fn compile_expr_rec(
    e: &Expr,
    binding: &HashMap<ColName, Binding>,
) -> Result<PhvExpr, CompileError> {
    Ok(match e {
        Expr::Col(c) => binding
            .get(c)
            .map(|b| b.expr())
            .ok_or_else(|| CompileError::UnknownColumn { column: c.clone() })?,
        Expr::Lit(v) => {
            PhvExpr::Const(
                v.as_u64()
                    .ok_or_else(|| CompileError::NotSwitchExecutable {
                        op: 0,
                        reason: "non-scalar literal".into(),
                    })?,
            )
        }
        Expr::Mask(inner, l) => PhvExpr::Mask(Box::new(compile_expr_rec(inner, binding)?), *l),
        Expr::Add(a, b) => PhvExpr::Add(
            Box::new(compile_expr_rec(a, binding)?),
            Box::new(compile_expr_rec(b, binding)?),
        ),
        Expr::Sub(a, b) => PhvExpr::Sub(
            Box::new(compile_expr_rec(a, binding)?),
            Box::new(compile_expr_rec(b, binding)?),
        ),
        Expr::Mul(a, b) => match &**b {
            Expr::Lit(Value::U64(n)) if n.is_power_of_two() => {
                PhvExpr::Shl(Box::new(compile_expr_rec(a, binding)?), n.trailing_zeros())
            }
            _ => {
                return Err(CompileError::NotSwitchExecutable {
                    op: 0,
                    reason: "multiplication only by power-of-two literals".into(),
                })
            }
        },
        Expr::Div(a, b) => match &**b {
            Expr::Lit(Value::U64(n)) if *n > 0 && n.is_power_of_two() => {
                PhvExpr::Shr(Box::new(compile_expr_rec(a, binding)?), n.trailing_zeros())
            }
            _ => {
                return Err(CompileError::NotSwitchExecutable {
                    op: 0,
                    reason: "division only by power-of-two literals".into(),
                })
            }
        },
    })
}

/// Compile a predicate into disjunctive rule rows.
fn compile_pred(
    pred: &Pred,
    binding: &HashMap<ColName, Binding>,
) -> Result<Vec<MatchSpec>, CompileError> {
    match pred {
        Pred::Cmp { lhs, op, rhs } => Ok(vec![MatchSpec {
            clauses: vec![(
                compile_expr_rec(lhs, binding)?,
                compile_rel(*op),
                compile_expr_rec(rhs, binding)?,
            )],
        }]),
        Pred::And(ps) => {
            // Conjunction of clause lists: cross-product of rule rows.
            let mut rows = vec![MatchSpec::default()];
            for p in ps {
                let sub = compile_pred(p, binding)?;
                let mut next = Vec::new();
                for row in &rows {
                    for s in &sub {
                        let mut merged = row.clone();
                        merged.clauses.extend(s.clauses.clone());
                        next.push(merged);
                    }
                }
                rows = next;
            }
            Ok(rows)
        }
        Pred::Or(ps) => {
            let mut rows = Vec::new();
            for p in ps {
                rows.extend(compile_pred(p, binding)?);
            }
            Ok(rows)
        }
        Pred::Not(_) => Err(CompileError::NotSwitchExecutable {
            op: 0,
            reason: "negation requires rule-set complementation (unsupported)".into(),
        }),
        Pred::Contains { .. } => Err(CompileError::NotSwitchExecutable {
            op: 0,
            reason: "payload search cannot run in the data plane".into(),
        }),
        Pred::InSet { .. } => Err(CompileError::NotSwitchExecutable {
            op: 0,
            reason: "set membership compiles to a dynamic filter table, not a static rule".into(),
        }),
    }
}

fn compile_rel(op: CmpOp) -> MatchRel {
    match op {
        CmpOp::Eq => MatchRel::Eq,
        CmpOp::Ne => MatchRel::Ne,
        CmpOp::Gt => MatchRel::Gt,
        CmpOp::Ge => MatchRel::Ge,
        CmpOp::Lt => MatchRel::Lt,
        CmpOp::Le => MatchRel::Le,
    }
}

/// Natural bit width of an expression's result.
fn expr_bits(e: &Expr, binding: &HashMap<ColName, Binding>) -> u32 {
    match e {
        Expr::Col(c) => binding.get(c).map(|b| b.bits()).unwrap_or(32),
        Expr::Lit(_) => 32,
        Expr::Mask(inner, _) => expr_bits(inner, binding),
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
            expr_bits(a, binding).max(expr_bits(b, binding))
        }
    }
}

/// Packet fields the parser must extract for the first `k` units.
fn referenced_parse_fields(pipeline: &Pipeline, k: usize, specs: &[TableSpec]) -> Vec<Field> {
    let end_op = specs[k - 1].ops.end;
    let mut cols: Vec<ColName> = Vec::new();
    let mut schema = Schema::packet();
    for op in pipeline.ops.iter().take(end_op) {
        if schema.is_packet() {
            match op {
                Operator::Filter(p) => p.referenced_cols(&mut cols),
                Operator::Map { exprs } => {
                    for (_, e) in exprs {
                        e.referenced_cols(&mut cols);
                    }
                }
                Operator::Reduce { keys, value, .. } => {
                    cols.extend(keys.iter().cloned());
                    cols.push(value.clone());
                }
                Operator::Distinct => {}
            }
        }
        schema = op.output_schema(&schema).unwrap_or(schema);
    }
    cols.iter()
        .filter_map(|c| Field::ALL.iter().find(|f| f.name() == c.as_ref()))
        .filter(|f| f.switch_parseable())
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonata_query::catalog::{self, Thresholds};
    use sonata_query::QueryId;

    fn task() -> TaskId {
        TaskId {
            query: QueryId(1),
            level: 32,
            branch: 0,
        }
    }

    #[test]
    fn query1_decomposes_into_three_units() {
        let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
        let specs = table_specs(&q.pipeline);
        // filter, map, reduce(+merged threshold filter)
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].kind, "filter");
        assert_eq!(specs[1].kind, "map");
        assert_eq!(specs[2].kind, "reduce");
        assert!(specs[2].stateful && specs[2].must_be_last);
        assert_eq!(specs[2].ops, 2..4); // reduce + merged filter
        assert!(specs.iter().all(|s| s.switch_ok));
        assert_eq!(max_switch_units(&specs), 3);
    }

    #[test]
    fn zorro_left_branch_stops_at_payload() {
        let q = catalog::zorro(&Thresholds::default());
        // Left pipeline: just the telnet filter (payload ops are post-join).
        let specs = table_specs(&q.pipeline);
        assert_eq!(specs.len(), 1);
        assert!(specs[0].switch_ok);
        // Post-join pipeline starts with the payload filter: not switch-ok.
        let post = &q.join.as_ref().unwrap().post;
        let post_specs = table_specs(post);
        assert!(!post_specs[0].switch_ok);
        assert_eq!(max_switch_units(&post_specs), 0);
    }

    #[test]
    fn dns_tunneling_map_not_switch_ok() {
        let q = catalog::dns_tunneling(&Thresholds::default());
        let specs = table_specs(&q.pipeline);
        // filter (ok), map with qname (not ok), ...
        assert!(specs[0].switch_ok);
        assert!(!specs[1].switch_ok);
        assert_eq!(max_switch_units(&specs), 1);
    }

    #[test]
    fn compile_full_query1() {
        let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
        let cp = compile_pipeline(
            &q.pipeline,
            task(),
            &[0, 1, 2],
            &[RegisterSizing {
                slots: 1024,
                arrays: 2,
                ..Default::default()
            }],
            0,
            0,
        )
        .unwrap();
        // filter, map, hash, reduce = 4 tables; 1 register.
        assert_eq!(cp.fragment.tables.len(), 4);
        assert_eq!(cp.fragment.registers.len(), 1);
        let reg = &cp.fragment.registers[0];
        assert_eq!(reg.key_bits, 32); // dIP
        assert_eq!(reg.value_bits, 32);
        // Reduce update carries the merged threshold.
        let update = cp
            .fragment
            .tables
            .iter()
            .find(|t| matches!(t.kind, TableKind::Update { .. }))
            .unwrap();
        match &update.kind {
            TableKind::Update { threshold, agg, .. } => {
                assert_eq!(*threshold, Some(Thresholds::default().new_tcp));
                assert_eq!(*agg, Agg::Sum);
            }
            _ => unreachable!(),
        }
        assert_eq!(cp.sp_resume_op, 4);
        assert_eq!(
            cp.shunt_entries,
            vec![(2, vec![ColName::from("dIP"), ColName::from("count")])]
        );
        assert!(!cp.report_packet);
        assert_eq!(cp.report_columns.len(), 2); // (dIP, count)
                                                // Window-dump report mode.
        assert!(matches!(
            cp.fragment.reports[0].mode,
            ReportMode::WindowDump {
                threshold: Some(_),
                ..
            }
        ));
        // Parser extracts only flags and dIP.
        assert_eq!(cp.fragment.tables[0].stage, 0);
        assert!(cp.fragment.parse_fields.contains(&Field::TcpFlags));
        assert!(cp.fragment.parse_fields.contains(&Field::Ipv4Dst));
        assert_eq!(cp.fragment.parse_fields.len(), 2);
    }

    #[test]
    fn compile_partial_query1_filter_only() {
        let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
        let cp = compile_pipeline(&q.pipeline, task(), &[0], &[], 0, 0).unwrap();
        assert_eq!(cp.fragment.tables.len(), 1);
        assert!(cp.fragment.registers.is_empty());
        assert_eq!(cp.sp_resume_op, 1);
        assert!(cp.report_packet); // schema still packets
        assert!(cp.shunt_entries.is_empty());
        assert!(matches!(cp.fragment.reports[0].mode, ReportMode::PerPacket));
    }

    #[test]
    fn compile_zero_units_is_all_sp() {
        let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
        let cp = compile_pipeline(&q.pipeline, task(), &[], &[], 0, 0).unwrap();
        assert!(cp.fragment.tables.is_empty());
        assert_eq!(cp.sp_resume_op, 0);
        assert!(cp.report_packet);
    }

    #[test]
    fn compile_rejects_payload_ops() {
        let q = catalog::zorro(&Thresholds::default());
        let post = &q.join.as_ref().unwrap().post;
        let err = compile_pipeline(post, task(), &[0], &[], 0, 0).unwrap_err();
        assert!(matches!(err, CompileError::NotSwitchExecutable { .. }));
    }

    #[test]
    fn arity_mismatches_rejected() {
        let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
        // Missing register sizing for the reduce.
        assert!(matches!(
            compile_pipeline(&q.pipeline, task(), &[0, 1, 2], &[], 0, 0),
            Err(CompileError::SizingArity { .. })
        ));
        // More stages than units.
        assert!(matches!(
            compile_pipeline(
                &q.pipeline,
                task(),
                &[0, 1, 2, 3],
                &[RegisterSizing::default()],
                0,
                0
            ),
            Err(CompileError::PartitionTooDeep { .. })
        ));
    }

    #[test]
    fn distinct_mid_pipeline_compiles() {
        let q = catalog::superspreader(&Thresholds::default());
        let specs = table_specs(&q.pipeline);
        // map, distinct, map, reduce
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[1].kind, "distinct");
        assert!(!specs[1].must_be_last);
        let cp = compile_pipeline(
            &q.pipeline,
            task(),
            &[0, 1, 3, 4],
            &[RegisterSizing::default(), RegisterSizing::default()],
            0,
            0,
        )
        .unwrap();
        // map, hash, distinct-update, map, hash, reduce-update
        assert_eq!(cp.fragment.tables.len(), 6);
        assert_eq!(cp.fragment.registers.len(), 2);
        // Distinct register is 1-bit valued, keyed by (sIP, dIP) = 64 bits.
        let dreg = &cp.fragment.registers[0];
        assert_eq!(dreg.value_bits, 1);
        assert_eq!(dreg.key_bits, 64);
    }

    #[test]
    fn refinement_inset_becomes_dynfilter() {
        use sonata_query::expr::{col, field};
        let q = sonata_query::Query::builder("refined", 9)
            .filter(Pred::in_set(
                field(Field::Ipv4Dst).mask(8),
                std::collections::BTreeSet::new(),
            ))
            .filter(field(Field::TcpFlags).eq(sonata_query::expr::lit(2)))
            .map([("dIP", field(Field::Ipv4Dst).mask(16))])
            .distinct()
            .map([("dIP", col("dIP")), ("c", sonata_query::expr::lit(1))])
            .reduce(&["dIP"], Agg::Sum, "c")
            .build()
            .unwrap();
        let cp = compile_pipeline(
            &q.pipeline,
            task(),
            &[0, 1, 2, 3, 5, 6],
            &[RegisterSizing::default(), RegisterSizing::default()],
            0,
            0,
        )
        .unwrap();
        assert!(matches!(
            cp.fragment.tables[0].kind,
            TableKind::DynFilter { .. }
        ));
        // Map with a /16 mask compiled to a Mask expression.
        match &cp.fragment.tables[2].kind {
            TableKind::Map { assigns } => {
                assert!(matches!(assigns[0].1, PhvExpr::Mask(_, 16)));
            }
            other => panic!("expected map, got {other:?}"),
        }
    }

    #[test]
    fn stage_increments_respected_for_stateful() {
        let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
        let cp = compile_pipeline(
            &q.pipeline,
            task(),
            &[2, 5, 9],
            &[RegisterSizing {
                slots: 16,
                arrays: 1,
                ..Default::default()
            }],
            0,
            0,
        )
        .unwrap();
        let stages: Vec<usize> = cp.fragment.tables.iter().map(|t| t.stage).collect();
        assert_eq!(stages, vec![2, 5, 9, 10]); // hash at 9, update at 10
        assert_eq!(cp.fragment.registers[0].stage, 10);
    }

    #[test]
    fn metadata_accounting_includes_overhead() {
        let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
        let cp = compile_pipeline(
            &q.pipeline,
            task(),
            &[0, 1, 2],
            &[RegisterSizing::default()],
            0,
            0,
        )
        .unwrap();
        let bits: u32 = cp.fragment.meta_fields[0].1.iter().map(|f| f.bits).sum();
        // dIP (32) + count (32) + overhead (16)
        assert_eq!(bits, 80);
    }
}
