//! The PISA behavioral model: executes a loaded [`PisaProgram`] packet
//! by packet, mirrors reports to the monitoring port, and serves the
//! end-of-window register dump.
//!
//! Semantics follow Section 3.1.3 of the paper:
//!
//! * forwarding is never affected — queries only read header fields
//!   and write query-specific metadata;
//! * each task owns a one-bit report flag; packets whose flag is set
//!   after the last stage are mirrored (tuple, and the original packet
//!   when the stream processor needs it);
//! * a task ending in a `reduce` reports through the window dump: the
//!   emitter polls the register at window end (one tuple per key,
//!   thresholded when a threshold filter was merged);
//! * register collisions that exhaust all `d` arrays shunt the packet
//!   to the stream processor, which finishes the aggregation.

use crate::batch::ReportBatch;
use crate::exec::{ExecPlan, GateFilter, GateScratch, Scratch, StepKind};
use crate::ir::{PhvExpr, PisaProgram, RegId, ReportMode, Table, TableKind, TaskId};
use crate::parser;
use crate::phv::{MetaRef, Phv};
use crate::registers::{
    BloomRegisters, CmRegisters, HashRegisters, RegOutcome, RegisterState, SketchConfig,
    StateLayout,
};
use crate::resources::{ResourceError, ResourceUsage, SwitchConstraints};
use sonata_obs::{Counter, EventKind, Gauge, ObsHandle, Stage};
use sonata_packet::{ArenaBatch, Packet};
use sonata_query::ColName;
use std::collections::{BTreeSet, HashMap};

/// What kind of report a mirrored packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportKind {
    /// A tuple of metadata values (possibly with the original packet).
    Tuple,
    /// A collision shunt: the emitter must apply the stateful operator
    /// itself for this tuple's key.
    Shunt,
    /// A window-dump tuple, already thresholded at the switch (no
    /// shunts occurred for its register this window).
    WindowDump,
    /// A raw window-dump tuple: shunts occurred, so the merged
    /// threshold was *not* applied — the emitter merges shunt
    /// aggregates into the dump and thresholds locally (Section 5).
    WindowDumpRaw,
}

/// One report mirrored to the monitoring port.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The reporting task.
    pub task: TaskId,
    /// Report kind.
    pub kind: ReportKind,
    /// Named values (the tuple). Names are interned [`ColName`]s
    /// bound at load time — emitting a report clones `Arc`s, never
    /// formats strings.
    pub columns: Vec<(ColName, u64)>,
    /// The original packet, when the report spec requires it.
    pub packet: Option<Packet>,
    /// Residual-pipeline operator index this tuple enters at; `None`
    /// means the task's default resume point.
    pub entry_op: Option<usize>,
    /// Per-task, per-window report sequence number, assigned at the
    /// deparser in emission order. `(task, window, seq)` identifies
    /// one logical report, which is what the emitter's duplicate
    /// suppression keys on — an injected duplicate carries the same
    /// seq, a legitimately identical tuple a fresh one.
    pub seq: u64,
}

/// Per-task report counters, split by report kind so merged
/// multi-query programs attribute traffic to the right task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskCounters {
    /// Per-packet tuple reports mirrored for this task.
    pub tuple_reports: u64,
    /// Collision-shunt reports mirrored for this task.
    pub shunt_reports: u64,
    /// Window-dump tuples produced for this task.
    pub dump_tuples: u64,
}

impl TaskCounters {
    /// Total tuples this task delivered to the stream processor.
    pub fn total(&self) -> u64 {
        self.tuple_reports + self.shunt_reports + self.dump_tuples
    }
}

/// Aggregate switch counters.
#[derive(Debug, Clone, Default)]
pub struct SwitchCounters {
    /// Packets processed.
    pub packets_in: u64,
    /// Per-packet tuple reports mirrored.
    pub tuple_reports: u64,
    /// Collision-shunt reports mirrored.
    pub shunt_reports: u64,
    /// Window-dump tuples produced.
    pub dump_tuples: u64,
    /// Per-task report counters, split by kind, indexed like
    /// `program.tasks` (dense: the packet path indexes, never hashes).
    pub per_task: Vec<(TaskId, TaskCounters)>,
}

impl SwitchCounters {
    /// Total tuples delivered to the stream processor so far.
    pub fn total_to_stream_processor(&self) -> u64 {
        self.tuple_reports + self.shunt_reports + self.dump_tuples
    }

    /// Counters for one task (zero if unknown).
    pub fn task(&self, t: &TaskId) -> TaskCounters {
        self.per_task
            .iter()
            .find(|(id, _)| id == t)
            .map(|(_, c)| *c)
            .unwrap_or_default()
    }
}

/// Pre-resolved metric handles: one registry lookup at load, atomic
/// adds on the packet path.
#[derive(Debug)]
struct SwitchObs {
    handle: ObsHandle,
    packets_in: Counter,
    occupancy: Gauge,
    /// `[tuple, shunt, dump]` counters per dense task index.
    per_task: Vec<[Counter; 3]>,
    /// Estimated-error gauges (ppm) per dense register index; `None`
    /// for exact registers.
    sketch_error: Vec<Option<Gauge>>,
}

impl SwitchObs {
    fn new(handle: ObsHandle, tasks: &[TaskId]) -> Self {
        let per_task = tasks
            .iter()
            .map(|t| {
                let task = t.to_string();
                [
                    handle.counter(
                        "sonata_switch_reports_total",
                        &[("task", &task), ("kind", "tuple")],
                    ),
                    handle.counter(
                        "sonata_switch_reports_total",
                        &[("task", &task), ("kind", "shunt")],
                    ),
                    handle.counter(
                        "sonata_switch_reports_total",
                        &[("task", &task), ("kind", "dump")],
                    ),
                ]
            })
            .collect();
        SwitchObs {
            packets_in: handle.counter("sonata_switch_packets_total", &[]),
            occupancy: handle.gauge("sonata_switch_register_occupancy", &[]),
            per_task,
            sketch_error: Vec::new(),
            handle,
        }
    }

    /// Register the per-sketch gauges for one non-exact register:
    /// `width`/`depth` are fixed at load, `estimated_error` (ppm) is
    /// refreshed every window. Exact registers get no series, so runs
    /// with the knob off export byte-identical metrics.
    fn register_sketch(&self, reg_label: &str, task: &TaskId, state: &RegisterState) -> Gauge {
        let task = task.to_string();
        let labels: &[(&str, &str)] = &[("reg", reg_label), ("task", &task)];
        self.handle
            .gauge("sonata_sketch_width", labels)
            .set(state.gauge_width());
        self.handle
            .gauge("sonata_sketch_depth", labels)
            .set(state.gauge_depth());
        let err = self.handle.gauge("sonata_sketch_estimated_error", labels);
        err.set((state.bound().epsilon * 1e6) as u64);
        err
    }
}

/// The accuracy contract one sketch-backed register declares on its
/// end-of-window dump. Exact registers declare nothing, so a run with
/// the sketch knob off produces dumps byte-identical to the
/// pre-sketch baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchBound {
    /// The owning stateful task.
    pub task: TaskId,
    /// Layout the register ran this window.
    pub layout: StateLayout,
    /// Relative error (count-min: fraction of `mass`) or
    /// false-positive probability (Bloom); see
    /// `sonata_sketch::ErrorBound`.
    pub epsilon: f64,
    /// Probability the ε guarantee fails.
    pub delta: f64,
    /// L1 stream mass folded in — the absolute count-min slack is
    /// ⌈ε·mass⌉.
    pub mass: u64,
    /// Update calls folded in this window.
    pub updates: u64,
    /// True when the sketch exceeded its design load and the bound
    /// degraded (also emitted as a `SketchSaturated` event).
    pub saturated: bool,
}

/// The end-of-window register dump: one tuple per stored key for every
/// `WindowDump` task (thresholded), in deterministic order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowDump {
    /// Dump tuples per task.
    pub tuples: Vec<Report>,
    /// Keys whose aggregate was dropped by a merged threshold (counted
    /// for diagnostics; not delivered).
    pub suppressed: u64,
    /// Total register occupancy before the reset.
    pub occupancy: usize,
    /// Shunted packets observed this window (already reported
    /// per-packet; here for accounting).
    pub shunted_packets: u64,
    /// Declared error bounds, one per sketch-backed register in
    /// program order; empty when every register is exact.
    pub bounds: Vec<SketchBound>,
}

/// Reusable batch-execution scratch: the gate's partial-parse PHV,
/// the struct-of-arrays column block, and per-packet liveness flags.
/// All buffers are retained across windows, so the steady-state batch
/// loop performs no heap allocation.
#[derive(Debug, Default)]
struct BatchScratch {
    /// PHV reused by the gate's partial parse when a gate field is
    /// outside the specialized extractor's subset.
    gate_phv: Phv,
    /// Column-major gate field values: `cols[c * n + i]` is column `c`
    /// of packet `i`.
    cols: Vec<u64>,
    /// Per-packet "some task's gate passes" flags.
    alive: Vec<bool>,
    /// Columnar gate evaluation scratch (per-task pass masks, operand
    /// buffers, scalar fallback stack).
    gate: GateScratch,
}

/// The behavioral model.
#[derive(Debug)]
pub struct Switch {
    program: PisaProgram,
    usage: ResourceUsage,
    /// Table execution order: indices into `program.tables`, sorted by
    /// (stage, insertion order).
    exec_order: Vec<usize>,
    /// Register state, dense (shared by both execution paths). Each
    /// entry runs the layout resolved at load — exact hash table,
    /// count-min, or Bloom admission.
    registers: Vec<RegisterState>,
    /// RegId → index into `registers`.
    reg_index: HashMap<RegId, usize>,
    /// Key expressions per register (from the Hash tables) — used by
    /// the reference interpreter path.
    reg_keys: HashMap<RegId, Vec<PhvExpr>>,
    /// Dense task index per TaskId.
    task_index: HashMap<TaskId, usize>,
    /// Compiled fast path, lowered once at load.
    plan: ExecPlan,
    /// Reusable per-packet scratch (PHV + eval stack + staging).
    scratch: Scratch,
    /// Reusable batch-execution scratch (gate PHV + column block +
    /// liveness flags).
    batch: BatchScratch,
    /// When set, execute through the tree-walking reference
    /// interpreter instead of the compiled plan (debug knob; the
    /// differential suite asserts both are bit-identical).
    force_reference: bool,
    /// When set, every window dump is emitted raw (un-thresholded,
    /// value-input column, entry-op tagged) even without shunts: in a
    /// multi-switch fabric a key's count is split across switches, so
    /// thresholds are only sound after the collector-side merge.
    defer_dump_thresholds: bool,
    counters: SwitchCounters,
    obs: SwitchObs,
    /// Per-task report sequence numbers for the current window
    /// (indexed like `program.tasks`), reset at `end_window`.
    task_seq: Vec<u64>,
}

impl Switch {
    /// Validate `program` against `constraints` and instantiate state.
    pub fn load(
        program: PisaProgram,
        constraints: &SwitchConstraints,
    ) -> Result<Self, ResourceError> {
        Self::load_with_obs(program, constraints, &ObsHandle::disabled())
    }

    /// [`Self::load`] with an observability handle: registers per-task
    /// report counters, the register-occupancy gauge, and dynamic-
    /// filter size gauges against it.
    pub fn load_with_obs(
        program: PisaProgram,
        constraints: &SwitchConstraints,
        obs: &ObsHandle,
    ) -> Result<Self, ResourceError> {
        Self::load_with_sketch(program, constraints, obs, SketchConfig::default())
    }

    /// [`Self::load_with_obs`] with an explicit sketch configuration:
    /// each register resolves its [`StateLayout`] from the planner's
    /// stamp and the runtime knob (see
    /// [`SketchConfig::effective_layout`]) and instantiates exact,
    /// count-min, or Bloom state accordingly. With the default
    /// (`Exact`) config this is byte-identical to the pre-sketch
    /// loader.
    pub fn load_with_sketch(
        program: PisaProgram,
        constraints: &SwitchConstraints,
        obs: &ObsHandle,
        sketch: SketchConfig,
    ) -> Result<Self, ResourceError> {
        let usage = constraints.check(&program)?;
        let mut order: Vec<usize> = (0..program.tables.len()).collect();
        order.sort_by_key(|&i| (program.tables[i].stage, i));
        // Which aggregation / distinct mode drives each register —
        // count-min only fits monotone aggs, Bloom only distinct.
        let mut reg_mode: HashMap<RegId, (sonata_query::Agg, bool)> = HashMap::new();
        for t in &program.tables {
            if let TableKind::Update {
                reg, agg, distinct, ..
            } = &t.kind
            {
                reg_mode.insert(*reg, (*agg, *distinct));
            }
        }
        let mut registers = Vec::with_capacity(program.registers.len());
        let mut reg_index = HashMap::new();
        let mut obs_handle = SwitchObs::new(obs.clone(), &program.tasks);
        for r in &program.registers {
            let idx = registers.len();
            reg_index.insert(r.id, idx);
            let (agg, distinct) = reg_mode
                .get(&r.id)
                .copied()
                .unwrap_or((sonata_query::Agg::Sum, false));
            let layout = sketch.effective_layout(r.layout, distinct, agg);
            let seed = sketch.reg_seed(idx);
            let state = match layout {
                StateLayout::Exact => {
                    RegisterState::Exact(HashRegisters::new(r.slots, r.arrays, r.value_bits))
                }
                StateLayout::CountMin => {
                    let width = if sketch.cm_width > 0 {
                        sketch.cm_width
                    } else {
                        r.slots
                    };
                    let depth = if sketch.cm_depth > 0 {
                        sketch.cm_depth
                    } else {
                        r.arrays.max(2)
                    };
                    RegisterState::CountMin(CmRegisters::new(
                        width,
                        depth,
                        r.capacity_keys(),
                        sketch.bloom_bits,
                        sketch.bloom_hashes,
                        r.value_bits,
                        seed,
                    ))
                }
                StateLayout::Bloom | StateLayout::Hll => RegisterState::Bloom(BloomRegisters::new(
                    r.capacity_keys(),
                    sketch.bloom_bits,
                    sketch.bloom_hashes,
                    layout == StateLayout::Hll,
                    sketch.hll_precision,
                    seed,
                )),
            };
            let err_gauge = (layout != StateLayout::Exact)
                .then(|| obs_handle.register_sketch(&format!("r{}", r.id.0), &r.task, &state));
            obs_handle.sketch_error.push(err_gauge);
            registers.push(state);
        }
        let mut reg_keys = HashMap::new();
        for t in &program.tables {
            if let TableKind::Hash { reg, key } = &t.kind {
                reg_keys.insert(*reg, key.clone());
            }
        }
        let task_index: HashMap<TaskId, usize> = program
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (*t, i))
            .collect();
        let obs = obs_handle;
        let layouts: Vec<StateLayout> = registers.iter().map(|r| r.layout()).collect();
        let plan = {
            let _t = obs.handle.stage(Stage::PlanBind, 0);
            ExecPlan::lower(&program, &order, &reg_index, &layouts)
        };
        let counters = SwitchCounters {
            per_task: program
                .tasks
                .iter()
                .map(|t| (*t, TaskCounters::default()))
                .collect(),
            ..Default::default()
        };
        let task_seq = vec![0; program.tasks.len()];
        Ok(Switch {
            program,
            usage,
            exec_order: order,
            registers,
            reg_index,
            reg_keys,
            task_index,
            plan,
            scratch: Scratch::default(),
            batch: BatchScratch::default(),
            force_reference: false,
            defer_dump_thresholds: false,
            counters,
            obs,
            task_seq,
        })
    }

    /// Route execution through the tree-walking reference interpreter
    /// (`true`) or the compiled [`ExecPlan`] fast path (`false`, the
    /// default). Both paths share register and counter state and are
    /// bit-identical; the knob exists for debugging and for the
    /// differential suite.
    pub fn set_force_reference(&mut self, on: bool) {
        self.force_reference = on;
    }

    /// Defer window-dump thresholding to the stream processor: every
    /// dump tuple is reported raw, exactly as when a shunt forces the
    /// emitter to merge before thresholding. A fabric switch only
    /// holds its partition's share of each key's count, so suppressing
    /// `value <= threshold` locally would drop keys whose fabric-wide
    /// total clears the threshold.
    pub fn set_defer_dump_thresholds(&mut self, on: bool) {
        self.defer_dump_thresholds = on;
    }

    /// The validated resource usage.
    pub fn usage(&self) -> &ResourceUsage {
        &self.usage
    }

    /// The loaded program.
    pub fn program(&self) -> &PisaProgram {
        &self.program
    }

    /// Cumulative counters.
    pub fn counters(&self) -> &SwitchCounters {
        &self.counters
    }

    /// Process one decoded packet through the pipeline.
    pub fn process(&mut self, pkt: &Packet) -> Vec<Report> {
        if self.force_reference {
            let mut phv = parser::parse_packet(
                pkt,
                &self.program.parse_fields,
                self.program.meta_slots,
                self.program.tasks.len(),
            );
            self.run(&mut phv, pkt)
        } else {
            parser::parse_packet_into(
                &mut self.scratch.phv,
                pkt,
                &self.program.parse_fields,
                self.program.meta_slots,
                self.program.tasks.len(),
            );
            self.run_fast(pkt)
        }
    }

    /// Process raw wire bytes (IPv4-first framing), as hardware would.
    /// `ts_nanos` stamps any mirrored packet copy.
    pub fn process_bytes(&mut self, bytes: &[u8], ts_nanos: u64) -> Vec<Report> {
        if self.force_reference {
            return self.process_bytes_reference(bytes, ts_nanos);
        }
        parser::parse_bytes_into(
            &mut self.scratch.phv,
            bytes,
            &self.program.parse_fields,
            self.program.meta_slots,
            self.program.tasks.len(),
        );
        let decoded;
        let pkt_ref: &Packet = if self.plan.needs_packet {
            match Packet::decode(bytes) {
                Ok(mut p) => {
                    p.ts_nanos = ts_nanos;
                    decoded = p;
                    &decoded
                }
                Err(_) => {
                    // Unparseable packets pass through unmonitored.
                    self.counters.packets_in += 1;
                    self.obs.packets_in.inc();
                    return Vec::new();
                }
            }
        } else {
            // No report mirrors the packet: skip the decode entirely.
            // The placeholder is never attached to reports.
            decoded = sonata_packet::PacketBuilder::tcp_raw(0, 0, 0, 0).build();
            &decoded
        };
        self.run_fast(pkt_ref)
    }

    fn process_bytes_reference(&mut self, bytes: &[u8], ts_nanos: u64) -> Vec<Report> {
        let mut phv = parser::parse_bytes(
            bytes,
            &self.program.parse_fields,
            self.program.meta_slots,
            self.program.tasks.len(),
        );
        // Decode lazily only if some report needs the original packet.
        let needs_packet = self.program.reports.iter().any(|r| r.include_packet);
        let decoded;
        let pkt_ref: &Packet = if needs_packet {
            match Packet::decode(bytes) {
                Ok(mut p) => {
                    p.ts_nanos = ts_nanos;
                    decoded = p;
                    &decoded
                }
                Err(_) => {
                    // Unparseable packets pass through unmonitored.
                    self.counters.packets_in += 1;
                    self.obs.packets_in.inc();
                    return Vec::new();
                }
            }
        } else {
            decoded = Packet::decode(bytes).unwrap_or_else(|_| {
                // A placeholder is fine: it is never attached to reports.
                sonata_packet::PacketBuilder::tcp_raw(0, 0, 0, 0).build()
            });
            &decoded
        };
        self.run(&mut phv, pkt_ref)
    }

    fn run(&mut self, phv: &mut Phv, pkt: &Packet) -> Vec<Report> {
        self.counters.packets_in += 1;
        self.obs.packets_in.inc();
        let mut reports = Vec::new();
        for &ti in &self.exec_order {
            let table: &Table = &self.program.tables[ti];
            let task_idx = match self.task_index.get(&table.task) {
                Some(i) => *i,
                None => continue,
            };
            if !phv.is_alive(task_idx) {
                continue;
            }
            match &table.kind {
                TableKind::Filter { rules } => {
                    if !rules.iter().any(|r| r.matches(phv)) {
                        phv.kill(task_idx);
                    }
                }
                TableKind::DynFilter {
                    key,
                    entries,
                    pass_when_empty,
                } => {
                    if entries.is_empty() && *pass_when_empty {
                        // pass
                    } else if !entries.contains(&key.eval(phv)) {
                        phv.kill(task_idx);
                    }
                }
                TableKind::Map { assigns } => {
                    // Evaluate all sources before writing (parallel ALU
                    // semantics within one stage).
                    let values: Vec<u64> = assigns.iter().map(|(_, e)| e.eval(phv)).collect();
                    for ((slot, _), v) in assigns.iter().zip(values) {
                        phv.set_meta(*slot, v);
                    }
                }
                TableKind::Hash { .. } => {
                    // Index computation is folded into the Update that
                    // follows; the Hash table's cost is its stage.
                }
                TableKind::Update {
                    reg,
                    agg,
                    operand,
                    distinct,
                    last_on_switch: _,
                    threshold: _,
                } => {
                    let key_exprs = self.reg_keys.get(reg).expect("hash table precedes update");
                    let key: Vec<u64> = key_exprs.iter().map(|e| e.eval(phv)).collect();
                    let operand_v = operand.eval(phv);
                    let ri = *self.reg_index.get(reg).expect("register declared");
                    match self.registers[ri].update(&key, *agg, operand_v) {
                        RegOutcome::Shunted => {
                            // Mirror for the emitter to finish.
                            let spec = self
                                .program
                                .reports
                                .iter()
                                .find(|r| r.task == table.task)
                                .expect("report spec per task");
                            let shunt = spec
                                .shunts
                                .iter()
                                .find(|sh| sh.reg == *reg)
                                .expect("shunt spec per register");
                            let columns: Vec<(ColName, u64)> = shunt
                                .columns
                                .iter()
                                .map(|(n, e)| (n.clone(), e.eval(phv)))
                                .collect();
                            let seq = self.task_seq[task_idx];
                            self.task_seq[task_idx] += 1;
                            reports.push(Report {
                                task: table.task,
                                kind: ReportKind::Shunt,
                                columns,
                                packet: spec.include_packet.then(|| pkt.clone()),
                                entry_op: Some(shunt.entry_op),
                                seq,
                            });
                            self.counters.shunt_reports += 1;
                            self.counters.per_task[task_idx].1.shunt_reports += 1;
                            self.obs.per_task[task_idx][1].inc();
                            phv.kill(task_idx);
                        }
                        RegOutcome::Updated { first_touch, .. } => {
                            if *distinct && !first_touch {
                                phv.kill(task_idx);
                            }
                        }
                    }
                }
            }
        }
        // Deparser: mirror per-packet reports for tasks still alive.
        for spec in &self.program.reports {
            if !matches!(spec.mode, ReportMode::PerPacket) {
                continue;
            }
            let task_idx = match self.task_index.get(&spec.task) {
                Some(i) => *i,
                None => continue,
            };
            if !phv.is_alive(task_idx) {
                continue;
            }
            let columns: Vec<(ColName, u64)> = spec
                .columns
                .iter()
                .map(|(n, e)| (n.clone(), e.eval(phv)))
                .collect();
            let seq = self.task_seq[task_idx];
            self.task_seq[task_idx] += 1;
            reports.push(Report {
                task: spec.task,
                kind: ReportKind::Tuple,
                columns,
                packet: spec.include_packet.then(|| pkt.clone()),
                entry_op: None,
                seq,
            });
            self.counters.tuple_reports += 1;
            self.counters.per_task[task_idx].1.tuple_reports += 1;
            self.obs.per_task[task_idx][0].inc();
        }
        reports
    }

    /// The compiled fast path: one pass over the precomputed step
    /// table, postfix expression evaluation against the scratch PHV,
    /// dense register and counter indexing. Bit-identical to
    /// [`Self::run`] (the differential suite enforces it). Expects
    /// `self.scratch.phv` to hold the parsed packet.
    fn run_fast(&mut self, pkt: &Packet) -> Vec<Report> {
        self.counters.packets_in += 1;
        self.obs.packets_in.inc();
        let mut reports = Vec::new();
        for step in &self.plan.steps {
            let task_idx = step.task_idx;
            if !self.scratch.phv.is_alive(task_idx) {
                continue;
            }
            match &step.kind {
                StepKind::Filter { rules } => {
                    if !self
                        .plan
                        .rules_match(rules, &self.scratch.phv, &mut self.scratch.stack)
                    {
                        self.scratch.phv.kill(task_idx);
                    }
                }
                StepKind::DynFilter { table_idx, key } => {
                    let k = self
                        .plan
                        .eval(*key, &self.scratch.phv, &mut self.scratch.stack);
                    let TableKind::DynFilter {
                        entries,
                        pass_when_empty,
                        ..
                    } = &self.program.tables[*table_idx].kind
                    else {
                        unreachable!("lowered from a DynFilter table");
                    };
                    if entries.is_empty() && *pass_when_empty {
                        // pass
                    } else if !entries.contains(&k) {
                        self.scratch.phv.kill(task_idx);
                    }
                }
                StepKind::Map { assigns } => {
                    // Evaluate all sources before writing (parallel ALU
                    // semantics within one stage), staging in scratch.
                    self.scratch.vals.clear();
                    for &(_, e) in assigns {
                        let v = self
                            .plan
                            .eval(e, &self.scratch.phv, &mut self.scratch.stack);
                        self.scratch.vals.push(v);
                    }
                    for (&(slot, _), &v) in assigns.iter().zip(&self.scratch.vals) {
                        self.scratch.phv.set_meta(MetaRef(slot), v);
                    }
                }
                StepKind::Update {
                    reg_idx,
                    layout,
                    agg,
                    operand,
                    distinct,
                    keys,
                    shunt,
                } => {
                    self.scratch.key.clear();
                    for &k in keys {
                        let v = self
                            .plan
                            .eval(k, &self.scratch.phv, &mut self.scratch.stack);
                        self.scratch.key.push(v);
                    }
                    let operand_v =
                        self.plan
                            .eval(*operand, &self.scratch.phv, &mut self.scratch.stack);
                    match self.registers[*reg_idx].update(&self.scratch.key, *agg, operand_v) {
                        RegOutcome::Shunted => {
                            debug_assert_eq!(
                                *layout,
                                StateLayout::Exact,
                                "sketch layouts never shunt"
                            );
                            let mut columns = Vec::with_capacity(shunt.columns.len());
                            for (n, e) in &shunt.columns {
                                columns.push((
                                    n.clone(),
                                    self.plan
                                        .eval(*e, &self.scratch.phv, &mut self.scratch.stack),
                                ));
                            }
                            let seq = self.task_seq[task_idx];
                            self.task_seq[task_idx] += 1;
                            reports.push(Report {
                                task: step.task,
                                kind: ReportKind::Shunt,
                                columns,
                                packet: shunt.include_packet.then(|| pkt.clone()),
                                entry_op: Some(shunt.entry_op),
                                seq,
                            });
                            self.counters.shunt_reports += 1;
                            self.counters.per_task[task_idx].1.shunt_reports += 1;
                            self.obs.per_task[task_idx][1].inc();
                            self.scratch.phv.kill(task_idx);
                        }
                        RegOutcome::Updated { first_touch, .. } => {
                            if *distinct && !first_touch {
                                self.scratch.phv.kill(task_idx);
                            }
                        }
                    }
                }
            }
        }
        // Deparser: mirror per-packet reports for tasks still alive.
        for spec in &self.plan.reports {
            if !self.scratch.phv.is_alive(spec.task_idx) {
                continue;
            }
            let mut columns = Vec::with_capacity(spec.columns.len());
            for (n, e) in &spec.columns {
                columns.push((
                    n.clone(),
                    self.plan
                        .eval(*e, &self.scratch.phv, &mut self.scratch.stack),
                ));
            }
            let seq = self.task_seq[spec.task_idx];
            self.task_seq[spec.task_idx] += 1;
            reports.push(Report {
                task: spec.task,
                kind: ReportKind::Tuple,
                columns,
                packet: spec.include_packet.then(|| pkt.clone()),
                entry_op: None,
                seq,
            });
            self.counters.tuple_reports += 1;
            self.counters.per_task[spec.task_idx].1.tuple_reports += 1;
            self.obs.per_task[spec.task_idx][0].inc();
        }
        reports
    }

    /// Process a whole batch of arena packets through the compiled
    /// plan, appending reports into `out` (reset in place).
    ///
    /// Two phases:
    ///
    /// 1. **Columnar gate** — a partial parse extracts only the header
    ///    fields the hoisted leading filters read, into a
    ///    struct-of-arrays column block; each task's gate is then
    ///    evaluated in a tight column loop. Packets that fail every
    ///    task's gate are dead before any `Map`/`Update`/report step
    ///    could observe them, so skipping them is bit-identical to the
    ///    per-packet path (leading pure filters change no state and
    ///    emit nothing).
    /// 2. **Full execution** — surviving packets get the full parse
    ///    and the exact [`Self::run_fast`] step loop, with reports
    ///    appended to the shared [`ReportBatch`] arena and mirrored
    ///    packets recorded as arena indices instead of owned clones.
    ///
    /// Batch execution always runs the compiled plan; the runtime
    /// routes through per-packet [`Self::process`] when the reference
    /// oracle is forced.
    pub fn process_batch(&mut self, batch: &ArenaBatch<'_>, out: &mut ReportBatch) {
        debug_assert!(
            !self.force_reference,
            "batch execution has no reference interpreter; route per-packet instead"
        );
        let n = batch.len();
        out.reset(n);
        self.counters.packets_in += n as u64;
        self.obs.packets_in.add(n as u64);
        // Phase 1: columnar gate over the hoisted leading filters.
        self.batch.alive.clear();
        if self.plan.gates.all_pass || n == 0 {
            self.batch.alive.resize(n, true);
        } else {
            self.batch.alive.resize(n, false);
            let ncols = self.plan.gates.fields.len();
            self.batch.cols.clear();
            self.batch.cols.resize(ncols * n, 0);
            if self.plan.gates.fast_extract {
                // Fixed-offset scalars: bytes → column block directly,
                // no PHV reset or valid-bit bookkeeping per packet.
                for i in 0..n {
                    parser::parse_gate_columns(
                        batch.view(i).bytes(),
                        &self.plan.gates.fields,
                        &mut self.batch.cols,
                        n,
                        i,
                    );
                }
            } else {
                for i in 0..n {
                    parser::parse_bytes_into(
                        &mut self.batch.gate_phv,
                        batch.view(i).bytes(),
                        &self.plan.gates.fields,
                        0,
                        0,
                    );
                    for (c, &slot) in self.plan.gates.slots.iter().enumerate() {
                        self.batch.cols[c * n + i] = self.batch.gate_phv.field_by_slot(slot);
                    }
                }
            }
            for filters in &self.plan.gates.tasks {
                self.batch.gate.begin_task(n);
                for f in filters {
                    match f {
                        GateFilter::Static { rules } => self.plan.gates.rules_match_cols(
                            rules,
                            &self.batch.cols,
                            n,
                            &mut self.batch.gate,
                        ),
                        GateFilter::Dyn { table_idx, key } => {
                            let TableKind::DynFilter {
                                entries,
                                pass_when_empty,
                                ..
                            } = &self.program.tables[*table_idx].kind
                            else {
                                unreachable!("lowered from a DynFilter table");
                            };
                            self.plan.gates.dyn_match_cols(
                                *key,
                                entries,
                                *pass_when_empty,
                                &self.batch.cols,
                                n,
                                &mut self.batch.gate,
                            );
                        }
                    }
                }
                for (a, &p) in self.batch.alive.iter_mut().zip(self.batch.gate.pass.iter()) {
                    *a = *a || p;
                }
            }
        }
        // Phase 2: full parse + step loop for surviving packets only.
        for i in 0..n {
            let start = out.begin_packet();
            if self.batch.alive[i] {
                parser::parse_bytes_into(
                    &mut self.scratch.phv,
                    batch.view(i).bytes(),
                    &self.program.parse_fields,
                    self.program.meta_slots,
                    self.program.tasks.len(),
                );
                self.run_fast_into(i as u32, out);
            }
            out.end_packet(start);
        }
    }

    /// The [`Self::run_fast`] step loop, appending into a
    /// [`ReportBatch`] instead of a per-packet `Vec` and recording
    /// mirrored packets by arena index. Expects `self.scratch.phv` to
    /// hold the parsed packet; does *not* bump `packets_in` (the batch
    /// loop accounts for the whole batch up front).
    fn run_fast_into(&mut self, pkt_idx: u32, out: &mut ReportBatch) {
        for step in &self.plan.steps {
            let task_idx = step.task_idx;
            if !self.scratch.phv.is_alive(task_idx) {
                continue;
            }
            match &step.kind {
                StepKind::Filter { rules } => {
                    if !self
                        .plan
                        .rules_match(rules, &self.scratch.phv, &mut self.scratch.stack)
                    {
                        self.scratch.phv.kill(task_idx);
                    }
                }
                StepKind::DynFilter { table_idx, key } => {
                    let k = self
                        .plan
                        .eval(*key, &self.scratch.phv, &mut self.scratch.stack);
                    let TableKind::DynFilter {
                        entries,
                        pass_when_empty,
                        ..
                    } = &self.program.tables[*table_idx].kind
                    else {
                        unreachable!("lowered from a DynFilter table");
                    };
                    if entries.is_empty() && *pass_when_empty {
                        // pass
                    } else if !entries.contains(&k) {
                        self.scratch.phv.kill(task_idx);
                    }
                }
                StepKind::Map { assigns } => {
                    self.scratch.vals.clear();
                    for &(_, e) in assigns {
                        let v = self
                            .plan
                            .eval(e, &self.scratch.phv, &mut self.scratch.stack);
                        self.scratch.vals.push(v);
                    }
                    for (&(slot, _), &v) in assigns.iter().zip(&self.scratch.vals) {
                        self.scratch.phv.set_meta(MetaRef(slot), v);
                    }
                }
                StepKind::Update {
                    reg_idx,
                    layout,
                    agg,
                    operand,
                    distinct,
                    keys,
                    shunt,
                } => {
                    self.scratch.key.clear();
                    for &k in keys {
                        let v = self
                            .plan
                            .eval(k, &self.scratch.phv, &mut self.scratch.stack);
                        self.scratch.key.push(v);
                    }
                    let operand_v =
                        self.plan
                            .eval(*operand, &self.scratch.phv, &mut self.scratch.stack);
                    match self.registers[*reg_idx].update(&self.scratch.key, *agg, operand_v) {
                        RegOutcome::Shunted => {
                            debug_assert_eq!(
                                *layout,
                                StateLayout::Exact,
                                "sketch layouts never shunt"
                            );
                            let cs = out.begin_report();
                            for (nme, e) in &shunt.columns {
                                let v =
                                    self.plan
                                        .eval(*e, &self.scratch.phv, &mut self.scratch.stack);
                                out.push_col(nme, v);
                            }
                            let seq = self.task_seq[task_idx];
                            self.task_seq[task_idx] += 1;
                            out.finish_report(
                                step.task,
                                ReportKind::Shunt,
                                cs,
                                shunt.include_packet.then_some(pkt_idx),
                                Some(shunt.entry_op),
                                seq,
                            );
                            self.counters.shunt_reports += 1;
                            self.counters.per_task[task_idx].1.shunt_reports += 1;
                            self.obs.per_task[task_idx][1].inc();
                            self.scratch.phv.kill(task_idx);
                        }
                        RegOutcome::Updated { first_touch, .. } => {
                            if *distinct && !first_touch {
                                self.scratch.phv.kill(task_idx);
                            }
                        }
                    }
                }
            }
        }
        // Deparser: mirror per-packet reports for tasks still alive.
        for spec in &self.plan.reports {
            if !self.scratch.phv.is_alive(spec.task_idx) {
                continue;
            }
            let cs = out.begin_report();
            for (nme, e) in &spec.columns {
                let v = self
                    .plan
                    .eval(*e, &self.scratch.phv, &mut self.scratch.stack);
                out.push_col(nme, v);
            }
            let seq = self.task_seq[spec.task_idx];
            self.task_seq[spec.task_idx] += 1;
            out.finish_report(
                spec.task,
                ReportKind::Tuple,
                cs,
                spec.include_packet.then_some(pkt_idx),
                None,
                seq,
            );
            self.counters.tuple_reports += 1;
            self.counters.per_task[spec.task_idx].1.tuple_reports += 1;
            self.obs.per_task[spec.task_idx][0].inc();
        }
    }

    /// End the window: dump `WindowDump` registers into tuples, apply
    /// merged thresholds, and reset all register state.
    ///
    /// Runs over the lowered dump specs (dense register indices,
    /// interned column names) on both execution paths: the window
    /// boundary evaluates no expressions, so there is nothing for a
    /// reference interpreter to oracle here.
    pub fn end_window(&mut self) -> WindowDump {
        let mut dump = WindowDump::default();
        // `plan.dumps` preserves `program.reports` order.
        for d in &self.plan.dumps {
            let regs = &self.registers[d.reg_idx];
            // Any task-wide shunt (including at an earlier distinct)
            // means the dump can no longer be finalized on the switch:
            // the emitter must merge before thresholding.
            let task_shunts: u64 = d
                .shunt_reg_idxs
                .iter()
                .map(|&i| self.registers[i].shunted_packets())
                .sum();
            dump.shunted_packets += regs.shunted_packets();
            if self.defer_dump_thresholds {
                if let Some((reg_idx, entry_op, key_names)) = &d.distinct {
                    // Deferred mode with an upstream `distinct`: the
                    // reduce register holds counts of *this switch's*
                    // first occurrences, which double-count keys that
                    // also appear on other switches. Dump the distinct
                    // register's admitted-key set instead (entering at
                    // the distinct op) and let the collector recount
                    // after the cross-switch dedup.
                    for (key, _seen) in self.registers[*reg_idx].dump() {
                        let columns: Vec<(ColName, u64)> =
                            key_names.iter().cloned().zip(key.iter().copied()).collect();
                        let seq = match d.task_idx {
                            Some(i) => {
                                let s = self.task_seq[i];
                                self.task_seq[i] += 1;
                                s
                            }
                            None => 0,
                        };
                        dump.tuples.push(Report {
                            task: d.task,
                            kind: ReportKind::WindowDumpRaw,
                            columns,
                            packet: None,
                            entry_op: Some(*entry_op),
                            seq,
                        });
                    }
                    continue;
                }
            }
            let raw = task_shunts > 0 || self.defer_dump_thresholds;
            for (key, value) in regs.dump() {
                if !raw {
                    if let Some(th) = d.threshold {
                        if value <= th {
                            dump.suppressed += 1;
                            continue;
                        }
                    }
                }
                let mut columns: Vec<(ColName, u64)> = Vec::with_capacity(d.key_names.len() + 1);
                columns.extend(d.key_names.iter().cloned().zip(key.iter().copied()));
                if raw {
                    columns.push((d.value_input_name.clone(), value));
                } else {
                    columns.push((d.value_name.clone(), value));
                }
                let seq = match d.task_idx {
                    Some(i) => {
                        let s = self.task_seq[i];
                        self.task_seq[i] += 1;
                        s
                    }
                    None => 0,
                };
                dump.tuples.push(Report {
                    task: d.task,
                    kind: if raw {
                        ReportKind::WindowDumpRaw
                    } else {
                        ReportKind::WindowDump
                    },
                    columns,
                    packet: None,
                    entry_op: raw.then_some(d.reduce_op),
                    seq,
                });
                if !raw {
                    self.counters.dump_tuples += 1;
                    if let Some(i) = d.task_idx {
                        self.counters.per_task[i].1.dump_tuples += 1;
                        self.obs.per_task[i][2].inc();
                    }
                }
            }
        }
        dump.occupancy = self.registers.iter().map(|r| r.occupancy()).sum();
        self.obs.occupancy.set(dump.occupancy as u64);
        // Declare the accuracy contract of every sketch-backed
        // register (program order), refresh the estimated-error
        // gauges, and flag saturation. Exact registers contribute
        // nothing, keeping the knob's off-path dumps byte-identical.
        for (idx, decl) in self.program.registers.iter().enumerate() {
            let state = &self.registers[idx];
            let layout = state.layout();
            if layout == StateLayout::Exact {
                continue;
            }
            let bound = state.bound();
            let saturated = state.saturated();
            dump.bounds.push(SketchBound {
                task: decl.task,
                layout,
                epsilon: bound.epsilon,
                delta: bound.delta,
                mass: state.mass(),
                updates: state.updates(),
                saturated,
            });
            if let Some(Some(g)) = self.obs.sketch_error.get(idx) {
                g.set((bound.epsilon * 1e6) as u64);
            }
            if saturated {
                self.obs.handle.event(EventKind::SketchSaturated {
                    task: decl.task.to_string(),
                    layout: layout.name(),
                    keys: state.occupancy() as u64,
                    capacity: decl.capacity_keys() as u64,
                });
            }
        }
        for r in &mut self.registers {
            r.reset();
        }
        // Report sequence numbers are per-window.
        for s in &mut self.task_seq {
            *s = 0;
        }
        dump
    }

    /// Control-plane: replace a dynamic filter table's entries.
    /// Returns the number of entries installed.
    pub fn set_dyn_filter(
        &mut self,
        table_name: &str,
        new_entries: BTreeSet<u64>,
    ) -> Result<usize, String> {
        for t in &mut self.program.tables {
            if t.name == table_name {
                if let TableKind::DynFilter { entries, .. } = &mut t.kind {
                    let n = new_entries.len();
                    *entries = new_entries;
                    // Control-plane path: the registry lookup per
                    // update is fine here.
                    self.obs
                        .handle
                        .gauge("sonata_switch_dyn_filter_entries", &[("table", table_name)])
                        .set(n as u64);
                    return Ok(n);
                }
                return Err(format!("table `{table_name}` is not a dynamic filter"));
            }
        }
        Err(format!("no table named `{table_name}`"))
    }

    /// Names of all dynamic filter tables (the refinement update
    /// surface), with their owning tasks.
    pub fn dyn_filter_tables(&self) -> Vec<(String, TaskId)> {
        self.program
            .tables
            .iter()
            .filter(|t| matches!(t.kind, TableKind::DynFilter { .. }))
            .map(|t| (t.name.clone(), t.task))
            .collect()
    }

    /// The layout each register resolved to at load, dense, as the
    /// compiled plan recorded it (quickstart and tests surface this).
    pub fn register_layouts(&self) -> &[StateLayout] {
        &self.plan.reg_layouts
    }

    /// Register occupancy across all registers (for collision-pressure
    /// monitoring: the runtime re-plans when shunts spike).
    pub fn register_occupancy(&self) -> usize {
        self.registers.iter().map(|r| r.occupancy()).sum()
    }

    /// Shunted packets in the current window across registers.
    pub fn current_shunted(&self) -> u64 {
        self.registers.iter().map(|r| r.shunted_packets()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_pipeline, RegisterSizing};
    use sonata_packet::{PacketBuilder, TcpFlags};
    use sonata_query::catalog::{self, Thresholds};
    use sonata_query::QueryId;

    fn t(q: u32) -> TaskId {
        TaskId {
            query: QueryId(q),
            level: 32,
            branch: 0,
        }
    }

    fn syn(src: u32, dst: u32) -> Packet {
        PacketBuilder::tcp_raw(src, 1000, dst, 80)
            .flags(TcpFlags::SYN)
            .build()
    }

    fn load_query1(th: u64) -> Switch {
        let q = catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: th,
            ..Thresholds::default()
        });
        let cp = compile_pipeline(
            &q.pipeline,
            t(1),
            &[0, 1, 2],
            &[RegisterSizing {
                slots: 512,
                arrays: 2,
                ..Default::default()
            }],
            0,
            0,
        )
        .unwrap();
        Switch::load(cp.fragment, &SwitchConstraints::default()).unwrap()
    }

    #[test]
    fn query1_full_on_switch_dumps_only_heavy_keys() {
        let mut sw = load_query1(3);
        // 5 SYNs to victim, 1 to background host, 1 non-SYN.
        for i in 0..5 {
            assert!(sw.process(&syn(100 + i, 0x0a0000aa)).is_empty());
        }
        sw.process(&syn(7, 0x0a0000bb));
        sw.process(
            &PacketBuilder::tcp_raw(8, 1, 0x0a0000aa, 80)
                .flags(TcpFlags::PSH_ACK)
                .build(),
        );
        let dump = sw.end_window();
        assert_eq!(dump.tuples.len(), 1);
        let r = &dump.tuples[0];
        assert_eq!(r.kind, ReportKind::WindowDump);
        assert_eq!(r.columns[0], ("dIP".into(), 0x0a0000aa));
        assert_eq!(r.columns[1], ("count".into(), 5));
        assert_eq!(dump.suppressed, 1); // the single-SYN host
        assert_eq!(sw.counters().packets_in, 7);
        assert_eq!(sw.counters().total_to_stream_processor(), 1);
    }

    #[test]
    fn window_reset_clears_counts() {
        let mut sw = load_query1(2);
        for i in 0..3 {
            sw.process(&syn(i, 0xaa));
        }
        assert_eq!(sw.end_window().tuples.len(), 1);
        // Next window: 2 SYNs only — below threshold.
        sw.process(&syn(1, 0xaa));
        sw.process(&syn(2, 0xaa));
        assert_eq!(sw.end_window().tuples.len(), 0);
    }

    #[test]
    fn filter_only_partition_mirrors_matching_packets() {
        let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
        let cp = compile_pipeline(&q.pipeline, t(1), &[0], &[], 0, 0).unwrap();
        let mut sw = Switch::load(cp.fragment, &SwitchConstraints::default()).unwrap();
        let reports = sw.process(&syn(1, 2));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, ReportKind::Tuple);
        assert!(reports[0].packet.is_some()); // packet schema -> mirror packet
        let none = sw.process(
            &PacketBuilder::tcp_raw(1, 1, 2, 80)
                .flags(TcpFlags::ACK)
                .build(),
        );
        assert!(none.is_empty());
        assert_eq!(sw.counters().tuple_reports, 1);
    }

    #[test]
    fn all_sp_partition_mirrors_everything() {
        let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
        let cp = compile_pipeline(&q.pipeline, t(1), &[], &[], 0, 0).unwrap();
        let mut sw = Switch::load(cp.fragment, &SwitchConstraints::default()).unwrap();
        for i in 0..10 {
            let reports = sw.process(&syn(i, 2));
            assert_eq!(reports.len(), 1);
            assert!(reports[0].packet.is_some());
        }
        assert_eq!(sw.counters().tuple_reports, 10);
    }

    #[test]
    fn shunted_packets_are_reported() {
        let q = catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 0,
            ..Default::default()
        });
        let cp = compile_pipeline(
            &q.pipeline,
            t(1),
            &[0, 1, 2],
            &[RegisterSizing {
                slots: 1,
                arrays: 1,
                ..Default::default()
            }], // 1 slot: collisions certain
            0,
            0,
        )
        .unwrap();
        let mut sw = Switch::load(cp.fragment, &SwitchConstraints::default()).unwrap();
        // Many distinct destinations: the first claims the slot, the
        // rest shunt (unless they hash to the same slot — with one slot
        // everything hashes there).
        let mut shunts = 0;
        for i in 0..20 {
            for r in sw.process(&syn(1, 1000 + i)) {
                assert_eq!(r.kind, ReportKind::Shunt);
                assert_eq!(&*r.columns[0].0, "dIP");
                assert_eq!(r.columns[0].1, (1000 + i) as u64);
                shunts += 1;
            }
        }
        assert_eq!(shunts, 19);
        let dump = sw.end_window();
        assert_eq!(dump.tuples.len(), 1); // only the resident key
        assert_eq!(dump.shunted_packets, 19);
    }

    #[test]
    fn distinct_passes_first_occurrence_only() {
        let q = catalog::superspreader(&Thresholds::default());
        // Partition: map, distinct (last on switch).
        let cp = compile_pipeline(
            &q.pipeline,
            t(3),
            &[0, 1],
            &[RegisterSizing {
                slots: 256,
                arrays: 2,
                ..Default::default()
            }],
            0,
            0,
        )
        .unwrap();
        let mut sw = Switch::load(cp.fragment, &SwitchConstraints::default()).unwrap();
        let p = PacketBuilder::tcp_raw(7, 1, 9, 80).build();
        assert_eq!(sw.process(&p).len(), 1); // first (7,9): reported
        assert_eq!(sw.process(&p).len(), 0); // repeat: suppressed
        let p2 = PacketBuilder::tcp_raw(7, 1, 10, 80).build();
        assert_eq!(sw.process(&p2).len(), 1); // new pair
                                              // Reports carry the (sIP, dIP) tuple, no packet.
        let r = &sw.process(&PacketBuilder::tcp_raw(8, 1, 9, 80).build())[0];
        assert_eq!(r.columns[0], ("sIP".into(), 8));
        assert_eq!(r.columns[1], ("dIP".into(), 9));
        assert!(r.packet.is_none());
    }

    #[test]
    fn dyn_filter_gates_traffic_and_updates() {
        use sonata_packet::Field;
        use sonata_query::expr::{col, field, lit, Pred};
        let q = sonata_query::Query::builder("refined", 4)
            .filter(Pred::in_set(
                field(Field::Ipv4Dst).mask(8),
                std::collections::BTreeSet::new(),
            ))
            .map([("dIP", field(Field::Ipv4Dst)), ("c", lit(1))])
            .reduce(&["dIP"], Agg::Sum, "c")
            .filter(col("c").gt(lit(0)))
            .build()
            .unwrap();
        use sonata_query::Agg;
        let cp = compile_pipeline(
            &q.pipeline,
            t(4),
            &[0, 1, 2],
            &[RegisterSizing {
                slots: 64,
                arrays: 1,
                ..Default::default()
            }],
            0,
            0,
        )
        .unwrap();
        let mut sw = Switch::load(cp.fragment, &SwitchConstraints::default()).unwrap();
        // Empty filter: nothing passes.
        sw.process(&syn(1, 0x0a000001));
        assert_eq!(sw.end_window().tuples.len(), 0);
        // Allow 10.0.0.0/8.
        let tables = sw.dyn_filter_tables();
        assert_eq!(tables.len(), 1);
        sw.set_dyn_filter(&tables[0].0, [0x0a000000u64].into_iter().collect())
            .unwrap();
        sw.process(&syn(1, 0x0a000001));
        sw.process(&syn(1, 0x0b000001)); // other /8: filtered
        let dump = sw.end_window();
        assert_eq!(dump.tuples.len(), 1);
        assert_eq!(dump.tuples[0].columns[0].1, 0x0a000001);
    }

    #[test]
    fn set_dyn_filter_errors() {
        let mut sw = load_query1(1);
        assert!(sw.set_dyn_filter("nope", BTreeSet::new()).is_err());
        // query1's first table is a static filter.
        let name = sw.program().tables[0].name.clone();
        assert!(sw.set_dyn_filter(&name, BTreeSet::new()).is_err());
    }

    #[test]
    fn process_bytes_matches_process() {
        let mut sw1 = load_query1(2);
        let mut sw2 = load_query1(2);
        let pkts: Vec<Packet> = (0..30).map(|i| syn(i % 5, 0xaa + (i % 3))).collect();
        for p in &pkts {
            let a = sw1.process(p);
            let b = sw2.process_bytes(&p.encode(), p.ts_nanos);
            assert_eq!(a.len(), b.len());
        }
        let d1 = sw1.end_window();
        let d2 = sw2.end_window();
        assert_eq!(d1.tuples.len(), d2.tuples.len());
        for (a, b) in d1.tuples.iter().zip(&d2.tuples) {
            assert_eq!(a.columns, b.columns);
        }
    }

    #[test]
    fn two_queries_coexist() {
        let t1 = t(1);
        let t5 = TaskId {
            query: QueryId(5),
            level: 32,
            branch: 0,
        };
        let q1 = catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 2,
            ..Default::default()
        });
        let q5 = catalog::ddos(&Thresholds {
            ddos: 2,
            ..Default::default()
        });
        let cp1 = compile_pipeline(
            &q1.pipeline,
            t1,
            &[0, 1, 2],
            &[RegisterSizing {
                slots: 128,
                arrays: 2,
                ..Default::default()
            }],
            0,
            0,
        )
        .unwrap();
        let cp5 = compile_pipeline(
            &q5.pipeline,
            t5,
            &[0, 1, 3, 5],
            &[
                RegisterSizing {
                    slots: 128,
                    arrays: 2,
                    ..Default::default()
                },
                RegisterSizing {
                    slots: 128,
                    arrays: 2,
                    ..Default::default()
                },
            ],
            cp1.fragment.meta_slots,
            10,
        )
        .unwrap();
        let mut program = cp1.fragment;
        program.merge(cp5.fragment);
        let mut sw = Switch::load(program, &SwitchConstraints::default()).unwrap();
        // 4 SYNs from distinct sources to one host: triggers both
        // queries (4 new conns; 4 distinct sources).
        for i in 0..4 {
            sw.process(&syn(100 + i, 0xaa));
        }
        let dump = sw.end_window();
        let q1_tuples: Vec<_> = dump.tuples.iter().filter(|r| r.task == t1).collect();
        let q5_tuples: Vec<_> = dump.tuples.iter().filter(|r| r.task == t5).collect();
        assert_eq!(q1_tuples.len(), 1);
        assert_eq!(q1_tuples[0].columns[1].1, 4);
        assert_eq!(q5_tuples.len(), 1);
        assert_eq!(q5_tuples[0].columns[1].1, 4);
    }

    fn load_filter_only() -> Switch {
        let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
        let cp = compile_pipeline(&q.pipeline, t(1), &[0], &[], 0, 0).unwrap();
        Switch::load(cp.fragment, &SwitchConstraints::default()).unwrap()
    }

    #[test]
    fn reports_carry_per_task_window_sequence_numbers() {
        let mut sw = load_filter_only();
        for i in 0..3 {
            let r = sw.process(&syn(i, 2));
            assert_eq!(r.len(), 1);
            assert_eq!(r[0].seq, u64::from(i));
        }
        sw.end_window();
        // Sequence numbers restart per window.
        assert_eq!(sw.process(&syn(9, 2))[0].seq, 0);
    }

    #[test]
    fn fast_path_matches_reference_interpreter() {
        // Same program, same packets: the compiled plan and the
        // tree-walking oracle must agree on every report and the
        // window dump, bit for bit — including shunts (tiny register)
        // and re-used scratch state across packets.
        for sizing in [
            RegisterSizing {
                slots: 512,
                arrays: 2,
                ..Default::default()
            },
            RegisterSizing {
                slots: 1,
                arrays: 1,
                ..Default::default()
            },
        ] {
            let q = catalog::newly_opened_tcp_conns(&Thresholds {
                new_tcp: 1,
                ..Thresholds::default()
            });
            let load = |sizing| {
                let cp = compile_pipeline(&q.pipeline, t(1), &[0, 1, 2], &[sizing], 0, 0).unwrap();
                Switch::load(cp.fragment, &SwitchConstraints::default()).unwrap()
            };
            let mut fast = load(sizing);
            let mut reference = load(sizing);
            reference.set_force_reference(true);
            let pkts: Vec<Packet> = (0..60).map(|i| syn(i % 7, 0xaa + (i % 5))).collect();
            for p in &pkts {
                assert_eq!(fast.process(p), reference.process(p));
                assert_eq!(
                    fast.process_bytes(&p.encode(), p.ts_nanos),
                    reference.process_bytes(&p.encode(), p.ts_nanos)
                );
            }
            assert_eq!(fast.end_window(), reference.end_window());
            assert_eq!(
                fast.counters().total_to_stream_processor(),
                reference.counters().total_to_stream_processor()
            );
            // Second window: scratch reuse must not leak state.
            for p in &pkts {
                assert_eq!(fast.process(p), reference.process(p));
            }
            assert_eq!(fast.end_window(), reference.end_window());
        }
    }

    #[test]
    fn fast_path_observes_dyn_filter_updates() {
        use sonata_packet::Field;
        use sonata_query::expr::{col, field, lit, Pred};
        use sonata_query::Agg;
        // The lowered plan must read dynamic-filter entries live: a
        // control-plane update between packets takes effect without
        // re-lowering, exactly as on the reference path.
        let q = sonata_query::Query::builder("refined", 4)
            .filter(Pred::in_set(
                field(Field::Ipv4Dst).mask(8),
                std::collections::BTreeSet::new(),
            ))
            .map([("dIP", field(Field::Ipv4Dst)), ("c", lit(1))])
            .reduce(&["dIP"], Agg::Sum, "c")
            .filter(col("c").gt(lit(0)))
            .build()
            .unwrap();
        let load = || {
            let cp = compile_pipeline(
                &q.pipeline,
                t(4),
                &[0, 1, 2],
                &[RegisterSizing {
                    slots: 64,
                    arrays: 1,
                    ..Default::default()
                }],
                0,
                0,
            )
            .unwrap();
            Switch::load(cp.fragment, &SwitchConstraints::default()).unwrap()
        };
        let mut fast = load();
        let mut reference = load();
        reference.set_force_reference(true);
        for sw in [&mut fast, &mut reference] {
            sw.process(&syn(1, 0x0a000001));
            assert_eq!(sw.end_window().tuples.len(), 0);
            let tables = sw.dyn_filter_tables();
            sw.set_dyn_filter(&tables[0].0, [0x0a000000u64].into_iter().collect())
                .unwrap();
            sw.process(&syn(1, 0x0a000001));
            sw.process(&syn(1, 0x0b000001));
        }
        assert_eq!(fast.end_window(), reference.end_window());
    }

    #[test]
    fn batch_execution_matches_per_packet_path() {
        use sonata_packet::PacketArena;
        // Same program, same packets: process_batch and the per-packet
        // wire path must agree on every report (order, columns, seq,
        // mirrored packets), the window dump, and all counters —
        // including shunt-heavy registers and scratch reuse across
        // windows. The per-packet oracle is process_bytes so both
        // sides decode mirrored packets from the same wire bytes.
        for sizing in [
            RegisterSizing {
                slots: 512,
                arrays: 2,
                ..Default::default()
            },
            RegisterSizing {
                slots: 1,
                arrays: 1,
                ..Default::default()
            },
        ] {
            let q = catalog::newly_opened_tcp_conns(&Thresholds {
                new_tcp: 1,
                ..Thresholds::default()
            });
            let load = |sizing| {
                let cp = compile_pipeline(&q.pipeline, t(1), &[0, 1, 2], &[sizing], 0, 0).unwrap();
                Switch::load(cp.fragment, &SwitchConstraints::default()).unwrap()
            };
            let mut owned = load(sizing);
            let mut batched = load(sizing);
            // The leading SYN filter is hoisted into the gate: mix in
            // non-SYN packets so gating actually skips some.
            let pkts: Vec<Packet> = (0..60)
                .map(|i| {
                    if i % 3 == 0 {
                        PacketBuilder::tcp_raw(i, 1, 0xaa + (i % 5), 80)
                            .flags(TcpFlags::PSH_ACK)
                            .build()
                    } else {
                        syn(i % 7, 0xaa + (i % 5))
                    }
                })
                .collect();
            assert!(
                !batched.plan.gates.all_pass,
                "leading SYN filter must be hoisted"
            );
            let arena = PacketArena::from_packets(&pkts);
            let mut out = ReportBatch::new();
            for w in 0..2 {
                let per_pkt: Vec<Vec<Report>> = pkts
                    .iter()
                    .map(|p| owned.process_bytes(&p.encode(), p.ts_nanos))
                    .collect();
                batched.process_batch(&arena.batch(), &mut out);
                assert_eq!(out.packets(), pkts.len());
                for (i, want) in per_pkt.iter().enumerate() {
                    let got: Vec<Report> = out
                        .packet_reports(i, arena.batch())
                        .map(|r| r.to_report())
                        .collect();
                    assert_eq!(&got, want, "window {w} packet {i}");
                }
                assert_eq!(batched.end_window(), owned.end_window(), "window {w}");
                assert_eq!(batched.counters().packets_in, owned.counters().packets_in);
                assert_eq!(
                    batched.counters().total_to_stream_processor(),
                    owned.counters().total_to_stream_processor()
                );
            }
        }
    }

    #[test]
    fn batch_gate_observes_dyn_filter_updates() {
        use sonata_packet::{Field, PacketArena};
        use sonata_query::expr::{field, lit, Pred};
        use sonata_query::{expr::col, Agg};
        // The hoisted dyn-filter gate must read entries live: a
        // control-plane update between windows takes effect on the
        // batch path exactly as per-packet.
        let q = sonata_query::Query::builder("refined", 4)
            .filter(Pred::in_set(
                field(Field::Ipv4Dst).mask(8),
                std::collections::BTreeSet::new(),
            ))
            .map([("dIP", field(Field::Ipv4Dst)), ("c", lit(1))])
            .reduce(&["dIP"], Agg::Sum, "c")
            .filter(col("c").gt(lit(0)))
            .build()
            .unwrap();
        let load = || {
            let cp = compile_pipeline(
                &q.pipeline,
                t(4),
                &[0, 1, 2],
                &[RegisterSizing {
                    slots: 64,
                    arrays: 1,
                    ..Default::default()
                }],
                0,
                0,
            )
            .unwrap();
            Switch::load(cp.fragment, &SwitchConstraints::default()).unwrap()
        };
        let mut owned = load();
        let mut batched = load();
        assert!(!batched.plan.gates.all_pass);
        let pkts = vec![syn(1, 0x0a000001), syn(1, 0x0b000001)];
        let arena = PacketArena::from_packets(&pkts);
        let mut out = ReportBatch::new();
        // Window 1: empty pass-when-empty dyn filter admits nothing...
        // (pass_when_empty is false for refinement filters) — both
        // paths must agree either way.
        owned.process_bytes(&pkts[0].encode(), 0);
        owned.process_bytes(&pkts[1].encode(), 0);
        batched.process_batch(&arena.batch(), &mut out);
        assert_eq!(batched.end_window(), owned.end_window());
        // Control-plane update between windows: admit 10.0.0.0/8.
        for sw in [&mut owned, &mut batched] {
            let tables = sw.dyn_filter_tables();
            sw.set_dyn_filter(&tables[0].0, [0x0a000000u64].into_iter().collect())
                .unwrap();
        }
        let per_pkt: Vec<Vec<Report>> = pkts
            .iter()
            .map(|p| owned.process_bytes(&p.encode(), p.ts_nanos))
            .collect();
        batched.process_batch(&arena.batch(), &mut out);
        for (i, want) in per_pkt.iter().enumerate() {
            let got: Vec<Report> = out
                .packet_reports(i, arena.batch())
                .map(|r| r.to_report())
                .collect();
            assert_eq!(&got, want, "packet {i}");
        }
        assert_eq!(batched.end_window(), owned.end_window());
    }

    #[test]
    fn batch_execution_matches_per_packet_on_merged_program() {
        use sonata_packet::PacketArena;
        // Multi-query program exercising every report path at once:
        // q1 window-dumps via a roomy register, q5 shunts via 1-slot
        // registers (and leads with a Map, so the gate degenerates to
        // all-pass), q9 is filter-only and mirrors packets
        // (include_packet: the batch path must attach arena-decoded
        // packets identical to the per-packet decode).
        let t5 = TaskId {
            query: QueryId(5),
            level: 32,
            branch: 0,
        };
        let t9 = TaskId {
            query: QueryId(9),
            level: 32,
            branch: 0,
        };
        let load = || {
            let q1 = catalog::newly_opened_tcp_conns(&Thresholds {
                new_tcp: 2,
                ..Default::default()
            });
            let q5 = catalog::ddos(&Thresholds {
                ddos: 0,
                ..Default::default()
            });
            let q9 = catalog::newly_opened_tcp_conns(&Thresholds::default());
            let cp1 = compile_pipeline(
                &q1.pipeline,
                t(1),
                &[0, 1, 2],
                &[RegisterSizing {
                    slots: 128,
                    arrays: 2,
                    ..Default::default()
                }],
                0,
                0,
            )
            .unwrap();
            let cp5 = compile_pipeline(
                &q5.pipeline,
                t5,
                &[0, 1, 3, 5],
                &[
                    RegisterSizing {
                        slots: 1,
                        arrays: 1,
                        ..Default::default()
                    },
                    RegisterSizing {
                        slots: 1,
                        arrays: 1,
                        ..Default::default()
                    },
                ],
                cp1.fragment.meta_slots,
                10,
            )
            .unwrap();
            let cp9 = compile_pipeline(
                &q9.pipeline,
                t9,
                &[0],
                &[],
                cp1.fragment.meta_slots + cp5.fragment.meta_slots,
                20,
            )
            .unwrap();
            let mut program = cp1.fragment;
            program.merge(cp5.fragment);
            program.merge(cp9.fragment);
            Switch::load(program, &SwitchConstraints::default()).unwrap()
        };
        let mut owned = load();
        let mut batched = load();
        assert!(
            batched.plan.gates.all_pass,
            "q5 leads with a Map, so gating must disable itself"
        );
        let pkts: Vec<Packet> = (0..8).map(|i| syn(100 + i, 0xaa)).collect();
        let arena = PacketArena::from_packets(&pkts);
        let mut out = ReportBatch::new();
        let per_pkt: Vec<Vec<Report>> = pkts
            .iter()
            .map(|p| owned.process_bytes(&p.encode(), p.ts_nanos))
            .collect();
        batched.process_batch(&arena.batch(), &mut out);
        let mut saw_packet = false;
        let mut saw_shunt = false;
        for (i, want) in per_pkt.iter().enumerate() {
            let got: Vec<Report> = out
                .packet_reports(i, arena.batch())
                .map(|r| r.to_report())
                .collect();
            saw_packet |= got.iter().any(|r| r.packet.is_some());
            saw_shunt |= got.iter().any(|r| r.kind == ReportKind::Shunt);
            assert_eq!(&got, want, "packet {i}");
        }
        assert!(saw_packet, "q9 must mirror packets");
        assert!(saw_shunt, "q5 must shunt");
        assert_eq!(batched.end_window(), owned.end_window());
        assert_eq!(
            batched.counters().per_task,
            owned.counters().per_task,
            "per-task counters must attribute identically"
        );
    }

    #[test]
    fn merged_program_attributes_counters_to_the_right_task() {
        // Three tasks in one program with deliberately different report
        // paths: q1 dumps via a roomy register, q5 shunts via a 1-slot
        // register, q9 mirrors per-packet tuples (filter-only).
        let t1 = t(1);
        let t5 = TaskId {
            query: QueryId(5),
            level: 32,
            branch: 0,
        };
        let t9 = TaskId {
            query: QueryId(9),
            level: 32,
            branch: 0,
        };
        let q1 = catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 2,
            ..Default::default()
        });
        let q5 = catalog::ddos(&Thresholds {
            ddos: 0,
            ..Default::default()
        });
        let q9 = catalog::newly_opened_tcp_conns(&Thresholds::default());
        let cp1 = compile_pipeline(
            &q1.pipeline,
            t1,
            &[0, 1, 2],
            &[RegisterSizing {
                slots: 128,
                arrays: 2,
                ..Default::default()
            }],
            0,
            0,
        )
        .unwrap();
        let cp5 = compile_pipeline(
            &q5.pipeline,
            t5,
            &[0, 1, 3, 5],
            &[
                RegisterSizing {
                    slots: 1,
                    arrays: 1,
                    ..Default::default()
                },
                RegisterSizing {
                    slots: 1,
                    arrays: 1,
                    ..Default::default()
                },
            ],
            cp1.fragment.meta_slots,
            10,
        )
        .unwrap();
        let cp9 = compile_pipeline(
            &q9.pipeline,
            t9,
            &[0],
            &[],
            cp1.fragment.meta_slots + cp5.fragment.meta_slots,
            20,
        )
        .unwrap();
        let mut program = cp1.fragment;
        program.merge(cp5.fragment);
        program.merge(cp9.fragment);
        let obs = sonata_obs::ObsHandle::enabled();
        let mut sw = Switch::load_with_obs(program, &SwitchConstraints::default(), &obs).unwrap();
        // 4 SYNs from distinct sources: q1 aggregates on the switch,
        // q5's 1-slot registers shunt the later distinct sources, q9
        // mirrors every SYN as a tuple.
        for i in 0..4 {
            sw.process(&syn(100 + i, 0xaa));
        }
        sw.end_window();
        let c = sw.counters();
        let c1 = c.task(&t1);
        let c5 = c.task(&t5);
        let c9 = c.task(&t9);
        // q1: pure window dump — no shunts, no per-packet tuples.
        assert_eq!(
            (c1.tuple_reports, c1.shunt_reports, c1.dump_tuples),
            (0, 0, 1),
            "q1 {c1:?}"
        );
        // q5: the 1-slot distinct register shunts sources 2..4.
        assert_eq!(c5.tuple_reports, 0, "q5 {c5:?}");
        assert!(c5.shunt_reports > 0, "q5 must shunt: {c5:?}");
        // q9: filter-only partition mirrors all 4 SYNs.
        assert_eq!(
            (c9.tuple_reports, c9.shunt_reports, c9.dump_tuples),
            (4, 0, 0),
            "q9 {c9:?}"
        );
        // Per-task splits must add up to the aggregate counters.
        let split_total: u64 = c.per_task.iter().map(|(_, tc)| tc.total()).sum();
        assert_eq!(split_total, c.total_to_stream_processor());
        // The obs registry must agree with SwitchCounters exactly.
        let snap = obs.snapshot();
        assert_eq!(
            snap.counter("sonata_switch_packets_total"),
            Some(c.packets_in)
        );
        for (task, tc) in &c.per_task {
            for (kind, want) in [
                ("tuple", tc.tuple_reports),
                ("shunt", tc.shunt_reports),
                ("dump", tc.dump_tuples),
            ] {
                let key = format!("sonata_switch_reports_total{{task=\"{task}\",kind=\"{kind}\"}}");
                assert_eq!(snap.counter(&key), Some(want), "{key}");
            }
        }
    }
}
