//! Reusable report arena for batch execution.
//!
//! [`crate::switch::Switch::process_batch`] appends every report a
//! window's packets produce into one [`ReportBatch`] instead of a
//! fresh `Vec<Report>` per packet: entries are fixed-width records
//! whose columns live in one shared pool, and mirrored packets are
//! stored as *indices into the arena batch* rather than owned
//! [`Packet`](sonata_packet::Packet) clones. Consumers walk
//! [`ReportBatch::packet_reports`] to get borrowed [`ReportRef`]s in
//! the exact order the per-packet path would have produced owned
//! [`Report`]s; [`ReportRef::to_report`] materializes one only when an
//! owned value is genuinely needed (loopback transport hand-off,
//! fault-injection replay).

use crate::ir::TaskId;
use crate::switch::{Report, ReportKind};
use sonata_packet::{ArenaBatch, PacketView};
use sonata_query::ColName;

/// One report record: a slice of the shared column pool plus the
/// source packet's index in the arena batch (when mirrored).
#[derive(Debug, Clone, Copy)]
struct BatchEntry {
    task: TaskId,
    kind: ReportKind,
    col_start: u32,
    col_end: u32,
    pkt_idx: Option<u32>,
    entry_op: Option<usize>,
    seq: u64,
}

/// A window's worth of reports in struct-of-arrays form, reused
/// across windows (`reset` retains all allocations, so the
/// steady-state batch loop performs no heap allocation).
#[derive(Debug, Default)]
pub struct ReportBatch {
    entries: Vec<BatchEntry>,
    /// Shared column pool all entries slice into.
    cols: Vec<(ColName, u64)>,
    /// Per-packet entry range, in packet order — one per batch packet,
    /// empty for packets that emitted nothing.
    ranges: Vec<(u32, u32)>,
}

impl ReportBatch {
    /// An empty batch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        ReportBatch::default()
    }

    /// Clear for a new batch of `n` packets, retaining capacity.
    pub(crate) fn reset(&mut self, n: usize) {
        self.entries.clear();
        self.cols.clear();
        self.ranges.clear();
        self.ranges.reserve(n);
    }

    /// Start recording packet `ranges.len()`; pair with `end_packet`.
    pub(crate) fn begin_packet(&mut self) -> u32 {
        self.entries.len() as u32
    }

    pub(crate) fn end_packet(&mut self, start: u32) {
        self.ranges.push((start, self.entries.len() as u32));
    }

    /// Start a report's column run in the shared pool.
    pub(crate) fn begin_report(&mut self) -> u32 {
        self.cols.len() as u32
    }

    pub(crate) fn push_col(&mut self, name: &ColName, v: u64) {
        self.cols.push((name.clone(), v));
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish_report(
        &mut self,
        task: TaskId,
        kind: ReportKind,
        col_start: u32,
        pkt_idx: Option<u32>,
        entry_op: Option<usize>,
        seq: u64,
    ) {
        self.entries.push(BatchEntry {
            task,
            kind,
            col_start,
            col_end: self.cols.len() as u32,
            pkt_idx,
            entry_op,
            seq,
        });
    }

    /// Number of packets recorded so far.
    pub fn packets(&self) -> usize {
        self.ranges.len()
    }

    /// Total reports across all packets.
    pub fn total_reports(&self) -> usize {
        self.entries.len()
    }

    /// Whether no packet emitted anything.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The reports packet `i` produced, in emission order, borrowing
    /// mirrored packet bytes from `batch` — which must be the same
    /// [`ArenaBatch`] the reports were produced from.
    pub fn packet_reports<'s, 'a: 's>(
        &'s self,
        i: usize,
        batch: ArenaBatch<'a>,
    ) -> impl Iterator<Item = ReportRef<'s, 'a>> + 's {
        let (start, end) = self.ranges[i];
        self.entries[start as usize..end as usize]
            .iter()
            .map(move |e| ReportRef {
                task: e.task,
                kind: e.kind,
                columns: &self.cols[e.col_start as usize..e.col_end as usize],
                packet: e.pkt_idx.map(|p| batch.view(p as usize)),
                entry_op: e.entry_op,
                seq: e.seq,
            })
    }
}

/// A borrowed view of one report: columns point into the
/// [`ReportBatch`] pool, the mirrored packet (if any) into the packet
/// arena. Conversion to an owned [`Report`] is deferred to the ship
/// boundary — and skipped entirely on transports that can encode
/// straight from borrowed slices.
#[derive(Debug, Clone, Copy)]
pub struct ReportRef<'b, 'a> {
    /// Originating task.
    pub task: TaskId,
    /// Tuple or shunt (window dumps never pass through the batch).
    pub kind: ReportKind,
    /// Report columns in program order.
    pub columns: &'b [(ColName, u64)],
    /// Borrowed view of the mirrored packet, when the query asked for
    /// packet payloads.
    pub packet: Option<PacketView<'a>>,
    /// Shunt entry op, `None` for tuples.
    pub entry_op: Option<usize>,
    /// Per-task window sequence number.
    pub seq: u64,
}

impl ReportRef<'_, '_> {
    /// Materialize an owned [`Report`]. The arena invariant (every
    /// record is `Packet::decode`-able — enforced when arenas are
    /// built) means the deferred decode cannot fail for well-formed
    /// arenas; a hand-built arena with an undecodable record degrades
    /// to `packet: None` rather than panicking.
    pub fn to_report(&self) -> Report {
        Report {
            task: self.task,
            kind: self.kind,
            columns: self.columns.to_vec(),
            packet: self.packet.and_then(|v| v.decode().ok()),
            entry_op: self.entry_op,
            seq: self.seq,
        }
    }
}
