//! The packet header vector (PHV).
//!
//! A PHV carries (1) parsed header fields — fixed-width scalars only,
//! as on real hardware — and (2) per-task metadata containers that the
//! match-action pipeline reads and writes. Variable-width content
//! (payloads, DNS names) never enters the PHV; queries needing it are
//! partitioned so the stream processor sees the original packet.

use sonata_packet::Field;

/// Number of scalar header fields a PHV can hold.
pub const FIELD_SLOTS: usize = Field::ALL.len();

/// Index of a field in the PHV's fixed slot array.
pub fn field_slot(f: Field) -> usize {
    Field::ALL
        .iter()
        .position(|x| *x == f)
        .expect("field in ALL")
}

/// A reference to a metadata container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetaRef(pub usize);

/// The packet header vector for one packet traversing the pipeline.
#[derive(Debug, Clone)]
pub struct Phv {
    /// Parsed header fields, indexed by [`field_slot`]. Unparsed or
    /// invalid fields read as zero (zeroed containers).
    fields: [u64; FIELD_SLOTS],
    /// Which fields were actually parsed.
    valid: [bool; FIELD_SLOTS],
    /// Metadata containers, sized by the program's metadata layout.
    meta: Vec<u64>,
    /// Per-task liveness: a task's tables only execute while alive.
    alive: Vec<bool>,
    /// Per-task report flag (the paper's one-bit `report` field).
    report: Vec<bool>,
}

impl Phv {
    /// A PHV with `meta_slots` metadata containers and `tasks` tasks.
    pub fn new(meta_slots: usize, tasks: usize) -> Self {
        Phv {
            fields: [0; FIELD_SLOTS],
            valid: [false; FIELD_SLOTS],
            meta: vec![0; meta_slots],
            alive: vec![true; tasks],
            report: vec![false; tasks],
        }
    }

    /// Reset in place to the state of a fresh `Phv::new(meta_slots,
    /// tasks)`. Once the vectors have grown to the program's sizes
    /// this never reallocates, which keeps the switch packet loop
    /// allocation-free when reusing a scratch PHV.
    pub fn reset(&mut self, meta_slots: usize, tasks: usize) {
        self.fields = [0; FIELD_SLOTS];
        self.valid = [false; FIELD_SLOTS];
        self.meta.clear();
        self.meta.resize(meta_slots, 0);
        self.alive.clear();
        self.alive.resize(tasks, true);
        self.report.clear();
        self.report.resize(tasks, false);
    }

    /// Read a field by its pre-resolved [`field_slot`] index — the
    /// fast-path accessor used by compiled [`crate::exec::ExecPlan`]s
    /// so the per-packet loop never scans `Field::ALL`.
    #[inline]
    pub fn field_by_slot(&self, slot: usize) -> u64 {
        self.fields[slot]
    }

    /// Read a metadata container by raw index (fast-path accessor).
    #[inline]
    pub fn meta_by_slot(&self, slot: usize) -> u64 {
        self.meta[slot]
    }

    /// Store a parsed field value.
    pub fn set_field(&mut self, f: Field, v: u64) {
        let i = field_slot(f);
        self.fields[i] = v;
        self.valid[i] = true;
    }

    /// Read a field (0 when unparsed).
    pub fn field(&self, f: Field) -> u64 {
        self.fields[field_slot(f)]
    }

    /// Whether a field was parsed.
    pub fn field_valid(&self, f: Field) -> bool {
        self.valid[field_slot(f)]
    }

    /// Read a metadata container.
    pub fn meta(&self, r: MetaRef) -> u64 {
        self.meta[r.0]
    }

    /// Write a metadata container.
    pub fn set_meta(&mut self, r: MetaRef, v: u64) {
        self.meta[r.0] = v;
    }

    /// Whether task `t` is still alive.
    pub fn is_alive(&self, t: usize) -> bool {
        self.alive[t]
    }

    /// Kill task `t` (a filter miss).
    pub fn kill(&mut self, t: usize) {
        self.alive[t] = false;
    }

    /// Mark task `t` for reporting to the stream processor.
    pub fn mark_report(&mut self, t: usize) {
        self.report[t] = true;
    }

    /// Whether task `t` is marked for reporting.
    pub fn reported(&self, t: usize) -> bool {
        self.report[t]
    }

    /// Number of metadata containers.
    pub fn meta_len(&self) -> usize {
        self.meta.len()
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.alive.len()
    }
}

impl Default for Phv {
    /// An empty PHV (no metadata, no tasks) — the initial state of a
    /// reusable scratch buffer before the first [`Phv::reset`].
    fn default() -> Self {
        Phv::new(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_slots_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for f in Field::ALL {
            assert!(seen.insert(field_slot(*f)));
        }
    }

    #[test]
    fn fields_default_to_zero_and_invalid() {
        let phv = Phv::new(4, 2);
        assert_eq!(phv.field(Field::Ipv4Dst), 0);
        assert!(!phv.field_valid(Field::Ipv4Dst));
    }

    #[test]
    fn set_and_read_fields_meta() {
        let mut phv = Phv::new(4, 2);
        phv.set_field(Field::Ipv4Dst, 0x0a000001);
        assert_eq!(phv.field(Field::Ipv4Dst), 0x0a000001);
        assert!(phv.field_valid(Field::Ipv4Dst));
        phv.set_meta(MetaRef(3), 99);
        assert_eq!(phv.meta(MetaRef(3)), 99);
        assert_eq!(phv.meta(MetaRef(0)), 0);
    }

    #[test]
    fn reset_matches_fresh() {
        let mut phv = Phv::new(4, 3);
        phv.set_field(Field::Ipv4Dst, 9);
        phv.set_meta(MetaRef(2), 7);
        phv.kill(1);
        phv.mark_report(0);
        phv.reset(2, 1);
        assert!(!phv.field_valid(Field::Ipv4Dst));
        assert_eq!(phv.field(Field::Ipv4Dst), 0);
        assert_eq!(phv.meta_len(), 2);
        assert_eq!(phv.meta(MetaRef(0)), 0);
        assert_eq!(phv.task_count(), 1);
        assert!(phv.is_alive(0));
        assert!(!phv.reported(0));
    }

    #[test]
    fn slot_accessors_agree_with_named_accessors() {
        let mut phv = Phv::new(3, 1);
        phv.set_field(Field::TcpDstPort, 443);
        phv.set_meta(MetaRef(1), 5);
        assert_eq!(
            phv.field_by_slot(field_slot(Field::TcpDstPort)),
            phv.field(Field::TcpDstPort)
        );
        assert_eq!(phv.meta_by_slot(1), phv.meta(MetaRef(1)));
    }

    #[test]
    fn task_liveness_and_reporting() {
        let mut phv = Phv::new(0, 3);
        assert!(phv.is_alive(1));
        phv.kill(1);
        assert!(!phv.is_alive(1));
        assert!(phv.is_alive(0) && phv.is_alive(2));
        assert!(!phv.reported(2));
        phv.mark_report(2);
        assert!(phv.reported(2));
    }
}
