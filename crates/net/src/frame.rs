//! The boundary vocabulary: every message that crosses the wire
//! between the switch's mirror/control ports and the stream-processor
//! collector, as one typed enum.
//!
//! The protocol is window-lockstep: per window the switch sends
//! `WindowOpen`, a stream of `Report`s, one `WindowDump`, and
//! `WindowClose`; the collector replies with one `Control` batch,
//! receives a `ControlAck`, and finally grants a `Credit` that lets
//! the switch open the next window. `Hello` opens (and, after a
//! reconnect, resumes) a session and carries the plan digest both
//! sides must agree on.

use sonata_pisa::{ControlOp, Report, WindowDump};

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Session open / plan-registration sync. Sent first on every
    /// connection (including reconnects); the collector rejects a
    /// digest that does not match its deployed plan.
    Hello {
        /// Switch node name (diagnostic).
        node: String,
        /// Digest of the deployed plan's task set.
        plan_digest: u64,
    },
    /// A window started on the switch.
    WindowOpen {
        /// Window index.
        window: u64,
        /// Packets the switch will process this window.
        packets: u64,
    },
    /// One mirrored report (per-packet tuple or collision shunt).
    Report(Report),
    /// The end-of-window register dump, sent as a single batch frame
    /// (batch coalescing: one frame instead of one per dump tuple).
    WindowDump {
        /// Window index.
        window: u64,
        /// The dump.
        dump: WindowDump,
    },
    /// The switch finished the window's mirror stream. Carries the
    /// switch's own stage latencies in-band (INT-style): the collector
    /// attributes per-switch waterfall segments from these fields
    /// without a side channel, even when the halves run on different
    /// threads or hosts. All three are 0 when observability is off.
    WindowClose {
        /// Window index.
        window: u64,
        /// Switch-side packet-loop wall time for the window.
        packet_loop_ns: u64,
        /// Switch-side register-dump (encode) wall time.
        dump_ns: u64,
        /// Switch-side wire egress (dump send) wall time.
        transport_ns: u64,
    },
    /// Control-plane batch from the collector: dynamic-filter boundary
    /// writes and register resets.
    Control {
        /// Window index the batch closes.
        window: u64,
        /// The operations, applied in order.
        ops: Vec<ControlOp>,
    },
    /// The switch applied a control batch.
    ControlAck {
        /// Window index.
        window: u64,
        /// Dynamic-filter entries written.
        entries_written: u64,
        /// Simulated control-plane latency.
        latency_ns: u64,
    },
    /// Flow-control credit: the switch may open the next window. The
    /// collector grants it only after fully draining the closed
    /// window, which bounds switch-side run-ahead to one window.
    Credit {
        /// The window being credited (the one just completed).
        window: u64,
    },
}

impl Frame {
    /// Wire type tag of `Report` frames — the one frame kind also
    /// encodable from borrowed slices
    /// ([`crate::codec::encode_report_ref`]), so its tag is named.
    pub const REPORT_TYPE_BYTE: u8 = 3;

    /// Wire type tag.
    pub fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::WindowOpen { .. } => 2,
            Frame::Report(_) => Self::REPORT_TYPE_BYTE,
            Frame::WindowDump { .. } => 4,
            Frame::WindowClose { .. } => 5,
            Frame::Control { .. } => 6,
            Frame::ControlAck { .. } => 7,
            Frame::Credit { .. } => 8,
        }
    }

    /// Short label for events and diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::WindowOpen { .. } => "window_open",
            Frame::Report(_) => "report",
            Frame::WindowDump { .. } => "window_dump",
            Frame::WindowClose { .. } => "window_close",
            Frame::Control { .. } => "control",
            Frame::ControlAck { .. } => "control_ack",
            Frame::Credit { .. } => "credit",
        }
    }
}
