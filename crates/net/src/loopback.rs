//! In-process loopback backend: frames pass between the two endpoints
//! as values over bounded [`FrameQueue`]s — no byte serialization, no
//! sockets, fully deterministic. This is the default backend, and runs
//! over it are bit-identical to the pre-wire in-process runtime (the
//! differential suite asserts this); codec fidelity is exercised by
//! the `Tcp` backend and the codec property tests instead.

use crate::frame::Frame;
use crate::transport::{FrameQueue, NetError, NetMetrics, Transport};
use sonata_obs::TraceContext;
use std::time::Duration;

/// Default queue capacity per direction. Per-packet pumping keeps the
/// live depth tiny; the headroom exists for the threaded driver, where
/// the switch runs a full window ahead of the collector's drain.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// One end of a loopback link.
pub struct LoopbackTransport {
    tx: FrameQueue,
    rx: FrameQueue,
}

/// Build a connected pair: `(switch_end, collector_end)`. The
/// switch→collector direction carries the collector's ingest-queue
/// depth gauge from `metrics`.
pub fn loopback_pair(
    capacity: usize,
    metrics: &NetMetrics,
) -> (LoopbackTransport, LoopbackTransport) {
    let to_collector = FrameQueue::new(capacity, Some(metrics.queue_depth.clone()));
    let to_switch = FrameQueue::new(capacity, None);
    (
        LoopbackTransport {
            tx: to_collector.clone(),
            rx: to_switch.clone(),
        },
        LoopbackTransport {
            tx: to_switch,
            rx: to_collector,
        },
    )
}

impl Transport for LoopbackTransport {
    fn send(&mut self, ctx: TraceContext, epoch: u64, frame: &Frame) -> Result<(), NetError> {
        self.tx.push(ctx, epoch, frame.clone())
    }

    fn try_recv(&mut self) -> Result<Option<(TraceContext, u64, Frame)>, NetError> {
        self.rx.try_pop()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<(TraceContext, u64, Frame), NetError> {
        self.rx.pop_timeout(timeout)
    }

    fn kind(&self) -> &'static str {
        "loopback"
    }
}

impl Drop for LoopbackTransport {
    fn drop(&mut self) {
        // Wake anyone blocked on the counterpart end.
        self.tx.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonata_obs::ObsHandle;

    #[test]
    fn pair_delivers_frames_both_ways_in_order() {
        let metrics = NetMetrics::new(&ObsHandle::disabled());
        let ctx = TraceContext::root(0, 0);
        let (mut sw, mut sp) = loopback_pair(8, &metrics);
        sw.send(
            ctx,
            2,
            &Frame::WindowOpen {
                window: 0,
                packets: 2,
            },
        )
        .unwrap();
        sw.send(
            ctx,
            2,
            &Frame::WindowClose {
                window: 0,
                packet_loop_ns: 0,
                dump_ns: 0,
                transport_ns: 0,
            },
        )
        .unwrap();
        // The trace context and epoch cross the link with their frame.
        assert!(matches!(
            sp.try_recv().unwrap(),
            Some((c, 2, Frame::WindowOpen { window: 0, .. })) if c == ctx
        ));
        assert!(matches!(
            sp.recv_timeout(Duration::from_millis(50)).unwrap(),
            (c, 2, Frame::WindowClose { window: 0, .. }) if c == ctx
        ));
        assert!(sp.try_recv().unwrap().is_none());
        sp.send(TraceContext::NONE, 0, &Frame::Credit { window: 0 })
            .unwrap();
        assert!(matches!(
            sw.recv_timeout(Duration::from_millis(50)).unwrap(),
            (c, 0, Frame::Credit { window: 0 }) if c == TraceContext::NONE
        ));
    }

    #[test]
    fn dropping_one_end_closes_the_other() {
        let metrics = NetMetrics::new(&ObsHandle::disabled());
        let (sw, mut sp) = loopback_pair(8, &metrics);
        drop(sw);
        assert_eq!(
            sp.recv_timeout(Duration::from_millis(50)).unwrap_err(),
            NetError::Closed
        );
    }
}
