//! `sonata-net`: the wire protocol and transport layer between the
//! PISA switch and the stream-processor collector.
//!
//! The pre-wire runtime passed reports, window dumps, and control
//! operations between the switch model and the stream processor as
//! in-process function calls. This crate makes that boundary explicit:
//!
//! * [`frame`] — the boundary vocabulary as one typed [`Frame`] enum
//!   (session hello, window open/close markers, reports, the batched
//!   window dump, control batches, acks, and flow-control credits).
//! * [`codec`] — a versioned binary wire format: length-prefixed
//!   framing with a magic + version header and a per-frame CRC-32.
//!   Decoding never panics; malformed input returns a typed
//!   [`CodecError`].
//! * [`transport`] — the [`Transport`] trait plus the bounded
//!   [`FrameQueue`] and the `sonata_net_*` metric family.
//! * [`loopback`] — the default in-process backend: deterministic,
//!   no byte serialization, bit-identical to the pre-wire runtime.
//! * [`tcp`] — localhost TCP sockets: a client with reconnect +
//!   exponential backoff and a collector server with per-connection
//!   bounded queues (high-watermark backpressure).
//! * [`endpoint`] — protocol endpoints over a transport; the switch
//!   endpoint owns the egress report-fault seam, so injected report
//!   faults act on the real wire path.
//!
//! The protocol is window-lockstep: the collector grants a credit only
//! after fully draining a closed window, bounding switch run-ahead to
//! one window and keeping threaded and TCP runs bit-identical to
//! single-threaded loopback runs.
//!
//! Every frame header also carries the sender's committed **plan
//! epoch** (v4): an online re-plan swaps in an epoch-bumped plan at a
//! window boundary, and frames stamped with a replaced plan's epoch
//! are rejected with [`transport::NetError::StaleEpoch`] instead of
//! being merged — no window is ever assembled from two plans.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod endpoint;
pub mod frame;
pub mod loopback;
pub mod tcp;
pub mod transport;

pub use codec::{
    crc32, decode_frame, decode_frame_tagged, encode_frame, encode_frame_ctx, encode_frame_from,
    CodecError, HEADER_LEN, MAGIC, MAX_FRAME_LEN, VERSION,
};
pub use endpoint::{CollectorEndpoint, SwitchEndpoint, DEFAULT_TIMEOUT};
pub use frame::Frame;
pub use loopback::{loopback_pair, LoopbackTransport, DEFAULT_CAPACITY};
pub use tcp::{tcp_pair, TcpClientTransport, TcpCollectorTransport, TcpOptions};
pub use transport::{FrameQueue, NetError, NetMetrics, Transport, TransportKind};
