//! Protocol endpoints: [`SwitchEndpoint`] wraps a [`Transport`] on the
//! switch side and owns the egress report-fault seam; the
//! [`CollectorEndpoint`] wraps the stream-processor side, verifying
//! session `Hello`s against the deployed plan digest.
//!
//! Re-homing the report faults here (instead of inside the switch
//! model) means the chaos suite exercises the *real* wire path: a
//! dropped report is a frame that never enters the transport, a
//! delayed one re-emerges behind later packets' frames. The verdict
//! sequence is identical to the old in-switch seam — the injector is
//! consulted once per fresh report, in packet order, per packet.

use crate::frame::Frame;
use crate::transport::{NetError, NetMetrics, Transport};
use sonata_faults::{FaultInjector, ReportVerdict};
use sonata_obs::{EventKind, TraceContext};
use sonata_packet::ArenaBatch;
use sonata_pisa::{ControlOp, Report, ReportBatch, WindowDump};
use std::time::Duration;

/// Default blocking-receive timeout for protocol turns. Generous: a
/// turn only stalls when the peer crashed, and the driver surfaces the
/// timeout as a runtime error rather than hanging forever.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// Switch-side protocol endpoint.
pub struct SwitchEndpoint {
    t: Box<dyn Transport>,
    faults: FaultInjector,
    /// Reports held by a `Delay` verdict: `(due_packet, report)`.
    delayed: Vec<(u64, Report)>,
    /// Packets mirrored so far this window (drives delay release).
    window_packets: u64,
    metrics: NetMetrics,
    timeout: Duration,
    /// Session identity, kept so a switch rejoining a fabric can
    /// replay its `Hello` and have the collector re-verify the digest.
    node: String,
    plan_digest: u64,
    /// Epoch of the locally committed plan, stamped on every outgoing
    /// frame. Bumped by [`SwitchEndpoint::set_plan`] at a swap, or
    /// adopted from the collector (the epoch authority) when a control
    /// frame arrives stamped with a *newer* epoch.
    epoch: u64,
    /// Trace context stamped on every outgoing frame; the driver sets
    /// it to the window's root span at `WindowOpen` so the collector
    /// parents its half of the trace under the same `TraceId`.
    ctx: TraceContext,
}

impl SwitchEndpoint {
    /// Wrap `transport` and open the session with a `Hello` stamped
    /// with the committed plan's `epoch` (0 for an initial plan).
    pub fn new(
        mut transport: Box<dyn Transport>,
        faults: FaultInjector,
        metrics: NetMetrics,
        node: &str,
        plan_digest: u64,
        epoch: u64,
    ) -> Result<Self, NetError> {
        transport.send(
            TraceContext::NONE,
            epoch,
            &Frame::Hello {
                node: node.to_string(),
                plan_digest,
            },
        )?;
        metrics.frames_tx.inc();
        Ok(SwitchEndpoint {
            t: transport,
            faults,
            delayed: Vec::new(),
            window_packets: 0,
            metrics,
            timeout: DEFAULT_TIMEOUT,
            node: node.to_string(),
            plan_digest,
            epoch,
            ctx: TraceContext::NONE,
        })
    }

    /// Epoch of the plan this endpoint currently stamps on frames.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Commit a swapped-in plan: adopt its digest and epoch, then send
    /// a fresh `Hello` so the session identity (and, on `Tcp`, the
    /// cached reconnect-replay bytes) carries the new digest. Called
    /// at a window boundary — never mid-window — so every subsequent
    /// frame is stamped with the new epoch.
    pub fn set_plan(&mut self, plan_digest: u64, epoch: u64) -> Result<(), NetError> {
        self.plan_digest = plan_digest;
        self.epoch = epoch;
        self.resend_hello()
    }

    /// Set the trace context stamped on subsequent outgoing frames
    /// (the window's root span; [`TraceContext::NONE`] when tracing is
    /// off).
    pub fn set_ctx(&mut self, ctx: TraceContext) {
        self.ctx = ctx;
    }

    /// Replay the session `Hello` — a switch rejoining the fabric
    /// after an outage re-opens its session exactly like a fresh
    /// connection, letting the collector re-verify the plan digest.
    pub fn resend_hello(&mut self) -> Result<(), NetError> {
        let frame = Frame::Hello {
            node: self.node.clone(),
            plan_digest: self.plan_digest,
        };
        self.send(&frame)
    }

    fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        self.t.send(self.ctx, self.epoch, frame)?;
        self.metrics.frames_tx.inc();
        Ok(())
    }

    /// Epoch screen for inbound control-path frames. The collector is
    /// the epoch authority: a frame stamped newer means a swap was
    /// committed there first, so adopt its epoch; a frame stamped
    /// older is left over from a replaced plan and is rejected.
    fn screen_epoch(&mut self, theirs: u64) -> Result<(), NetError> {
        if theirs < self.epoch {
            return Err(NetError::StaleEpoch {
                theirs,
                ours: self.epoch,
            });
        }
        self.epoch = theirs;
        Ok(())
    }

    /// Announce a window.
    pub fn open_window(&mut self, window: u64, packets: u64) -> Result<(), NetError> {
        self.send(&Frame::WindowOpen { window, packets })
    }

    /// Ship one packet's freshly mirrored reports through the egress
    /// fault seam. Must be called once per processed packet — even
    /// when `fresh` is empty — because delay verdicts are measured in
    /// packets, and previously delayed reports re-emerge in front of
    /// this packet's survivors (a true reorder on the mirror stream).
    pub fn send_packet_reports(&mut self, fresh: Vec<Report>) -> Result<(), NetError> {
        if !self.faults.is_enabled() {
            for r in fresh {
                self.send(&Frame::Report(r))?;
            }
            return Ok(());
        }
        self.window_packets += 1;
        let now = self.window_packets;
        if !self.delayed.is_empty() {
            let mut pending = Vec::new();
            for (due, r) in std::mem::take(&mut self.delayed) {
                if due <= now {
                    self.send(&Frame::Report(r))?;
                } else {
                    pending.push((due, r));
                }
            }
            self.delayed = pending;
        }
        for r in fresh {
            match self.faults.egress(r.task.query.0) {
                ReportVerdict::Deliver => self.send(&Frame::Report(r))?,
                ReportVerdict::Drop => {}
                ReportVerdict::Duplicate => {
                    self.send(&Frame::Report(r.clone()))?;
                    self.send(&Frame::Report(r))?;
                }
                ReportVerdict::Delay { packets } => {
                    self.delayed.push((now + packets, r));
                }
            }
        }
        Ok(())
    }

    /// Batch-mode sibling of [`Self::send_packet_reports`]: ship
    /// packet `i`'s reports straight from the report batch and packet
    /// arena. Must be called once per batch packet in order, exactly
    /// like its per-packet sibling, so delay verdicts measured in
    /// packets line up. Fault-free windows take the borrowed path
    /// ([`Transport::send_report_ref`]) and materialize nothing;
    /// faulted windows materialize owned reports and run the
    /// identical per-packet verdict sequence.
    pub fn send_packet_reports_ref(
        &mut self,
        reports: &ReportBatch,
        i: usize,
        arena: ArenaBatch<'_>,
    ) -> Result<(), NetError> {
        if !self.faults.is_enabled() {
            for r in reports.packet_reports(i, arena) {
                self.t.send_report_ref(self.ctx, self.epoch, &r)?;
                self.metrics.frames_tx.inc();
            }
            return Ok(());
        }
        self.send_packet_reports(
            reports
                .packet_reports(i, arena)
                .map(|r| r.to_report())
                .collect(),
        )
    }

    /// Ship the end-of-window register dump as one batch frame. The
    /// dump travels the control-adjacent path, not the mirror stream,
    /// so it bypasses the report-fault seam (matching the pre-wire
    /// runtime, where dump tuples went straight to the emitter).
    pub fn send_dump(&mut self, window: u64, dump: WindowDump) -> Result<(), NetError> {
        self.send(&Frame::WindowDump { window, dump })
    }

    /// Close the window, carrying the switch's own stage latencies
    /// in-band (INT-style) for the collector's waterfall. Reports
    /// still held by a delay verdict are dropped and counted as late —
    /// bounded staleness: a report is never misattributed to the next
    /// window.
    pub fn close_window(
        &mut self,
        window: u64,
        packet_loop_ns: u64,
        dump_ns: u64,
        transport_ns: u64,
    ) -> Result<(), NetError> {
        if self.faults.is_enabled() {
            self.faults.note_late_drop(self.delayed.len() as u64);
            self.delayed.clear();
            self.window_packets = 0;
        }
        self.send(&Frame::WindowClose {
            window,
            packet_loop_ns,
            dump_ns,
            transport_ns,
        })
    }

    /// Await the collector's control batch for `window`.
    pub fn recv_control(&mut self) -> Result<(u64, Vec<ControlOp>), NetError> {
        let (_, epoch, frame) = self.t.recv_timeout(self.timeout)?;
        self.metrics.frames_rx.inc();
        self.screen_epoch(epoch)?;
        match frame {
            Frame::Control { window, ops } => Ok((window, ops)),
            _ => Err(NetError::Protocol("expected Control")),
        }
    }

    /// Acknowledge an applied control batch.
    pub fn send_ack(
        &mut self,
        window: u64,
        entries_written: u64,
        latency_ns: u64,
    ) -> Result<(), NetError> {
        self.send(&Frame::ControlAck {
            window,
            entries_written,
            latency_ns,
        })
    }

    /// Await the flow-control credit that opens the next window.
    pub fn recv_credit(&mut self) -> Result<u64, NetError> {
        let (_, epoch, frame) = self.t.recv_timeout(self.timeout)?;
        self.metrics.frames_rx.inc();
        self.screen_epoch(epoch)?;
        match frame {
            Frame::Credit { window } => Ok(window),
            _ => Err(NetError::Protocol("expected Credit")),
        }
    }
}

/// Collector-side (stream processor) protocol endpoint.
pub struct CollectorEndpoint {
    t: Box<dyn Transport>,
    metrics: NetMetrics,
    /// Digest of the locally deployed plan; `Hello`s must match.
    plan_digest: u64,
    /// Epoch of the locally committed plan. The collector is the
    /// epoch authority: it commits a swap first, stamps its control
    /// frames with the new epoch, and rejects non-`Hello` data frames
    /// stamped older (output of the replaced plan).
    epoch: u64,
    timeout: Duration,
    /// Trace context of the most recently received data frame — the
    /// switch's window root, under which the collector parents its
    /// half of the trace.
    last_ctx: TraceContext,
    /// Epoch stamped on the most recently received data frame; the
    /// fabric tags each switch's window contribution with this so a
    /// cross-epoch merge can be refused.
    last_epoch: u64,
    /// Trace context stamped on outgoing control frames.
    ctx: TraceContext,
}

impl CollectorEndpoint {
    /// Wrap the collector side of a transport; `epoch` is the
    /// committed plan's epoch (0 for an initial plan).
    pub fn new(
        transport: Box<dyn Transport>,
        metrics: NetMetrics,
        plan_digest: u64,
        epoch: u64,
    ) -> Self {
        CollectorEndpoint {
            t: transport,
            metrics,
            plan_digest,
            epoch,
            timeout: DEFAULT_TIMEOUT,
            last_ctx: TraceContext::NONE,
            last_epoch: epoch,
            ctx: TraceContext::NONE,
        }
    }

    /// Trace context carried by the most recently received data frame
    /// ([`TraceContext::NONE`] before the first, or when tracing is
    /// off).
    pub fn last_ctx(&self) -> TraceContext {
        self.last_ctx
    }

    /// Epoch stamped on the most recently received data frame (the
    /// committed epoch before the first).
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Epoch of the plan this endpoint currently stamps on frames.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Commit a swapped-in plan: subsequent `Hello`s must carry the
    /// new digest, outgoing control frames are stamped with the new
    /// epoch, and data frames from the replaced plan are rejected.
    pub fn set_plan(&mut self, plan_digest: u64, epoch: u64) {
        self.plan_digest = plan_digest;
        self.epoch = epoch;
        self.last_epoch = epoch;
    }

    /// Set the trace context stamped on subsequent outgoing frames.
    pub fn set_ctx(&mut self, ctx: TraceContext) {
        self.ctx = ctx;
    }

    /// Verify a session `Hello` against the deployed plan.
    fn check_hello(&self, theirs: u64) -> Result<(), NetError> {
        if theirs == self.plan_digest {
            Ok(())
        } else {
            Err(NetError::PlanMismatch {
                theirs,
                ours: self.plan_digest,
            })
        }
    }

    fn note_rx(&self, frame: &Frame) {
        self.metrics.frames_rx.inc();
        if let Frame::WindowDump { window, .. } = frame {
            if self.metrics.handle().is_enabled() {
                self.metrics.handle().event(EventKind::NetFrame {
                    window: *window,
                    kind: frame.label().to_string(),
                    bytes: crate::codec::encode_frame(frame).len() as u64,
                });
            }
        }
    }

    /// Epoch screen for inbound data frames: a non-`Hello` frame
    /// stamped older than the committed epoch is output of a plan the
    /// collector already swapped away from. (`Hello`s are exempt —
    /// they are identity, not plan output, and are guarded by the
    /// digest check instead, so a rejoining switch can always open a
    /// session and be brought forward.)
    fn screen_epoch(&self, theirs: u64) -> Result<(), NetError> {
        if theirs < self.epoch {
            return Err(NetError::StaleEpoch {
                theirs,
                ours: self.epoch,
            });
        }
        Ok(())
    }

    /// Receive the next data frame if one is already buffered.
    /// Session `Hello`s (initial or post-reconnect) are verified and
    /// filtered out of the data stream.
    pub fn try_recv_frame(&mut self) -> Result<Option<Frame>, NetError> {
        loop {
            match self.t.try_recv()? {
                Some((_, _, Frame::Hello { plan_digest, .. })) => {
                    self.metrics.frames_rx.inc();
                    self.check_hello(plan_digest)?;
                }
                Some((ctx, epoch, frame)) => {
                    self.screen_epoch(epoch)?;
                    self.last_ctx = ctx;
                    self.last_epoch = epoch;
                    self.note_rx(&frame);
                    return Ok(Some(frame));
                }
                None => return Ok(None),
            }
        }
    }

    /// Receive the next data frame, blocking up to the endpoint
    /// timeout.
    pub fn recv_frame(&mut self) -> Result<Frame, NetError> {
        loop {
            match self.t.recv_timeout(self.timeout)? {
                (_, _, Frame::Hello { plan_digest, .. }) => {
                    self.metrics.frames_rx.inc();
                    self.check_hello(plan_digest)?;
                }
                (ctx, epoch, frame) => {
                    self.screen_epoch(epoch)?;
                    self.last_ctx = ctx;
                    self.last_epoch = epoch;
                    self.note_rx(&frame);
                    return Ok(frame);
                }
            }
        }
    }

    /// Send the control batch closing `window`.
    pub fn send_control(&mut self, window: u64, ops: &[ControlOp]) -> Result<(), NetError> {
        let frame = Frame::Control {
            window,
            ops: ops.to_vec(),
        };
        if self.metrics.handle().is_enabled() {
            self.metrics.handle().event(EventKind::NetFrame {
                window,
                kind: frame.label().to_string(),
                bytes: crate::codec::encode_frame(&frame).len() as u64,
            });
        }
        self.t.send(self.ctx, self.epoch, &frame)?;
        self.metrics.frames_tx.inc();
        Ok(())
    }

    /// Await the switch's acknowledgement of a control batch. Returns
    /// `(entries_written, latency_ns)`.
    pub fn recv_ack(&mut self) -> Result<(u64, u64), NetError> {
        let (_, epoch, frame) = self.t.recv_timeout(self.timeout)?;
        self.metrics.frames_rx.inc();
        self.screen_epoch(epoch)?;
        match frame {
            Frame::ControlAck {
                entries_written,
                latency_ns,
                ..
            } => Ok((entries_written, latency_ns)),
            _ => Err(NetError::Protocol("expected ControlAck")),
        }
    }

    /// Grant the credit that lets the switch open the next window.
    pub fn send_credit(&mut self, window: u64) -> Result<(), NetError> {
        self.t
            .send(self.ctx, self.epoch, &Frame::Credit { window })?;
        self.metrics.frames_tx.inc();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::loopback_pair;
    use sonata_faults::{FaultKind, FaultPlan, ReportFaults};
    use sonata_obs::ObsHandle;
    use sonata_pisa::{ReportKind, TaskId};
    use sonata_query::QueryId;

    fn report(seq: u64) -> Report {
        Report {
            task: TaskId {
                query: QueryId(1),
                level: 32,
                branch: 0,
            },
            kind: ReportKind::Tuple,
            columns: vec![("ipv4.src".into(), seq)],
            packet: None,
            entry_op: None,
            seq,
        }
    }

    fn faulted_pair(
        report_faults: ReportFaults,
    ) -> (SwitchEndpoint, CollectorEndpoint, FaultInjector) {
        let plan = FaultPlan {
            seed: 3,
            report: report_faults,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::from_plan(&plan);
        let metrics = NetMetrics::new(&ObsHandle::disabled());
        let (sw_t, sp_t) = loopback_pair(1024, &metrics);
        let sw =
            SwitchEndpoint::new(Box::new(sw_t), inj.clone(), metrics.clone(), "sw", 7, 0).unwrap();
        let sp = CollectorEndpoint::new(Box::new(sp_t), metrics, 7, 0);
        (sw, sp, inj)
    }

    fn drain_reports(sp: &mut CollectorEndpoint) -> Vec<Report> {
        let mut out = Vec::new();
        while let Some(frame) = sp.try_recv_frame().unwrap() {
            match frame {
                Frame::Report(r) => out.push(r),
                Frame::WindowClose { .. } => break,
                _ => {}
            }
        }
        out
    }

    #[test]
    fn egress_drop_loses_reports_at_the_transport_seam() {
        let (mut sw, mut sp, inj) = faulted_pair(ReportFaults {
            drop_per_mille: 1000,
            ..ReportFaults::default()
        });
        inj.begin_window(0);
        for i in 0..5 {
            sw.send_packet_reports(vec![report(i)]).unwrap();
        }
        sw.close_window(0, 0, 0, 0).unwrap();
        assert!(drain_reports(&mut sp).is_empty());
        assert_eq!(inj.take_window_record().get(FaultKind::ReportDrop), 5);
    }

    #[test]
    fn egress_duplicate_repeats_the_same_seq_on_the_wire() {
        let (mut sw, mut sp, inj) = faulted_pair(ReportFaults {
            duplicate_per_mille: 1000,
            ..ReportFaults::default()
        });
        inj.begin_window(0);
        sw.send_packet_reports(vec![report(0)]).unwrap();
        sw.close_window(0, 0, 0, 0).unwrap();
        let got = drain_reports(&mut sp);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].seq, got[1].seq);
        assert_eq!(got[0].columns, got[1].columns);
    }

    #[test]
    fn egress_delay_reorders_within_window_and_late_drops_at_close() {
        let (mut sw, mut sp, inj) = faulted_pair(ReportFaults {
            delay_per_mille: 1000,
            delay_packets: 2,
            ..ReportFaults::default()
        });
        inj.begin_window(0);
        // Every report is held 2 packets: packet i's report surfaces
        // with packet i+2 (itself delayed), so nothing crosses the
        // transport until the third packet releases packet 0's report.
        sw.send_packet_reports(vec![report(0)]).unwrap();
        sw.send_packet_reports(vec![report(1)]).unwrap();
        assert!(drain_reports(&mut sp).is_empty());
        sw.send_packet_reports(vec![report(2)]).unwrap();
        let got = drain_reports(&mut sp);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 0);
        // Reports from packets 1 and 2 are still in flight at close:
        // dropped late, never leaked into the next window.
        sw.close_window(0, 0, 0, 0).unwrap();
        let rec = inj.take_window_record();
        assert_eq!(rec.get(FaultKind::ReportLateDrop), 2);
        assert_eq!(rec.get(FaultKind::ReportDelay), 3);
        inj.begin_window(1);
        sw.send_packet_reports(vec![]).unwrap();
        sw.close_window(1, 0, 0, 0).unwrap();
        let leaked: Vec<_> = drain_reports(&mut sp);
        assert!(leaked.is_empty(), "no cross-window leak");
    }

    #[test]
    fn hello_digest_mismatch_is_rejected() {
        let metrics = NetMetrics::new(&ObsHandle::disabled());
        let (sw_t, sp_t) = loopback_pair(16, &metrics);
        let _sw = SwitchEndpoint::new(
            Box::new(sw_t),
            FaultInjector::disabled(),
            metrics.clone(),
            "sw",
            99,
            0,
        )
        .unwrap();
        let mut sp = CollectorEndpoint::new(Box::new(sp_t), metrics, 7, 0);
        assert_eq!(
            sp.try_recv_frame().unwrap_err(),
            NetError::PlanMismatch {
                theirs: 99,
                ours: 7
            }
        );
    }

    #[test]
    fn lockstep_control_turn_round_trips() {
        let metrics = NetMetrics::new(&ObsHandle::disabled());
        let (sw_t, sp_t) = loopback_pair(64, &metrics);
        let mut sw = SwitchEndpoint::new(
            Box::new(sw_t),
            FaultInjector::disabled(),
            metrics.clone(),
            "sw",
            7,
            0,
        )
        .unwrap();
        let mut sp = CollectorEndpoint::new(Box::new(sp_t), metrics, 7, 0);
        let root = TraceContext::root(0, 0);
        sw.set_ctx(root);
        sw.open_window(0, 1).unwrap();
        sw.send_packet_reports(vec![report(0)]).unwrap();
        sw.send_dump(0, WindowDump::default()).unwrap();
        sw.close_window(0, 0, 0, 0).unwrap();
        // Collector drains the window…
        let mut closed = false;
        while let Some(f) = sp.try_recv_frame().unwrap() {
            if matches!(f, Frame::WindowClose { .. }) {
                closed = true;
                break;
            }
        }
        assert!(closed);
        // …inheriting the switch's window root as its parent context…
        assert_eq!(sp.last_ctx(), root);
        // …then runs the control turn.
        sp.send_control(0, &[ControlOp::ResetRegisters]).unwrap();
        let (window, ops) = sw.recv_control().unwrap();
        assert_eq!(window, 0);
        assert_eq!(ops, vec![ControlOp::ResetRegisters]);
        sw.send_ack(0, 0, 123).unwrap();
        assert_eq!(sp.recv_ack().unwrap(), (0, 123));
        sp.send_credit(0).unwrap();
        assert_eq!(sw.recv_credit().unwrap(), 0);
    }

    #[test]
    fn stale_epoch_data_frames_are_rejected_after_a_swap() {
        let metrics = NetMetrics::new(&ObsHandle::disabled());
        let (sw_t, sp_t) = loopback_pair(64, &metrics);
        let mut sw = SwitchEndpoint::new(
            Box::new(sw_t),
            FaultInjector::disabled(),
            metrics.clone(),
            "sw",
            7,
            0,
        )
        .unwrap();
        let mut sp = CollectorEndpoint::new(Box::new(sp_t), metrics, 7, 0);
        // Drain the session Hello while both sides agree.
        assert!(sp.try_recv_frame().unwrap().is_none());
        // A frame sent under epoch 0 lands after the collector has
        // committed epoch 1: output of the replaced plan, rejected
        // with a typed error — this is the torn-window guard.
        sw.open_window(3, 1).unwrap();
        sp.set_plan(9, 1);
        assert_eq!(
            sp.try_recv_frame().unwrap_err(),
            NetError::StaleEpoch { theirs: 0, ours: 1 }
        );
    }

    #[test]
    fn swap_resends_hello_and_stamps_the_new_epoch() {
        let metrics = NetMetrics::new(&ObsHandle::disabled());
        let (sw_t, sp_t) = loopback_pair(64, &metrics);
        let mut sw = SwitchEndpoint::new(
            Box::new(sw_t),
            FaultInjector::disabled(),
            metrics.clone(),
            "sw",
            7,
            0,
        )
        .unwrap();
        let mut sp = CollectorEndpoint::new(Box::new(sp_t), metrics, 7, 0);
        assert!(sp.try_recv_frame().unwrap().is_none());
        // Boundary swap: collector first (it is the authority), then
        // the switch; the switch's fresh Hello carries the new digest.
        sp.set_plan(9, 1);
        sw.set_plan(9, 1).unwrap();
        assert_eq!(sw.epoch(), 1);
        sw.open_window(4, 1).unwrap();
        // The swapped Hello verifies against the new digest and the
        // window frame passes the epoch screen.
        assert!(matches!(
            sp.try_recv_frame().unwrap(),
            Some(Frame::WindowOpen { window: 4, .. })
        ));
        assert_eq!(sp.last_epoch(), 1);
        // Control path stamps the collector's epoch; the switch
        // adopts it (no-op here, already equal).
        sp.send_credit(4).unwrap();
        assert_eq!(sw.recv_credit().unwrap(), 4);
        assert_eq!(sw.epoch(), 1);
    }

    #[test]
    fn switch_adopts_a_newer_epoch_from_the_collector() {
        let metrics = NetMetrics::new(&ObsHandle::disabled());
        let (sw_t, sp_t) = loopback_pair(64, &metrics);
        let mut sw = SwitchEndpoint::new(
            Box::new(sw_t),
            FaultInjector::disabled(),
            metrics.clone(),
            "sw",
            7,
            0,
        )
        .unwrap();
        let mut sp = CollectorEndpoint::new(Box::new(sp_t), metrics, 7, 0);
        assert!(sp.try_recv_frame().unwrap().is_none());
        // The collector commits epoch 2 and grants a credit; the
        // switch learns the fabric moved on from the stamp alone.
        sp.set_plan(7, 2);
        sp.send_credit(0).unwrap();
        assert_eq!(sw.recv_credit().unwrap(), 0);
        assert_eq!(sw.epoch(), 2);
    }
}
