//! Localhost TCP backend: the switch side is a client that dials the
//! collector, writes encoded frames synchronously, and re-dials with
//! exponential backoff when the connection drops; the collector side
//! is a server accepting N switch connections, each drained by a
//! reader thread into its own bounded queue (high-watermark block —
//! when a queue fills, the reader stops reading and TCP backpressure
//! propagates to the switch; nothing is ever buffered unbounded).
//!
//! In-order delivery per task needs no extra machinery: TCP preserves
//! byte order per connection, and the per-task `(task, seq)` numbers
//! assigned at the switch deparser survive the codec, so the emitter's
//! existing sequence-based duplicate suppression works unchanged.

use crate::codec::{decode_frame_tagged, encode_frame_ctx, CodecError};
use crate::frame::Frame;
use crate::transport::{NetError, NetMetrics, Transport};
use sonata_obs::{EventKind, TraceContext};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tunables for the TCP backend.
#[derive(Debug, Clone, Copy)]
pub struct TcpOptions {
    /// Bounded frames buffered per connection before the reader
    /// blocks (the high watermark).
    pub per_conn_capacity: usize,
    /// Re-dial attempts before a send reports the peer unreachable.
    pub max_reconnect_attempts: u32,
    /// First re-dial backoff; doubles per failed attempt, capped at
    /// 100 ms.
    pub base_backoff: Duration,
    /// Fabric switch id stamped into every frame header this client
    /// sends; the collector keys per-peer routing and `Hello` replay
    /// state by it. Single-switch deployments use 0.
    pub switch_id: u16,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            per_conn_capacity: 8_192,
            max_reconnect_attempts: 8,
            base_backoff: Duration::from_millis(1),
            switch_id: 0,
        }
    }
}

// ------------------------------------------------------------ client

/// Switch-side TCP client.
pub struct TcpClientTransport {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    rbuf: Vec<u8>,
    /// Encoded `Hello` replayed after every reconnect so the collector
    /// can re-verify the plan digest mid-session.
    hello: Option<Vec<u8>>,
    metrics: NetMetrics,
    opts: TcpOptions,
}

impl TcpClientTransport {
    /// Dial `addr`.
    pub fn connect(
        addr: SocketAddr,
        metrics: NetMetrics,
        opts: TcpOptions,
    ) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClientTransport {
            addr,
            stream: Some(stream),
            rbuf: Vec::new(),
            hello: None,
            metrics,
            opts,
        })
    }

    /// Re-dial with exponential backoff, replaying the session
    /// `Hello` on success.
    fn reconnect(&mut self) -> Result<(), NetError> {
        let mut backoff = self.opts.base_backoff;
        for attempt in 1..=self.opts.max_reconnect_attempts {
            std::thread::sleep(backoff);
            match TcpStream::connect(self.addr) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    let mut stream = stream;
                    if let Some(hello) = &self.hello {
                        stream.write_all(hello)?;
                        self.metrics.bytes_tx.add(hello.len() as u64);
                    }
                    self.metrics.reconnects.inc();
                    self.metrics.handle().event(EventKind::Reconnect {
                        attempt: attempt as u64,
                        backoff_ms: backoff.as_millis() as u64,
                    });
                    self.rbuf.clear();
                    self.stream = Some(stream);
                    return Ok(());
                }
                Err(_) => {
                    backoff = (backoff * 2).min(Duration::from_millis(100));
                }
            }
        }
        Err(NetError::Closed)
    }

    fn fill_rbuf(&mut self, timeout: Option<Duration>) -> Result<usize, NetError> {
        let Some(stream) = self.stream.as_mut() else {
            return Err(NetError::Closed);
        };
        stream.set_read_timeout(timeout)?;
        let mut tmp = [0u8; 16 * 1024];
        match stream.read(&mut tmp) {
            Ok(0) => {
                self.stream = None;
                Err(NetError::Closed)
            }
            Ok(n) => {
                self.rbuf.extend_from_slice(&tmp[..n]);
                self.metrics.bytes_rx.add(n as u64);
                Ok(n)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Err(NetError::Timeout)
            }
            Err(e) => {
                self.stream = None;
                Err(NetError::Io(e.to_string()))
            }
        }
    }

    fn pop_decoded(&mut self) -> Result<Option<(TraceContext, u64, Frame)>, NetError> {
        match decode_frame_tagged(&self.rbuf) {
            Ok((_switch, ctx, epoch, frame, used)) => {
                self.rbuf.drain(..used);
                Ok(Some((ctx, epoch, frame)))
            }
            Err(CodecError::Truncated) => Ok(None),
            Err(e) => Err(NetError::Codec(e)),
        }
    }

    /// Write one pre-encoded frame, re-dialing on a dropped
    /// connection (shared by the owned and borrowed send paths).
    fn send_encoded(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        let mut attempts = 0u32;
        loop {
            if self.stream.is_none() {
                self.reconnect()?;
            }
            let stream = self.stream.as_mut().expect("connected");
            match stream.write_all(bytes) {
                Ok(()) => {
                    self.metrics.bytes_tx.add(bytes.len() as u64);
                    return Ok(());
                }
                Err(e) => {
                    self.stream = None;
                    attempts += 1;
                    if attempts > self.opts.max_reconnect_attempts {
                        return Err(NetError::Io(e.to_string()));
                    }
                }
            }
        }
    }
}

impl Transport for TcpClientTransport {
    fn send(&mut self, ctx: TraceContext, epoch: u64, frame: &Frame) -> Result<(), NetError> {
        let bytes = encode_frame_ctx(self.opts.switch_id, ctx, epoch, frame);
        if matches!(frame, Frame::Hello { .. }) {
            self.hello = Some(bytes.clone());
        }
        self.send_encoded(&bytes)
    }

    /// Borrowed fast path: encode the report frame straight from the
    /// batch/arena slices — no owned `Report`, no packet decode, no
    /// intermediate `Frame`.
    fn send_report_ref(
        &mut self,
        ctx: TraceContext,
        epoch: u64,
        r: &sonata_pisa::ReportRef<'_, '_>,
    ) -> Result<(), NetError> {
        let bytes = crate::codec::encode_report_ref(self.opts.switch_id, ctx, epoch, r);
        self.send_encoded(&bytes)
    }

    fn try_recv(&mut self) -> Result<Option<(TraceContext, u64, Frame)>, NetError> {
        if let Some(f) = self.pop_decoded()? {
            return Ok(Some(f));
        }
        let Some(stream) = self.stream.as_mut() else {
            return Err(NetError::Closed);
        };
        stream.set_nonblocking(true)?;
        let mut tmp = [0u8; 16 * 1024];
        let read = stream.read(&mut tmp);
        stream.set_nonblocking(false)?;
        match read {
            Ok(0) => {
                self.stream = None;
                return Err(NetError::Closed);
            }
            Ok(n) => {
                self.rbuf.extend_from_slice(&tmp[..n]);
                self.metrics.bytes_rx.add(n as u64);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) => {
                self.stream = None;
                return Err(NetError::Io(e.to_string()));
            }
        }
        self.pop_decoded()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<(TraceContext, u64, Frame), NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(f) = self.pop_decoded()? {
                return Ok(f);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::Timeout);
            }
            self.fill_rbuf(Some(deadline - now))?;
        }
    }

    fn kind(&self) -> &'static str {
        "tcp"
    }
}

// --------------------------------------------------------- collector

#[derive(Default)]
struct ConnBuf {
    frames: VecDeque<(u16, TraceContext, u64, Frame)>,
    alive: bool,
    /// Switch id this connection belongs to, learned from the first
    /// decoded frame header (the client's `Hello` tags it before any
    /// data frame). Reconnect and reply routing are keyed by this, so
    /// N switches can share one collector without stealing each
    /// other's replies.
    switch: Option<u16>,
}

#[derive(Default)]
struct CollState {
    conns: Vec<ConnBuf>,
    /// Write halves per connection, newest last; replies go to the
    /// most recent live connection *for the addressed switch* (the
    /// lockstep client re-dials before expecting any reply).
    writers: Vec<Option<TcpStream>>,
    total: usize,
}

struct CollShared {
    state: Mutex<CollState>,
    not_empty: Condvar,
    not_full: Condvar,
    open: AtomicBool,
    opts: TcpOptions,
    metrics: NetMetrics,
}

/// Stream-processor-side collector server.
pub struct TcpCollectorTransport {
    shared: Arc<CollShared>,
    addr: SocketAddr,
    /// Round-robin cursor over connection queues.
    rr: usize,
    /// Switch id of the most recently popped frame; untargeted
    /// `Transport::send` replies go to this peer (the lockstep
    /// protocol always replies to the switch it just heard from).
    last_peer: u16,
}

impl TcpCollectorTransport {
    /// Bind `127.0.0.1:0` and start accepting switch connections.
    pub fn bind(metrics: NetMetrics, opts: TcpOptions) -> Result<Self, NetError> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(CollShared {
            state: Mutex::new(CollState::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            open: AtomicBool::new(true),
            opts,
            metrics,
        });
        let accept_shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(TcpCollectorTransport {
            shared,
            addr,
            rr: 0,
            last_peer: 0,
        })
    }

    /// The bound address switch clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sever every live switch connection (chaos hook: the client must
    /// notice on its next write and re-dial).
    pub fn drop_connections(&self) {
        let mut st = self.shared.state.lock().unwrap();
        for w in st.writers.iter_mut() {
            if let Some(s) = w.take() {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// Send a reply to a specific switch: the newest live connection
    /// tagged with `switch` wins; not-yet-tagged connections (a fresh
    /// re-dial whose `Hello` has not been decoded yet) are the
    /// fallback, newest first.
    pub fn send_to(
        &mut self,
        switch: u16,
        ctx: TraceContext,
        epoch: u64,
        frame: &Frame,
    ) -> Result<(), NetError> {
        let bytes = encode_frame_ctx(switch, ctx, epoch, frame);
        let mut st = self.shared.state.lock().unwrap();
        for pass in 0..2 {
            for idx in (0..st.writers.len()).rev() {
                let matches = match (pass, st.conns[idx].switch) {
                    (0, Some(s)) => s == switch,
                    (1, None) => true,
                    _ => false,
                };
                if !matches {
                    continue;
                }
                let Some(stream) = st.writers[idx].as_mut() else {
                    continue;
                };
                match stream.write_all(&bytes) {
                    Ok(()) => {
                        self.shared.metrics.bytes_tx.add(bytes.len() as u64);
                        return Ok(());
                    }
                    Err(_) => {
                        st.writers[idx] = None; // dead; try an older connection
                    }
                }
            }
        }
        Err(NetError::Closed)
    }

    /// Receive the next frame (if buffered) along with the sending
    /// switch's id, trace context, and plan epoch from the header.
    pub fn try_recv_tagged(&mut self) -> Result<Option<(u16, TraceContext, u64, Frame)>, NetError> {
        let mut st = self.shared.state.lock().unwrap();
        let popped = pop_locked(&self.shared, &mut self.rr, &mut st);
        if let Some((switch, _, _, _)) = &popped {
            self.last_peer = *switch;
        }
        Ok(popped)
    }

    /// Receive the next frame, its sending switch id, trace context,
    /// and plan epoch, blocking up to `timeout`.
    pub fn recv_timeout_tagged(
        &mut self,
        timeout: Duration,
    ) -> Result<(u16, TraceContext, u64, Frame), NetError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some((switch, ctx, epoch, f)) = pop_locked(&self.shared, &mut self.rr, &mut st) {
                self.last_peer = switch;
                return Ok((switch, ctx, epoch, f));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::Timeout);
            }
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap();
            st = guard;
        }
    }
}

fn pop_locked(
    shared: &CollShared,
    rr: &mut usize,
    st: &mut CollState,
) -> Option<(u16, TraceContext, u64, Frame)> {
    let n = st.conns.len();
    for i in 0..n {
        let idx = (*rr + i) % n;
        if let Some(f) = st.conns[idx].frames.pop_front() {
            *rr = (idx + 1) % n;
            st.total -= 1;
            shared.metrics.queue_depth.set(st.total as u64);
            shared.not_full.notify_all();
            return Some(f);
        }
    }
    None
}

impl Transport for TcpCollectorTransport {
    fn send(&mut self, ctx: TraceContext, epoch: u64, frame: &Frame) -> Result<(), NetError> {
        // An untargeted send replies to the switch whose frame the
        // collector popped last — in the lockstep protocol that is
        // always the peer awaiting this reply.
        let peer = self.last_peer;
        self.send_to(peer, ctx, epoch, frame)
    }

    fn try_recv(&mut self) -> Result<Option<(TraceContext, u64, Frame)>, NetError> {
        Ok(self
            .try_recv_tagged()?
            .map(|(_, ctx, epoch, f)| (ctx, epoch, f)))
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<(TraceContext, u64, Frame), NetError> {
        self.recv_timeout_tagged(timeout)
            .map(|(_, ctx, epoch, f)| (ctx, epoch, f))
    }

    fn kind(&self) -> &'static str {
        "tcp"
    }
}

impl Drop for TcpCollectorTransport {
    fn drop(&mut self) {
        self.shared.open.store(false, Ordering::SeqCst);
        self.shared.not_full.notify_all();
        self.shared.not_empty.notify_all();
        // Unblock the accept loop with a throwaway dial.
        let _ = TcpStream::connect(self.addr);
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<CollShared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        if !shared.open.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone().ok();
        let id = {
            let mut st = shared.state.lock().unwrap();
            st.conns.push(ConnBuf {
                frames: VecDeque::new(),
                alive: true,
                switch: None,
            });
            st.writers.push(writer);
            st.conns.len() - 1
        };
        let reader_shared = Arc::clone(&shared);
        std::thread::spawn(move || reader_loop(stream, id, reader_shared));
    }
}

fn reader_loop(mut stream: TcpStream, id: usize, shared: Arc<CollShared>) {
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 16 * 1024];
    'conn: loop {
        let n = match stream.read(&mut tmp) {
            Ok(0) | Err(_) => break 'conn,
            Ok(n) => n,
        };
        shared.metrics.bytes_rx.add(n as u64);
        buf.extend_from_slice(&tmp[..n]);
        // Batch-coalesced decode: drain every complete frame the read
        // delivered before touching the socket again.
        loop {
            match decode_frame_tagged(&buf) {
                Ok((switch, ctx, epoch, frame, used)) => {
                    buf.drain(..used);
                    let mut st = shared.state.lock().unwrap();
                    while st.conns[id].frames.len() >= shared.opts.per_conn_capacity
                        && shared.open.load(Ordering::SeqCst)
                    {
                        st = shared.not_full.wait(st).unwrap();
                    }
                    if !shared.open.load(Ordering::SeqCst) {
                        break 'conn;
                    }
                    st.conns[id].switch = Some(switch);
                    st.conns[id].frames.push_back((switch, ctx, epoch, frame));
                    st.total += 1;
                    shared.metrics.queue_depth.set(st.total as u64);
                    shared.not_empty.notify_all();
                }
                Err(CodecError::Truncated) => break,
                // A corrupt stream cannot be resynchronized safely:
                // drop the connection and let the client re-dial.
                Err(_) => break 'conn,
            }
        }
    }
    let mut st = shared.state.lock().unwrap();
    st.conns[id].alive = false;
    shared.not_empty.notify_all();
}

/// Build a connected localhost pair: `(switch_client, collector)`.
pub fn tcp_pair(
    metrics: &NetMetrics,
    opts: TcpOptions,
) -> Result<(TcpClientTransport, TcpCollectorTransport), NetError> {
    let collector = TcpCollectorTransport::bind(metrics.clone(), opts)?;
    let client = TcpClientTransport::connect(collector.addr(), metrics.clone(), opts)?;
    Ok((client, collector))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonata_obs::ObsHandle;

    fn pair() -> (TcpClientTransport, TcpCollectorTransport, NetMetrics) {
        let metrics = NetMetrics::new(&ObsHandle::enabled());
        let (c, s) = tcp_pair(&metrics, TcpOptions::default()).unwrap();
        (c, s, metrics)
    }

    #[test]
    fn frames_cross_the_socket_in_order() {
        let (mut client, mut coll, metrics) = pair();
        for w in 0..5u64 {
            client
                .send(
                    TraceContext::root(w, 0),
                    w,
                    &Frame::WindowOpen {
                        window: w,
                        packets: w,
                    },
                )
                .unwrap();
        }
        for w in 0..5u64 {
            let (ctx, epoch, f) = coll.recv_timeout(Duration::from_secs(5)).unwrap();
            // The trace context and epoch survive the codec round trip.
            assert_eq!(ctx, TraceContext::root(w, 0));
            assert_eq!(epoch, w);
            assert_eq!(
                f,
                Frame::WindowOpen {
                    window: w,
                    packets: w
                }
            );
        }
        // Control direction.
        coll.send(TraceContext::NONE, 0, &Frame::Credit { window: 4 })
            .unwrap();
        let (ctx, epoch, f) = client.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(ctx, TraceContext::NONE);
        assert_eq!(epoch, 0);
        assert_eq!(f, Frame::Credit { window: 4 });
        let snap = metrics.handle().snapshot();
        assert!(
            snap.counter("sonata_net_bytes_total{dir=\"tx\",peer=\"switch-0\"}")
                .unwrap()
                > 0
        );
        assert!(
            snap.counter("sonata_net_bytes_total{dir=\"rx\",peer=\"switch-0\"}")
                .unwrap()
                > 0
        );
    }

    #[test]
    fn severed_connection_reconnects_with_backoff_and_replays_hello() {
        let (mut client, mut coll, metrics) = pair();
        let hello = Frame::Hello {
            node: "sw".into(),
            plan_digest: 42,
        };
        client.send(TraceContext::NONE, 0, &hello).unwrap();
        assert_eq!(coll.recv_timeout(Duration::from_secs(5)).unwrap().2, hello);
        coll.drop_connections();
        // Writes into a severed socket fail after the RST lands; the
        // client then re-dials and replays its Hello.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut reconnected = false;
        let mut w = 0u64;
        while Instant::now() < deadline {
            client
                .send(TraceContext::NONE, 0, &Frame::Credit { window: w })
                .unwrap();
            w += 1;
            if metrics
                .handle()
                .snapshot()
                .counter_sum("sonata_net_reconnects_total")
                == 1
            {
                reconnected = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(reconnected, "client never noticed the severed connection");
        // The replayed Hello arrives on the new connection, followed
        // by the first post-reconnect frame.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut saw_hello = false;
        while Instant::now() < deadline {
            match coll.recv_timeout(Duration::from_secs(5)).unwrap().2 {
                Frame::Hello { plan_digest, .. } => {
                    assert_eq!(plan_digest, 42);
                    saw_hello = true;
                    break;
                }
                Frame::Credit { .. } => continue,
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert!(saw_hello, "Hello was not replayed after reconnect");
    }

    #[test]
    fn two_clients_reconnecting_interleaved_keep_per_switch_state() {
        // Regression for the latent single-peer assumption: with two
        // switches on one collector, reconnect + `Hello` replay and
        // reply routing must be keyed by switch_id, not "newest
        // connection wins".
        let metrics = NetMetrics::new(&ObsHandle::enabled());
        let mut coll = TcpCollectorTransport::bind(metrics.clone(), TcpOptions::default()).unwrap();
        let addr = coll.addr();
        let client = |switch_id: u16| {
            TcpClientTransport::connect(
                addr,
                metrics.clone(),
                TcpOptions {
                    switch_id,
                    ..TcpOptions::default()
                },
            )
            .unwrap()
        };
        let mut a = client(1);
        let mut b = client(2);
        let hello = |sw: u16| Frame::Hello {
            node: format!("switch-{sw}"),
            plan_digest: 40 + sw as u64,
        };
        a.send(TraceContext::NONE, 0, &hello(1)).unwrap();
        b.send(TraceContext::NONE, 0, &hello(2)).unwrap();
        let mut seen = std::collections::BTreeMap::new();
        while seen.len() < 2 {
            let (sw, _, _, f) = coll.recv_timeout_tagged(Duration::from_secs(5)).unwrap();
            seen.insert(sw, f);
        }
        assert_eq!(seen.get(&1), Some(&hello(1)));
        assert_eq!(seen.get(&2), Some(&hello(2)));

        // Sever both, then reconnect interleaved: B first, then A.
        coll.drop_connections();
        let reconnected = |c: &mut TcpClientTransport, base: u64| {
            let deadline = Instant::now() + Duration::from_secs(10);
            let mut w = base;
            let before = metrics
                .handle()
                .snapshot()
                .counter_sum("sonata_net_reconnects_total");
            while Instant::now() < deadline {
                c.send(TraceContext::NONE, 0, &Frame::Credit { window: w })
                    .unwrap();
                w += 1;
                let now = metrics
                    .handle()
                    .snapshot()
                    .counter_sum("sonata_net_reconnects_total");
                if now > before {
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            panic!("client never noticed the severed connection");
        };
        reconnected(&mut b, 200);
        reconnected(&mut a, 100);

        // Each switch's own Hello — not the other's — is replayed on
        // its new connection.
        let mut replayed = std::collections::BTreeMap::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while replayed.len() < 2 && Instant::now() < deadline {
            match coll.recv_timeout_tagged(Duration::from_secs(5)).unwrap() {
                (sw, _, _, f @ Frame::Hello { .. }) => {
                    replayed.insert(sw, f);
                }
                (_, _, _, Frame::Credit { .. }) => continue,
                (sw, _, _, other) => panic!("unexpected frame from switch {sw}: {other:?}"),
            }
        }
        assert_eq!(replayed.get(&1), Some(&hello(1)));
        assert_eq!(replayed.get(&2), Some(&hello(2)));

        // Targeted replies land on the right peer even though the
        // connection order is now B-then-A.
        coll.send_to(1, TraceContext::NONE, 0, &Frame::Credit { window: 71 })
            .unwrap();
        coll.send_to(2, TraceContext::NONE, 0, &Frame::Credit { window: 72 })
            .unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_secs(5)).unwrap().2,
            Frame::Credit { window: 71 }
        );
        assert_eq!(
            b.recv_timeout(Duration::from_secs(5)).unwrap().2,
            Frame::Credit { window: 72 }
        );
    }
}
