//! The [`Transport`] abstraction: one bidirectional frame pipe
//! between a switch endpoint and the collector, with two
//! interchangeable backends ([`crate::loopback`] and [`crate::tcp`])
//! selected by [`TransportKind`].

use crate::codec::CodecError;
use crate::frame::Frame;
use sonata_obs::{Counter, Gauge, ObsHandle, TraceContext};
use std::time::Duration;

/// Which transport backend a runtime should assemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process frame passing over bounded queues: deterministic,
    /// zero-copy (no byte serialization), and the default — runs are
    /// bit-identical to the pre-wire in-process runtime.
    #[default]
    Loopback,
    /// Localhost TCP sockets: frames cross a real kernel socket
    /// through the versioned binary codec, with reconnect + backoff
    /// on the client and a bounded collector queue on the server.
    Tcp,
}

impl TransportKind {
    /// Stable label for metrics and logs.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Loopback => "loopback",
            TransportKind::Tcp => "tcp",
        }
    }
}

/// Transport failure.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// A frame failed to encode/decode.
    Codec(CodecError),
    /// Socket-level failure (rendered; `std::io::Error` is not `Clone`).
    Io(String),
    /// A blocking receive timed out.
    Timeout,
    /// The peer is gone and cannot be reached (reconnect exhausted,
    /// or the endpoint was shut down).
    Closed,
    /// The peer's `Hello` carried a plan digest that does not match
    /// the locally deployed plan.
    PlanMismatch {
        /// Digest the peer announced.
        theirs: u64,
        /// Digest of the local deployment.
        ours: u64,
    },
    /// The peer sent a non-`Hello` frame stamped with a plan epoch
    /// older than the locally committed one — output of a plan the
    /// fabric has already swapped away from. Dropping these (rather
    /// than merging them) is what makes a mid-run swap torn-window
    /// free.
    StaleEpoch {
        /// Epoch the peer's frame was stamped with.
        theirs: u64,
        /// Locally committed plan epoch.
        ours: u64,
    },
    /// The peer sent a frame the protocol does not allow here.
    Protocol(&'static str),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Codec(e) => write!(f, "codec: {e}"),
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::Closed => write!(f, "transport closed"),
            NetError::PlanMismatch { theirs, ours } => {
                write!(f, "plan digest mismatch: peer {theirs:#x}, local {ours:#x}")
            }
            NetError::StaleEpoch { theirs, ours } => {
                write!(f, "stale plan epoch: peer {theirs}, local {ours}")
            }
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

/// One end of a frame pipe. Implementations must be [`Send`] so the
/// switch half can run on its own thread.
///
/// Every frame carries the sender's [`TraceContext`] and committed
/// plan **epoch** in-band (v4 headers on `Tcp`, tupled values on
/// `Loopback`), so the receiving process parents its spans into the
/// sender's window trace and rejects output of an already-replaced
/// plan without a side channel. Untraced runs pass
/// [`TraceContext::NONE`] at zero cost; non-replanning runs pass
/// epoch 0 forever.
pub trait Transport: Send {
    /// Send one frame under `ctx`, stamped with the sender's committed
    /// plan `epoch`. Blocks under backpressure (bounded queue full,
    /// socket buffer full); errors only when the peer is unreachable.
    fn send(&mut self, ctx: TraceContext, epoch: u64, frame: &Frame) -> Result<(), NetError>;

    /// Ship one borrowed batch report. The default materializes an
    /// owned [`Frame::Report`] (in-process transports must own the
    /// frame they enqueue); wire transports override this to encode
    /// straight from the borrowed slices
    /// ([`crate::codec::encode_report_ref`]) with no intermediate
    /// owned copy.
    fn send_report_ref(
        &mut self,
        ctx: TraceContext,
        epoch: u64,
        r: &sonata_pisa::ReportRef<'_, '_>,
    ) -> Result<(), NetError> {
        self.send(ctx, epoch, &Frame::Report(r.to_report()))
    }

    /// Receive the next frame with its trace context and plan epoch if
    /// one is already available.
    fn try_recv(&mut self) -> Result<Option<(TraceContext, u64, Frame)>, NetError>;

    /// Receive the next frame with its trace context and plan epoch,
    /// blocking up to `timeout`.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<(TraceContext, u64, Frame), NetError>;

    /// Backend label (for diagnostics).
    fn kind(&self) -> &'static str;
}

/// Pre-resolved transport metric handles, shared by both endpoints of
/// a link. `frames` counts whole frames handed to / received from a
/// transport (either backend); `bytes` counts encoded wire bytes and
/// therefore only moves on `Tcp`; `queue_depth` tracks the collector's
/// bounded ingest queue; `reconnects` counts client re-dials.
#[derive(Debug, Clone)]
pub struct NetMetrics {
    handle: ObsHandle,
    /// Frames sent (either end, either backend).
    pub frames_tx: Counter,
    /// Frames received.
    pub frames_rx: Counter,
    /// Encoded bytes written to a socket.
    pub bytes_tx: Counter,
    /// Encoded bytes read from a socket.
    pub bytes_rx: Counter,
    /// Collector ingest-queue depth (frames currently buffered).
    pub queue_depth: Gauge,
    /// Successful client reconnects.
    pub reconnects: Counter,
}

impl NetMetrics {
    /// Register the transport metric family against `handle`, labeled
    /// with the link's switch-side peer (`peer="switch-N"`). In an
    /// N-switch fabric every link gets its own series — an unlabeled
    /// gauge would be overwritten by whichever peer reported last.
    /// All series are registered eagerly so they appear (at zero) in
    /// every snapshot of an enabled handle.
    pub fn for_peer(handle: &ObsHandle, peer: &str) -> Self {
        NetMetrics {
            handle: handle.clone(),
            frames_tx: handle.counter("sonata_net_frames_total", &[("dir", "tx"), ("peer", peer)]),
            frames_rx: handle.counter("sonata_net_frames_total", &[("dir", "rx"), ("peer", peer)]),
            bytes_tx: handle.counter("sonata_net_bytes_total", &[("dir", "tx"), ("peer", peer)]),
            bytes_rx: handle.counter("sonata_net_bytes_total", &[("dir", "rx"), ("peer", peer)]),
            queue_depth: handle.gauge("sonata_net_queue_depth", &[("peer", peer)]),
            reconnects: handle.counter("sonata_net_reconnects_total", &[("peer", peer)]),
        }
    }

    /// Register the family for the single-switch peer `switch-0`.
    pub fn new(handle: &ObsHandle) -> Self {
        Self::for_peer(handle, "switch-0")
    }

    /// The observability handle the metrics were registered on.
    pub fn handle(&self) -> &ObsHandle {
        &self.handle
    }
}

/// A bounded frame queue with blocking push (high-watermark
/// backpressure) and blocking/non-blocking pop. This is the only
/// buffering the transport layer does — nothing is ever unbounded.
#[derive(Debug, Clone)]
pub struct FrameQueue {
    inner: std::sync::Arc<QueueInner>,
}

#[derive(Debug)]
struct QueueInner {
    state: std::sync::Mutex<QueueState>,
    not_empty: std::sync::Condvar,
    not_full: std::sync::Condvar,
    capacity: usize,
    depth: Option<Gauge>,
}

#[derive(Debug, Default)]
struct QueueState {
    frames: std::collections::VecDeque<(TraceContext, u64, Frame)>,
    closed: bool,
}

impl FrameQueue {
    /// A queue holding at most `capacity` frames; pushes past that
    /// block until the consumer drains. An optional gauge tracks the
    /// live depth.
    pub fn new(capacity: usize, depth: Option<Gauge>) -> Self {
        FrameQueue {
            inner: std::sync::Arc::new(QueueInner {
                state: std::sync::Mutex::new(QueueState::default()),
                not_empty: std::sync::Condvar::new(),
                not_full: std::sync::Condvar::new(),
                capacity: capacity.max(1),
                depth,
            }),
        }
    }

    /// Enqueue, blocking while the queue is at capacity. Errors once
    /// the queue is closed.
    pub fn push(&self, ctx: TraceContext, epoch: u64, frame: Frame) -> Result<(), NetError> {
        let mut st = self.inner.state.lock().unwrap();
        while st.frames.len() >= self.inner.capacity && !st.closed {
            st = self.inner.not_full.wait(st).unwrap();
        }
        if st.closed {
            return Err(NetError::Closed);
        }
        st.frames.push_back((ctx, epoch, frame));
        if let Some(g) = &self.inner.depth {
            g.set(st.frames.len() as u64);
        }
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue without blocking.
    pub fn try_pop(&self) -> Result<Option<(TraceContext, u64, Frame)>, NetError> {
        let mut st = self.inner.state.lock().unwrap();
        match st.frames.pop_front() {
            Some(f) => {
                if let Some(g) = &self.inner.depth {
                    g.set(st.frames.len() as u64);
                }
                self.inner.not_full.notify_one();
                Ok(Some(f))
            }
            None if st.closed => Err(NetError::Closed),
            None => Ok(None),
        }
    }

    /// Dequeue, blocking up to `timeout` for a frame.
    pub fn pop_timeout(&self, timeout: Duration) -> Result<(TraceContext, u64, Frame), NetError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(f) = st.frames.pop_front() {
                if let Some(g) = &self.inner.depth {
                    g.set(st.frames.len() as u64);
                }
                self.inner.not_full.notify_one();
                return Ok(f);
            }
            if st.closed {
                return Err(NetError::Closed);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(NetError::Timeout);
            }
            let (guard, res) = self
                .inner
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap();
            st = guard;
            if res.timed_out() && st.frames.is_empty() {
                return Err(NetError::Timeout);
            }
        }
    }

    /// Close the queue: pending frames drain, new pushes fail, and
    /// blocked waiters wake.
    pub fn close(&self) {
        let mut st = self.inner.state.lock().unwrap();
        st.closed = true;
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }

    /// Frames currently buffered.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().frames.len()
    }

    /// True when no frames are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_blocks_at_capacity_and_drains_in_order() {
        let ctx = TraceContext::root(0, 0);
        let q = FrameQueue::new(2, None);
        q.push(ctx, 4, Frame::Credit { window: 0 }).unwrap();
        q.push(ctx, 4, Frame::Credit { window: 1 }).unwrap();
        let q2 = q.clone();
        let pusher = std::thread::spawn(move || q2.push(ctx, 5, Frame::Credit { window: 2 }));
        // The third push must be parked until we pop.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 2);
        assert_eq!(
            q.pop_timeout(Duration::from_secs(1)).unwrap(),
            (ctx, 4, Frame::Credit { window: 0 })
        );
        pusher.join().unwrap().unwrap();
        assert_eq!(
            q.pop_timeout(Duration::from_secs(1)).unwrap(),
            (ctx, 4, Frame::Credit { window: 1 })
        );
        // The trace context and epoch ride the queue with their frame.
        assert_eq!(
            q.pop_timeout(Duration::from_secs(1)).unwrap(),
            (ctx, 5, Frame::Credit { window: 2 })
        );
        assert!(q.try_pop().unwrap().is_none());
    }

    #[test]
    fn closed_queue_fails_fast() {
        let q = FrameQueue::new(4, None);
        q.push(TraceContext::NONE, 0, Frame::Credit { window: 0 })
            .unwrap();
        q.close();
        assert!(q
            .push(TraceContext::NONE, 0, Frame::Credit { window: 1 })
            .is_err());
        // Already-buffered frames still drain.
        assert!(q.try_pop().unwrap().is_some());
        assert_eq!(q.try_pop().unwrap_err(), NetError::Closed);
        assert_eq!(
            q.pop_timeout(Duration::from_millis(5)).unwrap_err(),
            NetError::Closed
        );
    }

    #[test]
    fn pop_timeout_expires() {
        let q = FrameQueue::new(1, None);
        let err = q.pop_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, NetError::Timeout);
    }
}
