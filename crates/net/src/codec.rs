//! Versioned binary wire codec.
//!
//! Every frame is encoded as:
//!
//! ```text
//! +--------+---------+------+-------+--------+--------+--------+--------+--------+-----------+-------+
//! | magic  | version | type | flags | switch | trace  | span   | epoch  | len    | payload   | crc32 |
//! | u32 LE | u16 LE  | u8   | u8    | u16 LE | u64 LE | u64 LE | u64 LE | u32 LE | len bytes | u32 LE|
//! +--------+---------+------+-------+--------+--------+--------+--------+--------+-----------+-------+
//! ```
//!
//! * `magic` is [`MAGIC`] (`"SNTA"`); anything else is a framing error.
//! * `version` is [`VERSION`]; a decoder never guesses at foreign
//!   versions — it returns [`CodecError::VersionMismatch`], so a v2
//!   peer (whose header had no trace fields) is rejected cleanly at
//!   the handshake rather than misparsed.
//! * `switch` identifies the sending switch in a multi-switch fabric
//!   (v2): collectors that serve several switches route reconnect and
//!   `Hello`-replay state by this id. Single-switch deployments send 0.
//! * `trace`/`span` (v3) carry the sender's [`TraceContext`] in-band:
//!   the distributed-trace identity of the window this frame belongs
//!   to and the span it was sent under, so the far side of the wire
//!   parents its own spans into the same trace. Both are 0 when
//!   observability is disabled.
//! * `epoch` (v4) is the plan epoch the sender operated under when it
//!   emitted the frame. Online replanning swaps plans mid-run at a
//!   window boundary; the epoch in every header lets a receiver reject
//!   frames produced under a retired plan instead of merging them into
//!   the wrong plan's state. `Hello` frames are exempt from staleness
//!   checks (the plan digest is their guard) so a reconnecting client
//!   replaying its session open is never bricked by a swap.
//! * `len` is the payload length (bounded by [`MAX_FRAME_LEN`], so a
//!   corrupted length field cannot drive an allocation).
//! * `crc32` (IEEE) covers `version..payload` — header corruption and
//!   payload corruption are both caught before any field is trusted.
//!
//! All integers are little-endian. Strings are `u16` length-prefixed
//! UTF-8; vectors are `u32` count-prefixed; options are a one-byte
//! presence tag. Packets ride as their own wire encoding
//! ([`sonata_packet::Packet::encode`]) plus the capture timestamp and
//! an Ethernet-framing flag, and are re-parsed on decode — the codec
//! canonicalizes a packet exactly like the capture path does.
//!
//! The decode path returns typed [`CodecError`]s and never panics: a
//! truncated, corrupted, or version-skewed frame is data, not a bug.

use crate::frame::Frame;
use sonata_obs::TraceContext;
use sonata_packet::Packet;
use sonata_pisa::{ControlOp, Report, ReportKind, SketchBound, StateLayout, TaskId, WindowDump};
use sonata_query::QueryId;
use std::collections::BTreeSet;

/// Frame magic: `"SNTA"` as a little-endian u32.
pub const MAGIC: u32 = u32::from_le_bytes(*b"SNTA");
/// Current protocol version (v2 added the `switch` header field; v3
/// added the in-band `trace`/`span` context fields; v4 added the plan
/// `epoch` field for online replanning; v5 added declared sketch
/// error bounds to the window-dump payload).
pub const VERSION: u16 = 5;
/// Fixed header size (magic + version + type + flags + switch +
/// trace + span + epoch + len).
pub const HEADER_LEN: usize = 38;
/// Upper bound on a payload, checked before any allocation; a window
/// dump of ~100k tuples fits with a wide margin.
pub const MAX_FRAME_LEN: usize = 1 << 26;

/// Typed decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Not enough bytes for a complete frame: on a stream this means
    /// "wait for more", on a fixed buffer it means truncation.
    Truncated,
    /// The magic bytes are wrong — not a Sonata frame boundary.
    BadMagic,
    /// The frame's protocol version is not [`VERSION`].
    VersionMismatch {
        /// The version found on the wire.
        found: u16,
    },
    /// The CRC over header + payload does not match.
    BadCrc,
    /// Unknown frame type byte.
    UnknownFrameType(u8),
    /// The length field exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge(usize),
    /// The payload is structurally invalid for its frame type.
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated frame"),
            CodecError::BadMagic => write!(f, "bad frame magic"),
            CodecError::VersionMismatch { found } => {
                write!(
                    f,
                    "protocol version mismatch: found {found}, want {VERSION}"
                )
            }
            CodecError::BadCrc => write!(f, "frame CRC mismatch"),
            CodecError::UnknownFrameType(t) => write!(f, "unknown frame type {t}"),
            CodecError::FrameTooLarge(n) => write!(f, "frame payload of {n} bytes exceeds limit"),
            CodecError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------- crc

/// IEEE CRC-32 (reflected, polynomial 0xEDB88320), table-driven; the
/// table is built at compile time so the crate stays dependency-free.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ------------------------------------------------------------- writer

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer {
            buf: Vec::with_capacity(64),
        }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        debug_assert!(bytes.len() <= u16::MAX as usize);
        self.u16(bytes.len() as u16);
        self.buf.extend_from_slice(bytes);
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
}

// ------------------------------------------------------------- reader

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(CodecError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(CodecError::Malformed("payload shorter than declared field"));
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    fn str(&mut self) -> Result<String, CodecError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Malformed("non-UTF-8 string"))
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ------------------------------------------------------ field codecs

/// Shared report payload writer: both the owned [`Report`] path and
/// the borrowed [`ReportRef`](sonata_pisa::ReportRef) path feed it, so
/// the two encodings are byte-identical by construction. The mirrored
/// packet rides as `(ts_nanos, has_ethernet, wire_bytes)`.
fn write_report_parts(
    w: &mut Writer,
    task: &TaskId,
    kind: ReportKind,
    seq: u64,
    entry_op: Option<usize>,
    columns: &[(sonata_query::ColName, u64)],
    packet: Option<(u64, bool, &[u8])>,
) {
    w.u32(task.query.0);
    w.u8(task.level);
    w.u8(task.branch);
    w.u8(match kind {
        ReportKind::Tuple => 0,
        ReportKind::Shunt => 1,
        ReportKind::WindowDump => 2,
        ReportKind::WindowDumpRaw => 3,
    });
    w.u64(seq);
    match entry_op {
        Some(op) => {
            w.u8(1);
            w.u64(op as u64);
        }
        None => w.u8(0),
    }
    w.u32(columns.len() as u32);
    for (name, val) in columns {
        w.str(name);
        w.u64(*val);
    }
    match packet {
        Some((ts_nanos, eth, bytes)) => {
            w.u8(1);
            w.u64(ts_nanos);
            w.u8(u8::from(eth));
            w.bytes(bytes);
        }
        None => w.u8(0),
    }
}

fn write_report(w: &mut Writer, r: &Report) {
    write_report_parts(
        w,
        &r.task,
        r.kind,
        r.seq,
        r.entry_op,
        &r.columns,
        r.packet
            .as_ref()
            .map(|pkt| (pkt.ts_nanos, pkt.eth.is_some(), pkt.encode_cached())),
    );
}

fn read_report(r: &mut Reader<'_>) -> Result<Report, CodecError> {
    let query = r.u32()?;
    let level = r.u8()?;
    let branch = r.u8()?;
    let kind = match r.u8()? {
        0 => ReportKind::Tuple,
        1 => ReportKind::Shunt,
        2 => ReportKind::WindowDump,
        3 => ReportKind::WindowDumpRaw,
        _ => return Err(CodecError::Malformed("report kind")),
    };
    let seq = r.u64()?;
    let entry_op = match r.u8()? {
        0 => None,
        1 => Some(r.u64()? as usize),
        _ => return Err(CodecError::Malformed("entry_op tag")),
    };
    let ncols = r.u32()? as usize;
    if ncols > MAX_FRAME_LEN / 8 {
        return Err(CodecError::Malformed("column count"));
    }
    let mut columns = Vec::with_capacity(ncols.min(1024));
    for _ in 0..ncols {
        let name = r.str()?;
        let val = r.u64()?;
        columns.push((name.into(), val));
    }
    let packet = match r.u8()? {
        0 => None,
        1 => {
            let ts_nanos = r.u64()?;
            let eth = r.u8()? != 0;
            let n = r.u32()? as usize;
            let bytes = r.take(n)?;
            let mut pkt = if eth {
                Packet::decode_ethernet(bytes)
                    .map_err(|_| CodecError::Malformed("embedded packet"))?
            } else {
                Packet::decode(bytes).map_err(|_| CodecError::Malformed("embedded packet"))?
            };
            pkt.ts_nanos = ts_nanos;
            Some(pkt)
        }
        _ => return Err(CodecError::Malformed("packet tag")),
    };
    Ok(Report {
        task: TaskId {
            query: QueryId(query),
            level,
            branch,
        },
        kind,
        columns,
        packet,
        entry_op,
        seq,
    })
}

fn write_dump(w: &mut Writer, dump: &WindowDump) {
    w.u32(dump.tuples.len() as u32);
    for t in &dump.tuples {
        write_report(w, t);
    }
    w.u64(dump.suppressed);
    w.u64(dump.occupancy as u64);
    w.u64(dump.shunted_packets);
    // v5: declared sketch error bounds (empty for exact layouts, so
    // pre-sketch payloads only grow by this count word).
    w.u32(dump.bounds.len() as u32);
    for b in &dump.bounds {
        w.u32(b.task.query.0);
        w.u8(b.task.level);
        w.u8(b.task.branch);
        w.u8(b.layout.tag());
        w.u64(b.epsilon.to_bits());
        w.u64(b.delta.to_bits());
        w.u64(b.mass);
        w.u64(b.updates);
        w.u8(u8::from(b.saturated));
    }
}

fn read_dump(r: &mut Reader<'_>) -> Result<WindowDump, CodecError> {
    let n = r.u32()? as usize;
    if n > MAX_FRAME_LEN / 16 {
        return Err(CodecError::Malformed("dump tuple count"));
    }
    let mut tuples = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        tuples.push(read_report(r)?);
    }
    let suppressed = r.u64()?;
    let occupancy = r.u64()? as usize;
    let shunted_packets = r.u64()?;
    let nb = r.u32()? as usize;
    if nb > MAX_FRAME_LEN / 32 {
        return Err(CodecError::Malformed("bound count"));
    }
    let mut bounds = Vec::with_capacity(nb.min(1024));
    for _ in 0..nb {
        let query = r.u32()?;
        let level = r.u8()?;
        let branch = r.u8()?;
        let layout =
            StateLayout::from_tag(r.u8()?).ok_or(CodecError::Malformed("sketch layout tag"))?;
        let epsilon = f64::from_bits(r.u64()?);
        let delta = f64::from_bits(r.u64()?);
        if !epsilon.is_finite() || !delta.is_finite() {
            return Err(CodecError::Malformed("sketch bound value"));
        }
        bounds.push(SketchBound {
            task: TaskId {
                query: QueryId(query),
                level,
                branch,
            },
            layout,
            epsilon,
            delta,
            mass: r.u64()?,
            updates: r.u64()?,
            saturated: match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(CodecError::Malformed("saturated flag")),
            },
        });
    }
    Ok(WindowDump {
        tuples,
        suppressed,
        occupancy,
        shunted_packets,
        bounds,
    })
}

fn write_ops(w: &mut Writer, ops: &[ControlOp]) {
    w.u32(ops.len() as u32);
    for op in ops {
        match op {
            ControlOp::SetDynFilter { table, entries } => {
                w.u8(0);
                w.str(table);
                w.u32(entries.len() as u32);
                for e in entries {
                    w.u64(*e);
                }
            }
            ControlOp::ResetRegisters => w.u8(1),
        }
    }
}

fn read_ops(r: &mut Reader<'_>) -> Result<Vec<ControlOp>, CodecError> {
    let n = r.u32()? as usize;
    if n > MAX_FRAME_LEN / 8 {
        return Err(CodecError::Malformed("op count"));
    }
    let mut ops = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        match r.u8()? {
            0 => {
                let table = r.str()?;
                let m = r.u32()? as usize;
                if m > MAX_FRAME_LEN / 8 {
                    return Err(CodecError::Malformed("entry count"));
                }
                let mut entries = BTreeSet::new();
                for _ in 0..m {
                    entries.insert(r.u64()?);
                }
                ops.push(ControlOp::SetDynFilter { table, entries });
            }
            1 => ops.push(ControlOp::ResetRegisters),
            _ => return Err(CodecError::Malformed("control op tag")),
        }
    }
    Ok(ops)
}

// ------------------------------------------------------- frame codec

/// Encode one frame into a self-contained byte record, with the
/// sender's fabric switch id, trace context, and plan epoch stamped
/// into the header.
pub fn encode_frame_ctx(switch: u16, ctx: TraceContext, epoch: u64, frame: &Frame) -> Vec<u8> {
    let mut w = Writer::new();
    match frame {
        Frame::Hello { node, plan_digest } => {
            w.str(node);
            w.u64(*plan_digest);
        }
        Frame::WindowOpen { window, packets } => {
            w.u64(*window);
            w.u64(*packets);
        }
        Frame::Report(r) => write_report(&mut w, r),
        Frame::WindowDump { window, dump } => {
            w.u64(*window);
            write_dump(&mut w, dump);
        }
        Frame::WindowClose {
            window,
            packet_loop_ns,
            dump_ns,
            transport_ns,
        } => {
            w.u64(*window);
            w.u64(*packet_loop_ns);
            w.u64(*dump_ns);
            w.u64(*transport_ns);
        }
        Frame::Control { window, ops } => {
            w.u64(*window);
            write_ops(&mut w, ops);
        }
        Frame::ControlAck {
            window,
            entries_written,
            latency_ns,
        } => {
            w.u64(*window);
            w.u64(*entries_written);
            w.u64(*latency_ns);
        }
        Frame::Credit { window } => w.u64(*window),
    }
    finish_frame(frame.type_byte(), switch, ctx, epoch, w.buf)
}

/// Wrap an encoded payload in the versioned frame header and CRC.
fn finish_frame(
    type_byte: u8,
    switch: u16,
    ctx: TraceContext,
    epoch: u64,
    payload: Vec<u8>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(type_byte);
    out.push(0); // flags (reserved)
    out.extend_from_slice(&switch.to_le_bytes());
    out.extend_from_slice(&ctx.trace.to_le_bytes());
    out.extend_from_slice(&ctx.span.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Encode a borrowed batch report as a `Report` frame straight from
/// the arena slices — byte-identical to
/// `encode_frame_ctx(switch, ctx, epoch, &Frame::Report(r.to_report()))`
/// without materializing the owned report: columns are borrowed from
/// the report batch, mirrored packet bytes from the packet arena.
/// (Arena records are IPv4-first, so the Ethernet flag is always
/// clear, exactly as it is after the owned path's round-trip decode.)
pub fn encode_report_ref(
    switch: u16,
    ctx: TraceContext,
    epoch: u64,
    r: &sonata_pisa::ReportRef<'_, '_>,
) -> Vec<u8> {
    let mut w = Writer::new();
    write_report_parts(
        &mut w,
        &r.task,
        r.kind,
        r.seq,
        r.entry_op,
        r.columns,
        r.packet.as_ref().map(|v| (v.ts_nanos(), false, v.bytes())),
    );
    finish_frame(Frame::REPORT_TYPE_BYTE, switch, ctx, epoch, w.buf)
}

/// Encode one frame with an absent trace context and epoch 0.
pub fn encode_frame_from(switch: u16, frame: &Frame) -> Vec<u8> {
    encode_frame_ctx(switch, TraceContext::NONE, 0, frame)
}

/// Encode one frame with switch id 0 and epoch 0 (single-switch,
/// never-replanned deployments).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    encode_frame_from(0, frame)
}

/// Decode one frame from the front of `buf`, returning the sending
/// switch id, trace context, and plan epoch from the header, the
/// frame, and the number of bytes consumed — so a stream reader can
/// loop over a growing buffer. [`CodecError::Truncated`] means "read
/// more bytes".
pub fn decode_frame_tagged(
    buf: &[u8],
) -> Result<(u16, TraceContext, u64, Frame, usize), CodecError> {
    if buf.len() < HEADER_LEN {
        return Err(CodecError::Truncated);
    }
    let magic = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != VERSION {
        return Err(CodecError::VersionMismatch { found: version });
    }
    let frame_type = buf[6];
    let switch = u16::from_le_bytes([buf[8], buf[9]]);
    let ctx = TraceContext {
        trace: u64::from_le_bytes([
            buf[10], buf[11], buf[12], buf[13], buf[14], buf[15], buf[16], buf[17],
        ]),
        span: u64::from_le_bytes([
            buf[18], buf[19], buf[20], buf[21], buf[22], buf[23], buf[24], buf[25],
        ]),
    };
    let epoch = u64::from_le_bytes([
        buf[26], buf[27], buf[28], buf[29], buf[30], buf[31], buf[32], buf[33],
    ]);
    let len = u32::from_le_bytes([buf[34], buf[35], buf[36], buf[37]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(CodecError::FrameTooLarge(len));
    }
    let total = HEADER_LEN + len + 4;
    if buf.len() < total {
        return Err(CodecError::Truncated);
    }
    let crc_stored = u32::from_le_bytes([
        buf[total - 4],
        buf[total - 3],
        buf[total - 2],
        buf[total - 1],
    ]);
    if crc32(&buf[4..HEADER_LEN + len]) != crc_stored {
        return Err(CodecError::BadCrc);
    }
    let mut r = Reader::new(&buf[HEADER_LEN..HEADER_LEN + len]);
    let frame = match frame_type {
        1 => Frame::Hello {
            node: r.str()?,
            plan_digest: r.u64()?,
        },
        2 => Frame::WindowOpen {
            window: r.u64()?,
            packets: r.u64()?,
        },
        3 => Frame::Report(read_report(&mut r)?),
        4 => Frame::WindowDump {
            window: r.u64()?,
            dump: read_dump(&mut r)?,
        },
        5 => Frame::WindowClose {
            window: r.u64()?,
            packet_loop_ns: r.u64()?,
            dump_ns: r.u64()?,
            transport_ns: r.u64()?,
        },
        6 => Frame::Control {
            window: r.u64()?,
            ops: read_ops(&mut r)?,
        },
        7 => Frame::ControlAck {
            window: r.u64()?,
            entries_written: r.u64()?,
            latency_ns: r.u64()?,
        },
        8 => Frame::Credit { window: r.u64()? },
        other => return Err(CodecError::UnknownFrameType(other)),
    };
    if !r.done() {
        return Err(CodecError::Malformed("trailing payload bytes"));
    }
    Ok((switch, ctx, epoch, frame, total))
}

/// Decode one frame from the front of `buf`, dropping the switch tag,
/// trace context, and epoch.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), CodecError> {
    decode_frame_tagged(buf).map(|(_, _, _, frame, used)| (frame, used))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn borrowed_report_encode_is_byte_identical_to_owned() {
        use sonata_packet::{PacketArena, PacketBuilder, TcpFlags};
        use sonata_pisa::ReportRef;
        // The zero-copy encode path must produce the exact bytes the
        // owned path does — with and without a mirrored packet — so
        // receivers cannot tell which ingest mode a switch ran.
        let pkt = PacketBuilder::tcp_raw(0x0a000001, 1234, 0x0a0000aa, 80)
            .flags(TcpFlags::SYN)
            .ts_nanos(42_000_000)
            .build();
        let arena = PacketArena::from_packets(std::slice::from_ref(&pkt));
        let batch = arena.batch();
        let cols: Vec<(sonata_query::ColName, u64)> = vec![("dIP".into(), 7), ("count".into(), 9)];
        let task = TaskId {
            query: QueryId(5),
            level: 24,
            branch: 1,
        };
        let ctx = TraceContext::root(0x1111, 0x2222);
        for packet in [Some(batch.view(0)), None] {
            let r = ReportRef {
                task,
                kind: ReportKind::Shunt,
                columns: &cols,
                packet,
                entry_op: Some(4),
                seq: 11,
            };
            let owned = encode_frame_ctx(3, ctx, 2, &Frame::Report(r.to_report()));
            let borrowed = encode_report_ref(3, ctx, 2, &r);
            assert_eq!(owned, borrowed, "packet={}", packet.is_some());
            // And the borrowed bytes decode back to the owned report.
            let (_, _, _, frame, used) = decode_frame_tagged(&borrowed).unwrap();
            assert_eq!(used, borrowed.len());
            assert_eq!(frame, Frame::Report(r.to_report()));
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn simple_frames_round_trip() {
        for frame in [
            Frame::Hello {
                node: "switch-0".into(),
                plan_digest: 0xDEAD_BEEF_0BAD_F00D,
            },
            Frame::WindowOpen {
                window: 3,
                packets: 1_000,
            },
            Frame::WindowClose {
                window: 3,
                packet_loop_ns: 120_000,
                dump_ns: 45_000,
                transport_ns: 9_000,
            },
            Frame::ControlAck {
                window: 3,
                entries_written: 17,
                latency_ns: 131_000_000,
            },
            Frame::Credit { window: 3 },
        ] {
            let bytes = encode_frame(&frame);
            let (decoded, used) = decode_frame(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn two_frames_back_to_back_decode_in_order() {
        let a = Frame::WindowOpen {
            window: 0,
            packets: 5,
        };
        let b = Frame::Credit { window: 0 };
        let mut buf = encode_frame(&a);
        buf.extend_from_slice(&encode_frame(&b));
        let (fa, na) = decode_frame(&buf).unwrap();
        let (fb, nb) = decode_frame(&buf[na..]).unwrap();
        assert_eq!(fa, a);
        assert_eq!(fb, b);
        assert_eq!(na + nb, buf.len());
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_length() {
        let bytes = encode_frame(&Frame::Hello {
            node: "s".into(),
            plan_digest: 7,
        });
        for n in 0..bytes.len() {
            assert_eq!(
                decode_frame(&bytes[..n]).unwrap_err(),
                CodecError::Truncated,
                "prefix of {n} bytes"
            );
        }
    }

    #[test]
    fn corruption_and_version_skew_are_typed_errors() {
        let good = encode_frame(&Frame::Credit { window: 9 });
        // Magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert_eq!(decode_frame(&bad).unwrap_err(), CodecError::BadMagic);
        // Version.
        let mut bad = good.clone();
        bad[4] = 0x7F;
        assert_eq!(
            decode_frame(&bad).unwrap_err(),
            CodecError::VersionMismatch { found: 0x7F }
        );
        // Payload bit flip.
        let mut bad = good.clone();
        let p = HEADER_LEN;
        bad[p] ^= 0x01;
        assert_eq!(decode_frame(&bad).unwrap_err(), CodecError::BadCrc);
        // Type byte flip (covered by the CRC, since it spans the header).
        let mut bad = good.clone();
        bad[6] = 5;
        assert_eq!(decode_frame(&bad).unwrap_err(), CodecError::BadCrc);
        // Insane length field.
        let mut bad = good;
        bad[34..38].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert_eq!(
            decode_frame(&bad).unwrap_err(),
            CodecError::FrameTooLarge(u32::MAX as usize)
        );
    }

    #[test]
    fn switch_tag_rides_the_header_and_round_trips() {
        let frame = Frame::WindowClose {
            window: 5,
            packet_loop_ns: 0,
            dump_ns: 0,
            transport_ns: 0,
        };
        for switch in [0u16, 1, 3, u16::MAX] {
            let bytes = encode_frame_from(switch, &frame);
            let (tag, ctx, epoch, decoded, used) = decode_frame_tagged(&bytes).unwrap();
            assert_eq!(tag, switch);
            assert_eq!(ctx, TraceContext::NONE);
            assert_eq!(epoch, 0);
            assert_eq!(decoded, frame);
            assert_eq!(used, bytes.len());
        }
        // The untagged wrappers are the switch-0 special case.
        assert_eq!(encode_frame(&frame), encode_frame_from(0, &frame));
        // A flipped switch id is caught by the CRC like any other
        // header corruption.
        let mut bad = encode_frame_from(2, &frame);
        bad[8] ^= 0x01;
        assert_eq!(decode_frame(&bad).unwrap_err(), CodecError::BadCrc);
    }

    #[test]
    fn trace_context_rides_the_header_and_round_trips() {
        let ctx = TraceContext::root(9, 3);
        let frame = Frame::Credit { window: 9 };
        let bytes = encode_frame_ctx(3, ctx, 0, &frame);
        let (tag, got, epoch, decoded, used) = decode_frame_tagged(&bytes).unwrap();
        assert_eq!(tag, 3);
        assert_eq!(got, ctx);
        assert_eq!(epoch, 0);
        assert_eq!(decoded, frame);
        assert_eq!(used, bytes.len());
        // A flipped span-id bit is caught by the CRC.
        let mut bad = encode_frame_ctx(3, ctx, 0, &frame);
        bad[18] ^= 0x01;
        assert_eq!(decode_frame(&bad).unwrap_err(), CodecError::BadCrc);
    }

    #[test]
    fn plan_epoch_rides_the_header_and_round_trips() {
        let frame = Frame::Credit { window: 2 };
        for epoch in [0u64, 1, 7, u64::MAX] {
            let bytes = encode_frame_ctx(1, TraceContext::NONE, epoch, &frame);
            let (tag, _, got, decoded, used) = decode_frame_tagged(&bytes).unwrap();
            assert_eq!(tag, 1);
            assert_eq!(got, epoch);
            assert_eq!(decoded, frame);
            assert_eq!(used, bytes.len());
        }
        // A flipped epoch bit is caught by the CRC like any other
        // header corruption.
        let mut bad = encode_frame_ctx(1, TraceContext::NONE, 3, &frame);
        bad[26] ^= 0x01;
        assert_eq!(decode_frame(&bad).unwrap_err(), CodecError::BadCrc);
    }
}
