//! Property-based tests for the wire codec: every frame the protocol
//! can express must round-trip bit-exactly, and no input — truncated,
//! corrupted, version-skewed, or pure garbage — may ever panic the
//! decoder. Decode failures are typed [`CodecError`]s, nothing else.

use proptest::prelude::*;
use sonata_net::{
    decode_frame, decode_frame_tagged, encode_frame, encode_frame_ctx, CodecError, Frame,
    HEADER_LEN, VERSION,
};
use sonata_obs::TraceContext;
use sonata_packet::{Packet, PacketBuilder, TcpFlags};
use sonata_pisa::{ControlOp, Report, ReportKind, SketchBound, StateLayout, TaskId, WindowDump};
use sonata_query::QueryId;
use std::collections::BTreeSet;

fn arb_name() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9._-]{0,24}").unwrap()
}

fn arb_kind() -> impl Strategy<Value = ReportKind> {
    prop_oneof![
        Just(ReportKind::Tuple),
        Just(ReportKind::Shunt),
        Just(ReportKind::WindowDump),
        Just(ReportKind::WindowDumpRaw),
    ]
}

fn arb_entry_op() -> impl Strategy<Value = Option<usize>> {
    prop_oneof![Just(None), (0usize..100_000).prop_map(Some)]
}

/// A canonical packet: built, encoded, and re-decoded, so that the
/// codec's own decode-on-read produces an identical value (the codec
/// ships packets as wire bytes, exactly like the capture path).
fn arb_packet() -> impl Strategy<Value = Option<Packet>> {
    let canonical = (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        0u8..=0x3f,
        any::<u32>(),
        any::<u64>(),
    )
        .prop_map(|(sip, dip, sport, dport, flags, seq, ts)| {
            let built = PacketBuilder::tcp_raw(sip, sport, dip, dport)
                .seq(seq)
                .flags(TcpFlags(flags))
                .build();
            let mut pkt = Packet::decode(&built.encode()).unwrap();
            pkt.ts_nanos = ts;
            pkt
        });
    prop_oneof![Just(None), canonical.prop_map(Some)]
}

fn arb_report() -> impl Strategy<Value = Report> {
    (
        any::<u32>(),
        any::<u8>(),
        any::<u8>(),
        arb_kind(),
        any::<u64>(),
        arb_entry_op(),
        proptest::collection::vec((arb_name(), any::<u64>()), 0..6),
        arb_packet(),
    )
        .prop_map(
            |(q, level, branch, kind, seq, entry_op, columns, packet)| Report {
                task: TaskId {
                    query: QueryId(q),
                    level,
                    branch,
                },
                kind,
                columns: columns.into_iter().map(|(n, v)| (n.into(), v)).collect(),
                packet,
                entry_op,
                seq,
            },
        )
}

fn arb_ops() -> impl Strategy<Value = Vec<ControlOp>> {
    proptest::collection::vec(
        prop_oneof![
            (arb_name(), proptest::collection::vec(any::<u64>(), 0..8)).prop_map(
                |(table, entries)| ControlOp::SetDynFilter {
                    table,
                    entries: entries.into_iter().collect::<BTreeSet<u64>>(),
                }
            ),
            Just(ControlOp::ResetRegisters),
        ],
        0..5,
    )
}

fn arb_bound() -> impl Strategy<Value = SketchBound> {
    (
        (any::<u32>(), any::<u8>(), any::<u8>(), 0u8..4),
        (
            0.0f64..1.0,
            0.0f64..1.0,
            any::<u64>(),
            any::<u64>(),
            any::<bool>(),
        ),
    )
        .prop_map(
            |((q, level, branch, tag), (epsilon, delta, mass, updates, saturated))| SketchBound {
                task: TaskId {
                    query: QueryId(q),
                    level,
                    branch,
                },
                layout: StateLayout::from_tag(tag).expect("tag in range"),
                epsilon,
                delta,
                mass,
                updates,
                saturated,
            },
        )
}

fn arb_dump() -> impl Strategy<Value = WindowDump> {
    (
        proptest::collection::vec(arb_report(), 0..4),
        any::<u64>(),
        0usize..1_000_000,
        any::<u64>(),
        proptest::collection::vec(arb_bound(), 0..3),
    )
        .prop_map(
            |(tuples, suppressed, occupancy, shunted_packets, bounds)| WindowDump {
                tuples,
                suppressed,
                occupancy,
                shunted_packets,
                bounds,
            },
        )
}

/// Every frame type in the protocol vocabulary.
fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (arb_name(), any::<u64>())
            .prop_map(|(node, plan_digest)| Frame::Hello { node, plan_digest }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(window, packets)| Frame::WindowOpen { window, packets }),
        arb_report().prop_map(Frame::Report),
        (any::<u64>(), arb_dump()).prop_map(|(window, dump)| Frame::WindowDump { window, dump }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(window, packet_loop_ns, dump_ns, transport_ns)| Frame::WindowClose {
                window,
                packet_loop_ns,
                dump_ns,
                transport_ns,
            }
        ),
        (any::<u64>(), arb_ops()).prop_map(|(window, ops)| Frame::Control { window, ops }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(window, entries_written, latency_ns)| Frame::ControlAck {
                window,
                entries_written,
                latency_ns,
            }
        ),
        any::<u64>().prop_map(|window| Frame::Credit { window }),
    ]
}

proptest! {
    #[test]
    fn every_frame_type_round_trips(frame in arb_frame()) {
        let bytes = encode_frame(&frame);
        let (decoded, used) = decode_frame(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn switch_and_trace_tags_round_trip(
        frame in arb_frame(),
        switch in any::<u16>(),
        trace in any::<u64>(),
        span in any::<u64>(),
        epoch in any::<u64>(),
    ) {
        let ctx = TraceContext { trace, span };
        let bytes = encode_frame_ctx(switch, ctx, epoch, &frame);
        let (sw, got_ctx, got_epoch, decoded, used) = decode_frame_tagged(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(sw, switch);
        prop_assert_eq!(got_ctx, ctx);
        prop_assert_eq!(got_epoch, epoch);
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn frame_streams_decode_in_order(frames in proptest::collection::vec(arb_frame(), 1..6)) {
        let mut buf = Vec::new();
        for f in &frames {
            buf.extend_from_slice(&encode_frame(f));
        }
        let mut pos = 0;
        let mut decoded = Vec::new();
        while pos < buf.len() {
            let (f, n) = decode_frame(&buf[pos..]).unwrap();
            decoded.push(f);
            pos += n;
        }
        prop_assert_eq!(decoded, frames);
    }

    #[test]
    fn any_truncation_is_the_truncated_error(frame in arb_frame(), cut in any::<u32>()) {
        let bytes = encode_frame(&frame);
        let n = cut as usize % bytes.len(); // 0..len, always a strict prefix
        prop_assert_eq!(decode_frame(&bytes[..n]).unwrap_err(), CodecError::Truncated);
    }

    #[test]
    fn single_byte_corruption_is_a_typed_error(
        frame in arb_frame(),
        at in any::<u32>(),
        xor in 1u8..,
    ) {
        let mut bytes = encode_frame(&frame);
        let i = at as usize % bytes.len();
        bytes[i] ^= xor;
        // The specific error depends on which field was hit; the
        // contract is "typed error, no panic, no silent misparse".
        prop_assert!(decode_frame(&bytes).is_err());
    }

    #[test]
    fn foreign_versions_are_rejected_not_guessed(frame in arb_frame(), version in any::<u16>()) {
        prop_assume!(version != VERSION);
        let mut bytes = encode_frame(&frame);
        bytes[4..6].copy_from_slice(&version.to_le_bytes());
        prop_assert_eq!(
            decode_frame(&bytes).unwrap_err(),
            CodecError::VersionMismatch { found: version }
        );
    }

    #[test]
    fn decode_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_frame(&data);
    }

    #[test]
    fn garbage_after_a_valid_header_never_panics(
        frame in arb_frame(),
        tail in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        // Keep the real header (magic/version/type/len pass the early
        // checks for a prefix) but replace payload + CRC with noise:
        // the structural readers must fail typed, never panic.
        let good = encode_frame(&frame);
        let mut bytes = good[..HEADER_LEN].to_vec();
        bytes.extend_from_slice(&tail);
        let _ = decode_frame(&bytes);
    }
}
