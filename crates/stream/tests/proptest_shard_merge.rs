//! Property tests for the shard split/merge algebra.
//!
//! Two invariants make sharded execution safe to reason about:
//!
//! 1. **Partition invariance** — however a window's tuples are split
//!    across shards, as long as each group key stays on one shard, the
//!    merged result equals the serial result. `split_batch` is one
//!    such split; here we generate *arbitrary* key-respecting splits.
//! 2. **Permutation invariance** — `merge_results` is agnostic to
//!    shard order and to how many (non-empty) shards there are.

use proptest::prelude::*;
use sonata_packet::Value;
use sonata_query::catalog::{self, Thresholds};
use sonata_query::{Query, Tuple};
use sonata_stream::{execute_window, merge_results, partition_spec, split_batch, WindowBatch};

fn low() -> Thresholds {
    Thresholds {
        new_tcp: 2,
        ssh_brute: 1,
        superspreader: 1,
        port_scan: 1,
        ddos: 1,
        syn_flood: 1,
        incomplete_flows: 1,
        slowloris_bytes: 1,
        slowloris_cpkb: 0,
        dns_tunneling: 1,
        zorro_pkts: 1,
        zorro_payloads: 0,
        dns_reflection: 1,
        malicious_domains: 1,
        window_ms: 3_000,
    }
}

/// Query 1 with shunt-style entries: tuples (key, 1) at the reduce.
fn q1() -> Query {
    catalog::newly_opened_tcp_conns(&low())
}

/// (key, count) pairs entering at the reduce (op 2) of query 1.
fn shunt_batch(pairs: &[(u64, u64)]) -> WindowBatch {
    let mut batch = WindowBatch::new();
    batch.push_left(
        2,
        pairs
            .iter()
            .map(|&(k, c)| Tuple::new(vec![Value::U64(k), Value::U64(c)])),
    );
    batch
}

proptest! {
    #[test]
    fn split_batch_is_key_respecting_and_complete(
        keys in proptest::collection::vec((0u64..12, 1u64..4), 1..80),
        shards in 2usize..9,
    ) {
        let q = q1();
        let spec = partition_spec(&q);
        let batch = shunt_batch(&keys);
        let split = split_batch(&spec, &batch, shards);
        prop_assert_eq!(split.len(), shards);
        // Complete: no tuple lost or duplicated.
        let total: usize = split.iter().map(WindowBatch::tuple_count).sum();
        prop_assert_eq!(total, batch.tuple_count());
        // Key-respecting: a key's tuples all land on one shard.
        for key in keys.iter().map(|(k, _)| *k) {
            let owners = split
                .iter()
                .filter(|s| {
                    s.left.values().flatten().any(|t| t.get(0) == &Value::U64(key))
                })
                .count();
            prop_assert!(owners <= 1, "key {} on {} shards", key, owners);
        }
    }

    #[test]
    fn any_key_respecting_partition_merges_to_serial(
        keys in proptest::collection::vec((0u64..12, 1u64..4), 1..80),
        assignment in proptest::collection::vec(0usize..6, 12),
        shards in 1usize..7,
    ) {
        // Assign each key to an arbitrary shard (not the FNV one) and
        // check the merged result still equals serial execution: the
        // algebra depends only on key-locality, not on the hash.
        let q = q1();
        let batch = shunt_batch(&keys);
        let mut split = vec![WindowBatch::new(); shards];
        for &(k, c) in &keys {
            let s = assignment[k as usize] % shards;
            split[s].push_left(2, vec![Tuple::new(vec![Value::U64(k), Value::U64(c)])]);
        }
        let serial = execute_window(&q, &batch).unwrap();
        let merged = merge_results(
            split
                .iter()
                .filter(|s| !s.is_empty())
                .map(|s| execute_window(&q, s).unwrap())
                .collect(),
        );
        prop_assert_eq!(&merged.output, &serial.output);
        prop_assert_eq!(merged.tuples_in, serial.tuples_in);
        prop_assert_eq!(&merged.branch_outputs, &serial.branch_outputs);
    }

    #[test]
    fn merge_is_permutation_invariant(
        keys in proptest::collection::vec((0u64..20, 1u64..4), 1..60),
        rotate in 0usize..8,
        shards in 2usize..9,
    ) {
        let q = q1();
        let spec = partition_spec(&q);
        let batch = shunt_batch(&keys);
        let split = split_batch(&spec, &batch, shards);
        let results: Vec<_> = split
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| execute_window(&q, s).unwrap())
            .collect();
        let mut rotated = results.clone();
        let pivot = rotate % rotated.len().max(1);
        rotated.rotate_left(pivot);
        let a = merge_results(results);
        let b = merge_results(rotated);
        prop_assert_eq!(a.output, b.output);
        prop_assert_eq!(a.tuples_in, b.tuples_in);
        prop_assert_eq!(a.branch_outputs, b.branch_outputs);
    }

    #[test]
    fn distinct_queries_shard_cleanly(
        tuples in proptest::collection::vec((0u64..8, 0u64..8, 1024u64..1032), 1..60),
        shards in 2usize..9,
    ) {
        // Query 3 (superspreader) distinct+reduce over sIP: entries at
        // the distinct (op 2) with schema (sIP, dIP).
        let q = catalog::superspreader(&low());
        let mut batch = WindowBatch::new();
        batch.push_left(
            2,
            tuples
                .iter()
                .map(|&(s, d, _)| Tuple::new(vec![Value::U64(s), Value::U64(d)])),
        );
        let spec = partition_spec(&q);
        prop_assert!(spec.is_parallel());
        let split = split_batch(&spec, &batch, shards);
        let serial = execute_window(&q, &batch).unwrap();
        let merged = merge_results(
            split
                .iter()
                .filter(|s| !s.is_empty())
                .map(|s| execute_window(&q, s).unwrap())
                .collect(),
        );
        prop_assert_eq!(merged.output, serial.output);
    }
}
