//! Deterministic regression tests for the threaded workers: shutdown
//! drains in-flight windows, bounded queues don't deadlock under
//! sustained load, and a panic inside a worker surfaces as a
//! [`StreamError::Panic`] instead of hanging the caller.

use sonata_packet::Value;
use sonata_query::catalog::{self, Thresholds};
use sonata_query::Tuple;
use sonata_stream::worker::{spawn_worker, WorkItem};
use sonata_stream::{ShardedEngine, StreamError, WindowBatch};
use std::time::Duration;

fn q1() -> sonata_query::Query {
    catalog::newly_opened_tcp_conns(&Thresholds {
        new_tcp: 1,
        ..Thresholds::default()
    })
}

/// (key, count) shunt entries at query 1's reduce.
fn shunt_batch(keys: std::ops::Range<u64>) -> WindowBatch {
    let mut batch = WindowBatch::new();
    batch.push_left(
        2,
        keys.map(|k| Tuple::new(vec![Value::U64(k), Value::U64(2)])),
    );
    batch
}

/// Run `f` on a scratch thread; panic if it doesn't finish in time.
/// Turns a would-be deadlock into a clean test failure.
fn with_deadline<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("worker test deadlocked")
}

#[test]
fn shutdown_drains_in_flight_windows() {
    let q = q1();
    let qid = q.id;
    let counters = with_deadline(30, move || {
        let handle = spawn_worker(vec![q], 8);
        for w in 0..5u64 {
            handle
                .input
                .send(WorkItem {
                    window: w,
                    query: qid,
                    batch: shunt_batch(0..(w + 1)),
                })
                .unwrap();
        }
        // Drain every queued window, then shut down: nothing is lost
        // and results arrive in submission order.
        let mut seen = Vec::new();
        for _ in 0..5 {
            let out = handle.output.recv().unwrap();
            assert_eq!(out.result.unwrap().output.len(), out.window as usize + 1);
            seen.push(out.window);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        handle.finish().counters().clone()
    });
    assert_eq!(counters.windows, 5);
    assert_eq!(counters.tuples_in, 1 + 2 + 3 + 4 + 5);
}

#[test]
fn shutdown_without_draining_does_not_hang() {
    // Results fitting in the output buffer let the worker retire all
    // in-flight windows even when the consumer never reads them.
    let q = q1();
    let qid = q.id;
    let counters = with_deadline(30, move || {
        let handle = spawn_worker(vec![q], 8);
        for w in 0..4u64 {
            handle
                .input
                .send(WorkItem {
                    window: w,
                    query: qid,
                    batch: shunt_batch(0..3),
                })
                .unwrap();
        }
        handle.finish().counters().clone()
    });
    assert_eq!(counters.windows, 4);
}

#[test]
fn bounded_queues_survive_sustained_load() {
    // Many sequential windows through a small-depth pool: the
    // synchronous fan-out/fan-in protocol must never deadlock.
    let q = q1();
    let qid = q.id;
    with_deadline(60, move || {
        let mut engine = ShardedEngine::new(4);
        engine.register(q);
        for w in 0..200u64 {
            let r = engine.submit(qid, &shunt_batch(0..(w % 17 + 1))).unwrap();
            assert_eq!(r.tuples_in, (w % 17 + 1) as usize);
        }
        let c = engine.finish();
        assert_eq!(c.windows, 200);
    });
}

#[test]
fn worker_panic_surfaces_as_error_not_hang() {
    // An empty tuple entering at the reduce makes the engine index out
    // of bounds — a genuine panic, not a StreamError. The worker must
    // contain it and keep serving.
    let q = q1();
    let qid = q.id;
    with_deadline(30, move || {
        let handle = spawn_worker(vec![q], 4);
        let mut poison = WindowBatch::new();
        poison.push_left(2, vec![Tuple::new(vec![])]);
        handle
            .input
            .send(WorkItem {
                window: 0,
                query: qid,
                batch: poison,
            })
            .unwrap();
        handle
            .input
            .send(WorkItem {
                window: 1,
                query: qid,
                batch: shunt_batch(0..3),
            })
            .unwrap();
        let first = handle.output.recv().unwrap();
        assert!(
            matches!(first.result, Err(StreamError::Panic(_))),
            "{:?}",
            first.result
        );
        let second = handle.output.recv().unwrap();
        assert_eq!(second.result.unwrap().output.len(), 3);
        handle.finish();
    });
}

#[test]
fn pool_panic_surfaces_as_error_and_pool_keeps_serving() {
    let q = q1();
    let qid = q.id;
    with_deadline(30, move || {
        let mut engine = ShardedEngine::new(4);
        engine.register(q);
        let mut poison = WindowBatch::new();
        poison.push_left(2, vec![Tuple::new(vec![])]);
        let err = engine.submit(qid, &poison).unwrap_err();
        assert!(matches!(err, StreamError::Panic(_)), "{err:?}");
        // Counters don't advance on failure, and the pool still works.
        let r = engine.submit(qid, &shunt_batch(0..5)).unwrap();
        assert_eq!(r.output.len(), 5);
        let c = engine.finish();
        assert_eq!(c.windows, 1);
        assert_eq!(c.tuples_in, 5);
    });
}
