//! Differential correctness harness for the sharded runtime.
//!
//! For every Table-3 catalog query (plus the fast-flux extension) and
//! several seeded random traces, executing a window sharded over 2, 4,
//! and 8 workers must be byte-identical to the single-threaded engine,
//! which must in turn agree with the `sonata-query` reference
//! interpreter on whole-trace entry.

use sonata_packet::Value;
use sonata_query::catalog;
use sonata_query::{QueryId, Tuple};
use sonata_stream::testsupport::{
    assert_differential, assert_sharded_matches_serial, batch_for, low_thresholds, seeded_packets,
};
use sonata_stream::{partition_spec, ShardedEngine, WindowBatch};

const SEEDS: [u64; 4] = [1, 7, 42, 20_260_807];
const WORKERS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn every_catalog_query_matches_reference_across_worker_counts() {
    let th = low_thresholds();
    let mut queries = catalog::all(&th);
    queries.push(catalog::malicious_domains(&th));
    for seed in SEEDS {
        let pkts = seeded_packets(seed, 600);
        for q in &queries {
            assert_differential(q, &pkts, &WORKERS);
        }
    }
}

#[test]
fn seeded_traces_produce_output_for_every_query() {
    // Guard against the harness comparing empty sets: over the union
    // of seeds, every catalog query must fire at least once.
    let th = low_thresholds();
    let mut queries = catalog::all(&th);
    queries.push(catalog::malicious_domains(&th));
    for q in &queries {
        let fired = SEEDS.iter().any(|&seed| {
            let pkts = seeded_packets(seed, 600);
            let batch = batch_for(q, &pkts);
            !sonata_stream::execute_window(q, &batch)
                .unwrap_or_else(|e| panic!("{}: {e}", q.name))
                .output
                .is_empty()
        });
        assert!(fired, "{}: no seeded trace trips this query", q.name);
    }
}

#[test]
fn dump_and_shunt_entries_match_serial_at_every_worker_count() {
    // Mid-pipeline entries (register dumps after the reduce, collision
    // shunts at the reduce) exercise the per-entry-index key analysis.
    let th = low_thresholds();
    let q = catalog::newly_opened_tcp_conns(&th);
    let mut batch = WindowBatch::new();
    // Shunts: re-aggregated singleton counts across many keys.
    batch.push_left(
        2,
        (0..120u64).map(|i| Tuple::new(vec![Value::U64(i % 24), Value::U64(1)])),
    );
    // Dump: pre-aggregated counts for other keys, entering post-reduce.
    batch.push_left(
        3,
        (0..12u64).map(|k| Tuple::new(vec![Value::U64(1000 + k), Value::U64(3 + k)])),
    );
    // Post-threshold stragglers.
    batch.push_left(4, vec![Tuple::new(vec![Value::U64(7777), Value::U64(99)])]);
    assert_sharded_matches_serial(&q, &batch, &WORKERS);
}

#[test]
fn join_queries_with_branch_dumps_match_serial() {
    let th = low_thresholds();
    for q in [
        catalog::tcp_syn_flood(&th),
        catalog::tcp_incomplete_flows(&th),
        catalog::slowloris(&th),
    ] {
        let mut batch = WindowBatch::new();
        let left_len = q.pipeline.ops.len();
        let right_len = q.join.as_ref().unwrap().right.ops.len();
        // Aggregated (host, count) dumps on both branches, overlapping
        // keys so joins match across shard boundaries only if keys
        // co-locate.
        batch.push_left(
            left_len,
            (0..40u64).map(|h| Tuple::new(vec![Value::U64(h % 10), Value::U64(5 + h)])),
        );
        batch.push_right(
            right_len,
            (0..40u64).map(|h| Tuple::new(vec![Value::U64(h % 10), Value::U64(1 + h % 3)])),
        );
        assert_sharded_matches_serial(&q, &batch, &WORKERS);
    }
}

#[test]
fn sharded_engine_counters_match_inline_engine() {
    let th = low_thresholds();
    let q = catalog::ddos(&th);
    let pkts = seeded_packets(3, 400);
    let batch = batch_for(&q, &pkts);
    let count = |workers: usize| {
        let mut engine = ShardedEngine::new(workers);
        engine.register(q.clone());
        engine.submit(q.id, &batch).unwrap();
        engine.submit(q.id, &batch).unwrap();
        engine.finish()
    };
    let serial = count(1);
    let parallel = count(8);
    assert_eq!(serial.tuples_in, parallel.tuples_in);
    assert_eq!(serial.results_out, parallel.results_out);
    assert_eq!(serial.windows, parallel.windows);
    assert_eq!(serial.per_query.get(&q.id), parallel.per_query.get(&q.id));
}

#[test]
fn unknown_query_and_errors_are_reported_identically() {
    let th = low_thresholds();
    let q = catalog::superspreader(&th);
    let mut engine = ShardedEngine::new(4);
    engine.register(q.clone());
    // Unknown query.
    let empty = WindowBatch::new();
    assert!(matches!(
        engine.submit(QueryId(999), &empty),
        Err(sonata_stream::StreamError::UnknownQuery(QueryId(999)))
    ));
    // Malformed batch: entry index past the pipeline end must surface
    // the same BadEntry error the serial engine produces.
    let mut bad = WindowBatch::new();
    bad.push_left(99, vec![Tuple::new(vec![Value::U64(1)])]);
    assert!(matches!(
        engine.submit(q.id, &bad),
        Err(sonata_stream::StreamError::BadEntry { op: 99, .. })
    ));
    // The engine keeps serving after an error.
    let pkts = seeded_packets(5, 100);
    let batch = batch_for(&q, &pkts);
    assert!(engine.submit(q.id, &batch).is_ok());
}

#[test]
fn every_catalog_query_plans_parallel() {
    // The analysis must never bail to a single shard on the catalog —
    // otherwise the suite silently tests nothing.
    let th = low_thresholds();
    let mut queries = catalog::all(&th);
    queries.push(catalog::malicious_domains(&th));
    for q in &queries {
        assert!(
            partition_spec(q).is_parallel(),
            "{}: not parallelizable",
            q.name
        );
    }
}

#[test]
fn empty_window_still_counts_and_returns_empty_result() {
    let th = low_thresholds();
    let q = catalog::port_scan(&th);
    let mut engine = ShardedEngine::new(4);
    engine.register(q.clone());
    let r = engine.submit(q.id, &WindowBatch::new()).unwrap();
    assert!(r.output.is_empty());
    assert_eq!(r.tuples_in, 0);
    let c = engine.finish();
    assert_eq!(c.windows, 1);
    assert_eq!(c.tuples_in, 0);
}
