//! Observability counters vs the differential harness: for seeded
//! traffic, the sharded engine's `EngineCounters` and the attached
//! `MetricsSnapshot` must both agree exactly with the single-threaded
//! serial reference execution.

use sonata_obs::ObsHandle;
use sonata_query::catalog::{self};
use sonata_stream::engine::execute_window;
use sonata_stream::testsupport::{batch_for, low_thresholds, seeded_packets};
use sonata_stream::worker::ShardedEngine;

#[test]
fn sharded_obs_counters_match_serial_reference() {
    let th = low_thresholds();
    let queries = vec![
        catalog::newly_opened_tcp_conns(&th),
        catalog::superspreader(&th),
        catalog::tcp_syn_flood(&th),
    ];
    let pkts = seeded_packets(0x0b5, 600);

    // Serial reference: per-query intake and output sizes.
    let mut ref_tuples = 0u64;
    let mut ref_results = 0u64;
    let mut ref_windows = 0u64;
    for q in &queries {
        let batch = batch_for(q, &pkts);
        let serial = execute_window(q, &batch).expect("serial execution");
        ref_tuples += serial.tuples_in as u64;
        ref_results += serial.output.len() as u64;
        ref_windows += 1;
    }

    for workers in [1usize, 4] {
        let obs = ObsHandle::enabled();
        let mut engine = ShardedEngine::with_obs(workers, &obs);
        for q in &queries {
            engine.register(q.clone());
        }
        for q in &queries {
            let batch = batch_for(q, &pkts);
            let result = engine.submit_owned(q.id, batch).expect("sharded execution");
            let serial = execute_window(q, &batch_for(q, &pkts)).unwrap();
            assert_eq!(result.output, serial.output, "{}", q.name);
        }
        let c = engine.counters().clone();
        assert_eq!(c.tuples_in, ref_tuples, "{workers} workers");
        assert_eq!(c.results_out, ref_results, "{workers} workers");
        assert_eq!(c.windows, ref_windows, "{workers} workers");

        // The metrics snapshot must agree with EngineCounters, which
        // agree with the serial reference.
        let snap = obs.snapshot();
        assert_eq!(
            snap.counter("sonata_engine_tuples_total"),
            Some(ref_tuples),
            "{workers} workers"
        );
        assert_eq!(
            snap.counter("sonata_engine_results_total"),
            Some(ref_results),
            "{workers} workers"
        );
        assert_eq!(
            snap.counter("sonata_engine_windows_total"),
            Some(ref_windows),
            "{workers} workers"
        );
        assert_eq!(snap.counter("sonata_engine_worker_panics_total"), Some(0));
        // Shard intake must partition the total exactly: every tuple
        // lands on exactly one shard.
        let shard_total = snap.counter_sum("sonata_engine_shard_tuples_total");
        assert_eq!(shard_total, ref_tuples, "{workers} workers");
    }
}
